#!/usr/bin/env bash
# Tier-1 gate: formatting, release build (examples included), full test
# suite, and lint-clean clippy.
# Run from the repository root. Fails fast on the first broken step.
# Pass --slow to also run the #[ignore]d long-horizon experiment tests
# (release mode; adds a few minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

SLOW=0
for arg in "$@"; do
  case "$arg" in
    --slow) SLOW=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cargo fmt --all --check
cargo build --release --workspace
cargo build --examples --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings

# Determinism contract of the sharded memory stage (DESIGN.md §4f): the
# golden fixtures and the serial-vs-parallel matrix must hold at both a
# serial and a multi-threaded pool width. The golden_pipeline binary is
# the per-backend golden pass: it checks the HBM matrix against
# tests/fixtures/golden_pipeline.json (byte-identical across the
# multi-backend refactor) AND the LP5X matrix against
# tests/fixtures/golden_lp5x.json (DESIGN.md §4j).
PIMSIM_THREADS=1 cargo test -q --release --test golden_pipeline --test parallel_equivalence
PIMSIM_THREADS=4 cargo test -q --release --test golden_pipeline --test parallel_equivalence

# Backend-registry smoke (DESIGN.md §4j): both registries must round-trip
# names and agree on the error dialect, every registered backend must be
# reachable from the CLI, and a short LP5X run must complete end to end —
# the whole chain spec string → registry → SystemConfig → simulator.
cargo test -q --release --test backend_registry
# grep without -q: -q exits at the first match and closes the pipe,
# which can panic the CLI mid-print with EPIPE depending on buffering.
cargo run -q --release -p pimsim-cli --bin pimsim -- list | grep "lp5x" >/dev/null
cargo run -q --release -p pimsim-cli --bin pimsim -- \
  standalone --pim P1 --dram lp5x:ranks=4 --scale 0.01 >/dev/null

# Hot-loop smoke (DESIGN.md §4g): one rep of every scenario, with a
# throughput floor an order of magnitude below the slowest recorded rate
# in BENCH_hotloop.json — it trips on asymptotic regressions (a per-tick
# scan creeping back into the busy path), not machine noise. The smoke
# writes no JSON so the committed best-of-3 numbers are preserved.
# The hotloop binary itself also fails the smoke if burst retirement
# disengages (zero burst hit rate on standalone_pim), if fast-forward
# regresses (DESIGN.md §4h), or if event-driven completion delivery
# disengages: on standalone_pim the reply-net + completion stages must
# run at least 5x fewer ticks than the eager 2-ticks-per-stepped-cycle
# baseline (DESIGN.md §4i), or if retire-time completion batching
# disengages: on both standalone PIM scenarios (HBM and lp5x:ranks=4)
# the memory stage must run at least 3x fewer ticks than stepped cycles
# and at least one ack must travel in a retire-time batch (DESIGN.md
# §4k). Tick counts are deterministic, so those gates are structural —
# immune to host noise.
HOTLOOP_REPS=1 HOTLOOP_FLOOR=25000 HOTLOOP_OUT="" \
  cargo run -q --release -p pimsim-bench --bin hotloop

# Opt-in slow pass: the two #[ignore]d long-horizon experiment tests
# (full QKV collaborative run, PIM-corunner interference sweep). They
# validate paper-level conclusions rather than mechanisms, so they ride
# outside the default gate.
if [ "$SLOW" = 1 ]; then
  cargo test -q --release -p pimsim-sim -- --ignored
fi
