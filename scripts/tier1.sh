#!/usr/bin/env bash
# Tier-1 gate: formatting, release build (examples included), full test
# suite, and lint-clean clippy.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --workspace
cargo build --examples --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings

# Determinism contract of the sharded memory stage (DESIGN.md §4f): the
# golden fixtures and the serial-vs-parallel matrix must hold at both a
# serial and a multi-threaded pool width.
PIMSIM_THREADS=1 cargo test -q --release --test golden_pipeline --test parallel_equivalence
PIMSIM_THREADS=4 cargo test -q --release --test golden_pipeline --test parallel_equivalence
