#!/usr/bin/env bash
# Tier-1 gate: formatting, release build (examples included), full test
# suite, and lint-clean clippy.
# Run from the repository root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --workspace
cargo build --examples --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings
