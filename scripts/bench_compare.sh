#!/usr/bin/env bash
# A/B wall-clock comparison of two hotloop binaries under the interleaved
# best-of protocol: N alternating pairs (baseline run, then candidate
# run), each run itself best-of-M reps inside the binary (HOTLOOP_REPS).
# Alternating exposes both binaries to the same slow drift in background
# host load; best-of-M inside each run shields against per-run scheduler
# hiccups. Reports every per-run rate, the medians, and best-vs-best for
# the chosen scenario's fast-forward-on rate.
#
# Usage:
#   scripts/bench_compare.sh BASELINE_BIN CANDIDATE_BIN [scenario] [pairs] [reps]
#
#   BASELINE_BIN / CANDIDATE_BIN  prebuilt hotloop binaries (e.g. the
#                                 candidate from target/release/hotloop and
#                                 a baseline built from an earlier commit
#                                 in a scratch worktree)
#   scenario                      hotloop scenario name (default standalone_pim)
#   pairs                         alternating A/B pairs, N (default 5)
#   reps                          best-of reps per run, M (default 3)
#
# Exit status is always 0 on a completed measurement; the judgement
# (e.g. a >=1.3x target) is the caller's.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 BASELINE_BIN CANDIDATE_BIN [scenario] [pairs] [reps]" >&2
  exit 2
fi
A_BIN=$1
B_BIN=$2
SCENARIO=${3:-standalone_pim}
PAIRS=${4:-5}
REPS=${5:-3}

for bin in "$A_BIN" "$B_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "not an executable: $bin" >&2
    exit 2
  fi
done

TMPDIR_CMP=$(mktemp -d)
trap 'rm -rf "$TMPDIR_CMP"' EXIT

# Pulls the scenario's best-of-reps fast-forward-on rate out of the
# hand-formatted JSON the binary writes (no jq dependency).
rate_of() { # rate_of <json-file> <scenario>
  awk -v want="$2" '
    /"scenario":/ { in_block = index($0, "\"" want "\"") > 0 }
    in_block && /"cycles_per_sec_ff_on":/ {
      gsub(/[^0-9.]/, "", $2); print $2; exit
    }' "$1"
}

median_of() { # median_of <rates...>
  printf '%s\n' "$@" | sort -n | awk '
    { a[NR] = $1 }
    END {
      if (NR % 2) { print a[(NR + 1) / 2] }
      else { printf "%.1f\n", (a[NR / 2] + a[NR / 2 + 1]) / 2 }
    }'
}

best_of() { # best_of <rates...>
  printf '%s\n' "$@" | sort -n | tail -1
}

run_one() { # run_one <bin> <out-json>
  HOTLOOP_REPS=$REPS HOTLOOP_FLOOR=0 HOTLOOP_OUT=$2 "$1" >/dev/null
}

A_RATES=()
B_RATES=()
echo "interleaving $PAIRS pairs of best-of-$REPS runs, scenario $SCENARIO"
for i in $(seq 1 "$PAIRS"); do
  run_one "$A_BIN" "$TMPDIR_CMP/a_$i.json"
  a=$(rate_of "$TMPDIR_CMP/a_$i.json" "$SCENARIO")
  run_one "$B_BIN" "$TMPDIR_CMP/b_$i.json"
  b=$(rate_of "$TMPDIR_CMP/b_$i.json" "$SCENARIO")
  if [ -z "$a" ] || [ -z "$b" ]; then
    echo "pair $i: scenario '$SCENARIO' not found in one of the outputs" >&2
    exit 1
  fi
  A_RATES+=("$a")
  B_RATES+=("$b")
  echo "  pair $i: baseline ${a}/s   candidate ${b}/s"
done

A_MED=$(median_of "${A_RATES[@]}")
B_MED=$(median_of "${B_RATES[@]}")
A_BEST=$(best_of "${A_RATES[@]}")
B_BEST=$(best_of "${B_RATES[@]}")

echo
echo "baseline : rates [${A_RATES[*]}]  median $A_MED  best $A_BEST"
echo "candidate: rates [${B_RATES[*]}]  median $B_MED  best $B_BEST"
awk -v am="$A_MED" -v bm="$B_MED" -v ab="$A_BEST" -v bb="$B_BEST" 'BEGIN {
  printf "speedup (candidate/baseline): median %.3fx   best-vs-best %.3fx\n",
    bm / am, bb / ab
}'
