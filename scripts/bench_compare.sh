#!/usr/bin/env bash
# A/B wall-clock comparison of two hotloop binaries under the interleaved
# best-of protocol: N alternating pairs (baseline run, then candidate
# run), each run itself best-of-M reps inside the binary (HOTLOOP_REPS).
# Alternating exposes both binaries to the same slow drift in background
# host load; best-of-M inside each run shields against per-run scheduler
# hiccups. Reports every per-run rate, the medians, and best-vs-best of
# the fast-forward-on rate for each requested scenario.
#
# Usage:
#   scripts/bench_compare.sh BASELINE_BIN CANDIDATE_BIN [scenarios] [pairs] [reps]
#
#   BASELINE_BIN / CANDIDATE_BIN  prebuilt hotloop binaries (e.g. the
#                                 candidate from target/release/hotloop and
#                                 a baseline built from an earlier commit
#                                 in a scratch worktree)
#   scenarios                     comma-separated hotloop scenario names
#                                 (default standalone_pim). Every run
#                                 executes all scenarios anyway, so extra
#                                 names cost nothing — the rates are pulled
#                                 from the same JSON.
#   pairs                         alternating A/B pairs, N (default 5)
#   reps                          best-of reps per run, M (default 3)
#
# Exit status is always 0 on a completed measurement; the judgement
# (e.g. a >=1.3x target) is the caller's.
set -euo pipefail

if [ $# -lt 2 ]; then
  echo "usage: $0 BASELINE_BIN CANDIDATE_BIN [scenarios] [pairs] [reps]" >&2
  exit 2
fi
A_BIN=$1
B_BIN=$2
SCENARIOS=${3:-standalone_pim}
PAIRS=${4:-5}
REPS=${5:-3}
IFS=',' read -r -a SCENARIO_LIST <<<"$SCENARIOS"

for bin in "$A_BIN" "$B_BIN"; do
  if [ ! -x "$bin" ]; then
    echo "not an executable: $bin" >&2
    exit 2
  fi
done

TMPDIR_CMP=$(mktemp -d)
trap 'rm -rf "$TMPDIR_CMP"' EXIT

# Pulls the scenario's best-of-reps fast-forward-on rate out of the
# hand-formatted JSON the binary writes (no jq dependency).
rate_of() { # rate_of <json-file> <scenario>
  awk -v want="$2" '
    /"scenario":/ { in_block = index($0, "\"" want "\"") > 0 }
    in_block && /"cycles_per_sec_ff_on":/ {
      gsub(/[^0-9.]/, "", $2); print $2; exit
    }' "$1"
}

median_of() { # median_of <rates...>
  printf '%s\n' "$@" | sort -n | awk '
    { a[NR] = $1 }
    END {
      if (NR % 2) { print a[(NR + 1) / 2] }
      else { printf "%.1f\n", (a[NR / 2] + a[NR / 2 + 1]) / 2 }
    }'
}

best_of() { # best_of <rates...>
  printf '%s\n' "$@" | sort -n | tail -1
}

run_one() { # run_one <bin> <out-json>
  HOTLOOP_REPS=$REPS HOTLOOP_FLOOR=0 HOTLOOP_FF_GATE=0 HOTLOOP_OUT=$2 "$1" >/dev/null
}

echo "interleaving $PAIRS pairs of best-of-$REPS runs, scenarios: ${SCENARIO_LIST[*]}"
for i in $(seq 1 "$PAIRS"); do
  run_one "$A_BIN" "$TMPDIR_CMP/a_$i.json"
  run_one "$B_BIN" "$TMPDIR_CMP/b_$i.json"
  line="  pair $i:"
  for sc in "${SCENARIO_LIST[@]}"; do
    a=$(rate_of "$TMPDIR_CMP/a_$i.json" "$sc")
    b=$(rate_of "$TMPDIR_CMP/b_$i.json" "$sc")
    if [ -z "$a" ] || [ -z "$b" ]; then
      echo "pair $i: scenario '$sc' not found in one of the outputs" >&2
      exit 1
    fi
    printf '%s\n' "$a" >>"$TMPDIR_CMP/rates_a_$sc"
    printf '%s\n' "$b" >>"$TMPDIR_CMP/rates_b_$sc"
    line="$line  $sc ${a}/s vs ${b}/s"
  done
  echo "$line"
done

for sc in "${SCENARIO_LIST[@]}"; do
  mapfile -t A_RATES <"$TMPDIR_CMP/rates_a_$sc"
  mapfile -t B_RATES <"$TMPDIR_CMP/rates_b_$sc"
  A_MED=$(median_of "${A_RATES[@]}")
  B_MED=$(median_of "${B_RATES[@]}")
  A_BEST=$(best_of "${A_RATES[@]}")
  B_BEST=$(best_of "${B_RATES[@]}")
  echo
  echo "scenario $sc"
  echo "  baseline : rates [${A_RATES[*]}]  median $A_MED  best $A_BEST"
  echo "  candidate: rates [${B_RATES[*]}]  median $B_MED  best $B_BEST"
  awk -v am="$A_MED" -v bm="$B_MED" -v ab="$A_BEST" -v bb="$B_BEST" 'BEGIN {
    printf "  speedup (candidate/baseline): median %.3fx   best-vs-best %.3fx\n",
      bm / am, bb / ab
  }'
done
