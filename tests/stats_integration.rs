//! Statistics-path integration tests: latency histograms, mode-residency
//! accounting, and L2 behavior observed through full-system runs.

use pim_coscheduling::prelude::*;
use pim_coscheduling::workloads::{gpu_kernel, pim_kernel};

const SCALE: f64 = 0.02;

fn runner(policy: PolicyKind) -> pim_coscheduling::sim::Runner {
    let mut r = pim_coscheduling::sim::Runner::new(SystemConfig::default(), policy);
    r.max_gpu_cycles = 4_000_000;
    r
}

#[test]
fn latency_histograms_populate_and_order_sanely() {
    let r = runner(PolicyKind::FrFcfs);
    let out = r.coexec(
        Box::new(gpu_kernel(GpuBenchmark(8), 72, SCALE)),
        Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
        true,
    );
    let mem = &out.mc.mem_latency;
    let pim = &out.mc.pim_latency;
    assert_eq!(mem.count(), out.mc.mem_served);
    assert_eq!(pim.count(), out.mc.pim_served);
    for h in [mem, pim] {
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert!(p99 <= h.max());
        // Every serviced request spends at least the column latency.
        assert!(h.mean().unwrap() >= 1.0);
    }
}

#[test]
fn mode_residency_accounts_for_all_active_cycles() {
    let r = runner(PolicyKind::FrRrFcfs);
    let out = r.coexec(
        Box::new(gpu_kernel(GpuBenchmark(5), 72, SCALE)),
        Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
        true,
    );
    let s = &out.mc;
    // Stepped cycles split exactly into MEM-mode, PIM-mode, and draining.
    assert_eq!(
        s.cycles,
        s.cycles_mem_mode + s.cycles_pim_mode + s.cycles_draining,
        "mode residency must partition stepped cycles"
    );
    assert!(s.cycles_draining > 0, "FR-RR switches must drain");
}

#[test]
fn standalone_pim_spends_almost_all_time_in_pim_mode() {
    let r = runner(PolicyKind::FrFcfs);
    let out = r
        .standalone(
            Box::new(pim_kernel(PimBenchmark(4), 32, 4, 256, SCALE)),
            0,
            true,
        )
        .expect("finishes");
    let s = &out.mc;
    assert!(
        s.cycles_pim_mode > s.cycles_mem_mode * 5,
        "PIM standalone: pim {} vs mem {} mode cycles",
        s.cycles_pim_mode,
        s.cycles_mem_mode
    );
}

#[test]
fn l2_filters_the_reusing_kernel() {
    // G19 (srad_v2, l2_reuse 0.75) must reach DRAM with far fewer
    // requests than it injects; G15 (nn, l2_reuse 0.02) must not.
    let r = runner(PolicyKind::FrFcfs);
    let filtered = r
        .standalone(Box::new(gpu_kernel(GpuBenchmark(19), 40, SCALE)), 0, false)
        .expect("finishes");
    let streaming = r
        .standalone(Box::new(gpu_kernel(GpuBenchmark(15), 40, SCALE)), 0, false)
        .expect("finishes");
    let filter_ratio = filtered.mc.mem_arrivals as f64 / filtered.icnt_injections as f64;
    let stream_ratio = streaming.mc.mem_arrivals as f64 / streaming.icnt_injections as f64;
    assert!(
        filter_ratio < 0.6,
        "srad_v2 should be L2-filtered (ratio {filter_ratio:.2})"
    );
    assert!(
        stream_ratio > 0.8,
        "nn should stream through the L2 (ratio {stream_ratio:.2})"
    );
    assert!(filter_ratio < stream_ratio);
}

#[test]
fn queue_occupancy_integrals_track_pressure() {
    // Under PIM-First the PIM queue drains promptly; under MEM-First it
    // sits full. Compare average PIM-queue occupancy per stepped cycle.
    let occupancy = |policy: PolicyKind| {
        let r = runner(policy);
        let out = r.coexec(
            Box::new(gpu_kernel(GpuBenchmark(8), 72, SCALE)),
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            true,
        );
        out.mc.pim_q_occupancy_sum as f64 / out.mc.cycles.max(1) as f64
    };
    let pim_first = occupancy(PolicyKind::PimFirst);
    let mem_first = occupancy(PolicyKind::MemFirst);
    assert!(
        mem_first > pim_first,
        "MEM-First must back the PIM queue up (MEM-First {mem_first:.2} vs PIM-First {pim_first:.2})"
    );
}
