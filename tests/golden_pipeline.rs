//! Golden-fixture regression matrix for the pipeline refactor.
//!
//! Records total cycles plus the merged controller stats for a
//! (policy × workload × VC mode) matrix as checked-in JSON fixtures
//! (`tests/fixtures/golden_pipeline.json`), generated at the pre-refactor
//! HEAD, and asserts the current pipeline reproduces them exactly — with
//! fast-forward both on and off. Any divergence means the component-port
//! refactor changed observable behavior.
//!
//! A second, smaller matrix pins the LPDDR5X-PIM backend
//! (`tests/fixtures/golden_lp5x.json`): the HBM fixture file stays
//! byte-identical across the multi-backend refactor while the LP5X
//! scenarios get their own golden history.
//!
//! Regenerate (only when an *intentional* behavior change lands) with:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --release --test golden_pipeline
//! ```

use pim_coscheduling::core::policy::PolicyKind;
use pim_coscheduling::core::McStats;
use pim_coscheduling::sim::Runner;
use pim_coscheduling::types::{SystemConfig, VcMode};
use pim_coscheduling::workloads::{
    gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark,
};

const SCALE: f64 = 0.01;
const BUDGET: u64 = 20_000_000;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_pipeline.json")
}

fn lp5x_fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_lp5x.json")
}

/// The matrix axes. Policy names are the registry's canonical spellings,
/// resolved to kinds through [`PolicyKind::parse_spec`].
const POLICIES: [&str; 3] = ["fr-fcfs", "f3fs", "mem-first"];

#[derive(Clone, Copy)]
enum Workload {
    SoloMem,
    SoloPim,
    Coexec,
    /// Reply-saturated: a MEM kernel spread over twice the SMs so the
    /// reply crossbar and per-partition reply wires stay deep — pins the
    /// stage-6 skip gate (`replies_pending` / `has_traffic`) of the
    /// event-driven completion spine.
    ReplySat,
}

const WORKLOADS: [(&str, Workload); 4] = [
    ("mem_G3", Workload::SoloMem),
    ("pim_P1", Workload::SoloPim),
    ("coexec_G8_P2", Workload::Coexec),
    ("replysat_G15", Workload::ReplySat),
];

const VC_MODES: [(&str, VcMode); 2] = [("vc1", VcMode::Shared), ("vc2", VcMode::SplitPim)];

fn runner(base: &SystemConfig, policy: PolicyKind, vc_mode: VcMode, fast_forward: bool) -> Runner {
    let mut cfg = base.clone();
    cfg.noc.vc_mode = vc_mode;
    let mut r = Runner::new(cfg, policy);
    r.max_gpu_cycles = BUDGET;
    r.fast_forward = fast_forward;
    r
}

/// Every integer-valued observable of a run, in a fixed order. Histogram
/// means are derived from these counts, so integer equality here implies
/// the distributions match too.
fn mc_fields(mc: &McStats) -> Vec<(&'static str, u64)> {
    vec![
        ("mem_arrivals", mc.mem_arrivals),
        ("pim_arrivals", mc.pim_arrivals),
        ("mem_served", mc.mem_served),
        ("pim_served", mc.pim_served),
        ("mem_row_hits", mc.mem_row_hits),
        ("mem_row_misses", mc.mem_row_misses),
        ("pim_row_hits", mc.pim_row_hits),
        ("pim_row_misses", mc.pim_row_misses),
        ("switches", mc.switches),
        ("switches_mem_to_pim", mc.switches_mem_to_pim),
        ("mem_drain_latency_sum", mc.mem_drain_latency_sum),
        ("switch_conflicts", mc.switch_conflicts),
        ("blp_sum", mc.blp_sum),
        ("active_cycles", mc.active_cycles),
        ("mem_q_occupancy_sum", mc.mem_q_occupancy_sum),
        ("pim_q_occupancy_sum", mc.pim_q_occupancy_sum),
        ("mc_cycles", mc.cycles),
        ("cycles_mem_mode", mc.cycles_mem_mode),
        ("cycles_pim_mode", mc.cycles_pim_mode),
        ("cycles_draining", mc.cycles_draining),
        ("mem_latency_count", mc.mem_latency.count()),
        ("mem_latency_max", mc.mem_latency.max()),
        ("pim_latency_count", mc.pim_latency.count()),
        ("pim_latency_max", mc.pim_latency.max()),
    ]
}

/// Runs one cell of the matrix and returns its observables.
fn run_cell(
    base: &SystemConfig,
    policy: PolicyKind,
    workload: Workload,
    vc_mode: VcMode,
    fast_forward: bool,
) -> Vec<(&'static str, u64)> {
    let r = runner(base, policy, vc_mode, fast_forward);
    let (head, mc) = match workload {
        Workload::SoloMem => {
            let out = r
                .standalone(Box::new(gpu_kernel(GpuBenchmark(3), 16, SCALE)), 0, false)
                .expect("solo MEM run finishes in budget");
            (
                vec![
                    ("total_cycles", out.cycles),
                    ("icnt_injections", out.icnt_injections),
                ],
                out.mc,
            )
        }
        Workload::SoloPim => {
            let out = r
                .standalone(
                    Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
                    0,
                    true,
                )
                .expect("solo PIM run finishes in budget");
            (
                vec![
                    ("total_cycles", out.cycles),
                    ("icnt_injections", out.icnt_injections),
                ],
                out.mc,
            )
        }
        Workload::ReplySat => {
            let out = r
                .standalone(Box::new(gpu_kernel(GpuBenchmark(15), 32, SCALE)), 0, false)
                .expect("reply-saturated run finishes in budget");
            (
                vec![
                    ("total_cycles", out.cycles),
                    ("icnt_injections", out.icnt_injections),
                ],
                out.mc,
            )
        }
        Workload::Coexec => {
            let out = r.coexec(
                Box::new(gpu_kernel(GpuBenchmark(8), 16, SCALE)),
                Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
                true,
            );
            (
                vec![
                    ("total_cycles", out.total_cycles),
                    ("gpu_first_run", out.gpu_first_run),
                    ("pim_first_run", out.pim_first_run),
                    ("gpu_starved", u64::from(out.gpu_starved)),
                    ("pim_starved", u64::from(out.pim_starved)),
                ],
                out.mc,
            )
        }
    };
    let mut fields = head;
    fields.extend(mc_fields(&mc));
    fields
}

/// Hand-rolled JSON writer (serde is a no-op shim in this workspace).
fn to_json(records: &[(String, Vec<(&'static str, u64)>)]) -> String {
    let mut s = String::from("[\n");
    for (i, (scenario, fields)) in records.iter().enumerate() {
        s.push_str("  {\n");
        s.push_str(&format!("    \"scenario\": \"{scenario}\",\n"));
        for (j, (k, v)) in fields.iter().enumerate() {
            let comma = if j + 1 < fields.len() { "," } else { "" };
            s.push_str(&format!("    \"{k}\": {v}{comma}\n"));
        }
        s.push_str(if i + 1 < records.len() {
            "  },\n"
        } else {
            "  }\n"
        });
    }
    s.push_str("]\n");
    s
}

/// Minimal parser for the writer's output: a list of flat objects with one
/// string field (`scenario`) and integer fields.
fn parse_json(text: &str) -> Vec<(String, Vec<(String, u64)>)> {
    let mut records = Vec::new();
    for obj in text.split('{').skip(1) {
        let obj = obj.split('}').next().expect("unterminated object");
        let mut scenario = None;
        let mut fields = Vec::new();
        let mut rest = obj;
        while let Some(start) = rest.find('"') {
            let after_key = &rest[start + 1..];
            let key_end = after_key.find('"').expect("unterminated key");
            let key = &after_key[..key_end];
            let after = after_key[key_end + 1..]
                .trim_start()
                .strip_prefix(':')
                .expect("missing colon")
                .trim_start();
            if let Some(sv) = after.strip_prefix('"') {
                let end = sv.find('"').expect("unterminated string value");
                assert_eq!(key, "scenario", "unexpected string field {key}");
                scenario = Some(sv[..end].to_string());
                rest = &sv[end + 1..];
            } else {
                let end = after
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(after.len());
                let value: u64 = after[..end].parse().expect("integer field");
                fields.push((key.to_string(), value));
                rest = &after[end..];
            }
        }
        records.push((scenario.expect("object without scenario"), fields));
    }
    records
}

fn scenario_name(policy: &str, workload: &str, vc: &str) -> String {
    format!("{policy}/{workload}/{vc}")
}

fn run_matrix() -> Vec<(String, Vec<(&'static str, u64)>)> {
    let base = SystemConfig::default();
    let mut records = Vec::new();
    for pname in POLICIES {
        for (wname, workload) in WORKLOADS {
            for (vname, vc) in VC_MODES {
                let name = scenario_name(pname, wname, vname);
                let pkind = PolicyKind::parse_spec(pname).expect("registered policy");
                let on = run_cell(&base, pkind, workload, vc, true);
                let off = run_cell(&base, pkind, workload, vc, false);
                assert_eq!(on, off, "{name}: fast-forward on/off diverged");
                records.push((name, on));
            }
        }
    }
    records
}

/// The LP5X matrix is smaller (the point is backend coverage, not a second
/// full policy sweep): two policies, the three workload shapes that touch
/// both request classes, shared-VC only.
const LP5X_POLICIES: [&str; 2] = ["fr-fcfs", "f3fs"];
const LP5X_WORKLOADS: [(&str, Workload); 3] = [
    ("mem_G3", Workload::SoloMem),
    ("pim_P1", Workload::SoloPim),
    ("coexec_G8_P2", Workload::Coexec),
];

fn run_lp5x_matrix() -> Vec<(String, Vec<(&'static str, u64)>)> {
    // Resolved through the backend registry, exactly like `--dram` on the
    // CLI: no backend enum matching in this test.
    let base = {
        let kind = pim_coscheduling::dram::backend::parse_spec("lp5x:ranks=4")
            .expect("registered backend");
        pim_coscheduling::dram::backend::system_config(kind)
    };
    let mut records = Vec::new();
    for pname in LP5X_POLICIES {
        for (wname, workload) in LP5X_WORKLOADS {
            let name = format!("lp5x/{}", scenario_name(pname, wname, "vc1"));
            let pkind = PolicyKind::parse_spec(pname).expect("registered policy");
            let on = run_cell(&base, pkind, workload, VcMode::Shared, true);
            let off = run_cell(&base, pkind, workload, VcMode::Shared, false);
            assert_eq!(on, off, "{name}: fast-forward on/off diverged");
            records.push((name, on));
        }
    }
    records
}

/// Regenerates (under `GOLDEN_REGEN=1`) or verifies `records` against the
/// fixture at `path` — shared by the per-backend golden tests.
fn check_against(path: &std::path::Path, records: &[(String, Vec<(&'static str, u64)>)]) {
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(path, to_json(records)).expect("write fixtures");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with GOLDEN_REGEN=1",
            path.display()
        )
    });
    let golden = parse_json(&text);
    assert_eq!(
        golden.len(),
        records.len(),
        "fixture matrix size changed; regenerate with GOLDEN_REGEN=1"
    );
    for ((gname, gfields), (name, fields)) in golden.iter().zip(records) {
        assert_eq!(gname, name, "scenario order changed");
        assert_eq!(
            gfields.len(),
            fields.len(),
            "{name}: recorded field set changed; regenerate with GOLDEN_REGEN=1"
        );
        for ((gk, gv), (k, v)) in gfields.iter().zip(fields) {
            assert_eq!(gk, k, "{name}: field order changed");
            assert_eq!(gv, v, "{name}: {k} diverged from the golden fixture");
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs the full matrix; use --release")]
fn pipeline_matches_golden_fixtures() {
    check_against(&fixture_path(), &run_matrix());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs the full matrix; use --release")]
fn lp5x_pipeline_matches_golden_fixtures() {
    check_against(&lp5x_fixture_path(), &run_lp5x_matrix());
}

/// The fixture file itself must round-trip through the parser, so a hand
/// edit that breaks the format is caught even in debug runs.
#[test]
fn fixture_file_parses_if_present() {
    for path in [fixture_path(), lp5x_fixture_path()] {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // not generated yet
        };
        let golden = parse_json(&text);
        assert!(
            !golden.is_empty(),
            "fixture file exists but holds no records"
        );
        for (name, fields) in &golden {
            assert!(!name.is_empty());
            assert!(
                fields.iter().any(|(k, _)| k == "total_cycles"),
                "{name}: missing total_cycles"
            );
        }
    }
}
