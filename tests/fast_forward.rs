//! Fast-forward equivalence matrix: runs with idle-span skipping enabled
//! must be bit-identical to lock-step runs — same total cycles, same
//! merged controller stats — across policies, workloads, and VC modes.
//! This is the correctness contract of the event-driven main loop: the
//! skip may only cover cycles in which a lock-step `step()` would have
//! mutated nothing but the clocks.

use pim_coscheduling::core::policy::PolicyKind;
use pim_coscheduling::core::McStats;
use pim_coscheduling::sim::experiments::sweep::parallel_map;
use pim_coscheduling::sim::Runner;
use pim_coscheduling::types::{SystemConfig, VcMode};
use pim_coscheduling::workloads::{
    gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark,
};

const SCALE: f64 = 0.01;
const BUDGET: u64 = 20_000_000;

fn runner(policy: PolicyKind, vc_mode: VcMode, fast_forward: bool) -> Runner {
    runner_ev(policy, vc_mode, fast_forward, true)
}

fn runner_ev(policy: PolicyKind, vc_mode: VcMode, fast_forward: bool, events: bool) -> Runner {
    let mut cfg = SystemConfig::default();
    cfg.noc.vc_mode = vc_mode;
    let mut r = Runner::new(cfg, policy);
    r.max_gpu_cycles = BUDGET;
    r.fast_forward = fast_forward;
    r.event_delivery = events;
    r
}

/// Field-by-field equality of merged controller stats. `McStats` holds
/// histograms (no `PartialEq`), so the comparison goes through every
/// counter plus each histogram's count/max/mean.
fn assert_mc_identical(a: &McStats, b: &McStats, ctx: &str) {
    assert_eq!(a.mem_arrivals, b.mem_arrivals, "{ctx}: mem_arrivals");
    assert_eq!(a.pim_arrivals, b.pim_arrivals, "{ctx}: pim_arrivals");
    assert_eq!(a.mem_served, b.mem_served, "{ctx}: mem_served");
    assert_eq!(a.pim_served, b.pim_served, "{ctx}: pim_served");
    assert_eq!(a.mem_row_hits, b.mem_row_hits, "{ctx}: mem_row_hits");
    assert_eq!(a.mem_row_misses, b.mem_row_misses, "{ctx}: mem_row_misses");
    assert_eq!(a.pim_row_hits, b.pim_row_hits, "{ctx}: pim_row_hits");
    assert_eq!(a.pim_row_misses, b.pim_row_misses, "{ctx}: pim_row_misses");
    assert_eq!(a.switches, b.switches, "{ctx}: switches");
    assert_eq!(
        a.switches_mem_to_pim, b.switches_mem_to_pim,
        "{ctx}: switches_mem_to_pim"
    );
    assert_eq!(
        a.mem_drain_latency_sum, b.mem_drain_latency_sum,
        "{ctx}: mem_drain_latency_sum"
    );
    assert_eq!(
        a.switch_conflicts, b.switch_conflicts,
        "{ctx}: switch_conflicts"
    );
    assert_eq!(a.blp_sum, b.blp_sum, "{ctx}: blp_sum");
    assert_eq!(a.active_cycles, b.active_cycles, "{ctx}: active_cycles");
    assert_eq!(
        a.mem_q_occupancy_sum, b.mem_q_occupancy_sum,
        "{ctx}: mem_q_occupancy_sum"
    );
    assert_eq!(
        a.pim_q_occupancy_sum, b.pim_q_occupancy_sum,
        "{ctx}: pim_q_occupancy_sum"
    );
    assert_eq!(a.cycles, b.cycles, "{ctx}: cycles");
    assert_eq!(
        a.cycles_mem_mode, b.cycles_mem_mode,
        "{ctx}: cycles_mem_mode"
    );
    assert_eq!(
        a.cycles_pim_mode, b.cycles_pim_mode,
        "{ctx}: cycles_pim_mode"
    );
    assert_eq!(
        a.cycles_draining, b.cycles_draining,
        "{ctx}: cycles_draining"
    );
    assert_eq!(
        a.mem_latency.count(),
        b.mem_latency.count(),
        "{ctx}: mem_latency.count"
    );
    assert_eq!(
        a.mem_latency.max(),
        b.mem_latency.max(),
        "{ctx}: mem_latency.max"
    );
    assert_eq!(
        a.mem_latency.mean(),
        b.mem_latency.mean(),
        "{ctx}: mem_latency.mean"
    );
    assert_eq!(
        a.pim_latency.count(),
        b.pim_latency.count(),
        "{ctx}: pim_latency.count"
    );
    assert_eq!(
        a.pim_latency.max(),
        b.pim_latency.max(),
        "{ctx}: pim_latency.max"
    );
    assert_eq!(
        a.pim_latency.mean(),
        b.pim_latency.mean(),
        "{ctx}: pim_latency.mean"
    );
}

#[test]
fn standalone_mem_matches_across_ff_modes() {
    for policy in [PolicyKind::FrFcfs, PolicyKind::FrRrFcfs] {
        for vc_mode in [VcMode::Shared, VcMode::SplitPim] {
            for bench in [GpuBenchmark(3), GpuBenchmark(15)] {
                let ctx = format!("{policy:?}/{vc_mode:?}/{bench:?}");
                let run = |ff: bool| {
                    runner(policy, vc_mode, ff)
                        .standalone(Box::new(gpu_kernel(bench, 16, SCALE)), 0, false)
                        .expect("finishes")
                };
                let on = run(true);
                let off = run(false);
                assert_eq!(on.cycles, off.cycles, "{ctx}: total cycles");
                assert_eq!(on.icnt_injections, off.icnt_injections, "{ctx}: injections");
                assert_mc_identical(&on.mc, &off.mc, &ctx);
            }
        }
    }
}

#[test]
fn standalone_pim_matches_across_ff_modes() {
    for vc_mode in [VcMode::Shared, VcMode::SplitPim] {
        let ctx = format!("pim/{vc_mode:?}");
        let run = |ff: bool| {
            runner(PolicyKind::FrFcfs, vc_mode, ff)
                .standalone(
                    Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
                    0,
                    true,
                )
                .expect("finishes")
        };
        let on = run(true);
        let off = run(false);
        assert_eq!(on.cycles, off.cycles, "{ctx}: total cycles");
        assert_eq!(on.icnt_injections, off.icnt_injections, "{ctx}: injections");
        assert_mc_identical(&on.mc, &off.mc, &ctx);
    }
}

#[test]
fn coexec_matches_across_ff_modes() {
    for policy in [
        PolicyKind::FrFcfs,
        PolicyKind::f3fs_competitive(),
        PolicyKind::MemFirst,
    ] {
        for vc_mode in [VcMode::Shared, VcMode::SplitPim] {
            let ctx = format!("{policy:?}/{vc_mode:?}");
            let run = |ff: bool| {
                runner(policy, vc_mode, ff).coexec(
                    Box::new(gpu_kernel(GpuBenchmark(8), 16, SCALE)),
                    Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
                    true,
                )
            };
            let on = run(true);
            let off = run(false);
            assert_eq!(on.gpu_first_run, off.gpu_first_run, "{ctx}: gpu first run");
            assert_eq!(on.pim_first_run, off.pim_first_run, "{ctx}: pim first run");
            assert_eq!(on.gpu_starved, off.gpu_starved, "{ctx}: gpu starved");
            assert_eq!(on.pim_starved, off.pim_starved, "{ctx}: pim starved");
            assert_eq!(on.total_cycles, off.total_cycles, "{ctx}: total cycles");
            assert_mc_identical(&on.mc, &off.mc, &ctx);
        }
    }
}

/// Oracle property for the event-driven completion spine: with deferred,
/// observability-gated delivery (`event_delivery = true`, the default)
/// every observable of a run — total cycles, injections, merged
/// controller stats — must be bit-identical to the eager per-tick reply
/// path (`event_delivery = false`), and that must hold in both
/// fast-forward modes. The matrix is deliberately completion-heavy: a
/// pure PIM burst (every retirement is an out-of-band ack, the path the
/// delivery gate defers) and a reply-saturated co-execution (deep reply
/// queues keep the reply crossbar occupied, exercising the stage-6 skip
/// gate's `replies_pending`/`has_traffic` horizon).
#[test]
fn event_delivery_matches_eager_oracle() {
    for vc_mode in [VcMode::Shared, VcMode::SplitPim] {
        // PIM burst: acks land essentially every cycle; deferral batches
        // them at throttle-wake and tail boundaries.
        let pim = |ff: bool, events: bool| {
            runner_ev(PolicyKind::FrFcfs, vc_mode, ff, events)
                .standalone(
                    Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
                    0,
                    true,
                )
                .expect("finishes")
        };
        let eager = pim(false, false);
        for (ff, events) in [(false, true), (true, true), (true, false)] {
            let ctx = format!("pim-burst/{vc_mode:?}/ff={ff}/events={events}");
            let got = pim(ff, events);
            assert_eq!(got.cycles, eager.cycles, "{ctx}: total cycles");
            assert_eq!(
                got.icnt_injections, eager.icnt_injections,
                "{ctx}: injections"
            );
            assert_mc_identical(&got.mc, &eager.mc, &ctx);
        }

        // Reply saturation: a wide MEM kernel keeps the reply network's
        // queues deep while the PIM co-runner floods the ack wires.
        let co = |ff: bool, events: bool| {
            runner_ev(PolicyKind::f3fs_competitive(), vc_mode, ff, events).coexec(
                Box::new(gpu_kernel(GpuBenchmark(15), 32, SCALE)),
                Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
                true,
            )
        };
        let eager = co(false, false);
        for (ff, events) in [(false, true), (true, true), (true, false)] {
            let ctx = format!("reply-sat/{vc_mode:?}/ff={ff}/events={events}");
            let got = co(ff, events);
            assert_eq!(got.gpu_first_run, eager.gpu_first_run, "{ctx}: gpu first");
            assert_eq!(got.pim_first_run, eager.pim_first_run, "{ctx}: pim first");
            assert_eq!(got.total_cycles, eager.total_cycles, "{ctx}: total cycles");
            assert_mc_identical(&got.mc, &eager.mc, &ctx);
        }
    }
}

/// Oracle property for retire-time completion batching (DESIGN.md §4k):
/// with batching on (the default) controllers emit each burst plan's
/// acks as one retire-time batch, partitions re-sort them into
/// time-ordered delivery schedules, and the memory stage defers whole
/// production cycles behind partition bulk horizons; with batching off
/// every completion goes through the per-tick heap and the stage steps
/// every cycle (the eager oracle). Every observable — total cycles,
/// injections, merged controller stats — must be bit-identical across
/// the two modes, on both DRAM backends, in both fast-forward modes.
/// The matrix runs VC1 (shared lanes maximize PIM/MEM interleaving in
/// the staging ports, the pipeline-tolerant deferral's hard case).
#[test]
fn ack_batching_matches_per_tick_oracle() {
    let lp5x = {
        // Resolved through the backend registry, exactly like `--dram`.
        let kind = pim_coscheduling::dram::backend::parse_spec("lp5x:ranks=4")
            .expect("registered backend");
        pim_coscheduling::dram::backend::system_config(kind)
    };
    for (backend, cfg) in [("hbm", SystemConfig::default()), ("lp5x", lp5x)] {
        let pim = |ff: bool, batching: bool| {
            let mut r = Runner::new(cfg.clone(), PolicyKind::FrFcfs);
            r.max_gpu_cycles = BUDGET;
            r.fast_forward = ff;
            r.ack_batching = batching;
            r.standalone(
                Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
                0,
                true,
            )
            .expect("finishes")
        };
        let eager = pim(false, false);
        for (ff, batching) in [(false, true), (true, true), (true, false)] {
            let ctx = format!("pim/{backend}/ff={ff}/batching={batching}");
            let got = pim(ff, batching);
            assert_eq!(got.cycles, eager.cycles, "{ctx}: total cycles");
            assert_eq!(
                got.icnt_injections, eager.icnt_injections,
                "{ctx}: injections"
            );
            assert_mc_identical(&got.mc, &eager.mc, &ctx);
        }

        // Co-execution: MEM traffic voids deferral on its partitions and
        // ejects trigger mid-window catch-up on the PIM side — the
        // batched path's replay machinery under maximum churn.
        let co = |ff: bool, batching: bool| {
            let mut r = Runner::new(cfg.clone(), PolicyKind::f3fs_competitive());
            r.max_gpu_cycles = BUDGET;
            r.fast_forward = ff;
            r.ack_batching = batching;
            r.coexec(
                Box::new(gpu_kernel(GpuBenchmark(8), 16, SCALE)),
                Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
                true,
            )
        };
        let eager = co(false, false);
        for (ff, batching) in [(false, true), (true, true), (true, false)] {
            let ctx = format!("coexec/{backend}/ff={ff}/batching={batching}");
            let got = co(ff, batching);
            assert_eq!(got.gpu_first_run, eager.gpu_first_run, "{ctx}: gpu first");
            assert_eq!(got.pim_first_run, eager.pim_first_run, "{ctx}: pim first");
            assert_eq!(got.total_cycles, eager.total_cycles, "{ctx}: total cycles");
            assert_mc_identical(&got.mc, &eager.mc, &ctx);
        }
    }
}

/// Oracle property for timestamped eject batching (DESIGN.md §4l): with
/// batching on (the default) whole request-crossbar arbitration cycles
/// are deferred while every buffered flit is PIM with provable
/// destination credit, then replayed at the next flush into the
/// partitions' staged-ingress schedules; with it off every arbitration
/// cycle runs eagerly and ejects through the per-eject catch-up path
/// (the eager oracle). Every observable — total cycles, injections,
/// merged controller stats — must be bit-identical across the two
/// modes, on both DRAM backends, in both fast-forward modes, and with
/// ack batching both on (the §4k/§4l composition that ships) and off
/// (eject batching alone, every memory cycle stepped live through the
/// flush-before-step path).
#[test]
fn eject_batching_matches_per_tick_oracle() {
    let lp5x = {
        let kind = pim_coscheduling::dram::backend::parse_spec("lp5x:ranks=4")
            .expect("registered backend");
        pim_coscheduling::dram::backend::system_config(kind)
    };
    for (backend, cfg) in [("hbm", SystemConfig::default()), ("lp5x", lp5x)] {
        let pim = |ff: bool, acks: bool, ejects: bool| {
            let mut r = Runner::new(cfg.clone(), PolicyKind::FrFcfs);
            r.max_gpu_cycles = BUDGET;
            r.fast_forward = ff;
            r.ack_batching = acks;
            r.eject_batching = ejects;
            r.standalone(
                Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
                0,
                true,
            )
            .expect("finishes")
        };
        let eager = pim(false, false, false);
        for ff in [false, true] {
            for acks in [false, true] {
                let ctx = format!("pim/{backend}/ff={ff}/acks={acks}/ejects=true");
                let got = pim(ff, acks, true);
                assert_eq!(got.cycles, eager.cycles, "{ctx}: total cycles");
                assert_eq!(
                    got.icnt_injections, eager.icnt_injections,
                    "{ctx}: injections"
                );
                assert_mc_identical(&got.mc, &eager.mc, &ctx);
            }
        }

        // Co-execution: MEM flits force per-cycle fallbacks mid-stream,
        // and ejects land on partitions whose deferred spans are replayed
        // around the staged arrivals — the flush ordering under maximum
        // churn.
        let co = |ff: bool, acks: bool, ejects: bool| {
            let mut r = Runner::new(cfg.clone(), PolicyKind::f3fs_competitive());
            r.max_gpu_cycles = BUDGET;
            r.fast_forward = ff;
            r.ack_batching = acks;
            r.eject_batching = ejects;
            r.coexec(
                Box::new(gpu_kernel(GpuBenchmark(8), 16, SCALE)),
                Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
                true,
            )
        };
        let eager = co(false, false, false);
        for ff in [false, true] {
            for acks in [false, true] {
                let ctx = format!("coexec/{backend}/ff={ff}/acks={acks}/ejects=true");
                let got = co(ff, acks, true);
                assert_eq!(got.gpu_first_run, eager.gpu_first_run, "{ctx}: gpu first");
                assert_eq!(got.pim_first_run, eager.pim_first_run, "{ctx}: pim first");
                assert_eq!(got.total_cycles, eager.total_cycles, "{ctx}: total cycles");
                assert_mc_identical(&got.mc, &eager.mc, &ctx);
            }
        }
    }
}

#[test]
fn determinism_holds_through_parallel_map() {
    // The same configuration dispatched twice through the sweep machinery
    // (worker threads claim work in nondeterministic order) must produce
    // identical outcomes, fast-forward on or off.
    let jobs: Vec<bool> = vec![true, false, true, false];
    let outcomes = parallel_map(jobs, |ff| {
        let out = runner(PolicyKind::f3fs_competitive(), VcMode::SplitPim, ff).coexec(
            Box::new(gpu_kernel(GpuBenchmark(5), 16, SCALE)),
            Box::new(pim_kernel(PimBenchmark(3), 32, 4, 256, SCALE)),
            true,
        );
        (out.gpu_first_run, out.pim_first_run, out.total_cycles)
    });
    assert_eq!(outcomes[0], outcomes[1], "ff-on vs ff-off through sweep");
    assert_eq!(outcomes[0], outcomes[2], "ff-on repeat");
    assert_eq!(outcomes[1], outcomes[3], "ff-off repeat");
}
