//! Cross-crate integration tests: request conservation, starvation
//! freedom, ordering, determinism, and the paper's directional claims,
//! exercised through the full simulator stack.

use pim_coscheduling::prelude::*;
use pim_coscheduling::sim::Simulator;
use pim_coscheduling::workloads::{gpu_kernel, pim_kernel};

const SCALE: f64 = 0.03;
const BUDGET: u64 = 6_000_000;

fn runner(policy: PolicyKind, vc: VcMode) -> pim_coscheduling::sim::Runner {
    let mut system = SystemConfig::default();
    system.noc.vc_mode = vc;
    let mut r = pim_coscheduling::sim::Runner::new(system, policy);
    r.max_gpu_cycles = BUDGET;
    r
}

#[test]
fn request_conservation_standalone_gpu() {
    // Every injected request is eventually serviced exactly once: DRAM
    // arrivals equal DRAM services, and the kernel completes.
    let r = runner(PolicyKind::FrFcfs, VcMode::Shared);
    let out = r
        .standalone(Box::new(gpu_kernel(GpuBenchmark(3), 40, SCALE)), 0, false)
        .expect("finishes");
    assert_eq!(
        out.mc.mem_arrivals, out.mc.mem_served,
        "no request lost or duplicated"
    );
    assert_eq!(out.mc.pim_arrivals, 0);
}

#[test]
fn request_conservation_standalone_pim() {
    let r = runner(PolicyKind::FrFcfs, VcMode::Shared);
    let k = pim_kernel(PimBenchmark(3), 32, 4, 256, SCALE);
    let total = pim_coscheduling::gpu::KernelModel::total_requests(&k);
    let out = r.standalone(Box::new(k), 0, true).expect("finishes");
    assert_eq!(out.mc.pim_arrivals, total);
    assert_eq!(out.mc.pim_served, total);
    assert_eq!(
        out.mc.mem_arrivals, 0,
        "PIM must bypass the L2 and never read DRAM as MEM"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow under debug: run with --release")]
fn every_policy_completes_coexecution_under_vc2() {
    // Starvation freedom under VC2 for the fair policies; the pathological
    // ones (MEM-First / PIM-First / G&I) are allowed to starve one side
    // but must still service the favored kernel.
    for policy in PolicyKind::all() {
        let r = runner(policy, VcMode::SplitPim);
        let out = r.coexec(
            Box::new(gpu_kernel(GpuBenchmark(5), 72, SCALE)),
            Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
            true,
        );
        let fair = !matches!(
            policy,
            PolicyKind::MemFirst | PolicyKind::PimFirst | PolicyKind::GatherIssue { .. }
        );
        if fair {
            assert!(
                !out.gpu_starved && !out.pim_starved,
                "{policy} starved a kernel under VC2"
            );
        } else {
            assert!(
                !out.gpu_starved || !out.pim_starved,
                "{policy} starved both kernels"
            );
        }
        assert!(out.mc.mem_served > 0 || out.mc.pim_served > 0);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow under debug: run with --release")]
fn f3fs_is_starvation_free_in_both_vc_configs() {
    for vc in [VcMode::Shared, VcMode::SplitPim] {
        let r = runner(PolicyKind::f3fs_competitive(), vc);
        let out = r.coexec(
            Box::new(gpu_kernel(GpuBenchmark(15), 72, SCALE)),
            Box::new(pim_kernel(PimBenchmark(4), 32, 4, 256, SCALE)),
            true,
        );
        assert!(
            !out.gpu_starved,
            "F3FS must not starve the GPU kernel ({vc})"
        );
        assert!(
            !out.pim_starved,
            "F3FS must not starve the PIM kernel ({vc})"
        );
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow under debug: run with --release")]
fn determinism_across_runs_and_policies() {
    for policy in [PolicyKind::FrRrFcfs, PolicyKind::f3fs_competitive()] {
        let run = || {
            let r = runner(policy, VcMode::SplitPim);
            r.coexec(
                Box::new(gpu_kernel(GpuBenchmark(9), 72, SCALE)),
                Box::new(pim_kernel(PimBenchmark(5), 32, 4, 256, SCALE)),
                true,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.gpu_first_run, b.gpu_first_run, "{policy}");
        assert_eq!(a.pim_first_run, b.pim_first_run, "{policy}");
        assert_eq!(a.mc.switches, b.mc.switches, "{policy}");
        assert_eq!(a.mc.mem_row_hits, b.mc.mem_row_hits, "{policy}");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow under debug: run with --release")]
fn pim_first_starves_gpu_and_mem_first_hurts_pim() {
    // Directional claims from Section VI-A.
    let r = runner(PolicyKind::PimFirst, VcMode::Shared);
    let out = r.coexec(
        Box::new(gpu_kernel(GpuBenchmark(2), 72, SCALE)),
        Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
        true,
    );
    assert!(
        out.gpu_starved,
        "PIM-First must deny service to the GPU kernel"
    );

    let r = runner(PolicyKind::MemFirst, VcMode::SplitPim);
    let out2 = r.coexec(
        Box::new(gpu_kernel(GpuBenchmark(2), 72, SCALE)),
        Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
        true,
    );
    assert!(
        out2.pim_first_run > out.pim_first_run,
        "MEM-First must slow PIM down relative to PIM-First"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow under debug: run with --release")]
fn f3fs_switches_less_than_fr_rr_fcfs() {
    // Section VII-B: F3FS improves throughput by switching less often.
    let pair = |policy| {
        let r = runner(policy, VcMode::Shared);
        r.coexec(
            Box::new(gpu_kernel(GpuBenchmark(11), 72, SCALE)),
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            true,
        )
        .mc
        .switches
    };
    let f3fs = pair(PolicyKind::f3fs_competitive());
    let frrr = pair(PolicyKind::FrRrFcfs);
    assert!(
        f3fs < frrr,
        "F3FS ({f3fs} switches) must switch less than FR-RR-FCFS ({frrr})"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow under debug: run with --release")]
fn vc2_improves_mem_first_arrival_rate() {
    // The Figure 6 headline: MEM-First benefits most from the PIM VC.
    let rate = |vc| {
        let r = runner(PolicyKind::MemFirst, vc);
        r.coexec(
            Box::new(gpu_kernel(GpuBenchmark(8), 72, SCALE * 3.0)),
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE * 3.0)),
            true,
        )
        .mem_arrival_rate()
    };
    let vc1 = rate(VcMode::Shared);
    let vc2 = rate(VcMode::SplitPim);
    assert!(
        vc2 > vc1 * 1.2,
        "VC2 must improve MEM-First's MEM arrival rate (vc1 {vc1:.1}, vc2 {vc2:.1})"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "slow under debug: run with --release")]
fn mode_switch_accounting_is_consistent() {
    let r = runner(PolicyKind::Fcfs, VcMode::Shared);
    let out = r.coexec(
        Box::new(gpu_kernel(GpuBenchmark(16), 72, SCALE)),
        Box::new(pim_kernel(PimBenchmark(6), 32, 4, 256, SCALE)),
        true,
    );
    let s = &out.mc;
    assert!(s.switches >= s.switches_mem_to_pim);
    assert!(
        s.switches_mem_to_pim * 2 + 64 >= s.switches,
        "MEM->PIM and PIM->MEM switches must alternate per channel"
    );
    assert!(s.mem_row_hits + s.mem_row_misses == s.mem_served);
    assert!(s.pim_row_hits + s.pim_row_misses == s.pim_served);
}

#[test]
fn gpu_on_more_sms_is_not_slower() {
    // Sanity of the SM partitioning: the same kernel standalone on 80 SMs
    // must not run slower than on 8 SMs.
    let r = runner(PolicyKind::FrFcfs, VcMode::Shared);
    let t80 = r
        .standalone(Box::new(gpu_kernel(GpuBenchmark(13), 80, SCALE)), 0, false)
        .expect("finishes")
        .cycles;
    let t8 = r
        .standalone(Box::new(gpu_kernel(GpuBenchmark(13), 8, SCALE)), 0, false)
        .expect("finishes")
        .cycles;
    assert!(t80 <= t8, "80 SMs ({t80}) slower than 8 SMs ({t8})");
}

#[test]
fn simulator_rejects_overlapping_sm_assignment() {
    let mut sim = Simulator::new(SystemConfig::default(), PolicyKind::FrFcfs);
    sim.mount(
        Box::new(gpu_kernel(GpuBenchmark(1), 8, SCALE)),
        (0..8).collect(),
        false,
        false,
    );
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.mount(
            Box::new(gpu_kernel(GpuBenchmark(2), 8, SCALE)),
            (4..12).collect(),
            false,
            false,
        )
    }));
    assert!(result.is_err(), "overlapping SMs must be rejected");
}
