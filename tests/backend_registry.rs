//! Round-trips every entry of the DRAM backend registry through the
//! layers that consume it — the registry itself (name ↔ kind ↔ system
//! config), the CLI front-end, and the runner — and pins the error-path
//! parity with the policy registry: both registries speak the same
//! descriptive `ParseError` dialect, so a user who has read one spec
//! grammar can debug the other.

use pim_coscheduling::core::policy::registry as policy_registry;
use pim_coscheduling::dram::backend;
use pim_coscheduling::types::DramBackendKind;

#[test]
fn every_registered_backend_round_trips_name_kind_and_config() {
    let descriptors = backend::descriptors();
    assert!(descriptors.len() >= 2, "registry lost entries");
    for d in descriptors {
        let kind = d.default_kind();
        // name → kind → name.
        assert_eq!(backend::parse_spec(d.name).unwrap(), kind, "{}", d.name);
        assert_eq!(backend::canonical_name(kind), d.name);
        for alias in d.aliases {
            assert_eq!(backend::parse_spec(alias).unwrap(), kind, "{alias}");
        }
        // kind → system config; the result must be a valid system whose
        // stamp round-trips back to the kind.
        let cfg = backend::system_config(kind);
        cfg.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        assert_eq!(cfg.dram_backend, kind, "{}", d.name);
        // Every advertised parameter is actually tunable with some legal
        // value, and an arbitrary other key is rejected.
        for p in d.params {
            let tuned = backend::apply_param(kind, p.key, 1).unwrap_or_else(|e| {
                panic!("{}: advertised param '{}' rejected: {e}", d.name, p.key)
            });
            assert_eq!(
                backend::canonical_name(tuned),
                d.name,
                "tuning changed backend"
            );
        }
        assert!(
            backend::apply_param(kind, "no-such-key", 1).is_err(),
            "{}",
            d.name
        );
    }
}

#[test]
fn cli_accepts_every_registered_backend_name() {
    for d in backend::descriptors() {
        for name in std::iter::once(&d.name).chain(d.aliases) {
            let args: Vec<String> = ["standalone", "--pim", "P1", "--dram", name]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let cmd = pimsim_cli::parse_args(&args)
                .unwrap_or_else(|e| panic!("CLI rejected registered backend '{name}': {e}"));
            let pimsim_cli::Command::Standalone(opts) = cmd else {
                panic!("wrong subcommand for '{name}'")
            };
            assert_eq!(opts.dram, d.default_kind(), "{name}");
        }
    }
}

/// The two registries' parse errors use the same phrasings for the same
/// failure classes. A change to either message style must be made in both
/// or this test points at the drift.
#[test]
fn backend_errors_match_policy_registry_dialect() {
    // Unknown name: "unknown <noun> '<name>' (known: ...)".
    let b = backend::parse_spec("no-such-backend").unwrap_err().0;
    let p = policy_registry::parse_spec("no-such-policy").unwrap_err().0;
    assert_eq!(b, "unknown backend 'no-such-backend' (known: hbm, lp5x)");
    assert!(
        p.starts_with("unknown policy 'no-such-policy' (known: "),
        "policy dialect changed: {p}"
    );

    // Malformed pair: "<name>: expected 'key=value', got '<pair>'".
    let b = backend::parse_spec("lp5x:ranks").unwrap_err().0;
    let p = policy_registry::parse_spec("f3fs:mem-cap").unwrap_err().0;
    assert_eq!(b, "lp5x: expected 'key=value', got 'ranks'");
    assert_eq!(p, "f3fs: expected 'key=value', got 'mem-cap'");

    // Non-integer value: "<name>: parameter '<key>' needs an unsigned
    // integer, got '<value>'".
    let b = backend::parse_spec("lp5x:ranks=banana").unwrap_err().0;
    let p = policy_registry::parse_spec("f3fs:mem-cap=banana")
        .unwrap_err()
        .0;
    assert_eq!(
        b,
        "lp5x: parameter 'ranks' needs an unsigned integer, got 'banana'"
    );
    assert_eq!(
        p,
        "f3fs: parameter 'mem-cap' needs an unsigned integer, got 'banana'"
    );

    // Out-of-domain value: "<name>: value <v> out of range for '<key>' ...".
    let b = backend::parse_spec("lp5x:ranks=3").unwrap_err().0;
    assert!(
        b.starts_with("lp5x: value 3 out of range for 'ranks'"),
        "backend dialect changed: {b}"
    );
    let b = backend::parse_spec("lp5x:ranks=16").unwrap_err().0;
    assert!(
        b.starts_with("lp5x: value 16 out of range for 'ranks'"),
        "backend dialect changed: {b}"
    );
    let p = policy_registry::parse_spec("fr-fcfs-cap:cap=99999999999")
        .unwrap_err()
        .0;
    assert!(
        p.contains("out of range for 'cap'"),
        "policy dialect changed: {p}"
    );

    // Parameter on a backend without tunables: "<noun> '<name>' has no
    // tunable parameters (got '<key>')".
    let b = backend::parse_spec("hbm:ranks=4").unwrap_err().0;
    assert_eq!(b, "backend 'hbm' has no tunable parameters (got 'ranks')");
    // Unknown key on a backend with tunables: "... has no tunable
    // parameter '<key>' (accepts: ...)".
    let b = backend::parse_spec("lp5x:banks=32").unwrap_err().0;
    assert_eq!(
        b,
        "backend 'lp5x' has no tunable parameter 'banks' (accepts: ranks)"
    );
    let p = policy_registry::parse_spec("f3fs:banks=32").unwrap_err().0;
    assert!(
        p.starts_with("policy 'f3fs' has no tunable parameter 'banks' (accepts: "),
        "policy dialect changed: {p}"
    );
}

#[test]
fn rank_spellings_round_trip_through_spec_strings() {
    for ranks in [1usize, 2, 4, 8] {
        let spec = format!("lp5x:ranks={ranks}");
        let kind = backend::parse_spec(&spec).unwrap();
        assert_eq!(kind, DramBackendKind::Lp5x { ranks });
        let cfg = backend::system_config(kind);
        assert_eq!(cfg.dram.channels, 8 * ranks, "{spec}");
    }
}
