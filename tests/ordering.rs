//! Ordering invariants: the interconnect preserves per-source FIFO order
//! (the property Orderlight + the FCFS PIM queue rely on), and PIM block
//! ordering survives every scheduling policy end-to-end (the PIM engine
//! inside each controller asserts it and would panic otherwise).

use pim_coscheduling::noc::Crossbar;
use pim_coscheduling::prelude::*;
use pim_coscheduling::types::{AppId, PhysAddr, Request, RequestId, RequestKind};
use pim_coscheduling::workloads::{gpu_kernel, pim_kernel};

#[test]
fn crossbar_preserves_per_source_order_to_each_output() {
    // Inject interleaved flows from several sources to several outputs;
    // each (source, output) subsequence must arrive in injection order.
    let mut x = Crossbar::new(4, 2, 64, VcMode::Shared);
    let mut injected: Vec<(u16, usize, u64)> = Vec::new();
    let mut id = 0u64;
    for round in 0..10 {
        for src in 0..4u16 {
            let dest = (round + src as usize) % 2;
            let req = Request::new(
                RequestId(id),
                AppId::GPU,
                RequestKind::MemRead,
                PhysAddr(id * 32),
                src,
                0,
            );
            if x.try_inject(0, src as usize, req, dest).is_ok() {
                injected.push((src, dest, id));
            }
            id += 1;
        }
    }
    let mut delivered: Vec<(u16, usize, u64)> = Vec::new();
    for now in 0..1000 {
        if x.total_occupancy() == 0 {
            break;
        }
        x.step(now, |out, _vc, req| {
            delivered.push((req.src_port, out, req.id.0));
            true
        });
    }
    assert_eq!(delivered.len(), injected.len());
    for src in 0..4u16 {
        for dest in 0..2usize {
            let sent: Vec<u64> = injected
                .iter()
                .filter(|&&(s, d, _)| s == src && d == dest)
                .map(|&(_, _, i)| i)
                .collect();
            let got: Vec<u64> = delivered
                .iter()
                .filter(|&&(s, d, _)| s == src && d == dest)
                .map(|&(_, _, i)| i)
                .collect();
            assert_eq!(sent, got, "flow {src}->{dest} reordered");
        }
    }
}

#[test]
fn pim_block_ordering_survives_every_policy() {
    // The controllers' PIM engines panic on any out-of-order block or
    // register-file misuse; running the most switch-happy policies over a
    // multi-phase PIM kernel with a disruptive co-runner exercises the
    // invariant end-to-end (including across mode switches and kernel
    // re-launches).
    for policy in [
        PolicyKind::Fcfs,
        PolicyKind::FrRrFcfs,
        PolicyKind::F3fs {
            mem_cap: 8,
            pim_cap: 8,
        },
    ] {
        for vc in [VcMode::Shared, VcMode::SplitPim] {
            let mut system = SystemConfig::default();
            system.noc.vc_mode = vc;
            let mut r = pim_coscheduling::sim::Runner::new(system, policy);
            r.max_gpu_cycles = 4_000_000;
            let out = r.coexec(
                Box::new(gpu_kernel(GpuBenchmark(6), 72, 0.02)),
                Box::new(pim_kernel(PimBenchmark(6), 32, 4, 256, 0.02)),
                true,
            );
            assert!(out.mc.pim_served > 0, "{policy}/{vc}: no PIM ops serviced");
        }
    }
}
