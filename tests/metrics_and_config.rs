//! Lightweight cross-crate tests of the metric definitions, configuration
//! invariants, and workload catalogs — these run fast in debug builds.

use pim_coscheduling::core::policy::PolicyKind;
use pim_coscheduling::gpu::KernelModel;
use pim_coscheduling::stats::metrics::{fairness_index, system_throughput, CoexecMetrics};
use pim_coscheduling::types::{AddressMapConfig, DramTiming, SystemConfig, VcMode};
use pim_coscheduling::workloads::{
    gpu_kernel, pim_kernel,
    pim_suite::{pim_kernel_spec, PimBenchmark},
    rodinia::{figure13_picks, gpu_kernel_params, memory_intensive_picks, GpuBenchmark},
    stream_triad_spec,
};

#[test]
fn fairness_index_matches_paper_equation() {
    // FI = min(s_pim/s_mem, s_mem/s_pim), Equation 1.
    for (a, b) in [(0.25, 0.5), (1.0, 1.0), (0.9, 0.3)] {
        let fi = fairness_index(a, b);
        assert!((fi - (a / b).min(b / a)).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&fi));
    }
    assert_eq!(system_throughput(0.4, 0.9), 1.3);
}

#[test]
fn coexec_metrics_compose() {
    let m = CoexecMetrics {
        mem_speedup: 0.5,
        pim_speedup: 0.8,
    };
    assert!((m.fairness_index() - 0.625).abs() < 1e-12);
    assert!((m.system_throughput() - 1.3).abs() < 1e-12);
}

#[test]
fn table1_configuration_is_self_consistent() {
    let cfg = SystemConfig::default();
    cfg.validate().expect("Table I defaults validate");
    // 32 channels x 16 banks, 6 MB L2, 64-entry MC queues, 512-entry NoC.
    assert_eq!(cfg.dram.channels, 32);
    assert_eq!(cfg.dram.banks, 16);
    assert_eq!(cfg.cache.total_bytes, 6 * 1024 * 1024);
    assert_eq!(cfg.mc.mem_q_entries, 64);
    assert_eq!(cfg.noc.input_queue_entries, 512);
    // PIM shape: 8 FUs/channel sharing 16 banks pairwise, 16 RF entries.
    assert_eq!(cfg.dram.pim_fus_per_channel, 8);
    assert_eq!(cfg.dram.pim_rf_entries, 16);
    // The fidelity extensions must be OFF by default (Table I parity).
    assert_eq!(cfg.timing.t_faw, 0);
    assert_eq!(cfg.timing.t_refi, 0);
    assert_eq!(cfg.noc.islip_iterations, 1);
}

#[test]
fn fidelity_timing_extensions_validate() {
    let cfg = SystemConfig {
        timing: DramTiming::with_fidelity_extensions(),
        ..Default::default()
    };
    cfg.validate().unwrap();
    assert!(cfg.timing.t_faw > 0 && cfg.timing.t_refi > 0);
}

#[test]
fn config_validation_rejects_bad_islip_and_vc_combos() {
    let mut cfg = SystemConfig::default();
    cfg.noc.islip_iterations = 0;
    assert!(cfg.validate().is_err());

    let mut cfg = SystemConfig::default();
    cfg.noc.vc_mode = VcMode::SplitPim;
    cfg.noc.input_queue_entries = 1; // cannot cover two VCs
    assert!(cfg.validate().is_err());
}

#[test]
fn ipoly_mapping_validates_and_differs_from_table1() {
    let cfg = SystemConfig {
        addr_map: AddressMapConfig::IPolyHash,
        ..Default::default()
    };
    cfg.validate().unwrap();
    assert_ne!(cfg.addr_map, AddressMapConfig::table1());
}

#[test]
fn workload_catalogs_cover_the_paper_tables() {
    // Table II: 20 GPU kernels with unique names; Table III: 9 PIM kernels.
    assert_eq!(GpuBenchmark::all().len(), 20);
    assert_eq!(PimBenchmark::all().len(), 9);
    let picks = memory_intensive_picks();
    assert!(picks.contains(&GpuBenchmark(4)) && picks.contains(&GpuBenchmark(15)));
    let f13 = figure13_picks();
    assert_eq!(
        f13[0],
        GpuBenchmark(10),
        "G10 is the compute-intensive pick"
    );
}

#[test]
fn all_workloads_build_at_multiple_scales() {
    for scale in [0.05, 0.5, 2.0] {
        for b in GpuBenchmark::all() {
            let k = gpu_kernel(b, 16, scale);
            assert!(k.total_requests() > 0, "{b} at scale {scale}");
        }
        for b in PimBenchmark::all() {
            let k = pim_kernel(b, 32, 4, 64, scale);
            assert!(k.total_requests() > 0, "{b} at scale {scale}");
        }
    }
}

#[test]
fn pim_blocks_are_rf_multiples() {
    // Section II-B: block sizes are multiples of the RF size.
    for b in PimBenchmark::all() {
        let s = pim_kernel_spec(b, 32, 1.0);
        assert_eq!(
            s.ops_per_block % u32::from(s.rf_entries_per_bank),
            0,
            "{b}: block {} not a multiple of RF {}",
            s.ops_per_block,
            s.rf_entries_per_bank
        );
    }
    let triad = stream_triad_spec(32, 1.0);
    assert_eq!(
        triad.ops_per_block % u32::from(triad.rf_entries_per_bank),
        0
    );
}

#[test]
fn policy_catalog_matches_the_paper() {
    let all = PolicyKind::all();
    assert_eq!(all.len(), 9, "eight baselines + F3FS");
    let labels: Vec<&str> = all.iter().map(|p| p.label()).collect();
    for expected in [
        "FCFS",
        "MEM-First",
        "PIM-First",
        "FR-FCFS",
        "FR-FCFS-Cap",
        "BLISS",
        "FR-RR-FCFS",
        "G&I",
        "F3FS",
    ] {
        assert!(labels.contains(&expected), "missing {expected}");
    }
}

#[test]
fn gpu_kernel_params_respect_figure4_extremes() {
    // Re-assert the calibration invariants at the facade level.
    let g4 = gpu_kernel_params(GpuBenchmark(4), 1.0);
    let g10 = gpu_kernel_params(GpuBenchmark(10), 1.0);
    let g15 = gpu_kernel_params(GpuBenchmark(15), 1.0);
    let g17 = gpu_kernel_params(GpuBenchmark(17), 1.0);
    assert!(
        g4.issue_interval < g10.issue_interval,
        "G4 intense, G10 compute"
    );
    assert!(g15.l2_reuse < 0.1, "nn streams with no reuse");
    assert!(g17.row_locality > 0.9, "pathfinder peak RBHR");
}
