//! Round-trips every entry of the policy registry through the layers that
//! consume it: the registry itself (name ↔ kind), the policy builder
//! (kind → `SchedulePolicy` instance), the CLI front-end, and the
//! spec-based `Runner` constructor. A policy added to the registry is
//! immediately reachable from every front-end or these tests fail.

use pim_coscheduling::core::policy::registry;
use pim_coscheduling::core::policy::PolicyKind;

#[test]
fn every_registered_policy_round_trips_name_kind_and_builder() {
    let descriptors = registry::descriptors();
    assert!(descriptors.len() >= 9, "registry lost entries");
    for d in descriptors {
        let kind = d.default_kind();
        // name → kind → name.
        assert_eq!(registry::parse_spec(d.name).unwrap(), kind, "{}", d.name);
        assert_eq!(kind.canonical_name(), d.name);
        for alias in d.aliases {
            assert_eq!(registry::parse_spec(alias).unwrap(), kind, "{alias}");
        }
        // kind → built policy instance; the instance's short name matches
        // the kind's paper label, so tables and the registry agree.
        let built = kind.build();
        assert_eq!(built.name(), kind.label(), "{}", d.name);
        // Every advertised parameter is actually tunable, and an arbitrary
        // other key is rejected.
        for p in d.params {
            let tuned = kind.apply_param(p.key, 1).unwrap_or_else(|e| {
                panic!("{}: advertised param '{}' rejected: {e}", d.name, p.key)
            });
            assert_eq!(tuned.canonical_name(), d.name, "tuning changed policy");
        }
        assert!(kind.apply_param("no-such-key", 1).is_err(), "{}", d.name);
    }
}

#[test]
fn registered_names_are_unambiguous() {
    let mut seen: Vec<String> = Vec::new();
    for d in registry::descriptors() {
        for name in std::iter::once(&d.name).chain(d.aliases) {
            let lower = name.to_ascii_lowercase();
            assert!(!seen.contains(&lower), "duplicate spelling '{name}'");
            seen.push(lower);
        }
    }
}

#[test]
fn cli_accepts_every_registered_policy_name() {
    for d in registry::descriptors() {
        for name in std::iter::once(&d.name).chain(d.aliases) {
            let args: Vec<String> = ["collab", "--policy", name]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let cmd = pimsim_cli::parse_args(&args)
                .unwrap_or_else(|e| panic!("CLI rejected registered policy '{name}': {e}"));
            let pimsim_cli::Command::Collab(opts) = cmd else {
                panic!("wrong subcommand for '{name}'")
            };
            assert_eq!(opts.policy, d.default_kind(), "{name}");
        }
    }
}

#[test]
fn runner_from_spec_matches_registry_defaults() {
    for d in registry::descriptors() {
        let r = pim_coscheduling::sim::Runner::from_spec(
            pim_coscheduling::types::SystemConfig::default(),
            d.name,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", d.name));
        assert_eq!(r.policy, d.default_kind());
    }
    assert_eq!(
        PolicyKind::parse_spec("f3fs:mem-cap=64,pim-cap=16").unwrap(),
        PolicyKind::F3fs {
            mem_cap: 64,
            pim_cap: 16
        }
    );
}
