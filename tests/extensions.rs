//! Integration tests for the extension features: SMS-lite end-to-end,
//! closed-page policy, the FFT scenario, trace replay through the full
//! simulator, and energy accounting.

use pim_coscheduling::dram::EnergyConfig;
use pim_coscheduling::gpu::{KernelModel, TraceKernel, TraceRecorder};
use pim_coscheduling::prelude::*;
use pim_coscheduling::sim::Simulator;
use pim_coscheduling::types::{PagePolicy, RequestId};
use pim_coscheduling::workloads::{fft_scenario, gpu_kernel, pim_kernel};

const SCALE: f64 = 0.02;

fn runner(policy: PolicyKind) -> pim_coscheduling::sim::Runner {
    let mut r = pim_coscheduling::sim::Runner::new(SystemConfig::default(), policy);
    r.max_gpu_cycles = 4_000_000;
    r
}

#[test]
fn sms_services_both_sides_end_to_end() {
    let r = runner(PolicyKind::Sms {
        batch_cap: 16,
        sjf_percent: 90,
    });
    let out = r.coexec(
        Box::new(gpu_kernel(GpuBenchmark(8), 72, SCALE)),
        Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
        true,
    );
    assert!(
        !out.gpu_starved && !out.pim_starved,
        "SMS batches must rotate"
    );
    assert!(out.mc.mem_served > 0 && out.mc.pim_served > 0);
}

#[test]
fn sms_switches_more_than_f3fs() {
    let switches = |policy| {
        runner(policy)
            .coexec(
                Box::new(gpu_kernel(GpuBenchmark(8), 72, SCALE)),
                Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
                true,
            )
            .mc
            .switches
    };
    let sms = switches(PolicyKind::Sms {
        batch_cap: 16,
        sjf_percent: 90,
    });
    let f3fs = switches(PolicyKind::f3fs_competitive());
    assert!(
        sms > f3fs,
        "batch boundaries are mode switches: SMS {sms} vs F3FS {f3fs}"
    );
}

#[test]
fn closed_page_lowers_mem_rbhr_end_to_end() {
    let run = |page: PagePolicy| {
        let mut system = SystemConfig::default();
        system.mc.page_policy = page;
        let mut r = pim_coscheduling::sim::Runner::new(system, PolicyKind::FrFcfs);
        r.max_gpu_cycles = 4_000_000;
        r.standalone(Box::new(gpu_kernel(GpuBenchmark(17), 40, SCALE)), 0, false)
            .expect("finishes")
    };
    let open = run(PagePolicy::Open);
    let closed = run(PagePolicy::Closed);
    let open_rbhr = open.mc.mem_rbhr().unwrap_or(0.0);
    let closed_rbhr = closed.mc.mem_rbhr().unwrap_or(0.0);
    assert!(
        closed_rbhr < open_rbhr * 0.5,
        "auto-precharge must kill pathfinder's row hits ({open_rbhr:.2} -> {closed_rbhr:.2})"
    );
    // The requests all still complete.
    assert_eq!(closed.mc.mem_arrivals, closed.mc.mem_served);
}

#[test]
fn fft_scenario_runs_and_pim_is_critical_path() {
    let r = runner(PolicyKind::FrFcfs);
    let s = fft_scenario(72, 32, 4, 256, 0.05);
    let gpu_alone = r
        .standalone(Box::new(s.transpose), 8, false)
        .expect("transpose")
        .cycles;
    let s = fft_scenario(72, 32, 4, 256, 0.05);
    let pim_alone = r
        .standalone(Box::new(s.butterflies), 0, true)
        .expect("butterflies")
        .cycles;
    assert!(
        pim_alone > gpu_alone,
        "FFT's premise: PIM is the longer stage ({pim_alone} vs {gpu_alone})"
    );
    let s = fft_scenario(72, 32, 4, 256, 0.05);
    let out = r
        .collaborative(Box::new(s.transpose), Box::new(s.butterflies))
        .expect("collab");
    let speedup = out.speedup(gpu_alone, pim_alone);
    assert!(speedup > 0.8, "overlap must not be pathological: {speedup}");
}

#[test]
fn trace_replay_matches_synthetic_run_through_full_simulator() {
    // Capture the synthetic kernel's trace by driving the recorder at full
    // speed, then replay it inside the simulator and compare against the
    // synthetic original under identical conditions.
    let sms = 16;
    let mut rec = TraceRecorder::new(Box::new(gpu_kernel(GpuBenchmark(13), sms, SCALE)));
    let mut id = 0u64;
    for now in 0..100_000u64 {
        for slot in 0..sms {
            if rec.try_issue(slot, now, RequestId(id)).is_some() {
                rec.on_complete(slot, RequestId(id), now);
                id += 1;
            }
        }
        if rec.is_done() {
            break;
        }
    }
    assert!(rec.is_done());
    let records = rec.into_records();

    let run = |model: Box<dyn KernelModel>| {
        let mut sim = Simulator::new(SystemConfig::default(), PolicyKind::FrFcfs);
        let k = sim.mount(model, (0..sms).collect(), false, false);
        sim.run_until_all_first_done(4_000_000).expect("finishes");
        (
            sim.kernels()[k].first_run_cycles.expect("done"),
            sim.merged_mc_stats().mem_arrivals,
        )
    };
    let (replay_cycles, replay_arrivals) = run(Box::new(TraceKernel::new("replay", sms, records)));
    let (synth_cycles, synth_arrivals) = run(Box::new(gpu_kernel(GpuBenchmark(13), sms, SCALE)));
    // The replay paces at recorded (uncontended-generator) cycles, so the
    // address stream and DRAM traffic match exactly; time may differ only
    // through issue-pacing slack.
    assert_eq!(replay_arrivals, synth_arrivals, "identical DRAM traffic");
    let ratio = replay_cycles as f64 / synth_cycles as f64;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "replay time {replay_cycles} wildly off synthetic {synth_cycles}"
    );
}

#[test]
fn energy_accounting_is_consistent_across_policies() {
    // Same workload, two policies: total commands differ only in row
    // management, so dynamic energy stays within a band and I/O energy is
    // identical (same serviced requests).
    let energy = EnergyConfig::default();
    let run = |policy| {
        let mut sim = Simulator::new(SystemConfig::default(), policy);
        sim.mount(
            Box::new(gpu_kernel(GpuBenchmark(9), 40, SCALE)),
            (0..40).collect(),
            false,
            false,
        );
        sim.run_until_all_first_done(4_000_000).expect("finishes");
        sim.total_energy(&energy)
    };
    let a = run(PolicyKind::FrFcfs);
    let b = run(PolicyKind::Fcfs);
    assert!((a.io - b.io).abs() < 1e-6, "same requests, same I/O energy");
    assert!(
        a.row <= b.row,
        "FR-FCFS must not need more activates than FCFS"
    );
}
