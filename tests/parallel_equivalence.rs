//! Serial-vs-parallel equivalence matrix: stepping the memory partitions
//! sharded across 2 or 8 worker threads must be bit-identical to the
//! serial path — same total cycles, same merged controller stats —
//! across the golden-fixture workloads and policies.
//!
//! This is the determinism contract of the sharded memory stage
//! (DESIGN.md §4f): partitions are shared-nothing within a cycle and
//! internal request IDs are minted from per-partition lanes, so thread
//! count, scheduling order, and pool configuration must be unobservable.
//!
//! The full matrix runs in release only (like `golden_pipeline`); a
//! single smoke cell still runs in debug builds.

use pim_coscheduling::core::policy::PolicyKind;
use pim_coscheduling::core::McStats;
use pim_coscheduling::sim::Runner;
use pim_coscheduling::types::{SystemConfig, VcMode};
use pim_coscheduling::workloads::{
    gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark,
};

const SCALE: f64 = 0.01;
const BUDGET: u64 = 20_000_000;
const THREADS: [usize; 3] = [1, 2, 8];

fn runner(policy: PolicyKind, vc_mode: VcMode, threads: usize) -> Runner {
    let mut cfg = SystemConfig::default();
    cfg.noc.vc_mode = vc_mode;
    let mut r = Runner::new(cfg, policy);
    r.max_gpu_cycles = BUDGET;
    r.memory_threads = Some(threads);
    r
}

/// Every integer observable of a run, flattened for exact comparison.
fn mc_fields(mc: &McStats) -> Vec<u64> {
    vec![
        mc.mem_arrivals,
        mc.pim_arrivals,
        mc.mem_served,
        mc.pim_served,
        mc.mem_row_hits,
        mc.mem_row_misses,
        mc.pim_row_hits,
        mc.pim_row_misses,
        mc.switches,
        mc.switches_mem_to_pim,
        mc.mem_drain_latency_sum,
        mc.switch_conflicts,
        mc.blp_sum,
        mc.active_cycles,
        mc.mem_q_occupancy_sum,
        mc.pim_q_occupancy_sum,
        mc.cycles,
        mc.cycles_mem_mode,
        mc.cycles_pim_mode,
        mc.cycles_draining,
        mc.mem_latency.count(),
        mc.mem_latency.max(),
        mc.pim_latency.count(),
        mc.pim_latency.max(),
    ]
}

fn solo_mem(policy: PolicyKind, vc: VcMode, threads: usize) -> Vec<u64> {
    let out = runner(policy, vc, threads)
        .standalone(Box::new(gpu_kernel(GpuBenchmark(3), 16, SCALE)), 0, false)
        .expect("solo MEM finishes");
    let mut v = vec![out.cycles, out.icnt_injections];
    v.extend(mc_fields(&out.mc));
    v
}

fn solo_pim(policy: PolicyKind, vc: VcMode, threads: usize) -> Vec<u64> {
    let out = runner(policy, vc, threads)
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            0,
            true,
        )
        .expect("solo PIM finishes");
    let mut v = vec![out.cycles, out.icnt_injections];
    v.extend(mc_fields(&out.mc));
    v
}

fn coexec(policy: PolicyKind, vc: VcMode, threads: usize) -> Vec<u64> {
    let out = runner(policy, vc, threads).coexec(
        Box::new(gpu_kernel(GpuBenchmark(8), 16, SCALE)),
        Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
        true,
    );
    let mut v = vec![
        out.total_cycles,
        out.gpu_first_run,
        out.pim_first_run,
        u64::from(out.gpu_starved),
        u64::from(out.pim_starved),
    ];
    v.extend(mc_fields(&out.mc));
    v
}

fn assert_widths_agree(name: &str, run: impl Fn(usize) -> Vec<u64>) {
    let serial = run(THREADS[0]);
    for &threads in &THREADS[1..] {
        let parallel = run(threads);
        assert_eq!(
            serial, parallel,
            "{name}: threads={threads} diverged from serial"
        );
    }
}

/// One quick cell that runs even in debug builds, so plain `cargo test`
/// exercises the parallel dispatch path end to end.
#[test]
fn coexec_smoke_cell_is_thread_count_independent() {
    assert_widths_agree("smoke/coexec/fr-fcfs/vc1", |threads| {
        coexec(PolicyKind::FrFcfs, VcMode::Shared, threads)
    });
}

#[test]
#[cfg_attr(debug_assertions, ignore = "runs the full matrix; use --release")]
fn parallel_matrix_matches_serial() {
    let policies = [
        ("fr-fcfs", PolicyKind::FrFcfs),
        ("f3fs", PolicyKind::f3fs_competitive()),
        ("mem-first", PolicyKind::MemFirst),
    ];
    for (pname, policy) in policies {
        for (vname, vc) in [("vc1", VcMode::Shared), ("vc2", VcMode::SplitPim)] {
            assert_widths_agree(&format!("{pname}/mem_G3/{vname}"), |t| {
                solo_mem(policy, vc, t)
            });
            assert_widths_agree(&format!("{pname}/pim_P1/{vname}"), |t| {
                solo_pim(policy, vc, t)
            });
            assert_widths_agree(&format!("{pname}/coexec_G8_P2/{vname}"), |t| {
                coexec(policy, vc, t)
            });
        }
    }
}
