//! Property-style tests on the core substrates: the address mapper
//! bijection, DRAM timing legality under arbitrary request streams,
//! crossbar conservation, and policy sanity under arbitrary queue
//! contents. Inputs are drawn from the workspace's deterministic PRNG
//! (`pimsim_types::rng::SplitMix64`), so every case is reproducible from
//! the loop seed printed in an assertion message.

use pim_coscheduling::core::policy::{PolicyKind, PolicyView};
use pim_coscheduling::core::queue::QueuedRequest;
use pim_coscheduling::core::MemoryController;
use pim_coscheduling::dram::{AddressMapper, Channel, DramCommand};
use pim_coscheduling::noc::Crossbar;
use pim_coscheduling::types::rng::SplitMix64;
use pim_coscheduling::types::{
    AddressMapConfig, AppId, DecodedAddr, DramTiming, Mode, PhysAddr, PimCommand, PimOpKind,
    Request, RequestId, RequestKind, SystemConfig, VcMode,
};

fn mapper(ipoly: bool) -> AddressMapper {
    let cfg = SystemConfig::default();
    let map = if ipoly {
        AddressMapConfig::IPolyHash
    } else {
        cfg.addr_map.clone()
    };
    AddressMapper::new(&map, &cfg.dram, cfg.dram_word_bytes())
}

/// decode then encode is the identity on word-aligned addresses (both
/// mapping schemes), i.e. the mapping is a bijection.
#[test]
fn address_mapping_roundtrips() {
    let mut rng = SplitMix64::new(0xA11);
    for case in 0..512 {
        let addr = rng.next_range(1 << 50);
        let ipoly = rng.chance(0.5);
        let m = mapper(ipoly);
        let aligned = addr & !31;
        let d = m.decode(PhysAddr(aligned));
        assert_eq!(
            m.encode(d.channel, d.bank, d.row, d.col).0,
            aligned,
            "case {case}: addr {aligned:#x} ipoly={ipoly}"
        );
    }
}

/// The latency histogram's quantiles are monotone in p and bounded by the
/// observed max, for arbitrary observation streams.
#[test]
fn histogram_quantiles_are_monotone() {
    use pim_coscheduling::stats::Histogram;
    let mut rng = SplitMix64::new(0xB22);
    for case in 0..64 {
        let n = 1 + rng.next_range(299) as usize;
        let mut h = Histogram::new();
        for _ in 0..n {
            h.record(rng.next_range(1_000_000));
        }
        let mut last = 0u64;
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let q = h.quantile(p).expect("nonempty");
            assert!(q >= last, "case {case}: quantiles must be monotone");
            assert!(q <= h.max(), "case {case}: quantile exceeds max");
            last = q;
        }
        assert_eq!(h.count(), n as u64);
    }
}

/// Decoded coordinates always respect the geometry.
#[test]
fn decoded_coordinates_in_range() {
    let cfg = SystemConfig::default();
    let mut rng = SplitMix64::new(0xC33);
    for case in 0..512 {
        let addr = rng.next_range(1 << 50);
        let ipoly = rng.chance(0.5);
        let m = mapper(ipoly);
        let d = m.decode(PhysAddr(addr));
        assert!(
            (d.channel as usize) < cfg.dram.channels,
            "case {case}: channel"
        );
        assert!((d.bank as usize) < cfg.dram.banks, "case {case}: bank");
        assert!(d.col < cfg.dram.cols_per_row, "case {case}: col");
    }
}

/// Issuing any sequence of commands that `can_issue` admits never panics
/// and never leaves a bank in an inconsistent row state.
#[test]
fn dram_legal_sequences_never_panic() {
    let cfg = SystemConfig::default();
    let mut rng = SplitMix64::new(0xD44);
    for _case in 0..64 {
        let mut ch = Channel::new(&cfg.dram, &cfg.timing);
        let mut now = 0u64;
        let len = 1 + rng.next_range(199);
        for _ in 0..len {
            now += 1;
            let op = rng.next_range(6) as u8;
            let bank = rng.next_range(16) as usize;
            let row = rng.next_range(64) as u32;
            let cmd = match op {
                0 => DramCommand::Act { bank, row },
                1 => DramCommand::Pre { bank },
                2 => DramCommand::Read { bank },
                3 => DramCommand::Write { bank },
                4 => DramCommand::PimActAll { row },
                _ => DramCommand::PimOp {
                    writes_row: row.is_multiple_of(2),
                },
            };
            if ch.can_issue(cmd, now) {
                ch.issue(cmd, now);
            }
            // Row state must be a function of Act/Pre only: open_row never
            // reports a row that was never activated.
            for b in 0..ch.num_banks() {
                if let Some(r) = ch.open_row(b) {
                    assert!(r < cfg.dram.rows_per_bank);
                }
            }
        }
    }
}

/// The crossbar neither loses nor duplicates flits, under either VC
/// configuration and with one or two iSlip iterations.
#[test]
fn crossbar_conserves_flits() {
    let mut rng = SplitMix64::new(0xE55);
    for case in 0..64 {
        let vc2 = rng.chance(0.5);
        let iterations = 1 + rng.next_range(2) as usize;
        let mode = if vc2 {
            VcMode::SplitPim
        } else {
            VcMode::Shared
        };
        let mut x = Crossbar::new(8, 4, 64, mode).with_iterations(iterations);
        let mut injected = 0u64;
        let mut delivered = Vec::new();
        let n_routes = 1 + rng.next_range(199);
        for id in 0..n_routes {
            let src = rng.next_range(8) as usize;
            let dest = rng.next_range(4) as usize;
            let req = Request::new(
                RequestId(id),
                AppId::GPU,
                RequestKind::MemRead,
                PhysAddr(id * 32),
                src as u16,
                0,
            );
            if x.try_inject(0, src, req, dest).is_ok() {
                injected += 1;
            }
        }
        for now in 0..10_000 {
            if x.total_occupancy() == 0 {
                break;
            }
            x.step(now, |_, _, r| {
                delivered.push(r.id.0);
                true
            });
        }
        assert_eq!(delivered.len() as u64, injected, "case {case}: lost flits");
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            delivered.len(),
            "case {case}: duplicate delivery"
        );
    }
}

/// Policies always answer `desired_mode` with a servable mode: if the
/// chosen mode's queue is empty, the other queue must be too.
#[test]
fn policies_never_select_an_empty_mode() {
    let mut rng = SplitMix64::new(0xF66);
    for case in 0..128 {
        let n_mem = rng.next_range(8) as usize;
        let n_pim = rng.next_range(8) as usize;
        let mem_mode = rng.chance(0.5);
        let mem: Vec<QueuedRequest> = (0..n_mem)
            .map(|i| {
                let age = rng.next_range(1000);
                QueuedRequest {
                    req: Request::new(
                        RequestId(age),
                        AppId::GPU,
                        RequestKind::MemRead,
                        PhysAddr(age * 32),
                        0,
                        0,
                    ),
                    decoded: DecodedAddr {
                        channel: 0,
                        bank: (i % 16) as u16,
                        row: age as u32 % 8,
                        col: 0,
                    },
                    age,
                    arrived: 0,
                    opened_row: false,
                }
            })
            .collect();
        let mut pim_ages: Vec<u64> = (0..n_pim).map(|_| rng.next_range(1000)).collect();
        pim_ages.sort_unstable();
        let pim: std::collections::VecDeque<QueuedRequest> = pim_ages
            .iter()
            .map(|&age| QueuedRequest {
                req: Request::new(
                    RequestId(age),
                    AppId::PIM,
                    RequestKind::Pim(PimCommand {
                        op: PimOpKind::RfLoad,
                        channel: 0,
                        row: age as u32 % 8,
                        col: 0,
                        rf_entry: 0,
                        block_start: age % 3 == 0,
                        block_id: age,
                    }),
                    PhysAddr(0),
                    0,
                    0,
                ),
                decoded: DecodedAddr::default(),
                age,
                arrived: 0,
                opened_row: false,
            })
            .collect();
        let open_rows = vec![None; 16];
        for kind in PolicyKind::all() {
            let mut p = kind.build();
            let view = PolicyView {
                now: 0,
                mode: if mem_mode { Mode::Mem } else { Mode::Pim },
                mem: &mem,
                pim: &pim,
                open_rows: &open_rows,
            };
            let desired = p.desired_mode(&view);
            let desired_len = match desired {
                Mode::Mem => mem.len(),
                Mode::Pim => pim.len(),
            };
            let other_len = match desired {
                Mode::Mem => pim.len(),
                Mode::Pim => mem.len(),
            };
            assert!(
                desired_len > 0 || other_len == 0,
                "case {case}: {} picked empty {desired} with the other queue nonempty",
                p.name()
            );
        }
    }
}

/// `Channel::earliest_issue` is exact: with no intervening command, the
/// brute-force per-cycle oracle (`can_issue` scanned cycle by cycle)
/// finds the command illegal at every cycle before the returned one and
/// legal at it; `None` means no cycle in a long window works. Legality
/// is monotone in time for a frozen channel state (every constraint is
/// `t >= constant`), so scanning a bounded window before the predicted
/// cycle is a complete check.
#[test]
fn earliest_issue_matches_brute_force_scan() {
    let hbm = SystemConfig::default();
    let lp5x = pim_coscheduling::dram::backend::system_config(
        pim_coscheduling::dram::backend::parse_spec("lp5x:ranks=4").expect("registered backend"),
    );
    // LP5X must exercise the rolling-window constraints that HBM's Table I
    // preset leaves disabled (`t_faw`/`t_wtr` = 0); if the preset ever
    // regressed to 0 the backend would silently bypass those paths.
    assert!(
        lp5x.timing.t_faw > 0 && lp5x.timing.t_wtr > 0,
        "LP5X preset must enable tFAW/tWTR"
    );
    let variants = [
        ("hbm", hbm.dram.clone(), DramTiming::default()),
        (
            "hbm+faw/wtr",
            hbm.dram.clone(),
            DramTiming {
                t_faw: 20,
                t_wtr: 8,
                ..DramTiming::default()
            },
        ),
        ("lp5x", lp5x.dram.clone(), lp5x.timing.clone()),
    ];
    let mut rng = SplitMix64::new(0x5EED);
    for (v, dram, timing) in variants.iter() {
        for case in 0..32 {
            let mut ch = Channel::new(dram, timing);
            let mut now = 0u64;
            for step in 0..300 {
                let bank = rng.next_range(dram.banks as u64) as usize;
                let row = rng.next_range(8) as u32;
                let cmd = match rng.next_range(9) {
                    0 => DramCommand::Act { bank, row },
                    1 => DramCommand::Pre { bank },
                    2 => DramCommand::Read { bank },
                    3 => DramCommand::Write { bank },
                    4 => DramCommand::ReadAuto { bank },
                    5 => DramCommand::WriteAuto { bank },
                    6 => DramCommand::PimActAll { row },
                    7 => DramCommand::PreAll,
                    _ => DramCommand::PimOp {
                        writes_row: row.is_multiple_of(2),
                    },
                };
                match ch.earliest_issue(cmd, now) {
                    None => {
                        for t in now..now + 64 {
                            assert!(
                                !ch.can_issue(cmd, t),
                                "variant {v} case {case} step {step}: \
                                 earliest_issue({cmd:?}, {now}) = None but legal at {t}"
                            );
                        }
                    }
                    Some(e) => {
                        assert!(
                            e >= now,
                            "variant {v} case {case} step {step}: earliest {e} before now {now}"
                        );
                        for t in now.max(e.saturating_sub(96))..e {
                            assert!(
                                !ch.can_issue(cmd, t),
                                "variant {v} case {case} step {step}: \
                                 {cmd:?} legal at {t}, before predicted earliest {e}"
                            );
                        }
                        assert!(
                            ch.can_issue(cmd, e),
                            "variant {v} case {case} step {step}: \
                             {cmd:?} illegal at its own earliest cycle {e}"
                        );
                        // Sometimes take the command, sometimes let time pass,
                        // so the walk explores varied channel states.
                        if rng.chance(0.7) {
                            ch.issue(cmd, e);
                            now = e + rng.next_range(4);
                        } else {
                            now += rng.next_range(6);
                        }
                    }
                }
            }
        }
    }
}

/// The controller's stall memo is unobservable: a controller with the
/// memo enabled and one forced to take a full step every cycle (the
/// brute-force oracle, via `set_stall_enabled(false)`) accept the same
/// requests, emit the same completions in the same cycles, agree on the
/// idleness probe every cycle, and end with bit-identical stats — for
/// every policy, with and without refresh.
#[test]
fn stall_memo_matches_full_step_oracle() {
    for refresh in [false, true] {
        let mut cfg = SystemConfig::default();
        if refresh {
            cfg.timing.t_refi = 300;
            cfg.timing.t_rfc = 40;
        }
        let m = AddressMapper::new(&cfg.addr_map, &cfg.dram, 32);
        for kind in PolicyKind::all() {
            let mut rng = SplitMix64::new(0x57A11 ^ u64::from(refresh));
            let mut fast = MemoryController::new(&cfg, kind.build());
            let mut oracle = MemoryController::new(&cfg, kind.build());
            oracle.set_stall_enabled(false);
            // Isolate the stall memo: burst retirement has its own oracle
            // test (`burst_retirement_matches_full_step_oracle`).
            fast.set_burst_enabled(false);
            oracle.set_burst_enabled(false);
            let ctx = |now: u64| format!("policy {} refresh {refresh} cycle {now}", kind.label());
            let mut fast_done = Vec::new();
            let mut oracle_done = Vec::new();
            let mut next_id = 0u64;
            let mut pim_block = 0u64;
            let mut pim_in_block = 0usize;
            for now in 0..8_000u64 {
                if now < 3_000 && rng.chance(0.35) {
                    let is_pim = rng.chance(0.4);
                    assert_eq!(
                        fast.can_accept(is_pim),
                        oracle.can_accept(is_pim),
                        "{}",
                        ctx(now)
                    );
                    if fast.can_accept(is_pim) {
                        let (req, decoded) = if is_pim {
                            let cmd = PimCommand {
                                op: PimOpKind::RfLoad,
                                channel: 0,
                                row: (pim_block % 8) as u32,
                                col: (pim_in_block % 4) as u16,
                                rf_entry: (pim_in_block % 8) as u8,
                                block_start: pim_in_block == 0,
                                block_id: pim_block,
                            };
                            pim_in_block += 1;
                            if pim_in_block == 4 {
                                pim_in_block = 0;
                                pim_block += 1;
                            }
                            (
                                Request::new(
                                    RequestId(next_id),
                                    AppId::PIM,
                                    RequestKind::Pim(cmd),
                                    PhysAddr(0),
                                    0,
                                    0,
                                ),
                                DecodedAddr {
                                    channel: 0,
                                    bank: 0,
                                    row: cmd.row,
                                    col: 0,
                                },
                            )
                        } else {
                            let addr = PhysAddr(rng.next_range(1 << 20) * 32);
                            let kind = if rng.chance(0.3) {
                                RequestKind::MemWrite
                            } else {
                                RequestKind::MemRead
                            };
                            (
                                Request::new(RequestId(next_id), AppId::GPU, kind, addr, 0, 0),
                                m.decode(addr),
                            )
                        };
                        next_id += 1;
                        fast.enqueue(req, decoded, now);
                        oracle.enqueue(req, decoded, now);
                    }
                }
                // Probe soundness: never points into the past, and agrees
                // with the brute-force oracle about idleness (the probe
                // must not report "busy forever" for a quiesced
                // controller, nor idle while work remains).
                let probe = fast.next_activity_cycle(now);
                if let Some(at) = probe {
                    assert!(at >= now, "{}: probe {at} in the past", ctx(now));
                }
                assert_eq!(
                    probe.is_none(),
                    oracle.next_activity_cycle(now).is_none(),
                    "{}: stall memo and oracle disagree on idleness",
                    ctx(now)
                );
                fast.step(now);
                oracle.step(now);
                fast_done.clear();
                oracle_done.clear();
                fast.pop_completions_into(now, &mut fast_done);
                oracle.pop_completions_into(now, &mut oracle_done);
                assert_eq!(fast_done, oracle_done, "{}", ctx(now));
                assert_eq!(fast.mode(), oracle.mode(), "{}", ctx(now));
            }
            assert_eq!(fast.stats(), oracle.stats(), "{} final stats", kind.label());
            assert_eq!(
                fast.stats().mem_arrivals + fast.stats().pim_arrivals,
                next_id,
                "{}: traffic lost",
                kind.label()
            );
            assert!(
                fast.is_idle(8_000),
                "{}: controller failed to drain",
                kind.label()
            );
        }
    }
}

/// Closed-form burst retirement is unobservable: a controller with the
/// burst plan and stall memo enabled (the production configuration) and
/// one forced to schedule every cycle through the full per-cycle path
/// (both fast paths disabled) accept the same requests, emit the same
/// completions in the same cycles, and end with bit-identical stats —
/// for every policy, with and without refresh. The step mix is the only
/// thing allowed to differ, and the test also checks the mechanism
/// actually engages: across the policy sweep some cycles must have been
/// retired through burst plans.
#[test]
fn burst_retirement_matches_full_step_oracle() {
    // Swept over both registered DRAM backends: the LP5X preset keeps
    // `t_faw`/`t_wtr` nonzero, so the closed form must agree with the
    // per-cycle oracle under the rolling-window constraints too.
    for spec in ["hbm", "lp5x:ranks=4"] {
        let backend = pim_coscheduling::dram::backend::parse_spec(spec).expect("registered");
        for refresh in [false, true] {
            let mut cfg = pim_coscheduling::dram::backend::system_config(backend);
            if refresh {
                cfg.timing.t_refi = 300;
                cfg.timing.t_rfc = 40;
            }
            let m = AddressMapper::new(&cfg.addr_map, &cfg.dram, 32);
            let mut swept_burst_ops = 0u64;
            for kind in PolicyKind::all() {
                let mut rng = SplitMix64::new(0xB0857 ^ u64::from(refresh));
                let mut fast = MemoryController::new(&cfg, kind.build());
                let mut oracle = MemoryController::new(&cfg, kind.build());
                oracle.set_stall_enabled(false);
                oracle.set_burst_enabled(false);
                let ctx = |now: u64| {
                    format!(
                        "{spec} policy {} refresh {refresh} cycle {now}",
                        kind.label()
                    )
                };
                let mut fast_done = Vec::new();
                let mut oracle_done = Vec::new();
                let mut next_id = 0u64;
                let mut pim_block = 0u64;
                let mut pim_in_block = 0usize;
                for now in 0..8_000u64 {
                    if now < 3_000 && rng.chance(0.35) {
                        let is_pim = rng.chance(0.4);
                        assert_eq!(
                            fast.can_accept(is_pim),
                            oracle.can_accept(is_pim),
                            "{}",
                            ctx(now)
                        );
                        if fast.can_accept(is_pim) {
                            let (req, decoded) = if is_pim {
                                // Last op of each block stores (a row write,
                                // exercising the burst's write-latency arm)
                                // from entry 0, which the block's first op
                                // always loaded.
                                let store = pim_in_block == 3;
                                let cmd = PimCommand {
                                    op: if store {
                                        PimOpKind::RfStore
                                    } else {
                                        PimOpKind::RfLoad
                                    },
                                    channel: 0,
                                    row: (pim_block % 8) as u32,
                                    col: (pim_in_block % 4) as u16,
                                    rf_entry: if store { 0 } else { (pim_in_block % 8) as u8 },
                                    block_start: pim_in_block == 0,
                                    block_id: pim_block,
                                };
                                pim_in_block += 1;
                                if pim_in_block == 4 {
                                    pim_in_block = 0;
                                    pim_block += 1;
                                }
                                (
                                    Request::new(
                                        RequestId(next_id),
                                        AppId::PIM,
                                        RequestKind::Pim(cmd),
                                        PhysAddr(0),
                                        0,
                                        0,
                                    ),
                                    DecodedAddr {
                                        channel: 0,
                                        bank: 0,
                                        row: cmd.row,
                                        col: 0,
                                    },
                                )
                            } else {
                                let addr = PhysAddr(rng.next_range(1 << 20) * 32);
                                let kind = if rng.chance(0.3) {
                                    RequestKind::MemWrite
                                } else {
                                    RequestKind::MemRead
                                };
                                (
                                    Request::new(RequestId(next_id), AppId::GPU, kind, addr, 0, 0),
                                    m.decode(addr),
                                )
                            };
                            next_id += 1;
                            fast.enqueue(req, decoded, now);
                            oracle.enqueue(req, decoded, now);
                        }
                    }
                    assert_eq!(fast.pim_q_len(), oracle.pim_q_len(), "{}", ctx(now));
                    let probe = fast.next_activity_cycle(now);
                    if let Some(at) = probe {
                        assert!(at >= now, "{}: probe {at} in the past", ctx(now));
                    }
                    assert_eq!(
                        probe.is_none(),
                        oracle.next_activity_cycle(now).is_none(),
                        "{}: burst plan and oracle disagree on idleness",
                        ctx(now)
                    );
                    fast.step(now);
                    oracle.step(now);
                    fast_done.clear();
                    oracle_done.clear();
                    fast.pop_completions_into(now, &mut fast_done);
                    oracle.pop_completions_into(now, &mut oracle_done);
                    assert_eq!(fast_done, oracle_done, "{}", ctx(now));
                    assert_eq!(fast.mode(), oracle.mode(), "{}", ctx(now));
                    // Stats must agree at EVERY cycle, not just at the end:
                    // the simulator snapshots stats whenever a run stops, and
                    // a stop can land mid-plan (kernel restarts truncate
                    // runs). Eagerly accounting a whole plan at creation
                    // passed the end-of-run check while skewing every
                    // mid-plan snapshot — this is the assertion that pins
                    // per-op accounting to the analytic issue ticks.
                    assert_eq!(fast.stats(), oracle.stats(), "{}: stats skew", ctx(now));
                    assert_eq!(
                        fast.channel_stats(),
                        oracle.channel_stats(),
                        "{}: channel stats skew",
                        ctx(now)
                    );
                }
                assert_eq!(fast.stats(), oracle.stats(), "{} final stats", kind.label());
                assert!(
                    fast.is_idle(8_000),
                    "{}: controller failed to drain",
                    kind.label()
                );
                assert_eq!(
                    oracle.step_mix().burst_ops,
                    0,
                    "{}: disabled oracle still planned bursts",
                    kind.label()
                );
                swept_burst_ops += fast.step_mix().burst_ops;
            }
            assert!(
                swept_burst_ops > 0,
                "{spec} refresh {refresh}: no policy ever engaged burst retirement"
            );
        }
    }
}

/// The controller conserves requests for arbitrary small mixes.
#[test]
fn controller_conserves_arbitrary_mixes() {
    let cfg = SystemConfig::default();
    let m = AddressMapper::new(&cfg.addr_map, &cfg.dram, 32);
    let mut rng = SplitMix64::new(0xAB7);
    for case in 0..48 {
        let n_mem = rng.next_range(24) as usize;
        let n_pim = rng.next_range(24) as usize;
        let policy = PolicyKind::all()[rng.next_range(PolicyKind::all().len() as u64) as usize];
        let mut mc = MemoryController::new(&cfg, policy.build());
        let mut expected = 0u64;
        for i in 0..n_mem.max(n_pim) {
            if i < n_mem {
                let addr = PhysAddr((i as u64) * 0x740); // varied banks/rows
                let req = Request::new(
                    RequestId(expected),
                    AppId::GPU,
                    if i % 3 == 0 {
                        RequestKind::MemWrite
                    } else {
                        RequestKind::MemRead
                    },
                    addr,
                    0,
                    0,
                );
                mc.enqueue(req, m.decode(addr), 0);
                expected += 1;
            }
            if i < n_pim {
                let cmd = PimCommand {
                    op: PimOpKind::RfLoad,
                    channel: 0,
                    row: (i / 4) as u32,
                    col: (i % 4) as u16,
                    rf_entry: (i % 8) as u8,
                    block_start: i % 4 == 0,
                    block_id: (i / 4) as u64,
                };
                let req = Request::new(
                    RequestId(expected),
                    AppId::PIM,
                    RequestKind::Pim(cmd),
                    PhysAddr(0),
                    0,
                    0,
                );
                mc.enqueue(
                    req,
                    DecodedAddr {
                        channel: 0,
                        bank: 0,
                        row: cmd.row,
                        col: 0,
                    },
                    0,
                );
                expected += 1;
            }
        }
        let mut done = 0u64;
        let mut drained = Vec::new();
        for now in 0..200_000u64 {
            mc.step(now);
            drained.clear();
            mc.pop_completions_into(now, &mut drained);
            done += drained.len() as u64;
            if done == expected && mc.is_idle(now) {
                break;
            }
        }
        assert_eq!(
            done,
            expected,
            "case {case}: {} lost requests",
            policy.label()
        );
    }
}
