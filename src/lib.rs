//! # pim-coscheduling
//!
//! A cycle-level reproduction of *"Concurrent PIM and Load/Store Servicing
//! in PIM-Enabled Memory"* (ISPASS 2025): a PIM-enabled GPU memory
//! subsystem simulator, the paper's nine memory-controller scheduling
//! policies — including the proposed **F3FS** — the separate-PIM-virtual-
//! channel interconnect, and a benchmark harness regenerating every figure
//! of the evaluation.
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! * [`types`] — requests, addresses, configuration (Table I defaults).
//! * [`stats`] — metrics: fairness index, system throughput, quartiles.
//! * [`dram`] — channel/bank timing model with all-bank PIM mode, plus
//!   the DRAM backend trait + registry (HBM, LPDDR5X-PIM).
//! * [`noc`] — input-queued crossbar with VC1/VC2 and modified iSlip.
//! * [`cache`] — sliced write-back L2 with MSHRs; PIM bypasses it.
//! * [`gpu`] — SM kernel models (synthetic MEM kernels, block-structured
//!   PIM kernels).
//! * [`core`] — the PIM-aware memory controller and all scheduling
//!   policies.
//! * [`workloads`] — Rodinia-like suite (G1–G20), PIM suite (P1–P9), and
//!   the GPT-3-like collaborative LLM scenario.
//! * [`sim`] — the full-system simulator, run harnesses, and experiment
//!   drivers.
//!
//! # Quickstart
//!
//! ```no_run
//! use pim_coscheduling::prelude::*;
//!
//! // Co-run a Rodinia-like GPU kernel with a PIM STREAM kernel under
//! // F3FS with the paper's competitive CAPs.
//! let runner = Runner::new(
//!     SystemConfig::default(),
//!     PolicyKind::f3fs_competitive(),
//! );
//! let gpu = gpu_kernel(GpuBenchmark(4), 72, 0.1);
//! let pim = pim_kernel(PimBenchmark(1), 32, 4, 256, 0.1);
//! let out = runner.coexec(Box::new(gpu), Box::new(pim), true);
//! println!(
//!     "GPU first run {} cycles, PIM first run {} cycles",
//!     out.gpu_first_run, out.pim_first_run
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pimsim_cache as cache;
pub use pimsim_core as core;
pub use pimsim_dram as dram;
pub use pimsim_gpu as gpu;
pub use pimsim_noc as noc;
pub use pimsim_sim as sim;
pub use pimsim_stats as stats;
pub use pimsim_types as types;
pub use pimsim_workloads as workloads;

/// The most common imports for driving simulations.
pub mod prelude {
    pub use pimsim_core::policy::PolicyKind;
    pub use pimsim_sim::{CoexecOutcome, CollabOutcome, Runner, Simulator, SoloOutcome};
    pub use pimsim_stats::metrics::{fairness_index, system_throughput};
    pub use pimsim_types::{Mode, SystemConfig, VcMode};
    pub use pimsim_workloads::{
        gpu_kernel, llm_scenario, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark,
    };
}
