//! Component and port primitives for the pipeline simulator.
//!
//! The paper's system is a pipeline of shared resources — SM issue, the
//! request crossbar, L2 slices, memory controllers, DRAM/PIM, the reply
//! crossbar. This crate provides the two contracts that make those stages
//! explicit instead of hand-wired closures:
//!
//! * [`Component`] — a pipeline stage with a `step(now, ctx)` advance and a
//!   `next_activity_cycle(now)` idle contract (the hook the event-driven
//!   scheduler uses to skip provably idle spans);
//! * [`Wire<T>`] / [`Port<T>`] — typed, credit-based bounded queues linking
//!   stages, replacing ad-hoc `VecDeque` fields plus bespoke
//!   peek/pop/drain method pairs with one uniform backpressure protocol.
//!
//! # Soundness under fast-forward
//!
//! `next_activity_cycle` must satisfy: if it returns `None`, a `step` at
//! any cycle ≥ `now` with empty input ports mutates nothing observable
//! (counters derived from occupancy included — an empty wire contributes
//! zero to every integral). Wires uphold their half of the contract by
//! construction: an empty wire has no state besides its (already counted)
//! statistics, so skipping cycles in which every wire is empty and every
//! component reports `None` is exact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use pimsim_types::Cycle;

/// A pipeline stage of the simulator.
///
/// Stages own their internal state and the wires they read from or write
/// to are handed in through the typed [`Component::Ctx`] — the borrow
/// context a scheduler must provide for one step. Stages with no external
/// needs use `Ctx = ()`.
pub trait Component {
    /// External state (ports of neighboring stages, kernel models, shared
    /// read-only tables) the stage needs for one step.
    type Ctx<'a>;

    /// Short stable name for diagnostics (`"request-net"`, `"issue"`).
    fn name(&self) -> &'static str;

    /// Advances the stage by one cycle of its clock domain.
    fn step(&mut self, now: Cycle, ctx: Self::Ctx<'_>);

    /// The earliest cycle at or after `now` at which this stage can do
    /// work on its own (without new input arriving on its ports), or
    /// `None` while it holds none. Conservative answers must err toward
    /// `Some(now)`: returning `None` licenses the scheduler to skip the
    /// stage's steps entirely, so it is only sound when a step would
    /// provably mutate nothing (see the crate docs).
    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle>;

    /// Whether the stage is idle at `now` (no activity now or later).
    fn is_idle(&self, now: Cycle) -> bool {
        self.next_activity_cycle(now).is_none()
    }
}

/// Counters every wire maintains; transfer stats used to be scattered over
/// bespoke `*_accepted` / `*_stalls` fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Items accepted into the wire.
    pub pushed: u64,
    /// Items taken out of the wire.
    pub popped: u64,
    /// Sends refused for lack of credit.
    pub refused: u64,
    /// Highest simultaneous occupancy observed.
    pub high_water: usize,
}

/// A typed, credit-based FIFO linking two components.
///
/// A wire has `capacity` credits; each buffered item holds one credit
/// until the consumer pops it. Producers must check [`Wire::can_accept`]
/// (or use [`Wire::try_send`]) — backpressure is part of the type, not a
/// convention re-implemented at every hand-off.
///
/// # Example
///
/// ```
/// use pimsim_component::Wire;
///
/// let mut w: Wire<u32> = Wire::bounded(2);
/// w.try_send(7).unwrap();
/// w.try_send(8).unwrap();
/// assert_eq!(w.try_send(9), Err(9), "no credit left");
/// assert_eq!(w.peek(), Some(&7));
/// assert_eq!(w.recv(), Some(7));
/// assert!(w.can_accept());
/// ```
#[derive(Debug, Clone)]
pub struct Wire<T> {
    q: VecDeque<T>,
    capacity: usize,
    stats: WireStats,
}

impl<T> Wire<T> {
    /// A wire with `capacity` credits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-credit wire can never carry
    /// anything, which is always a configuration bug.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "wire capacity must be nonzero");
        Wire {
            q: VecDeque::new(),
            capacity,
            stats: WireStats::default(),
        }
    }

    /// A wire with effectively unlimited credit (for out-of-band paths
    /// such as PIM ack credit returns, whose consumers drain every cycle).
    pub fn unbounded() -> Self {
        Wire {
            q: VecDeque::new(),
            capacity: usize::MAX,
            stats: WireStats::default(),
        }
    }

    /// Total credits (buffer slots).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining credits.
    pub fn credits(&self) -> usize {
        self.capacity - self.q.len()
    }

    /// Whether a send would be accepted right now.
    pub fn can_accept(&self) -> bool {
        self.q.len() < self.capacity
    }

    /// Sends `item`, returning it back if the wire is out of credit.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the wire is full (the refusal is counted
    /// in [`WireStats::refused`]).
    pub fn try_send(&mut self, item: T) -> Result<(), T> {
        if self.q.len() >= self.capacity {
            self.stats.refused += 1;
            return Err(item);
        }
        self.q.push_back(item);
        self.stats.pushed += 1;
        self.stats.high_water = self.stats.high_water.max(self.q.len());
        Ok(())
    }

    /// Sends `item` on a wire whose credit the caller already checked.
    ///
    /// # Panics
    ///
    /// Panics on overflow — use [`Wire::try_send`] when refusal is a
    /// legitimate outcome.
    pub fn send(&mut self, item: T) {
        assert!(self.can_accept(), "wire overflow: send without credit");
        self.q.push_back(item);
        self.stats.pushed += 1;
        self.stats.high_water = self.stats.high_water.max(self.q.len());
    }

    /// The item the next [`Wire::recv`] would return.
    pub fn peek(&self) -> Option<&T> {
        self.q.front()
    }

    /// Pops the head item, releasing its credit.
    pub fn recv(&mut self) -> Option<T> {
        let item = self.q.pop_front();
        if item.is_some() {
            self.stats.popped += 1;
        }
        item
    }

    /// Appends every buffered item to `out` and releases all credits —
    /// the allocation-free bulk form of [`Wire::recv`] for per-cycle
    /// consumers with a reusable scratch vector. Free when the wire is
    /// empty, so per-cycle pollers pay nothing on idle wires.
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        if self.q.is_empty() {
            return;
        }
        self.stats.popped += self.q.len() as u64;
        out.extend(self.q.drain(..));
    }

    /// Buffered items.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the wire holds nothing.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Iterates over buffered items, head first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.q.iter()
    }

    /// Transfer counters.
    pub fn stats(&self) -> WireStats {
        self.stats
    }
}

/// One timestamped entry of a [`Schedule`].
///
/// Ordering is by `(at, key)` ascending — `key` is a deterministic
/// tiebreak (the paper pipeline uses request IDs) so two entries due the
/// same cycle always pop in the same order regardless of push order, and
/// `T` itself never needs `Ord`.
#[derive(Debug, Clone)]
struct ScheduleEntry<T> {
    at: Cycle,
    key: u64,
    item: T,
}

impl<T> PartialEq for ScheduleEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}

impl<T> Eq for ScheduleEntry<T> {}

impl<T> PartialOrd for ScheduleEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduleEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so `BinaryHeap` (a max-heap) pops the earliest
        // `(at, key)` first.
        (other.at, other.key).cmp(&(self.at, self.key))
    }
}

/// A time-ordered delivery queue: items pushed with a future timestamp
/// become visible only once the consumer's clock reaches it.
///
/// This is the production-side dual of [`Wire`]: a producer that knows in
/// closed form *when* each item matures (e.g. a burst plan's completion
/// cycles) deposits them all at retire time, and the consumer drains
/// exactly the due prefix each cycle — so the observable hand-off order
/// is identical to an eager producer sending each item at its own tick.
///
/// # Example
///
/// ```
/// use pimsim_component::Schedule;
///
/// let mut s: Schedule<&str> = Schedule::new();
/// s.push(12, 1, "late");
/// s.push(10, 7, "early");
/// assert_eq!(s.next_at(), Some(10));
/// assert!(!s.has_due(9));
/// assert_eq!(s.pop_due(10), Some("early"));
/// assert_eq!(s.pop_due(10), None, "the rest is still in the future");
/// let mut out = Vec::new();
/// s.drain_due_into(20, &mut out);
/// assert_eq!(out, vec!["late"]);
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Schedule<T> {
    /// In-order arrivals: a push whose `(at, key)` is no earlier than the
    /// back's appends here in O(1). Producers that deposit whole batches
    /// in maturity order (a controller's retire-time ack batches) never
    /// leave this lane, so the common path is a plain FIFO.
    sorted: VecDeque<ScheduleEntry<T>>,
    /// Out-of-order arrivals; pops merge with the sorted lane by
    /// `(at, key)`.
    heap: BinaryHeap<ScheduleEntry<T>>,
}

impl<T> Default for Schedule<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Schedule<T> {
    /// An empty schedule.
    pub fn new() -> Self {
        Schedule {
            sorted: VecDeque::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Deposits `item` to mature at cycle `at`. `key` breaks ties among
    /// items due the same cycle (lower keys pop first) and must be unique
    /// per in-flight item for deterministic order.
    pub fn push(&mut self, at: Cycle, key: u64, item: T) {
        let entry = ScheduleEntry { at, key, item };
        match self.sorted.back() {
            Some(back) if (at, key) < (back.at, back.key) => self.heap.push(entry),
            _ => self.sorted.push_back(entry),
        }
    }

    /// Whether the earliest entry lives in the sorted lane (ties cannot
    /// happen: keys are unique per in-flight item).
    fn head_is_sorted(&self) -> bool {
        match (self.sorted.front(), self.heap.peek()) {
            (Some(s), Some(h)) => (s.at, s.key) < (h.at, h.key),
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// The earliest entry across both lanes, by `(at, key)`.
    fn peek_entry(&self) -> Option<&ScheduleEntry<T>> {
        if self.head_is_sorted() {
            self.sorted.front()
        } else {
            self.heap.peek()
        }
    }

    /// Pops the earliest item due at or before `limit`, if any.
    pub fn pop_due(&mut self, limit: Cycle) -> Option<T> {
        self.peek_entry().filter(|e| e.at <= limit)?;
        if self.head_is_sorted() {
            self.sorted.pop_front().map(|e| e.item)
        } else {
            self.heap.pop().map(|e| e.item)
        }
    }

    /// Appends every item due at or before `limit` to `out`, earliest
    /// `(at, key)` first. Free when nothing is due.
    pub fn drain_due_into(&mut self, limit: Cycle, out: &mut Vec<T>) {
        while let Some(item) = self.pop_due(limit) {
            out.push(item);
        }
    }

    /// Whether any item is due at or before `limit` — the shared-borrow
    /// pre-check consumers use before taking a mutable drain borrow.
    pub fn has_due(&self, limit: Cycle) -> bool {
        self.peek_entry().is_some_and(|e| e.at <= limit)
    }

    /// The maturity cycle of the earliest entry, if any.
    pub fn next_at(&self) -> Option<Cycle> {
        self.peek_entry().map(|e| e.at)
    }

    /// Entries held (due or future).
    pub fn len(&self) -> usize {
        self.sorted.len() + self.heap.len()
    }

    /// Whether the schedule holds nothing at all.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.heap.is_empty()
    }

    /// Entries parked in the out-of-order (heap) lane. Zero for any
    /// producer that deposits in `(at, key)`-ascending order — the
    /// property the eject-batch and ack-batch paths rely on to keep the
    /// common case a plain FIFO append.
    pub fn straggler_len(&self) -> usize {
        self.heap.len()
    }
}

/// A bundle of parallel [`Wire`]s — one lane per virtual channel.
///
/// The staging queues of the paper's memory partitions are per-VC FIFOs
/// sharing one physical buffer (capacity is split evenly across lanes,
/// matching Section V-A's equal-total-buffering comparison). A `Port`
/// models exactly that: `lane(vc)` is the wire for one request class.
///
/// # Example
///
/// ```
/// use pimsim_component::Port;
///
/// let mut p: Port<u64> = Port::new(2, 8); // two VCs, 4 credits each
/// assert_eq!(p.lane(0).capacity(), 4);
/// p.lane_mut(1).try_send(42).unwrap();
/// assert_eq!(p.total_len(), 1);
/// assert!(!p.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Port<T> {
    lanes: Vec<Wire<T>>,
}

impl<T> Port<T> {
    /// A port with `lanes` virtual channels splitting `total_capacity`
    /// credits evenly.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero or the split leaves some lane without a
    /// credit.
    pub fn new(lanes: usize, total_capacity: usize) -> Self {
        assert!(lanes > 0, "a port needs at least one lane");
        let per_lane = total_capacity / lanes;
        assert!(per_lane > 0, "total_capacity must cover every lane");
        Port {
            lanes: (0..lanes).map(|_| Wire::bounded(per_lane)).collect(),
        }
    }

    /// Number of lanes (virtual channels).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The wire for virtual channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn lane(&self, vc: usize) -> &Wire<T> {
        &self.lanes[vc]
    }

    /// Mutable access to the wire for virtual channel `vc`.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range.
    pub fn lane_mut(&mut self, vc: usize) -> &mut Wire<T> {
        &mut self.lanes[vc]
    }

    /// Iterates over lanes in VC order.
    pub fn lanes(&self) -> impl Iterator<Item = &Wire<T>> {
        self.lanes.iter()
    }

    /// Total buffered items across lanes.
    pub fn total_len(&self) -> usize {
        self.lanes.iter().map(Wire::len).sum()
    }

    /// Total items ever accepted across lanes.
    pub fn total_pushed(&self) -> u64 {
        self.lanes.iter().map(|l| l.stats().pushed).sum()
    }

    /// Whether every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Wire::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_backpressure_and_stats() {
        let mut w: Wire<u8> = Wire::bounded(2);
        assert_eq!(w.credits(), 2);
        w.try_send(1).unwrap();
        w.send(2);
        assert_eq!(w.try_send(3), Err(3));
        assert!(!w.can_accept());
        assert_eq!(w.stats().pushed, 2);
        assert_eq!(w.stats().refused, 1);
        assert_eq!(w.stats().high_water, 2);
        assert_eq!(w.recv(), Some(1));
        assert_eq!(w.credits(), 1);
        assert_eq!(w.peek(), Some(&2));
        assert_eq!(w.recv(), Some(2));
        assert_eq!(w.recv(), None);
        assert_eq!(w.stats().popped, 2, "empty recv must not count");
    }

    #[test]
    fn wire_drain_into_moves_everything() {
        let mut w: Wire<u32> = Wire::unbounded();
        for i in 0..5 {
            w.try_send(i).unwrap();
        }
        let mut out = vec![99];
        w.drain_into(&mut out);
        assert_eq!(out, vec![99, 0, 1, 2, 3, 4]);
        assert!(w.is_empty());
        assert_eq!(w.stats().popped, 5);
    }

    #[test]
    #[should_panic(expected = "wire overflow")]
    fn wire_send_without_credit_panics() {
        let mut w: Wire<u8> = Wire::bounded(1);
        w.send(1);
        w.send(2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_wire_rejected() {
        let _ = Wire::<u8>::bounded(0);
    }

    #[test]
    fn port_splits_capacity_evenly() {
        let p: Port<u8> = Port::new(2, 9); // 4 per lane, remainder dropped
        assert_eq!(p.lane(0).capacity(), 4);
        assert_eq!(p.lane(1).capacity(), 4);
        assert_eq!(p.lane_count(), 2);
    }

    #[test]
    #[should_panic(expected = "cover every lane")]
    fn port_rejects_starved_lanes() {
        let _ = Port::<u8>::new(4, 3);
    }

    #[test]
    fn port_aggregates_over_lanes() {
        let mut p: Port<u8> = Port::new(2, 8);
        p.lane_mut(0).try_send(1).unwrap();
        p.lane_mut(1).try_send(2).unwrap();
        p.lane_mut(1).try_send(3).unwrap();
        assert_eq!(p.total_len(), 3);
        assert_eq!(p.total_pushed(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.lanes().map(Wire::len).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn schedule_orders_by_cycle_then_key() {
        let mut s: Schedule<u32> = Schedule::new();
        s.push(20, 5, 105);
        s.push(10, 9, 209);
        s.push(10, 2, 202);
        s.push(15, 0, 300);
        assert_eq!(s.len(), 4);
        assert_eq!(s.next_at(), Some(10));
        let mut out = Vec::new();
        s.drain_due_into(15, &mut out);
        assert_eq!(out, vec![202, 209, 300], "same-cycle ties break by key");
        assert_eq!(s.next_at(), Some(20));
        assert_eq!(s.pop_due(19), None);
        assert_eq!(s.pop_due(20), Some(105));
        assert!(s.is_empty());
    }

    #[test]
    fn schedule_has_due_tracks_the_head() {
        let mut s: Schedule<char> = Schedule::new();
        assert!(!s.has_due(u64::MAX));
        s.push(7, 0, 'a');
        assert!(!s.has_due(6));
        assert!(s.has_due(7));
        assert_eq!(s.pop_due(7), Some('a'));
        assert!(!s.has_due(u64::MAX));
    }

    #[test]
    fn schedule_matches_eager_wire_order() {
        // The equivalence the ack path relies on: delivering items from a
        // schedule, draining the due prefix per tick, reproduces the exact
        // order an eager producer gets by sending each item at its own
        // tick (globally (at, key)-ascending).
        let deliveries = [(3u64, 10u64), (1, 4), (3, 2), (1, 7), (2, 1)];
        let mut eager: Vec<(Cycle, u64)> = deliveries.to_vec();
        eager.sort_unstable();
        let mut s: Schedule<u64> = Schedule::new();
        for &(at, key) in &deliveries {
            s.push(at, key, key);
        }
        let mut got = Vec::new();
        for now in 0..=3 {
            while let Some(k) = s.pop_due(now) {
                got.push((now, k));
            }
        }
        let eager: Vec<u64> = eager.into_iter().map(|(_, k)| k).collect();
        let got: Vec<u64> = got.into_iter().map(|(_, k)| k).collect();
        assert_eq!(got, eager);
    }

    #[test]
    fn schedule_monotone_pushes_stay_off_the_heap_lane() {
        // Seeded property test for the two-lane structure: a producer
        // depositing in (at, key)-ascending order (an eject batch, an ack
        // batch) must never touch the straggler heap, so every push and
        // pop is an O(1) deque operation.
        let mut seed = 0x5eed_cafe_u64;
        let mut rng = move || {
            // xorshift64: deterministic, no external crates.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut s: Schedule<u64> = Schedule::new();
        let (mut at, mut key) = (0u64, 0u64);
        let mut pushed = Vec::new();
        for _ in 0..500 {
            at += rng() % 4; // nondecreasing cycles
            key += 1 + rng() % 3; // strictly increasing tie-break keys
            s.push(at, key, key);
            pushed.push((at, key));
            assert_eq!(s.straggler_len(), 0, "monotone push leaked to heap");
        }
        let mut out = Vec::new();
        s.drain_due_into(u64::MAX, &mut out);
        let expect: Vec<u64> = pushed.iter().map(|&(_, k)| k).collect();
        assert_eq!(out, expect, "FIFO lane must preserve deposit order");
    }

    #[test]
    fn schedule_straggler_pushes_pop_in_global_time_order() {
        // Interleave in-order batches with out-of-order stragglers and
        // check pops still come out (at, key)-ascending, with stragglers
        // confined to the heap lane until popped.
        let mut seed = 0xdead_beef_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut s: Schedule<u64> = Schedule::new();
        let mut pushed = Vec::new();
        let mut at = 50u64;
        for key in 0..400u64 {
            let straggle = rng() % 5 == 0;
            let when = if straggle {
                at.saturating_sub(1 + rng() % 40) // lands behind the back
            } else {
                at += rng() % 3;
                at
            };
            s.push(when, key, key);
            pushed.push((when, key));
        }
        assert!(s.straggler_len() > 0, "seed must produce stragglers");
        assert!(
            s.straggler_len() < s.len(),
            "in-order prefix must stay on the FIFO lane"
        );
        pushed.sort_unstable();
        let mut got = Vec::new();
        let mut now = 0;
        while !s.is_empty() {
            while let Some(k) = s.pop_due(now) {
                got.push(k);
            }
            now += 1;
        }
        let expect: Vec<u64> = pushed.into_iter().map(|(_, k)| k).collect();
        assert_eq!(got, expect, "pops must merge lanes in (at, key) order");
    }

    /// A minimal component exercising the trait contract, including the
    /// typed step context.
    struct Counter {
        pending: u32,
        done: u32,
    }

    impl Component for Counter {
        type Ctx<'a> = &'a mut Vec<u32>;

        fn name(&self) -> &'static str {
            "counter"
        }

        fn step(&mut self, _now: Cycle, out: Self::Ctx<'_>) {
            if self.pending > 0 {
                self.pending -= 1;
                self.done += 1;
                out.push(self.done);
            }
        }

        fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
            (self.pending > 0).then_some(now)
        }
    }

    #[test]
    fn component_contract_round_trips() {
        let mut c = Counter {
            pending: 2,
            done: 0,
        };
        let mut out = Vec::new();
        assert_eq!(c.next_activity_cycle(5), Some(5));
        assert!(!c.is_idle(5));
        c.step(5, &mut out);
        c.step(6, &mut out);
        assert_eq!(out, vec![1, 2]);
        assert!(c.is_idle(7), "drained component must go idle");
        assert_eq!(c.name(), "counter");
    }
}
