//! Persistent worker pool shared by the per-tick memory stage and the
//! experiment sweeps.
//!
//! The pool replaces two older spawn-per-call uses of `std::thread`:
//!
//! * `experiments::sweep::parallel_map` used to open a fresh
//!   `std::thread::scope` per sweep (fine for coarse jobs, wasteful for
//!   anything finer);
//! * the sharded memory stage needs to fan 32 channel partitions out to
//!   workers **every DRAM tick**, where spawn latency (tens of µs) would
//!   dwarf the work being parallelized (a few µs).
//!
//! So workers are spawned once and parked between batches. A batch is a
//! `Vec` of boxed jobs; workers *and the calling thread* claim jobs with
//! one `fetch_add` on a shared index, so heterogeneous job lengths
//! balance and the caller never blocks on a queue it could drain itself.
//!
//! # Safety model (no `unsafe`, no deps)
//!
//! Jobs are `'static`: callers move owned data in and get it back through
//! whatever channel the closure captured (the memory stage rounds its
//! partition boxes through an `Arc<Mutex<Vec<…>>>` bin). Nothing borrows
//! across threads, so the whole crate is `#![forbid(unsafe_code)]` like
//! the rest of the workspace.
//!
//! # Nesting and re-entrancy
//!
//! The pool holds at most one active batch. A `run_batch` that finds the
//! slot occupied (a sweep already fanned out, and one of its simulations
//! is now trying to fan out its memory stage) simply runs its own jobs
//! inline on the calling thread. That degrades nested parallelism to
//! serial execution instead of deadlocking or oversubscribing the
//! machine, and — because jobs never observe which thread ran them — has
//! no effect on results.
//!
//! # Determinism
//!
//! The pool guarantees only that every job in a batch ran to completion
//! when `run_batch` returns. Callers that need bit-identical results
//! across thread counts must make their jobs mutually independent (the
//! memory stage's partitions are shared-nothing per tick; sweep jobs are
//! whole simulations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

/// A unit of work: owns everything it touches (see crate docs).
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Spin iterations before a waiter parks. Ticks arrive every few µs on
/// the hot path, so a short spin usually catches the next batch; parking
/// promptly matters more than spinning on machines with few cores.
const SPIN_LIMIT: u32 = 256;

/// Parked threads wake at least this often to re-check for work, so a
/// lost unpark can delay a batch, never hang it.
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

/// One posted batch of jobs.
struct Batch {
    jobs: Vec<Mutex<Option<Job>>>,
    /// Next unclaimed job index (claimed with `fetch_add`).
    next: AtomicUsize,
    /// Jobs finished (claimed indexes past the end count immediately).
    done: AtomicUsize,
    /// First panic payload from any job, rethrown on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// The thread blocked in `run_batch`, parked until `done == jobs`.
    waiter: Mutex<Option<Thread>>,
}

impl Batch {
    fn new(jobs: Vec<Job>) -> Self {
        Batch {
            jobs: jobs.into_iter().map(|j| Mutex::new(Some(j))).collect(),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panic: Mutex::new(None),
            waiter: Mutex::new(None),
        }
    }

    /// Claims and runs one job. Returns `false` once every job is
    /// claimed (not necessarily finished).
    fn run_one(&self) -> bool {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        if idx >= self.jobs.len() {
            return false;
        }
        let job = self.jobs[idx]
            .lock()
            .expect("job slot poisoned")
            .take()
            .expect("each job claimed exactly once");
        if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
            let mut first = self.panic.lock().expect("panic slot poisoned");
            first.get_or_insert(payload);
        }
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.jobs.len() {
            if let Some(t) = self.waiter.lock().expect("waiter poisoned").take() {
                t.unpark();
            }
        }
        true
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.jobs.len()
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// The active batch, if any (one at a time; see crate docs).
    current: Mutex<Option<Arc<Batch>>>,
    /// Bumped whenever a new batch is posted; workers spin on this.
    epoch: AtomicUsize,
    /// Workers registered for an unpark on the next post.
    sleepers: Mutex<Vec<Thread>>,
    shutdown: AtomicBool,
}

impl Shared {
    fn wake_sleepers(&self) {
        for t in self.sleepers.lock().expect("sleepers poisoned").drain(..) {
            t.unpark();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = usize::MAX;
    let mut spins: u32 = 0;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let epoch = shared.epoch.load(Ordering::Acquire);
        if epoch != seen_epoch {
            seen_epoch = epoch;
            spins = 0;
            let batch = shared.current.lock().expect("batch slot poisoned").clone();
            if let Some(batch) = batch {
                while batch.run_one() {}
            }
            continue;
        }
        spins += 1;
        if spins < SPIN_LIMIT {
            std::hint::spin_loop();
            continue;
        }
        // Register, re-check (post happens-before wake), then park.
        shared
            .sleepers
            .lock()
            .expect("sleepers poisoned")
            .push(thread::current());
        if shared.epoch.load(Ordering::Acquire) == seen_epoch
            && !shared.shutdown.load(Ordering::Acquire)
        {
            thread::park_timeout(PARK_TIMEOUT);
        }
        spins = 0;
    }
}

/// A persistent pool of worker threads executing batches of boxed jobs.
///
/// `threads` counts the calling thread: a pool of `threads = n` spawns
/// `n - 1` workers, and the thread inside [`WorkerPool::run_batch`]
/// always claims jobs alongside them. `threads = 1` spawns nothing and
/// runs every batch inline.
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Builds a pool with `threads` total lanes of parallelism (spawning
    /// `threads - 1` workers; zero threads is clamped to one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            current: Mutex::new(None),
            epoch: AtomicUsize::new(0),
            sleepers: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("pimsim-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            handles,
        }
    }

    /// Total lanes of parallelism (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job to completion, fanning out across the workers.
    ///
    /// The calling thread participates; if the pool is already busy with
    /// another batch (nested or concurrent use), the jobs run inline on
    /// the caller instead — serial, never deadlocked.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any job raised (after all jobs finished
    /// or were claimed).
    pub fn run_batch(&self, jobs: Vec<Job>) {
        if jobs.is_empty() {
            return;
        }
        if self.handles.is_empty() {
            for job in jobs {
                job();
            }
            return;
        }
        let batch = Arc::new(Batch::new(jobs));
        {
            let mut current = self.shared.current.lock().expect("batch slot poisoned");
            if current.is_some() {
                drop(current);
                // Pool busy: degrade to inline execution (crate docs).
                while batch.run_one() {}
                self.rethrow(&batch);
                return;
            }
            *current = Some(Arc::clone(&batch));
        }
        self.shared.epoch.fetch_add(1, Ordering::Release);
        self.shared.wake_sleepers();
        // Claim alongside the workers until every job is taken…
        while batch.run_one() {}
        // …then wait for stragglers still running their last claim.
        let mut spins: u32 = 0;
        while !batch.is_done() {
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
                continue;
            }
            *batch.waiter.lock().expect("waiter poisoned") = Some(thread::current());
            if !batch.is_done() {
                thread::park_timeout(PARK_TIMEOUT);
            }
            spins = 0;
        }
        *self.shared.current.lock().expect("batch slot poisoned") = None;
        self.rethrow(&batch);
    }

    fn rethrow(&self, batch: &Batch) {
        let payload = batch.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Bump the epoch so spinning workers re-check shutdown promptly.
        self.shared.epoch.fetch_add(1, Ordering::Release);
        self.shared.wake_sleepers();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The `PIMSIM_THREADS` environment override, if set to a positive
/// integer. One knob drives both consumers: the global pool's size (and
/// therefore sweep width) and the memory stage's default shard count.
pub fn env_threads() -> Option<usize> {
    std::env::var("PIMSIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The process-wide shared pool: sized by `PIMSIM_THREADS` when set,
/// otherwise by `std::thread::available_parallelism`. Created on first
/// use; workers park between batches.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let threads = env_threads().unwrap_or_else(|| {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        WorkerPool::new(threads)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let hits = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..8)
            .map(|_| {
                let hits = Arc::clone(&hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn all_jobs_complete_across_workers() {
        let pool = WorkerPool::new(4);
        for round in 0..50 {
            let sum = Arc::new(AtomicUsize::new(0));
            let jobs: Vec<Job> = (0..16)
                .map(|i| {
                    let sum = Arc::clone(&sum);
                    Box::new(move || {
                        sum.fetch_add(i + round, Ordering::Relaxed);
                    }) as Job
                })
                .collect();
            pool.run_batch(jobs);
            assert_eq!(
                sum.load(Ordering::Relaxed),
                (0..16).sum::<usize>() + 16 * round
            );
        }
    }

    #[test]
    fn results_round_trip_through_a_bin() {
        // The memory stage's usage pattern: move owned state out, get it
        // back through a captured bin.
        let pool = WorkerPool::new(3);
        type Bin = Arc<Mutex<Vec<(usize, Vec<u64>)>>>;
        let bin: Bin = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<Job> = (0..6)
            .map(|i| {
                let bin = Arc::clone(&bin);
                let mut owned: Vec<u64> = (0..100).map(|x| x + i as u64).collect();
                Box::new(move || {
                    for v in &mut owned {
                        *v *= 2;
                    }
                    bin.lock().unwrap().push((i, owned));
                }) as Job
            })
            .collect();
        pool.run_batch(jobs);
        let mut shards = Arc::try_unwrap(bin).unwrap().into_inner().unwrap();
        shards.sort_by_key(|(i, _)| *i);
        assert_eq!(shards.len(), 6);
        for (i, data) in shards {
            assert_eq!(data[0], 2 * i as u64);
            assert_eq!(data.len(), 100);
        }
    }

    #[test]
    fn nested_run_batch_degrades_to_inline() {
        let pool = Arc::new(WorkerPool::new(2));
        let outer: Vec<Job> = vec![{
            let hits = Arc::new(AtomicUsize::new(0));
            let hits2 = Arc::clone(&hits);
            Box::new(move || {
                // This inner batch may find the pool busy with the outer
                // one; either way all inner jobs must complete.
                let inner: Vec<Job> = (0..4)
                    .map(|_| {
                        let hits = Arc::clone(&hits2);
                        Box::new(move || {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }) as Job
                    })
                    .collect();
                global().run_batch(inner);
                assert_eq!(hits2.load(Ordering::Relaxed), 4);
            }) as Job
        }];
        pool.run_batch(outer);
    }

    #[test]
    fn job_panics_propagate_to_the_caller() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                Box::new(move || {
                    assert!(i != 2, "boom");
                }) as Job
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run_batch(jobs)));
        assert!(err.is_err(), "panic must propagate");
        // The pool stays usable afterwards.
        let ok = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ok);
        pool.run_batch(vec![
            Box::new(move || flag.store(true, Ordering::Relaxed)) as Job
        ]);
        assert!(ok.load(Ordering::Relaxed));
    }

    #[test]
    fn env_threads_parses_positive_integers_only() {
        // Not set in the test environment unless the harness exported it;
        // just exercise the parser on the current state.
        let parsed = env_threads();
        if let Some(n) = parsed {
            assert!(n > 0);
        }
    }
}
