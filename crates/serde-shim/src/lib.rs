//! No-op stand-in for `serde`'s derive surface.
//!
//! The workspace only uses serde through `#[derive(Serialize, Deserialize)]`
//! annotations — nothing serializes at runtime yet. This vendored shim lets
//! those derives compile in offline environments by expanding to nothing.
//! Swapping the workspace dependency back to the real `serde` is a one-line
//! change in the root `Cargo.toml` and requires no source edits.

use proc_macro::TokenStream;

/// Expands to nothing; the workspace never calls `serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the workspace never calls `deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
