//! Standalone and co-execution run harnesses implementing the paper's
//! methodology (Section III-B/C):
//!
//! * **Standalone**: one kernel alone; its execution time is the speedup
//!   denominator's reference.
//! * **Competitive co-execution**: a GPU kernel on 72 SMs and a PIM kernel
//!   on 8 SMs, both re-launched in a loop until each has completed at
//!   least once; the first completed run of each is reported.
//! * **Collaborative co-execution**: both kernels once, end-to-end time
//!   against the sequential sum.

use pimsim_core::{McStats, PolicyKind};
use pimsim_gpu::KernelModel;
use pimsim_stats::metrics::CoexecMetrics;
use pimsim_types::SystemConfig;

use crate::system::{CycleBudgetExceeded, Simulator};

/// Shared run parameters.
#[derive(Debug, Clone)]
pub struct Runner {
    /// System configuration (VC mode lives in `system.noc.vc_mode`).
    pub system: SystemConfig,
    /// Memory-controller scheduling policy.
    pub policy: PolicyKind,
    /// Safety budget; runs failing to finish return an error.
    pub max_gpu_cycles: u64,
    /// Skip provably idle spans instead of ticking them cycle by cycle
    /// (see [`Simulator::set_fast_forward`]). On by default; results are
    /// bit-identical either way, so turning it off is only useful for
    /// validating that claim or profiling the lock-step path.
    pub fast_forward: bool,
    /// Event-driven completion delivery (see
    /// [`Simulator::set_event_delivery`]). On by default; results are
    /// bit-identical either way, so turning it off is only useful for
    /// the eager-oracle equivalence tests and stage-tick baselines.
    pub event_delivery: bool,
    /// Retire-time ack batching (see [`Simulator::set_ack_batching`]).
    /// On by default; results are bit-identical either way, so turning
    /// it off is only useful for the eager-oracle equivalence tests and
    /// per-tick production baselines.
    pub ack_batching: bool,
    /// Timestamped eject batching (see
    /// [`Simulator::set_eject_batching`]). On by default; results are
    /// bit-identical either way, so turning it off is only useful for
    /// the eager-oracle equivalence tests and per-eject baselines.
    pub eject_batching: bool,
    /// Shard width for the per-cycle memory stage (`None` keeps the
    /// simulator's default: `PIMSIM_THREADS` if set, else serial).
    /// Results are bit-identical at every width; see
    /// [`Simulator::set_memory_threads`].
    pub memory_threads: Option<usize>,
}

impl Runner {
    /// A runner over `system` with the given policy and a generous default
    /// cycle budget.
    pub fn new(system: SystemConfig, policy: PolicyKind) -> Self {
        Runner {
            system,
            policy,
            max_gpu_cycles: 60_000_000,
            fast_forward: true,
            event_delivery: true,
            ack_batching: true,
            eject_batching: true,
            memory_threads: None,
        }
    }

    /// Like [`Runner::new`], but resolves the policy through the registry
    /// from a spec string such as `"fr-fcfs"` or
    /// `"f3fs:mem-cap=64,pim-cap=16"` (see [`PolicyKind::parse_spec`]).
    ///
    /// # Errors
    ///
    /// Returns the registry's error for unknown names, unknown parameter
    /// keys, or out-of-range values.
    pub fn from_spec(
        system: SystemConfig,
        spec: &str,
    ) -> Result<Self, pimsim_core::policy::PolicyParseError> {
        Ok(Self::new(system, PolicyKind::parse_spec(spec)?))
    }

    fn simulator(&self) -> Simulator {
        let mut sim = Simulator::new(self.system.clone(), self.policy);
        sim.set_fast_forward(self.fast_forward);
        sim.set_event_delivery(self.event_delivery);
        sim.set_ack_batching(self.ack_batching);
        sim.set_eject_batching(self.eject_batching);
        if let Some(threads) = self.memory_threads {
            sim.set_memory_threads(threads);
        }
        sim
    }
}

/// Result of a standalone run.
#[derive(Debug, Clone)]
pub struct SoloOutcome {
    /// Execution time in GPU cycles.
    pub cycles: u64,
    /// Interconnect injections by the kernel.
    pub icnt_injections: u64,
    /// Merged controller stats.
    pub mc: McStats,
}

impl SoloOutcome {
    /// Interconnect request arrival rate, requests per kilo-GPU-cycle.
    /// A zero-cycle outcome has rate 0, not NaN.
    pub fn icnt_rate(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.icnt_injections as f64 * 1000.0 / self.cycles as f64
    }

    /// DRAM request arrival rate (MEM + PIM arrivals at the controllers),
    /// requests per kilo-GPU-cycle. A zero-cycle outcome has rate 0, not
    /// NaN.
    pub fn dram_rate(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.mc.mem_arrivals + self.mc.pim_arrivals) as f64 * 1000.0 / self.cycles as f64
    }
}

/// Result of a competitive co-execution run.
#[derive(Debug, Clone)]
pub struct CoexecOutcome {
    /// First-run execution time of the GPU (MEM) kernel, GPU cycles (the
    /// cycle budget if it starved).
    pub gpu_first_run: u64,
    /// First-run execution time of the PIM kernel, GPU cycles (the cycle
    /// budget if it starved).
    pub pim_first_run: u64,
    /// The GPU kernel never completed a run within the budget (denial of
    /// service — the paper's fairness-index-0 pathologies).
    pub gpu_starved: bool,
    /// The PIM kernel never completed a run within the budget.
    pub pim_starved: bool,
    /// Total simulated GPU cycles until both had completed once (or the
    /// budget).
    pub total_cycles: u64,
    /// MEM arrivals at the controllers over the window.
    pub mem_arrivals: u64,
    /// PIM arrivals at the controllers over the window.
    pub pim_arrivals: u64,
    /// Merged controller stats.
    pub mc: McStats,
}

impl CoexecOutcome {
    /// MEM request arrival rate at the MC, requests per kilo-GPU-cycle
    /// (Figure 6's quantity before normalization). A zero-cycle outcome
    /// has rate 0, not NaN.
    pub fn mem_arrival_rate(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.mem_arrivals as f64 * 1000.0 / self.total_cycles as f64
    }

    /// Speedups and derived fairness/throughput against standalone times.
    /// A starved kernel reports a speedup of exactly 0, giving the paper's
    /// fairness index of 0.
    pub fn metrics(&self, gpu_alone: u64, pim_alone: u64) -> CoexecMetrics {
        CoexecMetrics {
            mem_speedup: if self.gpu_starved {
                0.0
            } else {
                gpu_alone as f64 / self.gpu_first_run as f64
            },
            pim_speedup: if self.pim_starved {
                0.0
            } else {
                pim_alone as f64 / self.pim_first_run as f64
            },
        }
    }
}

/// Result of a collaborative run.
#[derive(Debug, Clone)]
pub struct CollabOutcome {
    /// End-to-end concurrent execution time, GPU cycles.
    pub concurrent_cycles: u64,
    /// Merged controller stats.
    pub mc: McStats,
}

impl CollabOutcome {
    /// Speedup over sequential execution of the two kernels.
    pub fn speedup(&self, gpu_alone: u64, pim_alone: u64) -> f64 {
        (gpu_alone + pim_alone) as f64 / self.concurrent_cycles as f64
    }

    /// The ideal (perfect-overlap) speedup bound.
    pub fn ideal_speedup(gpu_alone: u64, pim_alone: u64) -> f64 {
        (gpu_alone + pim_alone) as f64 / gpu_alone.max(pim_alone) as f64
    }
}

impl Runner {
    /// Runs `model` alone on SMs `[sm_base, sm_base + slots)`.
    ///
    /// # Errors
    ///
    /// Returns [`CycleBudgetExceeded`] if the run does not finish in
    /// budget.
    pub fn standalone(
        &self,
        model: Box<dyn KernelModel>,
        sm_base: usize,
        is_pim: bool,
    ) -> Result<SoloOutcome, CycleBudgetExceeded> {
        let slots = model.num_slots();
        let mut sim = self.simulator();
        let k = sim.mount(model, (sm_base..sm_base + slots).collect(), is_pim, false);
        sim.run_until_all_first_done(self.max_gpu_cycles)?;
        Ok(SoloOutcome {
            cycles: sim.kernels()[k].first_run_cycles.expect("run finished"),
            icnt_injections: sim.kernels()[k].icnt_injections,
            mc: sim.merged_mc_stats(),
        })
    }

    /// Competitive co-execution: `gpu` on the high SMs, `pim` on SMs
    /// `[0, pim_slots)`, both looped until each completes once.
    ///
    /// `pim_is_pim` is false when the co-runner is another regular GPU
    /// kernel (used by the Figure 5 interference experiment).
    ///
    /// Starvation (a kernel failing to complete any run within the cycle
    /// budget) is a legitimate outcome under pathological policies; the
    /// returned outcome flags it instead of erroring.
    pub fn coexec(
        &self,
        gpu: Box<dyn KernelModel>,
        pim: Box<dyn KernelModel>,
        pim_is_pim: bool,
    ) -> CoexecOutcome {
        let pim_slots = pim.num_slots();
        let gpu_slots = gpu.num_slots();
        assert!(
            pim_slots + gpu_slots <= self.system.gpu.num_sms,
            "kernels need more SMs than the GPU has"
        );
        let mut sim = self.simulator();
        let kp = sim.mount(pim, (0..pim_slots).collect(), pim_is_pim, true);
        let kg = sim.mount(
            gpu,
            (pim_slots..pim_slots + gpu_slots).collect(),
            false,
            true,
        );
        // A budget overrun is starvation data, not an error; a kernel that
        // hasn't finished once while the co-runner looped 25 times is
        // declared starved early to keep sweeps fast.
        let _ = sim.run_with_starvation_cutoff(self.max_gpu_cycles, Some(25));
        let mc = sim.merged_mc_stats();
        let gpu_first = sim.kernels()[kg].first_run_cycles;
        let pim_first = sim.kernels()[kp].first_run_cycles;
        CoexecOutcome {
            gpu_first_run: gpu_first.unwrap_or(self.max_gpu_cycles),
            pim_first_run: pim_first.unwrap_or(self.max_gpu_cycles),
            gpu_starved: gpu_first.is_none(),
            pim_starved: pim_first.is_none(),
            total_cycles: sim.gpu_cycles(),
            mem_arrivals: mc.mem_arrivals,
            pim_arrivals: mc.pim_arrivals,
            mc,
        }
    }

    /// Collaborative co-execution: both kernels once, no restart.
    ///
    /// # Errors
    ///
    /// Returns [`CycleBudgetExceeded`] if the pair does not finish in
    /// budget.
    pub fn collaborative(
        &self,
        gpu: Box<dyn KernelModel>,
        pim: Box<dyn KernelModel>,
    ) -> Result<CollabOutcome, CycleBudgetExceeded> {
        let pim_slots = pim.num_slots();
        let gpu_slots = gpu.num_slots();
        assert!(
            pim_slots + gpu_slots <= self.system.gpu.num_sms,
            "kernels need more SMs than the GPU has"
        );
        let mut sim = self.simulator();
        sim.mount(pim, (0..pim_slots).collect(), true, false);
        sim.mount(
            gpu,
            (pim_slots..pim_slots + gpu_slots).collect(),
            false,
            false,
        );
        let total = sim.run_until_all_first_done(self.max_gpu_cycles)?;
        Ok(CollabOutcome {
            concurrent_cycles: total,
            mc: sim.merged_mc_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_workloads::{
        gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark,
    };

    fn small_cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn runner(policy: PolicyKind) -> Runner {
        let mut r = Runner::new(small_cfg(), policy);
        r.max_gpu_cycles = 20_000_000;
        r
    }

    const SCALE: f64 = 0.02;

    #[test]
    fn from_spec_resolves_through_registry() {
        let r = Runner::from_spec(small_cfg(), "f3fs:mem-cap=64,pim-cap=16").unwrap();
        assert_eq!(
            r.policy,
            PolicyKind::F3fs {
                mem_cap: 64,
                pim_cap: 16
            }
        );
        assert!(Runner::from_spec(small_cfg(), "warp-speed").is_err());
    }

    #[test]
    fn standalone_gpu_kernel_completes() {
        let r = runner(PolicyKind::FrFcfs);
        let k = gpu_kernel(GpuBenchmark(3), 8, SCALE);
        let out = r.standalone(Box::new(k), 0, false).expect("finishes");
        assert!(out.cycles > 0);
        assert!(out.icnt_injections > 0);
        assert!(out.mc.mem_arrivals > 0, "misses must reach DRAM");
        assert!(out.icnt_rate() > 0.0);
    }

    #[test]
    fn standalone_pim_kernel_completes() {
        let r = runner(PolicyKind::FrFcfs);
        let k = pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE);
        let total = pimsim_gpu::KernelModel::total_requests(&k);
        let out = r.standalone(Box::new(k), 0, true).expect("finishes");
        assert!(out.cycles > 0);
        assert_eq!(out.mc.pim_arrivals, total);
        assert_eq!(out.mc.pim_served, total);
        // All-bank lock-step: BLP pinned at the bank count.
        let blp = out.mc.avg_blp().expect("active");
        assert!(blp > 12.0, "PIM BLP should be near 16, got {blp}");
        // Block structure yields high PIM row locality.
        let rbhr = out.mc.pim_rbhr().expect("ops served");
        assert!(rbhr > 0.6, "PIM RBHR should be high, got {rbhr}");
    }

    #[test]
    fn coexec_reports_both_first_runs() {
        let r = runner(PolicyKind::FrRrFcfs);
        let g = gpu_kernel(GpuBenchmark(8), 72, SCALE);
        let p = pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE);
        let out = r.coexec(Box::new(g), Box::new(p), true);
        assert!(out.gpu_first_run > 0);
        assert!(out.pim_first_run > 0);
        assert!(out.total_cycles >= out.gpu_first_run.max(out.pim_first_run));
        assert!(out.mem_arrivals > 0 && out.pim_arrivals > 0);
    }

    #[test]
    fn contention_slows_the_gpu_kernel_down() {
        // The headline interference effect: co-running with a PIM kernel
        // slows a memory-intensive GPU kernel beyond its standalone time.
        let r = runner(PolicyKind::FrFcfs);
        let alone = r
            .standalone(Box::new(gpu_kernel(GpuBenchmark(15), 72, SCALE)), 8, false)
            .expect("alone finishes");
        let out = r.coexec(
            Box::new(gpu_kernel(GpuBenchmark(15), 72, SCALE)),
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            true,
        );
        assert!(!out.gpu_starved && !out.pim_starved);
        assert!(
            out.gpu_first_run > alone.cycles,
            "contended {} must exceed standalone {}",
            out.gpu_first_run,
            alone.cycles
        );
        let m = out.metrics(alone.cycles, out.pim_first_run); // speedup_pim = 1 here
        assert!(m.mem_speedup < 1.0);
    }

    #[test]
    fn collaborative_overlap_beats_nothing() {
        let r = runner(PolicyKind::FrFcfs);
        let g = gpu_kernel(GpuBenchmark(8), 72, SCALE);
        let p = pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE);
        let out = r.collaborative(Box::new(g), Box::new(p)).expect("finishes");
        assert!(out.concurrent_cycles > 0);
        // Speedup over sequential must be at least ~1 (running together
        // can't be slower than twice the slowest here) and at most ideal.
        let ga = r
            .standalone(Box::new(gpu_kernel(GpuBenchmark(8), 72, SCALE)), 8, false)
            .unwrap()
            .cycles;
        let pa = r
            .standalone(
                Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE)),
                0,
                true,
            )
            .unwrap()
            .cycles;
        let s = out.speedup(ga, pa);
        let ideal = CollabOutcome::ideal_speedup(ga, pa);
        assert!(s > 0.5, "degenerate collaborative speedup {s}");
        assert!(s <= ideal * 1.05, "speedup {s} exceeds ideal {ideal}");
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let r = runner(PolicyKind::F3fs {
            mem_cap: 256,
            pim_cap: 256,
        });
        let run = || {
            let g = gpu_kernel(GpuBenchmark(5), 72, SCALE);
            let p = pim_kernel(PimBenchmark(3), 32, 4, 256, SCALE);
            r.coexec(Box::new(g), Box::new(p), true)
        };
        let a = run();
        let b = run();
        assert_eq!(a.gpu_first_run, b.gpu_first_run);
        assert_eq!(a.pim_first_run, b.pim_first_run);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn zero_cycle_solo_rates_are_zero_not_nan() {
        let out = SoloOutcome {
            cycles: 0,
            icnt_injections: 42,
            mc: McStats::default(),
        };
        assert_eq!(out.icnt_rate(), 0.0);
        assert_eq!(out.dram_rate(), 0.0);
    }

    #[test]
    fn zero_cycle_coexec_rate_is_zero_not_nan() {
        let out = CoexecOutcome {
            gpu_first_run: 0,
            pim_first_run: 0,
            gpu_starved: true,
            pim_starved: true,
            total_cycles: 0,
            mem_arrivals: 7,
            pim_arrivals: 7,
            mc: McStats::default(),
        };
        assert_eq!(out.mem_arrival_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "more SMs than the GPU has")]
    fn collaborative_rejects_oversubscribed_sms() {
        let r = runner(PolicyKind::FrFcfs);
        let num_sms = r.system.gpu.num_sms;
        let g = gpu_kernel(GpuBenchmark(8), num_sms, SCALE);
        let p = pim_kernel(PimBenchmark(2), 32, 4, 256, SCALE);
        let _ = r.collaborative(Box::new(g), Box::new(p));
    }
}
