//! Full-system simulator for the PIM-enabled GPU of the reproduced paper.
//!
//! Wires the workspace's substrates together — SM kernel models
//! (`pimsim-gpu`), the crossbar interconnect (`pimsim-noc`), L2 slices
//! (`pimsim-cache`), and PIM-aware memory controllers (`pimsim-core`) over
//! the HBM model (`pimsim-dram`) — into a two-clock-domain cycle
//! simulator, and provides the run harnesses and experiment drivers that
//! regenerate the paper's figures.
//!
//! # Example
//!
//! ```no_run
//! use pimsim_core::policy::PolicyKind;
//! use pimsim_sim::Runner;
//! use pimsim_types::SystemConfig;
//! use pimsim_workloads::{gpu_kernel, pim_kernel, rodinia::GpuBenchmark, pim_suite::PimBenchmark};
//!
//! let runner = Runner::new(SystemConfig::default(), PolicyKind::F3fs { mem_cap: 256, pim_cap: 256 });
//! let gpu = gpu_kernel(GpuBenchmark(4), 72, 0.1);
//! let pim = pim_kernel(PimBenchmark(1), 32, 4, 32, 0.1);
//! let out = runner.coexec(Box::new(gpu), Box::new(pim), true);
//! println!("GPU first run: {} cycles", out.gpu_first_run);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod partition;
pub mod pipeline;
mod run;
pub mod runner;
pub mod system;

pub use partition::{Partition, PartitionStats};
pub use pimsim_gpu::KernelModel;
pub use runner::{CoexecOutcome, CollabOutcome, Runner, SoloOutcome};
pub use system::{CycleBudgetExceeded, MountedKernel, Simulator, StageProfile};
