//! Budgeted run loops and end-of-run metric harvesting for
//! [`Simulator`] — the half of its interface that drives a mounted
//! workload to completion and folds per-channel stats into system totals.

use pimsim_stats::Mergeable;

use crate::partition::Partition;
use crate::pipeline::CycleBudgetExceeded;
use crate::system::Simulator;

impl Simulator {
    /// Runs until every mounted kernel has completed at least one run.
    /// Returns the GPU cycles elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`CycleBudgetExceeded`] if the budget runs out first.
    pub fn run_until_all_first_done(
        &mut self,
        max_gpu_cycles: u64,
    ) -> Result<u64, CycleBudgetExceeded> {
        self.run_with_starvation_cutoff(max_gpu_cycles, None)
    }

    /// Like [`Simulator::run_until_all_first_done`], but additionally
    /// declares starvation — and stops — once some kernel has completed
    /// `cutoff_runs` full runs while another has not completed any. This
    /// keeps denial-of-service cases (MEM-First, PIM-First, G&I) from
    /// burning the entire cycle budget: a kernel that is still unfinished
    /// after the co-runner looped that many times is starved for the
    /// purposes of the fairness metrics.
    ///
    /// # Errors
    ///
    /// Returns [`CycleBudgetExceeded`] on either the budget or the
    /// starvation cutoff, with the per-kernel progress in the message.
    pub fn run_with_starvation_cutoff(
        &mut self,
        max_gpu_cycles: u64,
        cutoff_runs: Option<u64>,
    ) -> Result<u64, CycleBudgetExceeded> {
        while self.kernels.iter().any(|k| k.first_run_cycles.is_none()) {
            let starved = cutoff_runs.is_some_and(|cut| {
                self.kernels.iter().any(|k| k.runs >= cut)
                    && self.kernels.iter().any(|k| k.first_run_cycles.is_none())
            });
            if self.clock.gpu_now() >= max_gpu_cycles || starved {
                let progress = self
                    .kernels
                    .iter()
                    .map(|k| {
                        format!(
                            "{}: runs={} first={:?}",
                            k.model.name(),
                            k.runs,
                            k.first_run_cycles
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                // Account any deferred production before handing control
                // (and the stats surface) back to the caller.
                self.sync_memory();
                return Err(CycleBudgetExceeded {
                    max_gpu_cycles,
                    progress,
                });
            }
            if self.fast_forward && self.skip_idle_span(max_gpu_cycles) {
                // Re-check the budget before stepping: a skip clamped to
                // `max_gpu_cycles` must error exactly like lock-step would.
                continue;
            }
            self.step();
        }
        self.sync_memory();
        Ok(self.clock.gpu_now())
    }

    /// Folds one per-partition stats bundle across all channels — the
    /// single merge loop behind every `merged_*` accessor.
    fn merged<T: Mergeable>(&self, per: impl Fn(&Partition) -> T) -> T {
        let mut agg = T::default();
        for p in self.memory.iter() {
            agg.merge_from(&per(p));
        }
        agg
    }

    /// Fills and writebacks are internal; MEM arrivals at the MC summed
    /// over channels.
    pub fn total_mem_arrivals(&self) -> u64 {
        self.partitions().map(|p| p.mc.stats().mem_arrivals).sum()
    }

    /// PIM arrivals at the MC summed over channels.
    pub fn total_pim_arrivals(&self) -> u64 {
        self.partitions().map(|p| p.mc.stats().pim_arrivals).sum()
    }

    /// Merged DRAM command counters across channels (energy accounting).
    pub fn merged_channel_stats(&self) -> pimsim_dram::ChannelStats {
        self.merged(|p| p.mc.channel_stats())
    }

    /// Merged controller stats across channels.
    pub fn merged_mc_stats(&self) -> pimsim_core::McStats {
        self.merged(|p| p.mc.stats().clone())
    }

    /// Merged step mix across channels: how controller cycles were
    /// serviced — full scheduling steps, stall-memo replays, burst-plan
    /// retirement (observability; see [`pimsim_core::StepMix`]) — plus
    /// the simulator-level per-stage tick counters (controllers leave
    /// those at zero; the pipeline scheduler owns them).
    pub fn merged_step_mix(&self) -> pimsim_core::StepMix {
        let mut mix = self.merged(|p| p.mc.step_mix());
        let t = &self.stage_ticks;
        mix.ticks_issue = t.issue;
        mix.ticks_request_net = t.request_net;
        mix.ticks_memory = t.memory;
        mix.ticks_reply_net = t.reply_net;
        mix.ticks_completion = t.completion;
        mix.completions_delivered = self.completion_stage_delivered();
        let (eject_batches, requests_batched, replay_batches, replayed_visits) =
            self.memory.batching_counters();
        mix.eject_batches = eject_batches;
        mix.requests_batched = requests_batched;
        mix.replay_batches = replay_batches;
        mix.replayed_visits = replayed_visits;
        mix
    }

    /// Total DRAM energy over the run under `energy` coefficients.
    pub fn total_energy(&self, energy: &pimsim_dram::EnergyConfig) -> pimsim_dram::EnergyBreakdown {
        pimsim_dram::channel_energy(
            energy,
            &self.merged_channel_stats(),
            self.clock.dram_now() * self.memory.channel_count() as u64,
            self.cfg.dram.banks as u32,
        )
    }

    /// Total DRAM energy under the configured backend's own coefficients
    /// (HBM-class vs. LPDDR5X-class), via the backend registry.
    pub fn backend_energy(&self) -> pimsim_dram::EnergyBreakdown {
        self.total_energy(&pimsim_dram::backend::energy_for(&self.cfg))
    }
}
