//! The SM issue stage: asks each mounted kernel slot for its next request
//! and injects accepted requests into the request network.

use pimsim_component::Component;
use pimsim_dram::AddressMapper;
use pimsim_types::{AppId, Cycle, Request, RequestKind};

use super::completion::InflightTable;
use super::request_net::RequestNet;
use super::MountedKernel;

/// External state the issue stage borrows for one step: the kernel
/// models it polls, the network it injects into, the ticket table it
/// mints request IDs from, and the address mapper that routes MEM
/// requests to their home channel.
pub struct IssueCtx<'a> {
    /// Mounted kernels, indexed by the stage's SM map.
    pub kernels: &'a mut [MountedKernel],
    /// The request network accepting injections.
    pub net: &'a mut RequestNet,
    /// The inflight ticket table (peek-then-commit ID protocol).
    pub inflight: &'a mut InflightTable,
    /// Physical-address → channel routing for MEM requests.
    pub mapper: &'a AddressMapper,
}

/// The issue stage: per-SM kernel occupancy and MEM-outstanding credits.
#[derive(Debug)]
pub struct IssueStage {
    /// Global SM index -> (kernel index, slot index).
    sm_map: Vec<Option<(usize, usize)>>,
    /// Occupied SM indices, ascending — the step loop iterates this dense
    /// list instead of scanning all `num_sms` slots (standalone runs
    /// mount a handful of SMs on an 80-SM GPU). Kept sorted so the visit
    /// order is identical to the historical full scan.
    occupied: Vec<usize>,
    /// Outstanding requests per global SM (MEM kernels' throttle).
    sm_outstanding: Vec<usize>,
    /// Per-SM cap on outstanding MEM requests.
    max_outstanding_mem: usize,
}

impl IssueStage {
    /// An issue stage for `num_sms` SMs with the given MEM throttle.
    pub fn new(num_sms: usize, max_outstanding_mem: usize) -> Self {
        IssueStage {
            sm_map: vec![None; num_sms],
            occupied: Vec::new(),
            sm_outstanding: vec![0; num_sms],
            max_outstanding_mem,
        }
    }

    /// Assigns global SM `sm` to `(kernel, slot)`.
    ///
    /// # Panics
    ///
    /// Panics if the SM is out of range or already occupied.
    pub fn occupy(&mut self, sm: usize, kernel: usize, slot: usize) {
        assert!(sm < self.sm_map.len(), "SM index out of range");
        assert!(self.sm_map[sm].is_none(), "SM {sm} already occupied");
        self.sm_map[sm] = Some((kernel, slot));
        let at = self.occupied.partition_point(|&s| s < sm);
        self.occupied.insert(at, sm);
    }

    /// Returns one MEM-outstanding credit to `sm` (called by the
    /// completion stage when a reply retires).
    pub fn credit_return(&mut self, sm: usize) {
        debug_assert!(self.sm_outstanding[sm] > 0);
        self.sm_outstanding[sm] -= 1;
    }
}

impl Component for IssueStage {
    type Ctx<'a> = IssueCtx<'a>;

    fn name(&self) -> &'static str {
        "issue"
    }

    fn step(&mut self, now: Cycle, ctx: IssueCtx<'_>) {
        for &sm in &self.occupied {
            let Some((k, slot)) = self.sm_map[sm] else {
                unreachable!("occupied list out of sync with SM map");
            };
            let kernel = &mut ctx.kernels[k];
            let is_pim = kernel.is_pim;
            // MEM kernels are throttled by the SM's outstanding cap; PIM
            // kernels self-throttle per warp (store-buffer credits).
            if !is_pim && self.sm_outstanding[sm] >= self.max_outstanding_mem {
                continue;
            }
            if !ctx.net.can_inject(sm, is_pim) {
                continue;
            }
            // Peek-then-commit: the ID is only consumed from the table if
            // the kernel actually issues, so idle probes leave the
            // allocator untouched (required for fast-forward bit-equality:
            // skipped cycles must not have burned IDs).
            let id = ctx.inflight.peek_id();
            let Some(issued) = kernel.model.try_issue(slot, now, id) else {
                continue;
            };
            debug_assert_eq!(issued.kind.is_pim(), is_pim);
            let req = Request::new(
                id,
                if is_pim { AppId::PIM } else { AppId::GPU },
                issued.kind,
                issued.addr,
                sm as u16,
                now,
            );
            let dest = match issued.kind {
                RequestKind::Pim(cmd) => cmd.channel as usize,
                _ => ctx.mapper.decode(issued.addr).channel as usize,
            };
            ctx.net.inject(now, sm, req, dest);
            kernel.icnt_injections += 1;
            let committed = ctx.inflight.insert(k, slot);
            debug_assert_eq!(committed, id);
            if !is_pim {
                self.sm_outstanding[sm] += 1;
            }
        }
    }

    /// The issue stage holds no timers of its own: whether it will do
    /// work depends entirely on its upstream (kernel pacing), which the
    /// scheduler queries directly via `KernelModel::next_activity_cycle`.
    fn next_activity_cycle(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}
