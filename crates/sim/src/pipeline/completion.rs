//! The completion stage: routes PIM acks and delivered MEM replies back
//! to their issuing kernel slots, via the inflight ticket table.

use pimsim_types::{Cycle, Request, RequestId};

use super::memory::MemoryStage;
use super::{IssueStage, MountedKernel};

/// Tag bit distinguishing simulator-internal request IDs (L2 fills and
/// writebacks) from kernel request IDs held in the inflight table.
pub const INTERNAL_ID_BIT: u64 = 1 << 63;

/// Bit position of the channel lane inside an internal request ID:
/// `INTERNAL_ID_BIT | (channel << INTERNAL_LANE_SHIFT) | counter`.
///
/// Each partition mints internal IDs from its own counter (the lane), so
/// minting needs no cross-partition state — the requirement for stepping
/// partitions in parallel — while IDs stay globally unique (seven lane
/// bits cover up to 128 channels) and monotone *within* a partition.
/// Within-partition monotonicity is the property the controller's
/// completion-heap tie-break depends on; internal IDs never cross
/// partitions, so the cross-partition ordering change relative to the old
/// global counter is unobservable and golden fixtures are preserved.
pub const INTERNAL_LANE_SHIFT: u32 = 56;

/// One slot of the [`InflightTable`].
#[derive(Debug, Clone, Copy)]
struct InflightEntry {
    /// Generation counter, bumped on every free so a recycled slot mints a
    /// fresh 64-bit ID (concurrently inflight IDs stay unique, and the
    /// completion heap's ID tie-break stays deterministic).
    gen: u32,
    /// `(kernel, slot)` owner while occupied.
    owner: Option<(u32, u32)>,
}

/// Free-list slab mapping in-flight kernel [`RequestId`]s to their
/// `(kernel, slot)` owners.
///
/// Replaces the seed's `HashMap<u64, (usize, usize)>`: lookups become a
/// bounds-checked index (the ID's low 32 bits are the slab slot, the high
/// bits its generation), inserts and removes are push/pop on a free list,
/// and the table's footprint stays at the high-water mark of concurrently
/// outstanding requests instead of rehashing on the hot path.
#[derive(Debug, Default)]
pub struct InflightTable {
    entries: Vec<InflightEntry>,
    free: Vec<u32>,
    len: usize,
}

impl InflightTable {
    /// Generations are 31-bit so a composed ID can never collide with
    /// [`INTERNAL_ID_BIT`].
    const GEN_MASK: u32 = 0x7fff_ffff;

    fn compose(gen: u32, slot: u32) -> u64 {
        (u64::from(gen & Self::GEN_MASK) << 32) | u64::from(slot)
    }

    /// The ID the next [`InflightTable::insert`] will return, with no
    /// state change. Letting the kernel model see the ID before the issue
    /// commits means a failed `try_issue` leaves the table — and the ID
    /// sequence — completely untouched, which the fast-forward path
    /// requires: an idle cycle must mutate nothing.
    pub fn peek_id(&self) -> RequestId {
        match self.free.last() {
            Some(&slot) => RequestId(Self::compose(self.entries[slot as usize].gen, slot)),
            None => RequestId(Self::compose(
                0,
                u32::try_from(self.entries.len()).expect("slab"),
            )),
        }
    }

    /// Claims the peeked slot for `(kernel, slot)` and returns its ID.
    pub fn insert(&mut self, kernel: usize, slot: usize) -> RequestId {
        let owner = Some((kernel as u32, slot as u32));
        self.len += 1;
        match self.free.pop() {
            Some(idx) => {
                let e = &mut self.entries[idx as usize];
                debug_assert!(e.owner.is_none(), "free-list slot occupied");
                e.owner = owner;
                RequestId(Self::compose(e.gen, idx))
            }
            None => {
                let idx = u32::try_from(self.entries.len()).expect("slab exceeds u32 slots");
                self.entries.push(InflightEntry { gen: 0, owner });
                RequestId(Self::compose(0, idx))
            }
        }
    }

    /// Releases `id` and returns its owner; `None` for internal IDs,
    /// stale generations, and already-freed slots.
    pub fn remove(&mut self, id: RequestId) -> Option<(usize, usize)> {
        if id.0 & INTERNAL_ID_BIT != 0 {
            return None;
        }
        let slot = (id.0 & 0xffff_ffff) as usize;
        let e = self.entries.get_mut(slot)?;
        if Self::compose(e.gen, slot as u32) != id.0 {
            return None;
        }
        let (k, s) = e.owner.take()?;
        e.gen = (e.gen + 1) & Self::GEN_MASK;
        self.free.push(slot as u32);
        self.len -= 1;
        Some((k as usize, s as usize))
    }

    /// Number of live entries. O(1); the simulator uses this as the cheap
    /// first gate of the idle-span check — any outstanding kernel request
    /// means some component is busy, so the per-partition scan can be
    /// skipped entirely.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no kernel request is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The sink of the pipeline: owns the [`InflightTable`] and the reusable
/// per-cycle scratch buffers, and retires completions back into kernel
/// slots (plus the issue stage's per-SM credit counters).
///
/// Not a [`super::Component`]: it runs twice per GPU cycle — once for the
/// out-of-band PIM ack wires, once for replies the reply network
/// delivered — with the reply network's step in between.
#[derive(Debug, Default)]
pub struct CompletionStage {
    inflight: InflightTable,
    /// Reusable per-cycle buffers (PIM acks, delivered replies).
    ack_scratch: Vec<Request>,
    reply_scratch: Vec<Request>,
    /// Kernel completions retired (acks + replies) — the denominator of
    /// the ticks-per-completion structural metric.
    delivered: u64,
}

impl CompletionStage {
    /// An empty completion stage.
    pub fn new() -> Self {
        Self::default()
    }

    /// The inflight ticket table (the issue stage mints IDs from it).
    pub fn inflight(&self) -> &InflightTable {
        &self.inflight
    }

    /// Mutable access to the inflight ticket table.
    pub fn inflight_mut(&mut self) -> &mut InflightTable {
        &mut self.inflight
    }

    /// Kernel completions retired so far (PIM acks + MEM replies).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Drains every partition's PIM ack schedule up to (and including)
    /// DRAM cycle `limit` and retires the acks (credit return,
    /// out-of-band — acks never cross the reply network). The limit is
    /// the last *serviced* DRAM tick: with retire-time batching a
    /// schedule may hold acks timestamped arbitrarily far ahead, and
    /// they must not become observable before their analytic cycle.
    pub fn collect_acks(
        &mut self,
        memory: &mut MemoryStage,
        kernels: &mut [MountedKernel],
        issue: &mut IssueStage,
        now: Cycle,
        limit: Cycle,
    ) {
        let mut acks = std::mem::take(&mut self.ack_scratch);
        memory.drain_acks_into(limit, &mut acks);
        for ack in &acks {
            self.delivered += u64::from(Self::complete_one(
                &mut self.inflight,
                kernels,
                issue,
                ack,
                now,
                "pim-ack",
            ));
        }
        acks.clear();
        self.ack_scratch = acks;
    }

    /// Hands out the scratch buffer the reply network delivers into; pass
    /// it back through [`CompletionStage::finish_replies`].
    pub fn begin_replies(&mut self) -> Vec<Request> {
        std::mem::take(&mut self.reply_scratch)
    }

    /// Retires the replies [`super::ReplyNet`] delivered this cycle and
    /// reclaims the scratch buffer.
    pub fn finish_replies(
        &mut self,
        mut delivered: Vec<Request>,
        kernels: &mut [MountedKernel],
        issue: &mut IssueStage,
        now: Cycle,
    ) {
        for rep in &delivered {
            self.delivered += u64::from(Self::complete_one(
                &mut self.inflight,
                kernels,
                issue,
                rep,
                now,
                "reply",
            ));
        }
        delivered.clear();
        self.reply_scratch = delivered;
    }

    fn complete_one(
        inflight: &mut InflightTable,
        kernels: &mut [MountedKernel],
        issue: &mut IssueStage,
        req: &Request,
        now: Cycle,
        stage: &'static str,
    ) -> bool {
        let Some((k, slot)) = inflight.remove(req.id) else {
            // Fills and writebacks are simulator-internal: not in the
            // table. Anything else reaching this branch means a kernel
            // completion was lost or delivered twice.
            debug_assert!(
                req.id.0 & INTERNAL_ID_BIT != 0,
                "{stage} completion for unknown kernel request id {:#x} ({:?})",
                req.id.0,
                req.kind
            );
            return false;
        };
        let kernel = &mut kernels[k];
        kernel.model.on_complete(slot, req.id, now);
        if !kernel.is_pim {
            issue.credit_return(kernel.sms[slot]);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_peek_matches_insert_and_is_pure() {
        let mut t = InflightTable::default();
        let peeked = t.peek_id();
        assert_eq!(t.peek_id(), peeked, "peek must be side-effect-free");
        assert_eq!(t.len(), 0);
        let id = t.insert(3, 7);
        assert_eq!(id, peeked);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(id), Some((3, 7)));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn inflight_recycled_slot_gets_fresh_generation() {
        let mut t = InflightTable::default();
        let a = t.insert(0, 0);
        assert_eq!(t.remove(a), Some((0, 0)));
        let b = t.insert(1, 2);
        assert_ne!(a, b, "recycled slot must mint a distinct ID");
        // The stale ID no longer resolves.
        assert_eq!(t.remove(a), None);
        assert_eq!(t.remove(b), Some((1, 2)));
    }

    #[test]
    fn inflight_rejects_internal_and_unknown_ids() {
        let mut t = InflightTable::default();
        let id = t.insert(0, 0);
        assert_eq!(t.remove(RequestId(INTERNAL_ID_BIT | id.0)), None);
        assert_eq!(t.remove(RequestId(id.0 + (1 << 32))), None, "wrong gen");
        assert_eq!(t.remove(RequestId(999)), None, "slot never allocated");
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(id), Some((0, 0)));
        assert_eq!(t.remove(id), None, "double free");
    }

    #[test]
    fn inflight_many_slots_stay_unique_while_outstanding() {
        let mut t = InflightTable::default();
        let ids: Vec<RequestId> = (0..64).map(|i| t.insert(i, i)).collect();
        let mut sorted: Vec<u64> = ids.iter().map(|id| id.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
        assert_eq!(t.len(), 64);
        // Free half, reinsert, and confirm no live ID is ever duplicated.
        for id in &ids[..32] {
            t.remove(*id).unwrap_or_else(|| {
                panic!(
                    "inflight table lost the owner of live request id {:#x} during bulk free",
                    id.0
                )
            });
        }
        let fresh: Vec<RequestId> = (0..32).map(|i| t.insert(100 + i, 0)).collect();
        for f in &fresh {
            assert!(!ids.contains(f), "generation bump must prevent reuse");
        }
        assert_eq!(t.len(), 64);
    }
}
