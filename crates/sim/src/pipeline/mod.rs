//! The simulator's pipeline, decomposed into explicit components.
//!
//! The paper's system (Figure 7) is a pipeline of shared resources:
//!
//! ```text
//! [IssueStage] -> [RequestNet] -> [MemoryStage: L2 + MC + DRAM/PIM]
//!      ^                               |            |
//!      |                        reply wires     ack wires
//!      +-- [CompletionStage] <- [ReplyNet] <------+
//! ```
//!
//! Each stage is a struct owning its internal state; the hand-offs between
//! stages are typed credit-based queues ([`Wire`]/[`Port`]) exposed by the
//! stage that buffers them. Stages that advance on a clock edge implement
//! [`Component`]: [`IssueStage`], [`RequestNet`], and [`ReplyNet`] step on
//! the GPU clock, and each [`crate::partition::Partition`] inside the
//! memory stage steps on the DRAM clock. [`CompletionStage`] is a
//! combinational sink (it runs twice per GPU cycle, once for PIM acks and
//! once for delivered replies), and [`ClockCoupler`] is the exact rational
//! coupling between the two clock domains — neither is a pipeline stage,
//! so neither implements the trait.
//!
//! The scheduler that sequences these stages is [`crate::Simulator`]; its
//! step order is fixed and documented there.

mod clock;
mod completion;
mod issue;
mod memory;
mod reply_net;
mod request_net;

pub use clock::ClockCoupler;
pub use completion::{CompletionStage, InflightTable, INTERNAL_ID_BIT, INTERNAL_LANE_SHIFT};
pub use issue::{IssueCtx, IssueStage};
pub use memory::MemoryStage;
pub use pimsim_component::{Component, Port, Wire, WireStats};
pub use reply_net::{ReplyNet, ReplyNetCtx};
pub use request_net::RequestNet;

use pimsim_gpu::KernelModel;
use pimsim_types::Cycle;

/// A kernel mounted on a set of SMs.
pub struct MountedKernel {
    /// The kernel model.
    pub model: Box<dyn KernelModel>,
    /// Global SM indices this kernel occupies (slot `i` = `sms[i]`).
    pub sms: Vec<usize>,
    /// Whether this kernel issues PIM requests.
    pub is_pim: bool,
    /// Restart the kernel when it completes (the paper's "run in a loop"
    /// methodology).
    pub restart: bool,
    /// GPU cycle the current run started.
    pub run_started: Cycle,
    /// Execution time (GPU cycles) of the first completed run.
    pub first_run_cycles: Option<u64>,
    /// Completed runs.
    pub runs: u64,
    /// Requests injected into the interconnect by this kernel.
    pub icnt_injections: u64,
}

impl std::fmt::Debug for MountedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MountedKernel")
            .field("name", &self.model.name())
            .field("sms", &self.sms.len())
            .field("is_pim", &self.is_pim)
            .field("runs", &self.runs)
            .finish()
    }
}

/// End-of-cycle kernel bookkeeping: records first-run times and restarts
/// looping kernels.
pub fn check_kernel_completion(kernels: &mut [MountedKernel], now: Cycle) {
    for kernel in kernels {
        if !kernel.model.is_done() {
            continue;
        }
        if kernel.restart {
            let elapsed = now + 1 - kernel.run_started;
            if kernel.first_run_cycles.is_none() {
                kernel.first_run_cycles = Some(elapsed);
            }
            kernel.runs += 1;
            kernel.model.reset();
            kernel.run_started = now + 1;
        } else if kernel.first_run_cycles.is_none() {
            kernel.first_run_cycles = Some(now + 1 - kernel.run_started);
            kernel.runs = 1;
        }
    }
}

/// Error returned when a simulation exceeds its cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleBudgetExceeded {
    /// The budget that was exhausted.
    pub max_gpu_cycles: u64,
    /// Human-readable progress description.
    pub progress: String,
}

impl std::fmt::Display for CycleBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} GPU cycles ({})",
            self.max_gpu_cycles, self.progress
        )
    }
}

impl std::error::Error for CycleBudgetExceeded {}
