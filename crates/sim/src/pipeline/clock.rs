//! Exact rational coupling between the GPU and DRAM clock domains.

use pimsim_types::Cycle;

/// The two clock domains of Table I, coupled by the exact integer rational
/// `num/den` = DRAM MHz / GPU MHz (see `SystemConfig::dram_clock_ratio`).
///
/// Per GPU cycle the coupler accrues `num` into an accumulator; every
/// `den` of accumulated credit fires one DRAM tick. Because the state is
/// three integers, a span of idle GPU cycles can be applied in one
/// [`ClockCoupler::jump_to`] that lands on exactly the clock values
/// per-cycle stepping would produce — the property the event-driven
/// fast-forward path relies on.
#[derive(Debug, Clone)]
pub struct ClockCoupler {
    gpu: Cycle,
    dram: Cycle,
    /// Holds `gpu_cycles * num mod den`; a DRAM tick fires per `den` carry.
    acc: u64,
    num: u64,
    den: u64,
}

impl ClockCoupler {
    /// A coupler at cycle zero in both domains.
    ///
    /// # Panics
    ///
    /// Panics if either ratio term is zero.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "clock ratio terms must be nonzero");
        ClockCoupler {
            gpu: 0,
            dram: 0,
            acc: 0,
            num,
            den,
        }
    }

    /// GPU cycles elapsed.
    pub fn gpu_now(&self) -> Cycle {
        self.gpu
    }

    /// DRAM cycles elapsed.
    pub fn dram_now(&self) -> Cycle {
        self.dram
    }

    /// Accrues one GPU cycle of DRAM-clock credit. Call once per GPU
    /// cycle, before draining ticks with [`ClockCoupler::take_dram_tick`].
    pub fn accrue_gpu_cycle(&mut self) {
        self.acc += self.num;
    }

    /// Consumes one pending DRAM tick, returning the cycle number to step
    /// the DRAM domain at, or `None` when the accrued credit is spent.
    pub fn take_dram_tick(&mut self) -> Option<Cycle> {
        if self.acc >= self.den {
            self.acc -= self.den;
            let now = self.dram;
            self.dram += 1;
            Some(now)
        } else {
            None
        }
    }

    /// Consumes every pending DRAM tick at once, returning the first tick
    /// number and the tick count — `(first, n)` stands for the ticks
    /// `first, first+1, …, first+n-1`. Bit-identical to draining the same
    /// credit through repeated [`ClockCoupler::take_dram_tick`] calls;
    /// exists so the memory stage can dispatch one batch per GPU cycle
    /// covering all of its DRAM ticks.
    pub fn take_dram_span(&mut self) -> (Cycle, u64) {
        let first = self.dram;
        let n = self.acc / self.den;
        self.acc -= n * self.den;
        self.dram += n;
        (first, n)
    }

    /// Ends the GPU cycle (call after all stages have stepped).
    pub fn finish_gpu_cycle(&mut self) {
        self.gpu += 1;
    }

    /// The largest GPU-cycle target `g` such that a [`ClockCoupler::jump_to(g)`]
    /// would leave `dram_now() <= dram_bound` — i.e. every DRAM tick the
    /// jump skips over is strictly below `dram_bound`. Used by the
    /// fast-forward path to jump up to (but never past) the memory
    /// stage's stall/burst horizon.
    ///
    /// With `span = g - gpu_now()`, the jump fires
    /// `(acc + span·num) div den` ticks; requiring that to stay `≤
    /// dram_bound - dram_now()` gives
    /// `span ≤ ((dram_bound - dram + 1)·den - 1 - acc) div num`.
    pub fn max_jump_for_dram_bound(&self, dram_bound: Cycle) -> Cycle {
        if dram_bound < self.dram {
            return self.gpu;
        }
        let s = dram_bound - self.dram;
        let span = ((s + 1)
            .saturating_mul(self.den)
            .saturating_sub(1)
            .saturating_sub(self.acc))
            / self.num;
        self.gpu.saturating_add(span)
    }

    /// Jumps both domains over `target - gpu_now()` idle GPU cycles in one
    /// step: `steps = (acc + span*num) div den`, `acc' = same mod den` —
    /// bit-identical to accruing and draining the span cycle by cycle.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `target` is not in the past.
    pub fn jump_to(&mut self, target: Cycle) {
        debug_assert!(target >= self.gpu, "clock jump must move forward");
        let span = target - self.gpu;
        let total = self.acc + span * self.num;
        self.dram += total / self.den;
        self.acc = total % self.den;
        self.gpu = target;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Steps `cycles` GPU cycles the slow way, counting DRAM ticks.
    fn lockstep(c: &mut ClockCoupler, cycles: u64) -> u64 {
        let mut ticks = 0;
        for _ in 0..cycles {
            c.accrue_gpu_cycle();
            while c.take_dram_tick().is_some() {
                ticks += 1;
            }
            c.finish_gpu_cycle();
        }
        ticks
    }

    #[test]
    fn jump_matches_lockstep_for_awkward_ratios() {
        for (num, den) in [(1, 1), (7, 5), (3500, 1410), (1, 3), (5, 7)] {
            let mut a = ClockCoupler::new(num, den);
            let mut b = ClockCoupler::new(num, den);
            lockstep(&mut a, 997);
            b.jump_to(997);
            assert_eq!(a.gpu_now(), b.gpu_now(), "{num}/{den}");
            assert_eq!(a.dram_now(), b.dram_now(), "{num}/{den}");
            assert_eq!(a.acc, b.acc, "{num}/{den}");
            // And again from a mid-stream (nonzero accumulator) state.
            lockstep(&mut a, 13);
            b.jump_to(997 + 13);
            assert_eq!(a.dram_now(), b.dram_now());
            assert_eq!(a.acc, b.acc);
        }
    }

    #[test]
    fn span_drain_matches_tick_by_tick_drain() {
        for (num, den) in [(1, 1), (7, 5), (3500, 1410), (1, 3), (5, 7)] {
            let mut a = ClockCoupler::new(num, den);
            let mut b = ClockCoupler::new(num, den);
            for _ in 0..997 {
                a.accrue_gpu_cycle();
                b.accrue_gpu_cycle();
                let mut ticks_a = Vec::new();
                while let Some(t) = a.take_dram_tick() {
                    ticks_a.push(t);
                }
                let (first, n) = b.take_dram_span();
                let ticks_b: Vec<Cycle> = (0..n).map(|i| first + i).collect();
                assert_eq!(ticks_a, ticks_b, "{num}/{den}");
                a.finish_gpu_cycle();
                b.finish_gpu_cycle();
                assert_eq!(a.dram_now(), b.dram_now(), "{num}/{den}");
                assert_eq!(a.acc, b.acc, "{num}/{den}");
            }
        }
    }

    #[test]
    fn max_jump_is_the_largest_target_within_the_bound() {
        for (num, den) in [(1, 1), (7, 5), (3500, 1410), (1, 3), (5, 7)] {
            let mut c = ClockCoupler::new(num, den);
            lockstep(&mut c, 321); // arbitrary mid-stream state
            for bound_off in [0u64, 1, 2, 17] {
                let bound = c.dram_now() + bound_off;
                let g = c.max_jump_for_dram_bound(bound);
                assert!(g >= c.gpu_now(), "{num}/{den}: jump target in the past");
                // Jumping to g stays within the bound...
                let mut at = c.clone();
                at.jump_to(g);
                assert!(at.dram_now() <= bound, "{num}/{den} bound {bound}");
                // ...and one more GPU cycle would cross it.
                let mut past = c.clone();
                past.jump_to(g + 1);
                assert!(past.dram_now() > bound, "{num}/{den}: g not maximal");
            }
        }
    }

    #[test]
    fn dram_tick_numbers_are_sequential() {
        let mut c = ClockCoupler::new(2, 1);
        c.accrue_gpu_cycle();
        assert_eq!(c.take_dram_tick(), Some(0));
        assert_eq!(c.take_dram_tick(), Some(1));
        assert_eq!(c.take_dram_tick(), None);
        c.finish_gpu_cycle();
        assert_eq!(c.gpu_now(), 1);
        assert_eq!(c.dram_now(), 2);
    }
}
