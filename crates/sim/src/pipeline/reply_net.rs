//! The reply network: the partitions→SMs crossbar. Pulls from each
//! partition's reply wire and delivers completions toward the issuing SM.

use pimsim_component::Component;
use pimsim_noc::Crossbar;
use pimsim_types::{Cycle, Request, SystemConfig, VcMode};

use super::memory::MemoryStage;

/// External state the reply network borrows for one step: the partitions
/// it pulls replies from, and the scratch vector it delivers into (the
/// completion stage retires the delivered requests afterwards).
pub struct ReplyNetCtx<'a> {
    /// The memory stage whose reply wires feed the network.
    pub memory: &'a mut MemoryStage,
    /// Requests delivered to their SM this cycle.
    pub delivered: &'a mut Vec<Request>,
}

/// The partitions→SMs reply crossbar (shared-VC: replies are one class).
#[derive(Debug)]
pub struct ReplyNet {
    xbar: Crossbar,
}

impl ReplyNet {
    /// Builds the reply crossbar from the NoC configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        ReplyNet {
            xbar: Crossbar::new(
                cfg.dram.channels,
                cfg.gpu.num_sms,
                cfg.noc.reply_queue_entries,
                VcMode::Shared,
            ),
        }
    }

    /// Whether the crossbar itself buffers any reply in flight. O(1).
    pub fn has_traffic(&self) -> bool {
        self.xbar.total_occupancy() > 0
    }

    /// The reply path's true activity horizon: the earliest cycle at or
    /// after `now` at which this stage can move a completion, or `None`
    /// while provably quiet.
    ///
    /// The bare [`Component::next_activity_cycle`] consults only the
    /// crossbar, which under-reports once delivery is event-driven:
    /// completions queued in a partition's reply wire but not yet
    /// injected are invisible to it. This variant folds in the memory
    /// stage's reply summary, so a skip licensed by `None` here is sound
    /// even when wires hold queued-but-uninjected replies.
    pub fn horizon(&self, now: Cycle, memory: &MemoryStage) -> Option<Cycle> {
        (self.has_traffic() || memory.replies_pending()).then_some(now)
    }

    /// Advances the crossbar over a span it is known to be quiet (see
    /// [`pimsim_noc::Crossbar::skip_quiet_span`]); `true` iff the span
    /// collapsed to a no-op because nothing was buffered.
    pub fn skip_quiet_span(&mut self, first: Cycle, cycles: u64) -> bool {
        self.xbar.skip_quiet_span(first, cycles)
    }
}

impl Component for ReplyNet {
    type Ctx<'a> = ReplyNetCtx<'a>;

    fn name(&self) -> &'static str {
        "reply-net"
    }

    /// Injects as many buffered replies as each input port has credit
    /// for, then runs one arbitration cycle; ejection at an SM always
    /// succeeds (SMs sink replies without backpressure).
    fn step(&mut self, now: Cycle, ctx: ReplyNetCtx<'_>) {
        for c in 0..ctx.memory.channel_count() {
            // Shared-ref emptiness check first: channels with nothing to
            // inject are left untouched, so their idle memos survive.
            if ctx.memory.get(c).reply().is_empty() {
                continue;
            }
            let p = ctx.memory.partition_mut(c);
            while let Some(rep) = p.reply().peek() {
                let dest = rep.src_port as usize;
                if self.xbar.can_inject(c, false) {
                    let rep = p.reply_mut().recv().expect("peeked");
                    self.xbar
                        .try_inject(now, c, rep, dest)
                        .expect("capacity checked");
                } else {
                    break;
                }
            }
        }
        let delivered = ctx.delivered;
        self.xbar.step(now, |_sm, _vc, req| {
            delivered.push(*req);
            true
        });
    }

    /// Crossbar-only horizon; prefer [`ReplyNet::horizon`], which also
    /// sees replies queued in partition wires awaiting injection.
    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        self.xbar.next_activity_cycle(now)
    }
}
