//! The request network: the SMs→partitions crossbar, ejecting into each
//! partition's ingress port.

use pimsim_component::Component;
use pimsim_noc::{Crossbar, CrossbarStats};
use pimsim_types::{Cycle, Request, SystemConfig};

use super::memory::MemoryStage;

/// The SMs→partitions crossbar (iSlip-arbitrated, per-VC input queues).
#[derive(Debug)]
pub struct RequestNet {
    xbar: Crossbar,
}

impl RequestNet {
    /// Builds the request crossbar from the NoC configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        RequestNet {
            xbar: Crossbar::new(
                cfg.gpu.num_sms,
                cfg.dram.channels,
                cfg.noc.input_queue_entries,
                cfg.noc.vc_mode,
            )
            .with_iterations(cfg.noc.islip_iterations),
        }
    }

    /// Whether input port `input` can accept a request of this class.
    pub fn can_inject(&self, input: usize, is_pim: bool) -> bool {
        self.xbar.can_inject(input, is_pim)
    }

    /// Injects a request whose credit the caller already checked.
    ///
    /// # Panics
    ///
    /// Panics if the input queue is full (check
    /// [`RequestNet::can_inject`] first).
    pub fn inject(&mut self, input: usize, req: Request, dest: usize) {
        self.xbar
            .try_inject(input, req, dest)
            .expect("capacity checked");
    }

    /// Total flits buffered in the input queues.
    pub fn occupancy(&self) -> usize {
        self.xbar.total_occupancy()
    }

    /// Crossbar counters.
    pub fn stats(&self) -> CrossbarStats {
        self.xbar.stats()
    }

    /// Advances the crossbar over a span it is known to be quiet (see
    /// [`pimsim_noc::Crossbar::skip_quiet_span`]); `true` iff the span
    /// collapsed to a no-op because nothing was buffered.
    pub fn skip_quiet_span(&mut self, first: Cycle, cycles: u64) -> bool {
        self.xbar.skip_quiet_span(first, cycles)
    }
}

impl Component for RequestNet {
    type Ctx<'a> = &'a mut MemoryStage;

    fn name(&self) -> &'static str {
        "request-net"
    }

    /// One arbitration cycle: grants eject into the destination
    /// partition's ingress port, with the port's credit as backpressure
    /// (a refused lane keeps the flit queued for the next cycle).
    fn step(&mut self, now: Cycle, memory: &mut MemoryStage) {
        self.xbar.step(now, |out, vc, req| {
            memory.partition_mut(out).try_accept(vc, *req)
        });
    }

    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        self.xbar.next_activity_cycle(now)
    }
}
