//! The request network: the SMs→partitions crossbar, ejecting into each
//! partition's ingress port.
//!
//! Since DESIGN.md §4l the crossbar edge is no longer forced onto the
//! per-tick path: while every buffered flit is PIM, no input lane is
//! full, and every destination lane has provable credit, whole
//! arbitration cycles are *deferred* — recorded as `(cycle, dram, seen)`
//! markers — and replayed in order at the next flush, ejecting each
//! grant into its partition's timestamped staged-ingress schedule
//! instead of through an eager per-eject catch-up.

use pimsim_component::Component;
use pimsim_noc::{Crossbar, CrossbarStats};
use pimsim_types::{Cycle, Request, SystemConfig};

use super::memory::MemoryStage;

/// An arbitration cycle whose live step was deferred: the GPU cycle, its
/// first DRAM tick, and the crossbar's cumulative injection count at
/// defer time (the visibility horizon for the replay).
type DeferredCycle = (Cycle, Cycle, u64);

/// The SMs→partitions crossbar (iSlip-arbitrated, per-VC input queues).
#[derive(Debug)]
pub struct RequestNet {
    xbar: Crossbar,
    /// Deferred arbitration cycles awaiting replay, chronological.
    pending: Vec<DeferredCycle>,
    /// Whether live arbitration cycles may eject through the staged
    /// batch path (the eject-batching toggle, mirrored from the system).
    batched: bool,
}

impl RequestNet {
    /// Builds the request crossbar from the NoC configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        RequestNet {
            xbar: Crossbar::new(
                cfg.gpu.num_sms,
                cfg.dram.channels,
                cfg.noc.input_queue_entries,
                cfg.noc.vc_mode,
            )
            .with_iterations(cfg.noc.islip_iterations),
            pending: Vec::new(),
            batched: true,
        }
    }

    /// Mirrors the system's eject-batching toggle. Off, live arbitration
    /// ejects through the historical per-eject catch-up path only.
    pub fn set_batched(&mut self, on: bool) {
        self.batched = on;
    }

    /// Whether input port `input` can accept a request of this class.
    pub fn can_inject(&self, input: usize, is_pim: bool) -> bool {
        self.xbar.can_inject(input, is_pim)
    }

    /// Injects a request whose credit the caller already checked,
    /// stamping it with the injection cycle.
    ///
    /// # Panics
    ///
    /// Panics if the input queue is full (check
    /// [`RequestNet::can_inject`] first).
    pub fn inject(&mut self, now: Cycle, input: usize, req: Request, dest: usize) {
        self.xbar
            .try_inject(now, input, req, dest)
            .expect("capacity checked");
    }

    /// Flits in flight on the request path: buffered in the crossbar
    /// (including those whose ejection is deferred) plus flits already
    /// ejected into a partition's staged-ingress schedule but not yet
    /// delivered. The fast-forward probe must see both, or it would
    /// report the network quiet while an eject batch is pending.
    pub fn occupancy(&self, memory: &MemoryStage) -> usize {
        self.xbar.total_occupancy() + memory.staged_ejects()
    }

    /// Crossbar counters.
    pub fn stats(&self) -> CrossbarStats {
        self.xbar.stats()
    }

    /// Deferred arbitration cycles awaiting replay.
    pub fn pending_cycles(&self) -> usize {
        self.pending.len()
    }

    /// The earliest cycle at or after `now` at which the request path
    /// can do work, or `None` while it is truly drained — no buffered
    /// flit, no deferred arbitration cycle, no staged-but-undelivered
    /// ejection anywhere.
    pub fn horizon(&self, now: Cycle, memory: &MemoryStage) -> Option<Cycle> {
        (self.xbar.total_occupancy() > 0 || !self.pending.is_empty() || memory.staged_ejects() > 0)
            .then_some(now)
    }

    /// Tries to defer this cycle's arbitration (DESIGN.md §4l). Returns
    /// `true` when the cycle was recorded for later replay (or was a
    /// provable no-op); `false` means the caller must flush and step
    /// live. Deferral is refused whenever its exactness argument does
    /// not hold:
    ///
    /// * a MEM flit is buffered — its L2-hit reply timing is not covered
    ///   by the PIM completion-latency bound;
    /// * some input lane is full — a deferred ejection could then change
    ///   a `can_inject` verdict the live schedule would have answered
    ///   differently (with no lane full, the issue stage's one-injection-
    ///   per-SM-per-cycle bound keeps verdicts identical until the next
    ///   per-cycle check);
    /// * some destination lane lacks credit for every flit buffered
    ///   toward it — replayed ejections must never be refused, so all
    ///   buffered flits must provably fit even if they all eject before
    ///   the next flush (lane occupancy only shrinks as the partition
    ///   replays forward, so the check is conservative-safe).
    pub fn try_defer_cycle(
        &mut self,
        now: Cycle,
        first_dram: Cycle,
        memory: &mut MemoryStage,
    ) -> bool {
        if self.xbar.total_occupancy() == 0 {
            // The live step would early-return without touching arbiter
            // state; nothing to record.
            debug_assert!(self.pending.is_empty());
            return true;
        }
        if self.xbar.buffered_mem() > 0 || self.xbar.has_full_input_lane() {
            return false;
        }
        // Replay ejects at most one flit per deferred cycle into any
        // given destination lane, and every flit it ejects is still
        // buffered at the moment the window's last cycle is recorded —
        // so a lane needs credit for `min(buffered, window length)`
        // arrivals, not for everything queued toward it. The window
        // resets at every flush, which keeps the requirement small even
        // when a destination is heavily backed up.
        //
        // A lane can still starve: a partition that defers for a long
        // stretch accumulates staged arrivals that all reserve credit
        // until its visits replay. That is lag, not backpressure, so it
        // is rescued rather than refused — flush (catch-up replays
        // visits past every deferred grant cycle, so ejections must be
        // staged first), catch up just the starving partition (its
        // staged arrivals deliver and its lane drains through the exact
        // live replay paths), and re-check. A dest that starves even
        // freshly caught up is genuinely backpressured; refuse and let
        // the live schedule apply it.
        let mut rescued = false;
        loop {
            let window = self.pending.len() + 1;
            let mut starving = None;
            'scan: for dest in 0..self.xbar.num_outputs() {
                for vc in 0..self.xbar.vc_count() {
                    let need = self.xbar.buffered_for(dest, vc).min(window);
                    if need > 0 && need > memory.eject_credit(dest, vc) {
                        starving = Some(dest);
                        break 'scan;
                    }
                }
            }
            let Some(dest) = starving else { break };
            if rescued && memory.staged_ejects_for(dest) == 0 {
                return false;
            }
            self.flush_into(memory);
            memory.partition_mut(dest);
            rescued = true;
        }
        self.pending
            .push((now, first_dram, self.xbar.stats().injected));
        true
    }

    /// Replays every deferred arbitration cycle in order, ejecting each
    /// grant into its destination partition's staged-ingress schedule
    /// with the grant cycle as its delivery timestamp. Returns whether
    /// any cycle was replayed.
    ///
    /// Ejections here are unconditional: [`RequestNet::try_defer_cycle`]
    /// proved credit for every buffered flit before each cycle was
    /// recorded, so a refusal would be a bookkeeping bug (the partition
    /// asserts acceptance at delivery time).
    pub fn flush_into(&mut self, memory: &mut MemoryStage) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        for &(gpu, dram, injected_upto) in &self.pending {
            self.xbar.replay_cycle(gpu, injected_upto, |out, vc, req| {
                memory.stage_eject(out, vc, *req, gpu, dram);
                true
            });
        }
        self.pending.clear();
        true
    }

    /// One live arbitration cycle (the path taken whenever
    /// [`RequestNet::try_defer_cycle`] refuses). Even here, grants avoid
    /// the per-eject catch-up: a PIM flit whose destination lane has
    /// provable credit — net of staged arrivals, so the stale count is
    /// an upper bound on the live one and acceptance is certain — is
    /// ejected into the staged-ingress schedule timestamped `now`, which
    /// the visit for this very cycle delivers at the same point the
    /// eager schedule would. Only a MEM flit or a credit-exhausted lane
    /// falls back to the exact hand-off: catch the partition up, land
    /// any arrivals staged for this cycle first (they precede this grant
    /// in the eager lane order), then [`crate::partition::Partition::try_accept`]
    /// with live backpressure. The caller must flush deferred cycles
    /// first so ejections land in arrival order.
    pub fn step_live(&mut self, now: Cycle, first_dram: Cycle, memory: &mut MemoryStage) {
        debug_assert!(self.pending.is_empty(), "flush before stepping live");
        if !self.batched {
            self.xbar.step(now, |out, vc, req| {
                memory.partition_mut(out).try_accept(vc, *req)
            });
            return;
        }
        self.xbar.step(now, |out, vc, req| {
            if req.kind.is_pim() && memory.eject_credit(out, vc) > 0 {
                memory.stage_eject(out, vc, *req, now, first_dram);
                return true;
            }
            let p = memory.partition_mut(out);
            p.flush_staged(now);
            p.try_accept(vc, *req)
        });
    }

    /// Advances the crossbar over a span it is known to be quiet (see
    /// [`pimsim_noc::Crossbar::skip_quiet_span`]); `true` iff the span
    /// collapsed to a no-op because nothing was buffered.
    pub fn skip_quiet_span(&mut self, first: Cycle, cycles: u64) -> bool {
        debug_assert!(self.pending.is_empty(), "cannot skip over deferred cycles");
        self.xbar.skip_quiet_span(first, cycles)
    }
}

impl Component for RequestNet {
    type Ctx<'a> = &'a mut MemoryStage;

    fn name(&self) -> &'static str {
        "request-net"
    }

    /// One live arbitration cycle through the historical per-eject
    /// catch-up path; the system calls [`RequestNet::step_live`], which
    /// honours the eject-batching toggle.
    fn step(&mut self, now: Cycle, memory: &mut MemoryStage) {
        debug_assert!(self.pending.is_empty(), "flush before stepping live");
        self.xbar.step(now, |out, vc, req| {
            memory.partition_mut(out).try_accept(vc, *req)
        });
    }

    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        (self.xbar.total_occupancy() > 0 || !self.pending.is_empty()).then_some(now)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use pimsim_core::PolicyKind;
    use pimsim_dram::AddressMapper;
    use pimsim_types::{AppId, PhysAddr, PimCommand, PimOpKind, RequestId, RequestKind};

    use super::*;

    fn pim_req(id: u64, channel: u16) -> Request {
        Request::new(
            RequestId(id),
            AppId::PIM,
            RequestKind::Pim(PimCommand {
                op: PimOpKind::RfLoad,
                channel,
                row: 0,
                col: 0,
                rf_entry: 0,
                block_start: false,
                block_id: id,
            }),
            PhysAddr(0),
            0,
            0,
        )
    }

    /// Regression for the fast-forward probe: a flit that has left the
    /// crossbar but sits staged-and-undelivered in a partition schedule
    /// must still count as request-path occupancy and keep the horizon
    /// busy — otherwise an idle-span skip could jump over its delivery
    /// cycle.
    #[test]
    fn probe_sees_staged_but_undelivered_ejects() {
        let cfg = SystemConfig::default();
        let mapper = Arc::new(AddressMapper::new(
            &cfg.addr_map,
            &cfg.dram,
            cfg.dram_word_bytes(),
        ));
        let mut memory = MemoryStage::new(&cfg, PolicyKind::FrFcfs, Arc::clone(&mapper));
        let mut net = RequestNet::new(&cfg);
        assert!(net.horizon(0, &memory).is_none(), "fresh path is quiet");

        net.inject(0, 0, pim_req(1, 0), 0);
        assert!(
            net.try_defer_cycle(0, 0, &mut memory),
            "pure-PIM cycle defers"
        );
        assert_eq!(net.pending_cycles(), 1);
        assert_eq!(net.occupancy(&memory), 1);
        assert!(net.horizon(0, &memory).is_some());

        assert!(net.flush_into(&mut memory));
        // The flit left the crossbar (ejected) but has not been delivered
        // into its ingress lane yet; the probe must still see it.
        assert_eq!(net.stats().ejected, 1);
        assert_eq!(memory.staged_ejects(), 1);
        assert_eq!(net.occupancy(&memory), 1, "staged eject still in flight");
        assert!(
            net.horizon(0, &memory).is_some(),
            "probe must not report quiet while an eject batch is pending"
        );

        // Stepping the stage visit for the arrival cycle delivers it.
        memory.step_cycle_all(0, 0, 0, &mapper);
        assert_eq!(memory.staged_ejects(), 0);
        assert_eq!(net.occupancy(&memory), 0);
        assert!(net.horizon(0, &memory).is_none(), "drained path is quiet");
    }
}
