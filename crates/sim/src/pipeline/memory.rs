//! The memory stage: every per-channel partition (L2 slice + memory
//! controller + DRAM/PIM channel), stepped either serially or sharded
//! across a persistent worker pool.
//!
//! # Sharding
//!
//! Partitions are shared-nothing per tick: each owns its L2 slice,
//! controller, and DRAM channel, and the address mapper they all read is
//! immutable. Cross-partition traffic flows only through the request and
//! reply crossbars, which run outside this stage. So one GPU cycle's
//! memory work — the L2 front half plus every pending DRAM tick —
//! can run per-partition in any order, on any thread, and produce
//! bit-identical state. [`MemoryStage::step_cycle_all`] exploits that:
//! with `threads > 1` it boxes each busy partition into a pool job
//! (ownership moves to the worker and returns through a shared bin);
//! with `threads == 1` it runs the exact serial loops.
//!
//! # Idle memoization
//!
//! The fast-forward probe ([`MemoryStage::next_activity_cycle`]) records
//! which partitions reported no activity in `known_idle`. A partition an
//! idle verdict was recorded for is skipped by both the probe and the
//! stepping loops until something can make it busy again — which only
//! the crossbar ejection path can, via [`MemoryStage::partition_mut`],
//! which clears the memo. Draining (acks, replies) only removes work and
//! never resurrects an idle partition, so those paths check emptiness
//! through shared references first and leave memos intact.

use std::sync::{Arc, Mutex};

use pimsim_core::PolicyKind;
use pimsim_dram::AddressMapper;
use pimsim_pool::{Job, WorkerPool};
use pimsim_types::{Cycle, Request, SystemConfig};

use crate::partition::Partition;

/// Stepped partitions return from worker jobs through this shared bin,
/// tagged with their channel so the slots can be refilled.
type ReturnBin = Arc<Mutex<Vec<(usize, Box<Partition>)>>>;

/// Which executor parallel dispatch uses.
#[derive(Debug)]
enum StagePool {
    /// `threads == 1`: no dispatch, pure serial loops.
    Serial,
    /// The process-wide pool has enough lanes; share it.
    Global,
    /// The requested width exceeds the global pool (e.g. a determinism
    /// test forcing 8-way on a small machine); own a dedicated pool.
    Owned(WorkerPool),
}

/// All memory partitions, stepped together in both clock domains: the L2
/// front halves on the GPU clock, the controllers and DRAM channels on
/// the DRAM clock.
///
/// Partition slots are `Option<Box<..>>` so parallel dispatch can move a
/// partition into a worker job and take it back afterwards; outside
/// [`MemoryStage::step_cycle_all`] every slot is `Some`.
#[derive(Debug)]
pub struct MemoryStage {
    partitions: Vec<Option<Box<Partition>>>,
    /// Partitions the fast-forward probe proved idle; skipped by probing
    /// and stepping until [`MemoryStage::partition_mut`] clears the memo.
    known_idle: Vec<bool>,
    /// Whether any partition's reply wire was non-empty at the end of the
    /// last [`MemoryStage::step_cycle_all`]. Replies are only *created*
    /// inside that call (the L2 front half releases fill waiters and
    /// drains hit delays there), so the flag is an exact emptiness
    /// summary from then until the next mutation — which the reply
    /// network's event-driven skip exploits: while `false` and the reply
    /// crossbar is empty, the whole reply/completion tail of the cycle
    /// provably has nothing to move. External drains (the reply network
    /// popping wires) may leave the flag conservatively `true` for a
    /// cycle; that costs one redundant scan, never a missed reply.
    replies_pending: bool,
    threads: usize,
    pool: StagePool,
    bin: ReturnBin,
}

impl MemoryStage {
    /// Builds one partition per DRAM channel, each with its own policy
    /// instance. The shard count defaults to `PIMSIM_THREADS` when set,
    /// else 1 (serial — the historical default).
    pub fn new(cfg: &SystemConfig, policy: PolicyKind) -> Self {
        let channels = cfg.dram.channels;
        let mut stage = MemoryStage {
            partitions: (0..channels)
                .map(|c| Some(Box::new(Partition::new(c, cfg, policy.build()))))
                .collect(),
            known_idle: vec![false; channels],
            replies_pending: false,
            threads: 1,
            pool: StagePool::Serial,
            bin: Arc::new(Mutex::new(Vec::with_capacity(channels))),
        };
        stage.set_threads(pimsim_pool::env_threads().unwrap_or(1));
        stage
    }

    /// Sets the shard width for stepping: 1 = serial (the exact
    /// single-thread code path), `n > 1` = dispatch busy partitions onto
    /// a worker pool. Results are bit-identical at every width.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1).min(self.partitions.len().max(1));
        self.threads = threads;
        self.pool = if threads <= 1 {
            StagePool::Serial
        } else if pimsim_pool::global().threads() >= threads {
            StagePool::Global
        } else {
            StagePool::Owned(WorkerPool::new(threads))
        };
    }

    /// The configured shard width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The partition serving channel `c` (shared; leaves the idle memo
    /// intact).
    pub fn get(&self, c: usize) -> &Partition {
        self.partitions[c].as_deref().expect("partition in slot")
    }

    /// Iterates all partitions (for stats).
    pub fn iter(&self) -> impl Iterator<Item = &Partition> {
        self.partitions
            .iter()
            .map(|p| p.as_deref().expect("partition in slot"))
    }

    /// Mutable access to the partition serving channel `c`. Clears the
    /// partition's idle memo: callers of this method may hand it new work
    /// (crossbar ejection), so the recorded idle verdict no longer holds.
    pub fn partition_mut(&mut self, c: usize) -> &mut Partition {
        self.known_idle[c] = false;
        self.partitions[c]
            .as_deref_mut()
            .expect("partition in slot")
    }

    /// Number of channels (= partitions).
    pub fn channel_count(&self) -> usize {
        self.partitions.len()
    }

    /// Whether any partition had replies queued at the end of the last
    /// [`MemoryStage::step_cycle_all`] (conservatively `true` until the
    /// next step after an external drain). O(1) — the reply network's
    /// skip gate.
    pub fn replies_pending(&self) -> bool {
        self.replies_pending
    }

    /// Drains every partition's PIM ack wire into `out`.
    ///
    /// Goes through shared references first: draining only removes work,
    /// so partitions with empty ack wires are left untouched and keep
    /// their idle memos.
    pub fn drain_acks_into(&mut self, out: &mut Vec<Request>) {
        for slot in &mut self.partitions {
            let p = slot.as_deref_mut().expect("partition in slot");
            if !p.acks().is_empty() {
                p.acks_mut().drain_into(out);
            }
        }
    }

    /// One full GPU cycle of memory work: the L2 front halves at GPU
    /// cycle `now`, then `ticks` DRAM ticks starting at `first_dram` —
    /// serial at width 1, sharded across the pool otherwise.
    ///
    /// Both paths step partition-major: each partition runs its whole
    /// cycle (L2 step plus its DRAM ticks) before the next partition
    /// starts. Interleaving across partitions cannot matter — they are
    /// shared-nothing within the stage — so per-partition state, and
    /// therefore every downstream observable, is bit-identical to the
    /// historical tick-major loop and to any parallel schedule.
    pub fn step_cycle_all(
        &mut self,
        now: Cycle,
        first_dram: Cycle,
        ticks: u64,
        mapper: &Arc<AddressMapper>,
    ) {
        if self.threads <= 1 {
            let mut replies = false;
            for (c, slot) in self.partitions.iter_mut().enumerate() {
                if self.known_idle[c] {
                    continue;
                }
                let p = slot.as_deref_mut().expect("partition in slot");
                p.step_l2(now);
                p.step_dram_span(first_dram, ticks, mapper);
                replies |= !p.reply().is_empty();
            }
            self.replies_pending = replies;
            return;
        }
        let mut jobs: Vec<Job> = Vec::with_capacity(self.partitions.len());
        for (c, slot) in self.partitions.iter_mut().enumerate() {
            if self.known_idle[c] {
                continue;
            }
            let mut p = slot.take().expect("partition in slot");
            let bin = Arc::clone(&self.bin);
            let mapper = Arc::clone(mapper);
            jobs.push(Box::new(move || {
                p.step_l2(now);
                p.step_dram_span(first_dram, ticks, &mapper);
                bin.lock().expect("partition bin poisoned").push((c, p));
            }));
        }
        match &self.pool {
            StagePool::Serial => unreachable!("threads > 1"),
            StagePool::Global => pimsim_pool::global().run_batch(jobs),
            StagePool::Owned(pool) => pool.run_batch(jobs),
        }
        let mut bin = self.bin.lock().expect("partition bin poisoned");
        for (c, p) in bin.drain(..) {
            debug_assert!(self.partitions[c].is_none(), "slot refilled twice");
            self.partitions[c] = Some(p);
        }
        drop(bin);
        // Skipped (known-idle) partitions have empty reply wires by the
        // memo's definition, so scanning the stepped ones suffices.
        self.replies_pending = self.partitions.iter().enumerate().any(|(c, slot)| {
            !self.known_idle[c]
                && !slot
                    .as_deref()
                    .expect("partition in slot")
                    .reply()
                    .is_empty()
        });
    }

    /// Replays the DRAM-tick span `[first, first + ticks)` on every
    /// partition not known idle, advancing each controller's stats
    /// integrals exactly as per-tick stepping would have.
    ///
    /// The fast-forward path calls this after jumping the clocks up to
    /// (but never past) the horizon [`MemoryStage::next_activity_cycle`]
    /// reported: every busy partition answered a horizon at or beyond the
    /// stage minimum, which it only does with all of its buffers empty
    /// and its controller inside a stall window covering the span — so
    /// the per-partition replay is the O(1)
    /// [`MemoryController::quiet_replay_span`] path
    /// ([`crate::partition::Partition::step_dram_span`] falls back to
    /// exact per-tick stepping if it ever is not).
    pub fn quiet_replay_all(&mut self, first: Cycle, ticks: u64, mapper: &Arc<AddressMapper>) {
        if ticks == 0 {
            return;
        }
        for (c, slot) in self.partitions.iter_mut().enumerate() {
            if self.known_idle[c] {
                continue;
            }
            let p = slot.as_deref_mut().expect("partition in slot");
            p.step_dram_span(first, ticks, mapper);
        }
    }

    /// The earliest DRAM cycle at or after `dram_now` at which any
    /// partition has work, or `None` while all are idle.
    ///
    /// Memoizing: a partition that reports no activity is marked in
    /// `known_idle` and not re-probed (nor re-stepped) until the
    /// crossbar-ejection path touches it through
    /// [`MemoryStage::partition_mut`].
    pub fn next_activity_cycle(&mut self, dram_now: Cycle) -> Option<Cycle> {
        let mut min: Option<Cycle> = None;
        for (c, slot) in self.partitions.iter().enumerate() {
            if self.known_idle[c] {
                continue;
            }
            let p = slot.as_deref().expect("partition in slot");
            match p.next_activity_cycle(dram_now) {
                None => self.known_idle[c] = true,
                Some(at) => min = Some(min.map_or(at, |m: Cycle| m.min(at))),
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(threads: usize) -> (MemoryStage, Arc<AddressMapper>) {
        let cfg = SystemConfig::default();
        let mapper = Arc::new(AddressMapper::new(
            &cfg.addr_map,
            &cfg.dram,
            cfg.dram_word_bytes(),
        ));
        let mut m = MemoryStage::new(&cfg, PolicyKind::FrFcfs);
        m.set_threads(threads);
        (m, mapper)
    }

    fn mem_read(id: u64, addr: u64) -> Request {
        use pimsim_types::{AppId, PhysAddr, RequestId, RequestKind};
        Request::new(
            RequestId(id),
            AppId::GPU,
            RequestKind::MemRead,
            PhysAddr(addr),
            3,
            0,
        )
    }

    /// Pushes one read into every channel, steps to quiescence, and
    /// returns per-channel (fills_sent, reply lengths) plus merged stats.
    fn drive(threads: usize) -> Vec<(u64, usize, u64)> {
        let (mut m, mapper) = stage(threads);
        let channels = m.channel_count();
        let spacing = 0x100u64; // one distinct line per channel via mapper
        let mut pushed = 0usize;
        let mut addr = 0u64;
        while pushed < channels * 2 {
            let c = mapper.decode(pimsim_types::PhysAddr(addr)).channel as usize;
            if m.get(c).ingress().lane(0).can_accept() {
                assert!(m.partition_mut(c).try_accept(0, mem_read(addr, addr)));
                pushed += 1;
            }
            addr += spacing;
        }
        for now in 0..400u64 {
            // 1:1 clock coupling is fine for a unit test.
            m.step_cycle_all(now, now, 1, &mapper);
            // Drain replies so REPLY_OUT_CAP never back-pressures.
            for c in 0..channels {
                if !m.get(c).reply().is_empty() {
                    while m.partition_mut(c).reply_mut().recv().is_some() {}
                }
            }
        }
        (0..channels)
            .map(|c| {
                let p = m.get(c);
                (
                    p.stats().fills_sent,
                    p.reply().len(),
                    p.mc.stats().mem_served,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_stepping_matches_serial_bit_for_bit() {
        let serial = drive(1);
        for threads in [2, 8] {
            assert_eq!(drive(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn idle_memo_skips_and_partition_mut_revives() {
        let (mut m, mapper) = stage(1);
        assert_eq!(m.next_activity_cycle(0), None, "everything starts idle");
        assert!(m.known_idle.iter().all(|&b| b), "all memos set");
        // Touching a partition clears only its memo...
        let c = mapper.decode(pimsim_types::PhysAddr(0)).channel as usize;
        assert!(m.partition_mut(c).try_accept(0, mem_read(1, 0)));
        assert!(!m.known_idle[c]);
        assert_eq!(m.known_idle.iter().filter(|&&b| !b).count(), 1);
        // ...and the probe sees its activity again.
        assert_eq!(m.next_activity_cycle(7), Some(7));
    }

    #[test]
    fn replies_pending_tracks_wire_contents() {
        for threads in [1, 4] {
            let (mut m, mapper) = stage(threads);
            assert!(!m.replies_pending(), "fresh stage has no replies");
            let c = mapper.decode(pimsim_types::PhysAddr(0)).channel as usize;
            assert!(m.partition_mut(c).try_accept(0, mem_read(1, 0)));
            let mut saw_pending = false;
            for now in 0..400u64 {
                m.step_cycle_all(now, now, 1, &mapper);
                assert_eq!(
                    m.replies_pending(),
                    (0..m.channel_count()).any(|c| !m.get(c).reply().is_empty()),
                    "flag must match wires right after a step (threads={threads}, now={now})"
                );
                saw_pending |= m.replies_pending();
            }
            assert!(saw_pending, "the read must have produced a reply");
        }
    }

    #[test]
    fn set_threads_clamps_and_reports() {
        let (mut m, _) = stage(1);
        assert_eq!(m.threads(), 1);
        m.set_threads(0);
        assert_eq!(m.threads(), 1);
        m.set_threads(4);
        assert_eq!(m.threads(), 4);
        let over = m.channel_count() + 10;
        m.set_threads(over);
        assert_eq!(m.threads(), m.channel_count());
    }
}
