//! The memory stage: every per-channel partition (L2 slice + memory
//! controller + DRAM/PIM channel), stepped either serially or sharded
//! across a persistent worker pool.
//!
//! # Sharding
//!
//! Partitions are shared-nothing per tick: each owns its L2 slice,
//! controller, and DRAM channel, and the address mapper they all read is
//! immutable. Cross-partition traffic flows only through the request and
//! reply crossbars, which run outside this stage. So one GPU cycle's
//! memory work — the L2 front half plus every pending DRAM tick —
//! can run per-partition in any order, on any thread, and produce
//! bit-identical state. [`MemoryStage::step_cycle_all`] exploits that:
//! with `threads > 1` it boxes each busy partition into a pool job
//! (ownership moves to the worker and returns through a shared bin);
//! with `threads == 1` it runs the exact serial loops.
//!
//! # Idle memoization
//!
//! The fast-forward probe ([`MemoryStage::next_activity_cycle`]) records
//! which partitions reported no activity in `known_idle`. A partition an
//! idle verdict was recorded for is skipped by both the probe and the
//! stepping loops until something can make it busy again — which only
//! the crossbar ejection path can, via [`MemoryStage::partition_mut`],
//! which clears the memo. Draining (acks, replies) only removes work and
//! never resurrects an idle partition, so those paths check emptiness
//! through shared references first and leave memos intact.

use std::sync::{Arc, Mutex};

use pimsim_core::PolicyKind;
use pimsim_dram::AddressMapper;
use pimsim_pool::{Job, WorkerPool};
use pimsim_types::{Cycle, Request, SystemConfig};

use crate::partition::Partition;

/// Stepped partitions return from worker jobs through this shared bin,
/// tagged with their channel so the slots can be refilled.
type ReturnBin = Arc<Mutex<Vec<(usize, Box<Partition>)>>>;

/// Which executor parallel dispatch uses.
#[derive(Debug)]
enum StagePool {
    /// `threads == 1`: no dispatch, pure serial loops.
    Serial,
    /// The process-wide pool has enough lanes; share it.
    Global,
    /// The requested width exceeds the global pool (e.g. a determinism
    /// test forcing 8-way on a small machine); own a dedicated pool.
    Owned(WorkerPool),
}

/// All memory partitions, stepped together in both clock domains: the L2
/// front halves on the GPU clock, the controllers and DRAM channels on
/// the DRAM clock.
///
/// Partition slots are `Option<Box<..>>` so parallel dispatch can move a
/// partition into a worker job and take it back afterwards; outside
/// [`MemoryStage::step_cycle_all`] every slot is `Some`.
#[derive(Debug)]
pub struct MemoryStage {
    partitions: Vec<Option<Box<Partition>>>,
    /// Partitions the fast-forward probe proved idle; skipped by probing
    /// and stepping until [`MemoryStage::partition_mut`] clears the memo.
    known_idle: Vec<bool>,
    /// Whether any partition's reply wire was non-empty at the end of the
    /// last [`MemoryStage::step_cycle_all`]. Replies are only *created*
    /// inside that call (the L2 front half releases fill waiters and
    /// drains hit delays there), so the flag is an exact emptiness
    /// summary from then until the next mutation — which the reply
    /// network's event-driven skip exploits: while `false` and the reply
    /// crossbar is empty, the whole reply/completion tail of the cycle
    /// provably has nothing to move. External drains (the reply network
    /// popping wires) may leave the flag conservatively `true` for a
    /// cycle; that costs one redundant scan, never a missed reply.
    replies_pending: bool,
    /// The next DRAM tick no stage visit (live or recorded) covers yet.
    /// Normally the clock coupler's next tick; while the production side
    /// is deferred (DESIGN.md §4k) individual *partitions* lag behind it
    /// and catch up — exactly, via
    /// [`crate::partition::Partition::replay_spans`] — before anything
    /// can observe their state.
    dram_upto: Cycle,
    /// The address decoding shared by every partition; stored so the
    /// eject path can replay a partition's deferred spans without the
    /// caller threading the mapper through.
    mapper: Arc<AddressMapper>,
    /// Stage visits skipped by deferral, in order: `(gpu_cycle,
    /// first_dram_tick, dram_ticks)` exactly as [`MemoryStage::step_cycle_all`]
    /// would have received them. Drained per partition on demand.
    deferred: Vec<(Cycle, Cycle, u64)>,
    /// Per-partition index of the first entry in `deferred` not yet
    /// replayed on that partition. `synced[c] == deferred.len()` means
    /// partition `c` is current.
    synced: Vec<usize>,
    /// Per-partition cached deferral bound, valid while `!stale[c]`:
    /// every stage visit whose window ends at or before `horizon[c]` is
    /// provably reproducible later on partition `c`. `0` means the
    /// partition needs live service. Invalidated per partition by
    /// anything that can change its horizon: stepping, replay, or a
    /// [`MemoryStage::partition_mut`] access (the crossbar eject path).
    horizon: Vec<Cycle>,
    /// Which entries of `horizon` need recomputation.
    stale: Vec<bool>,
    /// Eject batches staged since construction: +1 each time a
    /// partition's staged-ingress schedule goes empty → non-empty
    /// (DESIGN.md §4l).
    eject_batches: u64,
    /// Requests deposited through the staged (batched) eject path.
    requests_batched: u64,
    /// Per-partition replay batches: one per catch-up that replayed at
    /// least one deferred stage visit on a partition not known idle.
    replay_batches: u64,
    /// Deferred stage visits replayed, summed over all batches. Divided
    /// by `replay_batches` this is the mean deferral window — the §4k/§4l
    /// headline metric.
    replayed_visits: u64,
    threads: usize,
    pool: StagePool,
    bin: ReturnBin,
}

impl MemoryStage {
    /// Builds one partition per DRAM channel, each with its own policy
    /// instance. The shard count defaults to `PIMSIM_THREADS` when set,
    /// else 1 (serial — the historical default).
    pub fn new(cfg: &SystemConfig, policy: PolicyKind, mapper: Arc<AddressMapper>) -> Self {
        let channels = cfg.dram.channels;
        let mut stage = MemoryStage {
            partitions: (0..channels)
                .map(|c| Some(Box::new(Partition::new(c, cfg, policy.build()))))
                .collect(),
            known_idle: vec![false; channels],
            replies_pending: false,
            dram_upto: 0,
            mapper,
            deferred: Vec::new(),
            synced: vec![0; channels],
            horizon: vec![0; channels],
            stale: vec![true; channels],
            eject_batches: 0,
            requests_batched: 0,
            replay_batches: 0,
            replayed_visits: 0,
            threads: 1,
            pool: StagePool::Serial,
            bin: Arc::new(Mutex::new(Vec::with_capacity(channels))),
        };
        stage.set_threads(pimsim_pool::env_threads().unwrap_or(1));
        stage
    }

    /// Sets the shard width for stepping: 1 = serial (the exact
    /// single-thread code path), `n > 1` = dispatch busy partitions onto
    /// a worker pool. Results are bit-identical at every width.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1).min(self.partitions.len().max(1));
        self.threads = threads;
        self.pool = if threads <= 1 {
            StagePool::Serial
        } else if pimsim_pool::global().threads() >= threads {
            StagePool::Global
        } else {
            StagePool::Owned(WorkerPool::new(threads))
        };
    }

    /// The configured shard width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The partition serving channel `c` (shared; leaves the idle memo
    /// intact).
    pub fn get(&self, c: usize) -> &Partition {
        self.partitions[c].as_deref().expect("partition in slot")
    }

    /// Iterates all partitions (for stats).
    pub fn iter(&self) -> impl Iterator<Item = &Partition> {
        self.partitions
            .iter()
            .map(|p| p.as_deref().expect("partition in slot"))
    }

    /// Mutable access to the partition serving channel `c`. First replays
    /// any stage visits deferral skipped on this partition — so callers
    /// (the crossbar eject path, test drivers) always observe the exact
    /// live state, and an arrival can never land *inside* a deferred
    /// span: the partition is caught up before the new work is handed
    /// over. Also clears the partition's idle memo and marks its cached
    /// bulk horizon stale, since the caller may mutate state the horizon
    /// was derived from.
    pub fn partition_mut(&mut self, c: usize) -> &mut Partition {
        self.catch_up_partition(c);
        self.known_idle[c] = false;
        self.stale[c] = true;
        self.partitions[c]
            .as_deref_mut()
            .expect("partition in slot")
    }

    /// Replays partition `c`'s share of the deferred stage visits, if
    /// any. Cheap no-op when the partition is current.
    fn catch_up_partition(&mut self, c: usize) {
        let n = self.deferred.len();
        let start = self.synced[c];
        if start == n {
            return;
        }
        self.synced[c] = n;
        self.stale[c] = true;
        if self.known_idle[c] {
            // A known-idle partition holds no work anywhere; every
            // deferred visit is a provable no-op on it.
            return;
        }
        self.replay_batches += 1;
        self.replayed_visits += (n - start) as u64;
        let p = self.partitions[c]
            .as_deref_mut()
            .expect("partition in slot");
        p.replay_spans(&self.deferred[start..n], &self.mapper);
    }

    /// Deposits a crossbar ejection into channel `c`'s staged-ingress
    /// schedule, for delivery at GPU cycle `gpu_at` (DESIGN.md §4l).
    /// Clears the idle memo — the partition now provably has future
    /// work — and marks its cached horizon stale, but performs *no*
    /// catch-up: the staged arrival stays invisible to the partition
    /// until the stage visit for `gpu_at` is stepped or replayed.
    pub fn stage_eject(
        &mut self,
        c: usize,
        vc: usize,
        req: Request,
        gpu_at: Cycle,
        dram_at: Cycle,
    ) {
        self.known_idle[c] = false;
        self.stale[c] = true;
        let p = self.partitions[c]
            .as_deref_mut()
            .expect("partition in slot");
        if p.staged_len() == 0 {
            self.eject_batches += 1;
        }
        self.requests_batched += 1;
        p.stage_arrival(gpu_at, dram_at, vc, req);
    }

    /// Staged-but-undelivered crossbar ejections across all partitions.
    /// The fast-forward probe counts these as request-path occupancy so
    /// it never reports the network quiet while an eject batch is
    /// pending.
    pub fn staged_ejects(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.as_deref().expect("partition in slot").staged_len())
            .sum()
    }

    /// Staged-but-undelivered crossbar ejections for channel `c` alone —
    /// the request network's starvation probe: a lane short on credit
    /// with staged arrivals outstanding is lagging, not backpressured.
    pub fn staged_ejects_for(&self, c: usize) -> usize {
        self.partitions[c]
            .as_deref()
            .expect("partition in slot")
            .staged_len()
    }

    /// Free slots in channel `c`'s VC-`vc` ingress lane, net of staged
    /// arrivals — the credit the request network checks before deferring
    /// an arbitration cycle. Read-only by design: a partition lagging
    /// behind the stage has lane occupancy at or above its live value
    /// (replay only drains lanes), so it under-reports credit, which is
    /// conservative-safe.
    pub fn eject_credit(&self, c: usize, vc: usize) -> usize {
        self.get(c).eject_credit(vc)
    }

    /// Lower bound on the completion cycle of any request arriving at
    /// channel `c` at DRAM tick `at` (see
    /// [`pimsim_core::MemoryController::arrival_bound`]). Read-only and
    /// lag-sound: a partition behind the stage has a `plan_until` no
    /// later than its live value, so the bound it reports is never above
    /// the live one.
    pub fn arrival_bound(&self, c: usize, at: Cycle) -> Cycle {
        self.get(c).mc.arrival_bound(at)
    }

    /// Cumulative §4l batching counters: `(eject_batches,
    /// requests_batched, replay_batches, replayed_visits)`.
    pub fn batching_counters(&self) -> (u64, u64, u64, u64) {
        (
            self.eject_batches,
            self.requests_batched,
            self.replay_batches,
            self.replayed_visits,
        )
    }

    /// Discards fully-replayed history once every partition is current,
    /// so the deferred list never grows unboundedly.
    fn compact_deferred(&mut self) {
        let n = self.deferred.len();
        if n > 0 && self.synced.iter().all(|&s| s == n) {
            self.deferred.clear();
            self.synced.fill(0);
        }
    }

    /// Number of channels (= partitions).
    pub fn channel_count(&self) -> usize {
        self.partitions.len()
    }

    /// Whether any partition had replies queued at the end of the last
    /// [`MemoryStage::step_cycle_all`] (conservatively `true` until the
    /// next step after an external drain). O(1) — the reply network's
    /// skip gate.
    pub fn replies_pending(&self) -> bool {
        self.replies_pending
    }

    /// Drains every partition's due PIM acks (completion cycle `<=
    /// limit`) into `out`. Acks deposited at retire time with a future
    /// timestamp stay invisible until DRAM time reaches them, so
    /// delivery order and cycle match the eager per-tick path exactly.
    ///
    /// Ack production is *pull-driven* (DESIGN.md §4l): a partition
    /// lagging behind the stage may not yet have produced acks that are
    /// already due, so a lagging partition replays its share of the
    /// deferred visits here, immediately before the read. The replay
    /// runs the exact live schedule, so the wires hold precisely the
    /// acks the eager path would already hold and the drained set is
    /// identical. This makes delivery demand — not per-issue completion
    /// latency — the cadence at which busy partitions sync.
    ///
    /// The pull is skipped when no *unproduced* ack can be due yet:
    /// every ack an unreplayed visit can produce comes from an issue at
    /// or after the partition's first unreplayed DRAM tick `f`, and
    /// plan-covered issues deposited their acks at retire time (already
    /// harvested into the wire at the last sync), so the earliest
    /// unproduced due is bounded below by
    /// [`pimsim_core::MemoryController::arrival_bound`]`(f)`. When that
    /// bound clears `limit`, everything due is already in the wire and
    /// the lag keeps accumulating — this is what keeps consecutive
    /// delivery cycles (a throttled kernel draining its credit cap) from
    /// shattering windows into single-visit replays. The caller must
    /// stage pending crossbar ejections (`RequestNet::flush_into`)
    /// first, like every other catch-up entry point.
    pub fn drain_acks_into(&mut self, limit: Cycle, out: &mut Vec<Request>) {
        let n = self.deferred.len();
        for c in 0..self.partitions.len() {
            let start = self.synced[c];
            if start == n {
                continue;
            }
            let f = self.deferred[start].1;
            let p = self.partitions[c].as_deref().expect("partition in slot");
            if p.mc.arrival_bound(f) > limit {
                continue;
            }
            self.catch_up_partition(c);
        }
        self.compact_deferred();
        for slot in &mut self.partitions {
            let p = slot.as_deref_mut().expect("partition in slot");
            if p.acks().has_due(limit) {
                p.acks_mut().drain_due_into(limit, out);
            }
        }
    }

    /// One full GPU cycle of memory work: the L2 front halves at GPU
    /// cycle `now`, then `ticks` DRAM ticks starting at `first_dram` —
    /// serial at width 1, sharded across the pool otherwise.
    ///
    /// Both paths step partition-major: each partition runs its whole
    /// cycle (L2 step plus its DRAM ticks) before the next partition
    /// starts. Interleaving across partitions cannot matter — they are
    /// shared-nothing within the stage — so per-partition state, and
    /// therefore every downstream observable, is bit-identical to the
    /// historical tick-major loop and to any parallel schedule.
    pub fn step_cycle_all(
        &mut self,
        now: Cycle,
        first_dram: Cycle,
        ticks: u64,
        mapper: &Arc<AddressMapper>,
    ) {
        // Stage visits skipped by deferral are replayed first, inside the
        // same per-partition visit (and on the same worker, in the
        // parallel path): replays run the exact live code paths, so
        // replay-then-step is exactly the eager order.
        debug_assert!(self.dram_upto <= first_dram, "DRAM service point ran ahead");
        self.dram_upto = first_dram + ticks;
        let n = self.deferred.len();
        if self.threads <= 1 {
            let mut replies = false;
            for (c, slot) in self.partitions.iter_mut().enumerate() {
                if self.known_idle[c] {
                    self.synced[c] = n;
                    continue;
                }
                let start = self.synced[c];
                self.synced[c] = n;
                self.stale[c] = true;
                if start < n {
                    self.replay_batches += 1;
                    self.replayed_visits += (n - start) as u64;
                }
                let p = slot.as_deref_mut().expect("partition in slot");
                p.replay_spans(&self.deferred[start..n], mapper);
                p.step_l2(now);
                p.step_dram_span(first_dram, ticks, mapper);
                replies |= !p.reply().is_empty();
            }
            self.deferred.clear();
            self.synced.fill(0);
            self.replies_pending = replies;
            return;
        }
        let spans: Arc<[(Cycle, Cycle, u64)]> = Arc::from(std::mem::take(&mut self.deferred));
        let mut jobs: Vec<Job> = Vec::with_capacity(self.partitions.len());
        for (c, slot) in self.partitions.iter_mut().enumerate() {
            let start = std::mem::replace(&mut self.synced[c], 0);
            if self.known_idle[c] {
                continue;
            }
            self.stale[c] = true;
            if start < spans.len() {
                self.replay_batches += 1;
                self.replayed_visits += (spans.len() - start) as u64;
            }
            let mut p = slot.take().expect("partition in slot");
            let bin = Arc::clone(&self.bin);
            let mapper = Arc::clone(mapper);
            let spans = Arc::clone(&spans);
            jobs.push(Box::new(move || {
                p.replay_spans(&spans[start..], &mapper);
                p.step_l2(now);
                p.step_dram_span(first_dram, ticks, &mapper);
                bin.lock().expect("partition bin poisoned").push((c, p));
            }));
        }
        match &self.pool {
            StagePool::Serial => unreachable!("threads > 1"),
            StagePool::Global => pimsim_pool::global().run_batch(jobs),
            StagePool::Owned(pool) => pool.run_batch(jobs),
        }
        let mut bin = self.bin.lock().expect("partition bin poisoned");
        for (c, p) in bin.drain(..) {
            debug_assert!(self.partitions[c].is_none(), "slot refilled twice");
            self.partitions[c] = Some(p);
        }
        drop(bin);
        // Skipped (known-idle) partitions have empty reply wires by the
        // memo's definition, so scanning the stepped ones suffices.
        self.replies_pending = self.partitions.iter().enumerate().any(|(c, slot)| {
            !self.known_idle[c]
                && !slot
                    .as_deref()
                    .expect("partition in slot")
                    .reply()
                    .is_empty()
        });
    }

    /// Replays the DRAM-tick span `[first, first + ticks)` on every
    /// partition not known idle, advancing each controller's stats
    /// integrals exactly as per-tick stepping would have.
    ///
    /// The fast-forward path calls this after jumping the clocks up to
    /// (but never past) the horizon [`MemoryStage::next_activity_cycle`]
    /// reported: every busy partition answered a horizon at or beyond the
    /// stage minimum, which it only does with all of its buffers empty
    /// and its controller inside a stall window covering the span — so
    /// the per-partition replay is the O(1)
    /// [`MemoryController::quiet_replay_span`] path
    /// ([`crate::partition::Partition::step_dram_span`] falls back to
    /// exact per-tick stepping if it ever is not).
    pub fn quiet_replay_all(&mut self, first: Cycle, ticks: u64, mapper: &Arc<AddressMapper>) {
        if ticks == 0 {
            return;
        }
        debug_assert!(
            self.dram_upto == first && self.deferred.is_empty(),
            "bulk replay must start at the service point (catch up first)"
        );
        self.dram_upto = first + ticks;
        for (c, slot) in self.partitions.iter_mut().enumerate() {
            if self.known_idle[c] {
                continue;
            }
            self.stale[c] = true;
            let p = slot.as_deref_mut().expect("partition in slot");
            p.step_dram_span(first, ticks, mapper);
        }
    }

    /// Records one stage visit — GPU cycle `now` with DRAM ticks
    /// `[first_dram, first_dram + ticks)` — as deferred instead of
    /// stepping it. Only legal right after
    /// [`MemoryStage::can_defer_through`]`(first_dram + ticks)` returned
    /// `true`: every partition's cached horizon covers the window, so
    /// the visit is replayable with bit-identical state and nothing
    /// observable (a reply, an ack falling due, a fill) can surface
    /// inside it. O(1) — this is the production side's event-driven
    /// payoff (DESIGN.md §4k).
    pub fn defer_cycle(&mut self, now: Cycle, first_dram: Cycle, ticks: u64) {
        debug_assert!(
            self.dram_upto == first_dram,
            "deferred visit must extend the recorded history"
        );
        self.deferred.push((now, first_dram, ticks));
        self.dram_upto = first_dram + ticks;
    }

    /// Whether the stage visit ending at DRAM tick `end` — its GPU-cycle
    /// L2 front halves included — can be deferred and replayed later with
    /// bit-identical state and no observable surfacing inside the window
    /// (DESIGN.md §4k): every partition not known idle must report a bulk
    /// horizon at or beyond `end`. Horizons are cached per partition
    /// until something can change them (stepping, replay, or a crossbar
    /// eject through [`MemoryStage::partition_mut`]); a deferral itself
    /// mutates nothing, so back-to-back quiet cycles re-check against
    /// cached values only.
    pub fn can_defer_through(&mut self, end: Cycle) -> bool {
        for c in 0..self.partitions.len() {
            if self.known_idle[c] {
                continue;
            }
            if self.stale[c] {
                // The horizon is taken from this partition's own synced
                // position: its state has not advanced past that point.
                let from = match self.deferred.get(self.synced[c]) {
                    Some(&(_, first, _)) => first,
                    None => self.dram_upto,
                };
                let p = self.partitions[c].as_deref().expect("partition in slot");
                self.horizon[c] = p.bulk_horizon(from).unwrap_or(0);
                self.stale[c] = false;
            }
            // `0` refuses outright: a partition needing live service
            // needs its GPU cycle even when the span carries zero DRAM
            // ticks.
            if self.horizon[c] == 0 || end > self.horizon[c] {
                return false;
            }
        }
        true
    }

    /// Second-chance deferral check: catches up any *lagging* partition
    /// whose cached horizon refuses the window ending at `end`, then
    /// re-evaluates. A partition that lags the stage reports a horizon
    /// frozen at its last sync point — typically a burst plan that has
    /// long since been succeeded by the next one — so a refusal from it
    /// says nothing about the live schedule. Replaying just that
    /// partition's visits (through the exact live code paths) forms the
    /// successor plan and usually re-opens the window, keeping one stale
    /// horizon from ending deferral for all partitions (DESIGN.md §4l).
    ///
    /// The caller must flush the request network first: catch-up replays
    /// visits past every deferred ejection's grant cycle, so those
    /// ejections must already be staged.
    ///
    /// Returns `true` when every partition's refreshed horizon covers
    /// `end`; `false` means some *current* partition genuinely needs its
    /// visit stepped live.
    pub fn refresh_lagging_through(&mut self, end: Cycle) -> bool {
        let n = self.deferred.len();
        for c in 0..self.partitions.len() {
            if self.known_idle[c] {
                continue;
            }
            if self.stale[c] {
                let from = match self.deferred.get(self.synced[c]) {
                    Some(&(_, first, _)) => first,
                    None => self.dram_upto,
                };
                let p = self.partitions[c].as_deref().expect("partition in slot");
                self.horizon[c] = p.bulk_horizon(from).unwrap_or(0);
                self.stale[c] = false;
            }
            if (self.horizon[c] == 0 || end > self.horizon[c]) && self.synced[c] < n {
                self.catch_up_partition(c);
                let p = self.partitions[c].as_deref().expect("partition in slot");
                self.horizon[c] = p.bulk_horizon(self.dram_upto).unwrap_or(0);
                self.stale[c] = false;
            }
            if self.horizon[c] == 0 || end > self.horizon[c] {
                return false;
            }
        }
        true
    }

    /// Replays every deferred stage visit on every partition, leaving all
    /// of them current through `target` (which must equal the recorded
    /// history's end — the stage never lags the clock, only partitions
    /// lag the stage). Must run before anything probes or mutates
    /// per-partition state out of band — the fast-forward probe,
    /// end-of-run stats harvesting — so no observer ever sees a partition
    /// whose deferred visits have not been accounted.
    pub fn catch_up_to(&mut self, target: Cycle) {
        debug_assert!(
            self.deferred.is_empty() || target == self.dram_upto,
            "catch-up target must be the recorded history's end"
        );
        for c in 0..self.partitions.len() {
            self.catch_up_partition(c);
        }
        self.compact_deferred();
    }

    /// The earliest DRAM cycle at or after `dram_now` at which any
    /// partition has work, or `None` while all are idle.
    ///
    /// Memoizing: a partition that reports no activity is marked in
    /// `known_idle` and not re-probed (nor re-stepped) until the
    /// crossbar-ejection path touches it through
    /// [`MemoryStage::partition_mut`].
    pub fn next_activity_cycle(&mut self, dram_now: Cycle) -> Option<Cycle> {
        let mut min: Option<Cycle> = None;
        for (c, slot) in self.partitions.iter().enumerate() {
            if self.known_idle[c] {
                continue;
            }
            let p = slot.as_deref().expect("partition in slot");
            match p.next_activity_cycle(dram_now) {
                None => self.known_idle[c] = true,
                Some(at) => min = Some(min.map_or(at, |m: Cycle| m.min(at))),
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(threads: usize) -> (MemoryStage, Arc<AddressMapper>) {
        let cfg = SystemConfig::default();
        let mapper = Arc::new(AddressMapper::new(
            &cfg.addr_map,
            &cfg.dram,
            cfg.dram_word_bytes(),
        ));
        let mut m = MemoryStage::new(&cfg, PolicyKind::FrFcfs, Arc::clone(&mapper));
        m.set_threads(threads);
        (m, mapper)
    }

    fn mem_read(id: u64, addr: u64) -> Request {
        use pimsim_types::{AppId, PhysAddr, RequestId, RequestKind};
        Request::new(
            RequestId(id),
            AppId::GPU,
            RequestKind::MemRead,
            PhysAddr(addr),
            3,
            0,
        )
    }

    /// Pushes one read into every channel, steps to quiescence, and
    /// returns per-channel (fills_sent, reply lengths) plus merged stats.
    fn drive(threads: usize) -> Vec<(u64, usize, u64)> {
        let (mut m, mapper) = stage(threads);
        let channels = m.channel_count();
        let spacing = 0x100u64; // one distinct line per channel via mapper
        let mut pushed = 0usize;
        let mut addr = 0u64;
        while pushed < channels * 2 {
            let c = mapper.decode(pimsim_types::PhysAddr(addr)).channel as usize;
            if m.get(c).ingress().lane(0).can_accept() {
                assert!(m.partition_mut(c).try_accept(0, mem_read(addr, addr)));
                pushed += 1;
            }
            addr += spacing;
        }
        for now in 0..400u64 {
            // 1:1 clock coupling is fine for a unit test.
            m.step_cycle_all(now, now, 1, &mapper);
            // Drain replies so REPLY_OUT_CAP never back-pressures.
            for c in 0..channels {
                if !m.get(c).reply().is_empty() {
                    while m.partition_mut(c).reply_mut().recv().is_some() {}
                }
            }
        }
        (0..channels)
            .map(|c| {
                let p = m.get(c);
                (
                    p.stats().fills_sent,
                    p.reply().len(),
                    p.mc.stats().mem_served,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_stepping_matches_serial_bit_for_bit() {
        let serial = drive(1);
        for threads in [2, 8] {
            assert_eq!(drive(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn idle_memo_skips_and_partition_mut_revives() {
        let (mut m, mapper) = stage(1);
        assert_eq!(m.next_activity_cycle(0), None, "everything starts idle");
        assert!(m.known_idle.iter().all(|&b| b), "all memos set");
        // Touching a partition clears only its memo...
        let c = mapper.decode(pimsim_types::PhysAddr(0)).channel as usize;
        assert!(m.partition_mut(c).try_accept(0, mem_read(1, 0)));
        assert!(!m.known_idle[c]);
        assert_eq!(m.known_idle.iter().filter(|&&b| !b).count(), 1);
        // ...and the probe sees its activity again.
        assert_eq!(m.next_activity_cycle(7), Some(7));
    }

    #[test]
    fn replies_pending_tracks_wire_contents() {
        for threads in [1, 4] {
            let (mut m, mapper) = stage(threads);
            assert!(!m.replies_pending(), "fresh stage has no replies");
            let c = mapper.decode(pimsim_types::PhysAddr(0)).channel as usize;
            assert!(m.partition_mut(c).try_accept(0, mem_read(1, 0)));
            let mut saw_pending = false;
            for now in 0..400u64 {
                m.step_cycle_all(now, now, 1, &mapper);
                assert_eq!(
                    m.replies_pending(),
                    (0..m.channel_count()).any(|c| !m.get(c).reply().is_empty()),
                    "flag must match wires right after a step (threads={threads}, now={now})"
                );
                saw_pending |= m.replies_pending();
            }
            assert!(saw_pending, "the read must have produced a reply");
        }
    }

    #[test]
    fn set_threads_clamps_and_reports() {
        let (mut m, _) = stage(1);
        assert_eq!(m.threads(), 1);
        m.set_threads(0);
        assert_eq!(m.threads(), 1);
        m.set_threads(4);
        assert_eq!(m.threads(), 4);
        let over = m.channel_count() + 10;
        m.set_threads(over);
        assert_eq!(m.threads(), m.channel_count());
    }
}
