//! The memory stage: every per-channel partition (L2 slice + memory
//! controller + DRAM/PIM channel), plus the internal-ID allocator for L2
//! fills and writebacks.

use pimsim_core::PolicyKind;
use pimsim_dram::AddressMapper;
use pimsim_types::{Cycle, RequestId, SystemConfig};

use super::completion::INTERNAL_ID_BIT;
use crate::partition::Partition;

/// All memory partitions, stepped together in both clock domains: the L2
/// front halves on the GPU clock, the controllers and DRAM channels on
/// the DRAM clock.
#[derive(Debug)]
pub struct MemoryStage {
    partitions: Vec<Partition>,
    /// Monotonic counter for simulator-internal IDs (L2 fills and
    /// writebacks), tagged with [`INTERNAL_ID_BIT`].
    next_internal_id: u64,
}

impl MemoryStage {
    /// Builds one partition per DRAM channel, each with its own policy
    /// instance.
    pub fn new(cfg: &SystemConfig, policy: PolicyKind) -> Self {
        MemoryStage {
            partitions: (0..cfg.dram.channels)
                .map(|c| Partition::new(c, cfg, policy.build()))
                .collect(),
            next_internal_id: 0,
        }
    }

    /// The partitions (for stats).
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Mutable access to all partitions.
    pub fn partitions_mut(&mut self) -> &mut [Partition] {
        &mut self.partitions
    }

    /// Mutable access to the partition serving channel `c`.
    pub fn partition_mut(&mut self, c: usize) -> &mut Partition {
        &mut self.partitions[c]
    }

    /// Number of channels (= partitions).
    pub fn channel_count(&self) -> usize {
        self.partitions.len()
    }

    /// One GPU-clock tick of every partition's L2 front half. Fill and
    /// writeback IDs are minted here: internal IDs live outside the
    /// inflight table — [`INTERNAL_ID_BIT`] keeps the two namespaces
    /// disjoint — and are only minted while traffic is in flight, so the
    /// sequence is identical with fast-forward on or off.
    pub fn step_l2_all(&mut self, now: Cycle) {
        let next = &mut self.next_internal_id;
        for p in &mut self.partitions {
            let mut alloc = || {
                let id = RequestId(INTERNAL_ID_BIT | *next);
                *next += 1;
                id
            };
            p.step_l2(now, &mut alloc);
        }
    }

    /// One DRAM-clock tick of every partition's controller and channel.
    pub fn step_dram_all(&mut self, dram_now: Cycle, mapper: &AddressMapper) {
        for p in &mut self.partitions {
            p.step_dram(dram_now, mapper);
        }
    }

    /// The earliest DRAM cycle at or after `dram_now` at which any
    /// partition has work, or `None` while all are idle.
    pub fn next_activity_cycle(&self, dram_now: Cycle) -> Option<Cycle> {
        self.partitions
            .iter()
            .filter_map(|p| p.next_activity_cycle(dram_now))
            .min()
    }
}
