//! Figure 5: average slowdown of the Rodinia suite on 72 SMs when
//! co-executing with memory-intensive GPU kernels vs. a PIM kernel.
//!
//! The co-runners are the paper's picks: G4 (interconnect rate), G6
//! (BLP), G15 (DRAM rate), G17 (RBHR) on 8 SMs, and the PIM kernel P1.
//! The "72 SMs, no contention" bar isolates the SM-loss effect from
//! memory contention.

use pimsim_core::PolicyKind;
use pimsim_types::SystemConfig;
use pimsim_workloads::{
    gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::memory_intensive_picks,
    rodinia::GpuBenchmark,
};

use crate::runner::Runner;

use super::sweep::parallel_map;

/// One bar of Figure 5.
#[derive(Debug, Clone)]
pub struct InterferenceBar {
    /// Co-runner label (`none (72 SMs)`, `G4 (cfd)`, …, `P1 (Stream Add)`).
    pub corunner: String,
    /// Average speedup of the Rodinia suite on 72 SMs, normalized to its
    /// 80-SM standalone time.
    pub avg_speedup: f64,
}

/// Runs the Figure 5 experiment.
///
/// For every Rodinia kernel (on 72 SMs) × co-runner (on 8 SMs), measures
/// the victim's first-run time and normalizes to its 80-SM standalone run.
pub fn run_interference(system: &SystemConfig, scale: f64, budget: u64) -> Vec<InterferenceBar> {
    let victims = GpuBenchmark::all();
    // 80-SM standalone baselines.
    let sys = system.clone();
    let base80: Vec<u64> = parallel_map(victims.clone(), move |v| {
        let mut r = Runner::new(sys.clone(), PolicyKind::FrFcfs);
        r.max_gpu_cycles = budget * 4;
        r.standalone(Box::new(gpu_kernel(v, 80, scale)), 0, false)
            .unwrap_or_else(|e| panic!("baseline {v}: {e}"))
            .cycles
    });

    #[derive(Clone, Copy, PartialEq)]
    enum Corunner {
        None,
        Gpu(GpuBenchmark),
        Pim(PimBenchmark),
    }
    let mut corunners = vec![Corunner::None];
    corunners.extend(memory_intensive_picks().into_iter().map(Corunner::Gpu));
    corunners.push(Corunner::Pim(PimBenchmark(1)));

    let channels = system.dram.channels;
    let warps = system.gpu.pim_warps_per_sm;
    let outstanding = system.gpu.max_outstanding_pim_per_warp as u32;

    let mut jobs = Vec::new();
    for (vi, &v) in victims.iter().enumerate() {
        for (ci, &c) in corunners.iter().enumerate() {
            jobs.push((vi, v, ci, c));
        }
    }
    let sys = system.clone();
    let speedups = parallel_map(jobs, move |(vi, v, ci, c)| {
        let mut r = Runner::new(sys.clone(), PolicyKind::FrFcfs);
        r.max_gpu_cycles = budget;
        let victim = Box::new(gpu_kernel(v, 72, scale));
        let contended = match c {
            Corunner::None => {
                // 72 SMs, no contention: standalone run on 72 SMs.
                r.max_gpu_cycles = budget * 4;
                r.standalone(victim, 8, false)
                    .unwrap_or_else(|e| panic!("{v}/72: {e}"))
                    .cycles
            }
            Corunner::Gpu(g) => {
                let co = Box::new(gpu_kernel(g, 8, scale * 0.5));
                r.coexec(victim, co, false).gpu_first_run
            }
            Corunner::Pim(p) => {
                let co = Box::new(pim_kernel(p, channels, warps, outstanding, scale));
                r.coexec(victim, co, true).gpu_first_run
            }
        };
        (vi, ci, base80[vi] as f64 / contended as f64)
    });

    let labels: Vec<String> = corunners
        .iter()
        .map(|c| match c {
            Corunner::None => "none (72 SMs)".to_owned(),
            Corunner::Gpu(g) => g.to_string(),
            Corunner::Pim(p) => p.to_string(),
        })
        .collect();
    let mut sums = vec![0.0f64; corunners.len()];
    let mut counts = vec![0usize; corunners.len()];
    for (vi, ci, s) in speedups {
        let _ = vi;
        sums[ci] += s;
        counts[ci] += 1;
    }
    labels
        .into_iter()
        .enumerate()
        .map(|(ci, corunner)| InterferenceBar {
            corunner,
            avg_speedup: sums[ci] / counts[ci].max(1) as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down check of the paper's headline claim: a PIM co-runner
    /// hurts more than any GPU co-runner (Figure 5 reports a 60% average
    /// slowdown with P1 vs. a worst case of 30% with Rodinia kernels).
    #[test]
    #[ignore = "several seconds; run via `scripts/tier1.sh --slow` or the fig5 binary"]
    fn pim_corunner_hurts_most() {
        let bars = run_interference(&SystemConfig::default(), 0.01, 8_000_000);
        assert_eq!(bars.len(), 6);
        let none = bars[0].avg_speedup;
        let pim = bars.last().expect("nonempty").avg_speedup;
        assert!(none > pim, "contention must hurt: {none} vs {pim}");
        let worst_gpu = bars[1..5]
            .iter()
            .map(|b| b.avg_speedup)
            .fold(f64::INFINITY, f64::min);
        assert!(
            pim < worst_gpu,
            "PIM co-runner ({pim}) must hurt more than any GPU co-runner ({worst_gpu})"
        );
    }
}
