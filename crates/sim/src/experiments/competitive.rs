//! Competitive co-execution sweeps: Figures 6, 8, 10, 13, and 14b.
//!
//! A sweep point is one (GPU kernel, PIM kernel, policy, VC configuration)
//! co-execution, reduced against per-kernel standalone baselines into the
//! paper's metrics: fairness index, system throughput, MEM arrival-rate
//! ratio, mode switches, and switch overheads.

use std::collections::HashMap;

use pimsim_core::PolicyKind;
use pimsim_types::{SystemConfig, VcMode};
use pimsim_workloads::{gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark};

use crate::runner::Runner;

use super::sweep::parallel_map;

/// Parameters of a competitive sweep.
#[derive(Debug, Clone)]
pub struct CompetitiveConfig {
    /// Base system configuration (its `noc.vc_mode` is overridden per
    /// point).
    pub system: SystemConfig,
    /// Work scale.
    pub scale: f64,
    /// Per-simulation GPU-cycle budget.
    pub budget: u64,
    /// GPU kernels to sweep.
    pub gpus: Vec<GpuBenchmark>,
    /// PIM kernels to sweep.
    pub pims: Vec<PimBenchmark>,
    /// Policies to sweep.
    pub policies: Vec<PolicyKind>,
    /// VC configurations to sweep.
    pub vcs: Vec<VcMode>,
}

impl CompetitiveConfig {
    /// The paper's full sweep: 20×9 kernel pairs × 9 policies × 2 VCs.
    pub fn full(system: SystemConfig, scale: f64, budget: u64) -> Self {
        CompetitiveConfig {
            system,
            scale,
            budget,
            gpus: GpuBenchmark::all(),
            pims: PimBenchmark::all(),
            policies: PolicyKind::all(),
            vcs: vec![VcMode::Shared, VcMode::SplitPim],
        }
    }
}

/// Standalone reference times for one sweep.
#[derive(Debug, Clone, Default)]
pub struct Baselines {
    /// GPU kernel alone on 80 SMs (speedup reference), GPU cycles.
    pub gpu80: HashMap<u8, u64>,
    /// GPU kernel alone on 72 SMs (arrival-rate reference and Figure 5's
    /// no-contention bar), GPU cycles and MEM arrival rate.
    pub gpu72: HashMap<u8, (u64, f64)>,
    /// PIM kernel alone on 8 SMs, GPU cycles.
    pub pim8: HashMap<u8, u64>,
}

/// One sweep point's reduced results.
#[derive(Debug, Clone)]
pub struct CompetitivePoint {
    /// GPU benchmark.
    pub gpu: GpuBenchmark,
    /// PIM benchmark.
    pub pim: PimBenchmark,
    /// Policy.
    pub policy: PolicyKind,
    /// VC configuration.
    pub vc: VcMode,
    /// GPU (MEM) kernel speedup vs. 80-SM standalone.
    pub mem_speedup: f64,
    /// PIM kernel speedup vs. 8-SM standalone.
    pub pim_speedup: f64,
    /// Fairness index.
    pub fairness: f64,
    /// System throughput.
    pub throughput: f64,
    /// MEM arrival rate at the MC, normalized to the GPU kernel's 72-SM
    /// standalone rate (Figure 6).
    pub mem_arrival_ratio: f64,
    /// Completed mode switches.
    pub switches: u64,
    /// Additional MEM conflicts per MEM→PIM switch (Figure 10b).
    pub conflicts_per_switch: f64,
    /// MEM drain latency per MEM→PIM switch, DRAM cycles (Figure 10c).
    pub drain_per_switch: f64,
}

/// A finished sweep.
#[derive(Debug, Clone)]
pub struct CompetitiveReport {
    /// Standalone references.
    pub baselines: Baselines,
    /// All sweep points.
    pub points: Vec<CompetitivePoint>,
}

impl CompetitiveReport {
    /// Points matching a policy and VC configuration.
    pub fn slice(&self, policy: PolicyKind, vc: VcMode) -> Vec<&CompetitivePoint> {
        self.points
            .iter()
            .filter(|p| p.policy == policy && p.vc == vc)
            .collect()
    }

    /// Mean fairness index for (policy, vc).
    pub fn mean_fairness(&self, policy: PolicyKind, vc: VcMode) -> f64 {
        let s = self.slice(policy, vc);
        s.iter().map(|p| p.fairness).sum::<f64>() / s.len().max(1) as f64
    }

    /// Mean system throughput for (policy, vc).
    pub fn mean_throughput(&self, policy: PolicyKind, vc: VcMode) -> f64 {
        let s = self.slice(policy, vc);
        s.iter().map(|p| p.throughput).sum::<f64>() / s.len().max(1) as f64
    }

    /// Geometric-mean mode switches of `policy` normalized to FCFS over
    /// matching kernel pairs (Figure 10a). Requires FCFS in the sweep.
    pub fn switches_vs_fcfs(&self, policy: PolicyKind, vc: VcMode) -> Option<f64> {
        let fcfs: HashMap<(u8, u8), u64> = self
            .points
            .iter()
            .filter(|p| p.policy == PolicyKind::Fcfs && p.vc == vc)
            .map(|p| ((p.gpu.0, p.pim.0), p.switches))
            .collect();
        let ratios: Vec<f64> = self
            .slice(policy, vc)
            .iter()
            .filter_map(|p| {
                let base = *fcfs.get(&(p.gpu.0, p.pim.0))?;
                (base > 0).then(|| (p.switches.max(1)) as f64 / base as f64)
            })
            .collect();
        pimsim_stats::geomean(&ratios)
    }
}

/// Runs the standalone baselines for a sweep's kernels.
pub fn run_baselines(cfg: &CompetitiveConfig) -> Baselines {
    let system = cfg.system.clone();
    let channels = system.dram.channels;
    let warps = system.gpu.pim_warps_per_sm;
    let outstanding = system.gpu.max_outstanding_pim_per_warp as u32;
    #[derive(Clone, Copy)]
    enum Job {
        Gpu80(GpuBenchmark),
        Gpu72(GpuBenchmark),
        Pim(PimBenchmark),
    }
    let mut jobs = Vec::new();
    for &g in &cfg.gpus {
        jobs.push(Job::Gpu80(g));
        jobs.push(Job::Gpu72(g));
    }
    for &p in &cfg.pims {
        jobs.push(Job::Pim(p));
    }
    let scale = cfg.scale;
    let budget = cfg.budget;
    let results = parallel_map(jobs, move |job| {
        let mut runner = Runner::new(system.clone(), PolicyKind::FrFcfs);
        runner.max_gpu_cycles = budget * 4;
        match job {
            Job::Gpu80(b) => {
                let out = runner
                    .standalone(Box::new(gpu_kernel(b, 80, scale)), 0, false)
                    .unwrap_or_else(|e| panic!("baseline {b}/80: {e}"));
                (0u8, b.0, out.cycles, 0.0)
            }
            Job::Gpu72(b) => {
                let out = runner
                    .standalone(Box::new(gpu_kernel(b, 72, scale)), 8, false)
                    .unwrap_or_else(|e| panic!("baseline {b}/72: {e}"));
                let rate = out.mc.mem_arrivals as f64 * 1000.0 / out.cycles as f64;
                (1u8, b.0, out.cycles, rate)
            }
            Job::Pim(b) => {
                let out = runner
                    .standalone(
                        Box::new(pim_kernel(b, channels, warps, outstanding, scale)),
                        0,
                        true,
                    )
                    .unwrap_or_else(|e| panic!("baseline {b}: {e}"));
                (2u8, b.0, out.cycles, 0.0)
            }
        }
    });
    let mut baselines = Baselines::default();
    for (kind, id, cycles, rate) in results {
        match kind {
            0 => {
                baselines.gpu80.insert(id, cycles);
            }
            1 => {
                baselines.gpu72.insert(id, (cycles, rate));
            }
            _ => {
                baselines.pim8.insert(id, cycles);
            }
        }
    }
    baselines
}

/// Runs the full competitive sweep (baselines plus every point), in
/// parallel.
pub fn run_competitive(cfg: &CompetitiveConfig) -> CompetitiveReport {
    let baselines = run_baselines(cfg);
    let system = cfg.system.clone();
    let channels = system.dram.channels;
    let warps = system.gpu.pim_warps_per_sm;
    let outstanding = system.gpu.max_outstanding_pim_per_warp as u32;
    let mut jobs = Vec::new();
    for &vc in &cfg.vcs {
        for &policy in &cfg.policies {
            for &g in &cfg.gpus {
                for &p in &cfg.pims {
                    jobs.push((g, p, policy, vc));
                }
            }
        }
    }
    let scale = cfg.scale;
    let budget = cfg.budget;
    let b = baselines.clone();
    let points = parallel_map(jobs, move |(g, p, policy, vc)| {
        let mut system = system.clone();
        system.noc.vc_mode = vc;
        let mut runner = Runner::new(system, policy);
        runner.max_gpu_cycles = budget;
        let out = runner.coexec(
            Box::new(gpu_kernel(g, 72, scale)),
            Box::new(pim_kernel(p, channels, warps, outstanding, scale)),
            true,
        );
        let gpu80 = b.gpu80[&g.0];
        let pim8 = b.pim8[&p.0];
        let m = out.metrics(gpu80, pim8);
        let (_, solo_rate) = b.gpu72[&g.0];
        CompetitivePoint {
            gpu: g,
            pim: p,
            policy,
            vc,
            mem_speedup: m.mem_speedup,
            pim_speedup: m.pim_speedup,
            fairness: m.fairness_index(),
            throughput: m.system_throughput(),
            mem_arrival_ratio: if solo_rate > 0.0 {
                out.mem_arrival_rate() / solo_rate
            } else {
                0.0
            },
            switches: out.mc.switches,
            conflicts_per_switch: out.mc.conflicts_per_switch().unwrap_or(0.0),
            drain_per_switch: out.mc.drain_latency_per_switch().unwrap_or(0.0),
        }
    });
    CompetitiveReport { baselines, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CompetitiveConfig {
        CompetitiveConfig {
            system: SystemConfig::default(),
            scale: 0.01,
            budget: 4_000_000,
            gpus: vec![GpuBenchmark(8)],
            pims: vec![PimBenchmark(2)],
            policies: vec![
                PolicyKind::Fcfs,
                PolicyKind::FrFcfs,
                PolicyKind::F3fs {
                    mem_cap: 256,
                    pim_cap: 256,
                },
            ],
            vcs: vec![VcMode::Shared, VcMode::SplitPim],
        }
    }

    #[test]
    fn sweep_produces_every_point_with_sane_metrics() {
        let report = run_competitive(&tiny_config());
        assert_eq!(report.points.len(), 3 * 2);
        for p in &report.points {
            assert!((0.0..=1.0).contains(&p.fairness), "{p:?}");
            assert!(p.throughput >= 0.0 && p.throughput <= 3.5, "{p:?}");
            // At tiny scales a contended run can beat the 80-SM standalone
            // (different SM partitioning + queueing-induced locality — the
            // paper observes the same effect in Figure 6); just bound it.
            assert!(p.mem_speedup <= 2.0, "implausible speedup: {p:?}");
        }
        // FCFS must switch at least as often as F3FS (geomean ratio <= 1).
        let f3 = report
            .switches_vs_fcfs(
                PolicyKind::F3fs {
                    mem_cap: 256,
                    pim_cap: 256,
                },
                VcMode::SplitPim,
            )
            .expect("FCFS present");
        assert!(f3 <= 1.0, "F3FS must not switch more than FCFS: {f3}");
    }
}
