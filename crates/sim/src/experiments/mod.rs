//! Experiment drivers regenerating the paper's evaluation.
//!
//! Each submodule corresponds to a group of figures; the `pimsim-bench`
//! crate's binaries call these drivers and print the paper-shaped tables.
//!
//! | Driver | Paper artifact |
//! |--------|----------------|
//! | [`characterization`] | Figure 4 (and Table I echo) |
//! | [`interference`] | Figure 5 |
//! | [`competitive`] | Figures 6, 8, 10, 13, 14b |
//! | [`collaborative`] | Figures 11 and 14a (LLM half) |

pub mod characterization;
pub mod collaborative;
pub mod competitive;
pub mod interference;
pub mod sweep;

/// Default work-scale for fast full sweeps. At this scale a single
/// co-execution simulates in well under a second, so the 180-combination
/// sweeps finish in minutes.
pub const DEFAULT_SCALE: f64 = 0.05;

/// Default per-simulation GPU-cycle budget. Runs that exceed it are
/// reported as starvation (speedup ≈ 0), mirroring the paper's fairness
/// index of 0 for MEM-First/PIM-First/G&I pathologies.
pub const DEFAULT_BUDGET: u64 = 8_000_000;
