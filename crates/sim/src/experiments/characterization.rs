//! Figure 4: memory access characteristics of the Rodinia suite (on 80
//! and 8 SMs) and the PIM kernels — interconnect arrival rate, DRAM
//! arrival rate, bank-level parallelism, and row-buffer hit rate.

use pimsim_core::PolicyKind;
use pimsim_stats::{FiveNumber, Samples};
use pimsim_types::SystemConfig;
use pimsim_workloads::{gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark};

use crate::runner::Runner;

use super::sweep::parallel_map;

/// One kernel's measured memory behaviour.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel label (`G4 (cfd)` / `P1 (Stream Add)`).
    pub label: String,
    /// Interconnect request arrival rate, requests / kilo-GPU-cycle.
    pub icnt_rate: f64,
    /// DRAM request arrival rate, requests / kilo-GPU-cycle.
    pub dram_rate: f64,
    /// Average bank-level parallelism over active DRAM cycles.
    pub blp: f64,
    /// Row-buffer hit rate at the controllers.
    pub rbhr: f64,
    /// Standalone execution time, GPU cycles.
    pub cycles: u64,
}

/// The three populations of Figure 4.
#[derive(Debug, Clone)]
pub struct CharacterizationReport {
    /// Rodinia on 80 SMs.
    pub gpu80: Vec<KernelProfile>,
    /// Rodinia on 8 SMs.
    pub gpu8: Vec<KernelProfile>,
    /// The PIM suite (8 SMs / 32 warps).
    pub pim: Vec<KernelProfile>,
}

/// Box-plot summaries of one metric across the three populations.
#[derive(Debug, Clone, Copy)]
pub struct MetricBoxes {
    /// GPU-80 five-number summary.
    pub gpu80: FiveNumber,
    /// GPU-8 five-number summary.
    pub gpu8: FiveNumber,
    /// PIM five-number summary.
    pub pim: FiveNumber,
}

impl CharacterizationReport {
    fn boxes(&self, f: impl Fn(&KernelProfile) -> f64) -> MetricBoxes {
        let summary = |v: &[KernelProfile]| -> FiveNumber {
            v.iter()
                .map(&f)
                .collect::<Samples>()
                .five_number()
                .expect("population nonempty")
        };
        MetricBoxes {
            gpu80: summary(&self.gpu80),
            gpu8: summary(&self.gpu8),
            pim: summary(&self.pim),
        }
    }

    /// Figure 4a: interconnect arrival-rate boxes.
    pub fn icnt_boxes(&self) -> MetricBoxes {
        self.boxes(|p| p.icnt_rate)
    }

    /// Figure 4b: DRAM arrival-rate boxes.
    pub fn dram_boxes(&self) -> MetricBoxes {
        self.boxes(|p| p.dram_rate)
    }

    /// Figure 4c: bank-level-parallelism boxes.
    pub fn blp_boxes(&self) -> MetricBoxes {
        self.boxes(|p| p.blp)
    }

    /// Figure 4d: row-buffer-hit-rate boxes.
    pub fn rbhr_boxes(&self) -> MetricBoxes {
        self.boxes(|p| p.rbhr)
    }
}

/// Runs the 49 standalone characterization simulations (20 Rodinia × two
/// SM counts, 9 PIM kernels) under FR-FCFS / VC1, in parallel.
///
/// # Panics
///
/// Panics if any standalone run exceeds `budget` GPU cycles.
pub fn characterize(system: &SystemConfig, scale: f64, budget: u64) -> CharacterizationReport {
    #[derive(Clone, Copy)]
    enum Job {
        Gpu(GpuBenchmark, usize),
        Pim(PimBenchmark),
    }
    let mut jobs = Vec::new();
    for b in GpuBenchmark::all() {
        jobs.push(Job::Gpu(b, 80));
        jobs.push(Job::Gpu(b, 8));
    }
    for b in PimBenchmark::all() {
        jobs.push(Job::Pim(b));
    }
    let channels = system.dram.channels;
    let warps = system.gpu.pim_warps_per_sm;
    let outstanding = system.gpu.max_outstanding_pim_per_warp as u32;
    let sys = system.clone();
    let profiles = parallel_map(jobs, move |job| {
        let mut runner = Runner::new(sys.clone(), PolicyKind::FrFcfs);
        runner.max_gpu_cycles = budget;
        match job {
            Job::Gpu(b, sms) => {
                let k = gpu_kernel(b, sms, scale);
                let out = runner
                    .standalone(Box::new(k), 0, false)
                    .unwrap_or_else(|e| panic!("standalone {b} on {sms} SMs: {e}"));
                (
                    job_key(job),
                    KernelProfile {
                        label: b.to_string(),
                        icnt_rate: out.icnt_rate(),
                        dram_rate: out.dram_rate(),
                        blp: out.mc.avg_blp().unwrap_or(0.0),
                        rbhr: out.mc.mem_rbhr().unwrap_or(0.0),
                        cycles: out.cycles,
                    },
                )
            }
            Job::Pim(b) => {
                let k = pim_kernel(b, channels, warps, outstanding, scale);
                let out = runner
                    .standalone(Box::new(k), 0, true)
                    .unwrap_or_else(|e| panic!("standalone {b}: {e}"));
                (
                    job_key(job),
                    KernelProfile {
                        label: b.to_string(),
                        icnt_rate: out.icnt_rate(),
                        dram_rate: out.dram_rate(),
                        blp: out.mc.avg_blp().unwrap_or(0.0),
                        rbhr: out.mc.pim_rbhr().unwrap_or(0.0),
                        cycles: out.cycles,
                    },
                )
            }
        }
    });
    fn job_key(job: Job) -> u8 {
        match job {
            Job::Gpu(_, 80) => 0,
            Job::Gpu(_, _) => 1,
            Job::Pim(_) => 2,
        }
    }
    let mut report = CharacterizationReport {
        gpu80: Vec::new(),
        gpu8: Vec::new(),
        pim: Vec::new(),
    };
    for (key, p) in profiles {
        match key {
            0 => report.gpu80.push(p),
            1 => report.gpu8.push(p),
            _ => report.pim.push(p),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down end-to-end characterization checking the paper's
    /// qualitative claims (Section IV).
    #[test]
    fn pim_kernels_dominate_dram_arrivals_and_blp() {
        let system = SystemConfig::default();
        let report = characterize(&system, 0.01, 20_000_000);
        assert_eq!(report.gpu80.len(), 20);
        assert_eq!(report.gpu8.len(), 20);
        assert_eq!(report.pim.len(), 9);

        // "PIM request arrival rate at the memory controller outpaces
        // GPU-8" (the paper reports 8.33x on the median).
        let dram = report.dram_boxes();
        assert!(
            dram.pim.median > dram.gpu8.median,
            "PIM median DRAM rate {} must exceed GPU-8 {}",
            dram.pim.median,
            dram.gpu8.median
        );

        // PIM executes on all banks at once: BLP pinned near 16 with no
        // spread, above every GPU kernel.
        let blp = report.blp_boxes();
        assert!(blp.pim.min > 12.0, "PIM BLP min {}", blp.pim.min);
        assert!(blp.pim.median > blp.gpu80.max, "PIM BLP must dominate");

        // PIM row locality is high (block structure).
        let rbhr = report.rbhr_boxes();
        assert!(rbhr.pim.median > 0.7, "PIM RBHR median {}", rbhr.pim.median);
    }
}
