//! Parallel sweep helper: runs independent simulations across CPU cores.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Applies `f` to every item, fanning out across available cores, and
/// returns results in input order.
///
/// The work queue is dynamic (work stealing by index), so heterogeneous
/// simulation lengths balance well.
///
/// # Example
///
/// ```
/// use pimsim_sim::experiments::sweep::parallel_map;
///
/// let squares = parallel_map((0..100u64).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// ```
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let n = queue.lock().len();
    let results: Mutex<Vec<Option<T>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(n).collect());
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let Some((idx, item)) = queue.lock().pop_front() else {
                    break;
                };
                let out = f(item);
                results.lock()[idx] = Some(out);
            });
        }
    })
    .expect("sweep worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..1000u32).collect(), |x| x + 1);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn handles_empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn handles_single_item() {
        let out = parallel_map(vec![41u32], |x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic]
    fn propagates_worker_panics() {
        let _ = parallel_map(vec![0u32, 1, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
