//! Parallel sweep helper: runs independent simulations across CPU cores.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, fanning out across available cores, and
/// returns results in input order.
///
/// Dispatch is a single atomic index over the item slice — workers claim
/// the next unclaimed index with one `fetch_add`, so heterogeneous
/// simulation lengths balance well and there is no shared dispatch lock to
/// serialize on. Results land in pre-sized per-slot cells; each cell is
/// touched by exactly one worker, so the per-slot locks below are never
/// contended. A panic in any worker propagates to the caller when the
/// thread scope joins.
///
/// # Example
///
/// ```
/// use pimsim_sim::experiments::sweep::parallel_map;
///
/// let squares = parallel_map((0..100u64).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// ```
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Per-slot cells instead of one big lock: the atomic index hands each
    // slot to exactly one worker, so these mutexes exist only to satisfy
    // the no-unsafe shared-mutation rules and are always uncontended.
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = work[idx]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each index dispatched exactly once");
                let out = f(item);
                *results[idx].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("result slot poisoned")
                .expect("every index filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..1000u32).collect(), |x| x + 1);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn handles_empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn handles_single_item() {
        let out = parallel_map(vec![41u32], |x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic]
    fn propagates_worker_panics() {
        let _ = parallel_map(vec![0u32, 1, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    fn balances_heterogeneous_work() {
        // Items with wildly different costs still come back in order.
        let out = parallel_map((0..64u64).collect(), |x| {
            let spin = if x % 8 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x * 2
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }
}
