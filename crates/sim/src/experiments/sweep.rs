//! Parallel sweep helper: runs independent simulations across the shared
//! worker pool ([`pimsim_pool::global`]).

use std::sync::{Arc, Mutex};

/// Chunk jobs push their `(input index, output)` pairs here; the caller
/// merges the chunks back into input order after the batch joins.
type ChunkBin<T> = Arc<Mutex<Vec<Vec<(usize, T)>>>>;

/// Applies `f` to every item, fanning out across the process-wide worker
/// pool, and returns results in input order.
///
/// Items are split into chunks (a few per pool lane, so heterogeneous
/// simulation lengths still balance); each chunk job computes its outputs
/// into a plain `Vec<(index, T)>` and pushes the whole chunk into a
/// shared bin, merged back into input order at join. A panic in any
/// worker propagates to the caller.
///
/// The pool is sized by `PIMSIM_THREADS` when set, else by the machine's
/// available parallelism; at width 1 this degenerates to a plain serial
/// map on the calling thread.
///
/// # Example
///
/// ```
/// use pimsim_sim::experiments::sweep::parallel_map;
///
/// let squares = parallel_map((0..100u64).collect(), |x| x * x);
/// assert_eq!(squares[7], 49);
/// ```
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send + 'static,
    T: Send + 'static,
    F: Fn(I) -> T + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let pool = pimsim_pool::global();
    let threads = pool.threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // A few chunks per lane: coarse enough to amortize dispatch, fine
    // enough that one long chunk can't leave the other lanes idle.
    let chunk_len = n.div_ceil(threads * 4).max(1);
    let f = Arc::new(f);
    let bin: ChunkBin<T> = Arc::new(Mutex::new(Vec::new()));
    let mut jobs: Vec<pimsim_pool::Job> = Vec::with_capacity(n.div_ceil(chunk_len));
    let mut items = items.into_iter();
    let mut base = 0usize;
    loop {
        let chunk: Vec<I> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        let start = base;
        base += chunk.len();
        let f = Arc::clone(&f);
        let bin = Arc::clone(&bin);
        jobs.push(Box::new(move || {
            let out: Vec<(usize, T)> = chunk
                .into_iter()
                .enumerate()
                .map(|(i, item)| (start + i, f(item)))
                .collect();
            bin.lock().expect("result bin poisoned").push(out);
        }));
    }
    pool.run_batch(jobs); // propagates worker panics
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for chunk in bin.lock().expect("result bin poisoned").drain(..) {
        for (idx, value) in chunk {
            debug_assert!(slots[idx].is_none(), "index produced twice");
            slots[idx] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..1000u32).collect(), |x| x + 1);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn handles_empty_input() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn handles_single_item() {
        let out = parallel_map(vec![41u32], |x| x + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    #[should_panic]
    fn propagates_worker_panics() {
        let _ = parallel_map(vec![0u32, 1, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }

    #[test]
    fn balances_heterogeneous_work() {
        // Items with wildly different costs still come back in order.
        let out = parallel_map((0..64u64).collect(), |x| {
            let spin = if x % 8 == 0 { 200_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            x * 2
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 * 2);
        }
    }

    #[test]
    fn nests_without_deadlocking() {
        // A sweep whose jobs themselves call parallel_map (as simulations
        // with a parallel memory stage do, via the shared pool) must
        // complete — inner calls degrade to inline execution.
        let out = parallel_map((0..8u64).collect(), |x| {
            parallel_map((0..8u64).collect(), move |y| x * 8 + y)
                .into_iter()
                .sum::<u64>()
        });
        for (i, v) in out.iter().enumerate() {
            let base = i as u64 * 8;
            assert_eq!(*v, (base..base + 8).sum::<u64>());
        }
    }
}
