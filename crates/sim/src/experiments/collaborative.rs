//! Figure 11 (and the LLM half of Figure 14a): the GPT-3-like
//! collaborative scenario — QKV generation on the GPU overlapped with
//! multi-head attention on PIM — under every policy and VC configuration.

use pimsim_core::PolicyKind;
use pimsim_gpu::{PimKernelModel, SyntheticGpuKernel};
use pimsim_types::{SystemConfig, VcMode};
use pimsim_workloads::llm::{mha_spec, qkv_params};

use crate::runner::Runner;

use super::sweep::parallel_map;

/// One bar of Figure 11.
#[derive(Debug, Clone)]
pub struct CollabPoint {
    /// Policy.
    pub policy: PolicyKind,
    /// VC configuration.
    pub vc: VcMode,
    /// Speedup over sequential execution of QKV then MHA.
    pub speedup: f64,
}

/// Figure 11's full result: per-policy speedups plus the ideal bound.
#[derive(Debug, Clone)]
pub struct CollabReport {
    /// All measured points.
    pub points: Vec<CollabPoint>,
    /// QKV standalone time (72 SMs), GPU cycles.
    pub qkv_alone: u64,
    /// MHA standalone time, GPU cycles.
    pub mha_alone: u64,
    /// Perfect-overlap speedup bound.
    pub ideal: f64,
}

fn qkv(system: &SystemConfig, scale: f64) -> SyntheticGpuKernel {
    SyntheticGpuKernel::new(qkv_params(scale), system.gpu.num_sms - 8)
}

fn mha(system: &SystemConfig, scale: f64) -> PimKernelModel {
    let channels = system.dram.channels;
    let warps = system.gpu.pim_warps_per_sm;
    PimKernelModel::new(
        mha_spec(channels, scale),
        channels / warps,
        warps,
        system.gpu.max_outstanding_pim_per_warp as u32,
    )
}

/// F3FS CAP choices for the LLM, from a sensitivity study against our
/// scaled workloads (mirroring the paper's method; the paper lands on
/// MEM/PIM = 256/128 under VC1 and 64/64 under VC2 for its full-size
/// kernels). For us the study lands on a symmetric 32/32 under VC1 and an
/// asymmetric 32/16 — favoring the slower MEM kernel — under VC2; the
/// `fig14a` ablation regenerates the sweep.
pub fn f3fs_llm_caps(vc: VcMode) -> PolicyKind {
    match vc {
        VcMode::Shared => PolicyKind::F3fs {
            mem_cap: 32,
            pim_cap: 32,
        },
        VcMode::SplitPim => PolicyKind::F3fs {
            mem_cap: 32,
            pim_cap: 16,
        },
    }
}

/// Runs the collaborative scenario for every (policy, vc), substituting
/// the LLM-tuned F3FS CAPs for the generic competitive ones.
pub fn run_collaborative(system: &SystemConfig, scale: f64, budget: u64) -> CollabReport {
    // Standalone references (policy-independent; FR-FCFS used).
    let mut solo_runner = Runner::new(system.clone(), PolicyKind::FrFcfs);
    solo_runner.max_gpu_cycles = budget * 4;
    let qkv_alone = solo_runner
        .standalone(Box::new(qkv(system, scale)), 8, false)
        .expect("QKV standalone")
        .cycles;
    let mha_alone = solo_runner
        .standalone(Box::new(mha(system, scale)), 0, true)
        .expect("MHA standalone")
        .cycles;

    let mut jobs = Vec::new();
    for vc in [VcMode::Shared, VcMode::SplitPim] {
        let mut policies = PolicyKind::baselines();
        policies.push(f3fs_llm_caps(vc));
        for policy in policies {
            jobs.push((policy, vc));
        }
    }
    let base_system = system.clone();
    let points = parallel_map(jobs, move |(policy, vc)| {
        let mut sys = base_system.clone();
        sys.noc.vc_mode = vc;
        let mut runner = Runner::new(sys, policy);
        runner.max_gpu_cycles = budget;
        let speedup = match runner.collaborative(
            Box::new(qkv(&base_system, scale)),
            Box::new(mha(&base_system, scale)),
        ) {
            Ok(out) => out.speedup(qkv_alone, mha_alone),
            // A policy that cannot finish the pair in budget effectively
            // serializes worse than sequential.
            Err(_) => (qkv_alone + mha_alone) as f64 / (budget as f64),
        };
        CollabPoint {
            policy,
            vc,
            speedup,
        }
    });
    CollabReport {
        points,
        qkv_alone,
        mha_alone,
        ideal: crate::runner::CollabOutcome::ideal_speedup(qkv_alone, mha_alone),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "several seconds; run via `scripts/tier1.sh --slow` or the fig11 binary"]
    fn qkv_runs_longer_and_speedups_bounded_by_ideal() {
        let report = run_collaborative(&SystemConfig::default(), 0.1, 20_000_000);
        // The scenario's premise: QKV (GPU) is the longer kernel.
        assert!(
            report.qkv_alone > report.mha_alone,
            "QKV {} must outlast MHA {}",
            report.qkv_alone,
            report.mha_alone
        );
        assert!(report.ideal > 1.0 && report.ideal <= 2.0);
        for p in &report.points {
            assert!(
                p.speedup <= report.ideal * 1.05,
                "{:?} exceeds ideal: {} > {}",
                p.policy,
                p.speedup,
                report.ideal
            );
        }
    }
}
