//! A memory partition: the per-channel slice of the memory subsystem
//! (Figure 7) — interconnect→L2 staging queues, an L2 slice, L2→DRAM
//! staging queues, and the memory controller.
//!
//! Under the baseline VC1 configuration both staging queues are single
//! FIFOs shared by MEM and PIM requests — the head-of-line blocking this
//! causes is exactly the denial-of-service chain of Figure 7a. Under VC2
//! each queue is split in half, one FIFO per request class.

use std::collections::VecDeque;

use pimsim_cache::{AccessOutcome, CacheSlice};
use pimsim_core::{Completion, MemoryController, SchedulePolicy};
use pimsim_dram::AddressMapper;
use pimsim_types::{
    Cycle, DecodedAddr, Request, RequestId, RequestKind, SystemConfig, VcMode,
};

/// Upper bound on buffered outbound replies before the L2 stalls.
const REPLY_OUT_CAP: usize = 64;

/// Per-partition counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionStats {
    /// Requests accepted into the icnt→L2 queues.
    pub icnt_accepted: u64,
    /// Cycles the head of an icnt→L2 queue was stalled.
    pub icnt_head_stalls: u64,
    /// Fill requests sent to DRAM.
    pub fills_sent: u64,
    /// Writebacks sent to DRAM.
    pub writebacks_sent: u64,
}

/// One memory partition.
#[derive(Debug)]
pub struct Partition {
    channel: usize,
    vc_mode: VcMode,
    icnt_q: Vec<VecDeque<Request>>,
    icnt_cap_per_vc: usize,
    l2: CacheSlice,
    l2dram_q: Vec<VecDeque<Request>>,
    l2dram_cap_per_vc: usize,
    /// The controller; public so experiments can read its stats.
    pub mc: MemoryController,
    /// L2 pipeline: (ready cycle, request) for hits and merged acks.
    l2_delay: VecDeque<(Cycle, Request)>,
    /// Fill completions from DRAM awaiting L2 install.
    pending_fills: VecDeque<Request>,
    /// Dirty victims awaiting L2→DRAM space.
    pending_writebacks: VecDeque<Request>,
    /// MEM completions awaiting injection into the reply network.
    reply_out: VecDeque<Request>,
    /// PIM acks awaiting credit return to the kernel.
    pim_acks: Vec<Request>,
    /// Round-robin pointers for VC service.
    rr_icnt: usize,
    rr_l2dram: usize,
    stats: PartitionStats,
}

impl Partition {
    /// Builds the partition for `channel`.
    pub fn new(channel: usize, cfg: &SystemConfig, policy: Box<dyn SchedulePolicy>) -> Self {
        let vcs = cfg.noc.vc_mode.vc_count();
        Partition {
            channel,
            vc_mode: cfg.noc.vc_mode,
            icnt_q: (0..vcs).map(|_| VecDeque::new()).collect(),
            icnt_cap_per_vc: cfg.mc.icnt_to_l2_entries / vcs,
            l2: CacheSlice::new(&cfg.cache, cfg.dram.channels),
            l2dram_q: (0..vcs).map(|_| VecDeque::new()).collect(),
            l2dram_cap_per_vc: cfg.mc.l2_to_dram_entries / vcs,
            mc: MemoryController::new(cfg, policy),
            l2_delay: VecDeque::new(),
            pending_fills: VecDeque::new(),
            pending_writebacks: VecDeque::new(),
            reply_out: VecDeque::new(),
            pim_acks: Vec::new(),
            rr_icnt: 0,
            rr_l2dram: 0,
            stats: PartitionStats::default(),
        }
    }

    /// The channel this partition serves.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// Counters snapshot.
    pub fn stats(&self) -> PartitionStats {
        self.stats
    }

    /// The L2 slice (for stats).
    pub fn l2(&self) -> &CacheSlice {
        &self.l2
    }

    fn vc_of(&self, is_pim: bool) -> usize {
        match self.vc_mode {
            VcMode::Shared => 0,
            VcMode::SplitPim => usize::from(is_pim),
        }
    }

    /// Occupancy of the interconnect→L2 staging queue on `vc`.
    pub fn icnt_q_len(&self, vc: usize) -> usize {
        self.icnt_q[vc].len()
    }

    /// Occupancy of the L2→DRAM staging queue on `vc`.
    pub fn l2dram_q_len(&self, vc: usize) -> usize {
        self.l2dram_q[vc].len()
    }

    /// Number of virtual channels in this partition's staging queues.
    pub fn vc_count(&self) -> usize {
        self.icnt_q.len()
    }

    /// Whether the ejection queue can accept a request on `vc`.
    pub fn can_eject(&self, vc: usize) -> bool {
        self.icnt_q[vc].len() < self.icnt_cap_per_vc
    }

    /// Accepts a request from the interconnect on `vc`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (check [`Partition::can_eject`]).
    pub fn eject(&mut self, vc: usize, req: Request) {
        assert!(self.can_eject(vc), "icnt->L2 queue overflow");
        self.icnt_q[vc].push_back(req);
        self.stats.icnt_accepted += 1;
    }

    /// One GPU-clock step of the L2 stage. `alloc_id` mints request IDs
    /// for fills and writebacks.
    pub fn step_l2(&mut self, now: Cycle, alloc_id: &mut dyn FnMut() -> RequestId) {
        self.process_fills(now, alloc_id);
        self.drain_writebacks();
        self.pop_icnt(now, alloc_id);
        self.drain_l2_delay(now);
    }

    /// Installs at most one fill per cycle and releases its waiters.
    fn process_fills(&mut self, now: Cycle, alloc_id: &mut dyn FnMut() -> RequestId) {
        let Some(fill) = self.pending_fills.pop_front() else {
            return;
        };
        let (waiters, writeback) = self.l2.fill(fill.addr, now);
        if let Some(addr) = writeback {
            self.pending_writebacks.push_back(Request::new(
                alloc_id(),
                fill.app,
                RequestKind::MemWrite,
                addr,
                fill.src_port,
                now,
            ));
        }
        for w in waiters {
            self.reply_out.push_back(w);
        }
    }

    fn drain_writebacks(&mut self) {
        let vc = self.vc_of(false);
        while !self.pending_writebacks.is_empty()
            && self.l2dram_q[vc].len() < self.l2dram_cap_per_vc
        {
            let wb = self.pending_writebacks.pop_front().expect("nonempty");
            self.l2dram_q[vc].push_back(wb);
            self.stats.writebacks_sent += 1;
        }
    }

    /// L2 lookups per GPU cycle (the slice's banked tag pipeline).
    const L2_LOOKUPS_PER_CYCLE: usize = 2;

    /// Services up to [`Self::L2_LOOKUPS_PER_CYCLE`] icnt→L2 queue heads
    /// per cycle, round-robin over VCs.
    fn pop_icnt(&mut self, now: Cycle, alloc_id: &mut dyn FnMut() -> RequestId) {
        let vcs = self.icnt_q.len();
        for _ in 0..Self::L2_LOOKUPS_PER_CYCLE {
            if self.reply_out.len() >= REPLY_OUT_CAP {
                return; // backpressure from the reply network
            }
            let mut serviced = false;
            for i in 0..vcs {
                let vc = (self.rr_icnt + i) % vcs;
                let Some(&head) = self.icnt_q[vc].front() else {
                    continue;
                };
                if self.try_service_head(vc, head, now, alloc_id) {
                    self.rr_icnt = (vc + 1) % vcs;
                    serviced = true;
                    break;
                }
                self.stats.icnt_head_stalls += 1;
                // Head-of-line blocking: under VC1 a stuck head stalls
                // everything; under VC2 the other VC still gets its turn.
            }
            if !serviced {
                return;
            }
        }
    }

    /// Attempts to service one queue head; returns whether it was consumed.
    fn try_service_head(
        &mut self,
        vc: usize,
        head: Request,
        now: Cycle,
        alloc_id: &mut dyn FnMut() -> RequestId,
    ) -> bool {
        if head.kind.is_pim() {
            // PIM bypasses the L2 entirely.
            let dvc = self.vc_of(true);
            if self.l2dram_q[dvc].len() < self.l2dram_cap_per_vc {
                self.icnt_q[vc].pop_front();
                self.l2dram_q[dvc].push_back(head);
                return true;
            }
            return false;
        }
        // MEM: a miss needs L2→DRAM space for its fill; check first so the
        // lookup never has to be undone.
        let dvc = self.vc_of(false);
        if self.l2dram_q[dvc].len() >= self.l2dram_cap_per_vc {
            return false;
        }
        match self.l2.access(head, now) {
            AccessOutcome::Hit => {
                self.icnt_q[vc].pop_front();
                self.l2_delay.push_back((now + self.l2.latency(), head));
                true
            }
            AccessOutcome::MissAllocated => {
                self.icnt_q[vc].pop_front();
                let fill = Request::new(
                    alloc_id(),
                    head.app,
                    RequestKind::MemRead,
                    self.l2.line_addr(head.addr),
                    head.src_port,
                    now,
                );
                self.l2dram_q[dvc].push_back(fill);
                self.stats.fills_sent += 1;
                true
            }
            AccessOutcome::MissMerged => {
                self.icnt_q[vc].pop_front();
                true
            }
            AccessOutcome::Blocked => false,
        }
    }

    fn drain_l2_delay(&mut self, now: Cycle) {
        while let Some(&(ready, req)) = self.l2_delay.front() {
            if ready <= now {
                self.l2_delay.pop_front();
                self.reply_out.push_back(req);
            } else {
                break;
            }
        }
    }

    /// One DRAM-clock step: ingest from L2→DRAM queues, advance the MC,
    /// and sort its completions.
    pub fn step_dram(&mut self, dram_now: Cycle, mapper: &AddressMapper) {
        // Fast path: a fully idle controller with nothing to ingest can
        // skip the cycle entirely (common while a GPU-bound kernel
        // computes). Occupancy/BLP integrals skip these cycles too, which
        // only affects diagnostic averages.
        if self.l2dram_q.iter().all(std::collections::VecDeque::is_empty)
            && self.mc.is_idle(dram_now)
        {
            return;
        }
        // Ingest up to two requests per DRAM cycle, round-robin over VCs,
        // so queue entry never outpaces what the DRAM can service.
        let vcs = self.l2dram_q.len();
        for _ in 0..2 {
            let mut ingested = false;
            for i in 0..vcs {
                let vc = (self.rr_l2dram + i) % vcs;
                let Some(&head) = self.l2dram_q[vc].front() else {
                    continue;
                };
                let is_pim = head.kind.is_pim();
                if !self.mc.can_accept(is_pim) {
                    continue;
                }
                self.l2dram_q[vc].pop_front();
                let decoded = match head.kind {
                    RequestKind::Pim(cmd) => DecodedAddr {
                        channel: cmd.channel,
                        bank: 0,
                        row: cmd.row,
                        col: u32::from(cmd.col),
                    },
                    _ => {
                        let d = mapper.decode(head.addr);
                        debug_assert_eq!(
                            d.channel as usize, self.channel,
                            "request routed to the wrong partition"
                        );
                        d
                    }
                };
                self.mc.enqueue(head, decoded, dram_now);
                self.rr_l2dram = (vc + 1) % vcs;
                ingested = true;
                break;
            }
            if !ingested {
                break;
            }
        }
        self.mc.step(dram_now);
        while let Some(Completion { req, .. }) = self.mc.pop_completion_before(dram_now) {
            match req.kind {
                RequestKind::Pim(_) => self.pim_acks.push(req),
                RequestKind::MemRead => self.pending_fills.push_back(req),
                RequestKind::MemWrite => {} // writeback retired
            }
        }
    }

    /// Takes the PIM acks accumulated since the last call.
    pub fn take_pim_acks(&mut self) -> Vec<Request> {
        std::mem::take(&mut self.pim_acks)
    }

    /// Appends the accumulated PIM acks to `out` and clears the internal
    /// buffer — the allocation-free form of [`Partition::take_pim_acks`]
    /// for per-cycle consumers with a reusable scratch vector.
    pub fn drain_pim_acks_into(&mut self, out: &mut Vec<Request>) {
        out.append(&mut self.pim_acks);
    }

    /// The earliest DRAM cycle at or after `dram_now` at which this
    /// partition has work, or `None` while it holds none anywhere
    /// (staging queues, L2 pipeline, controller, reply buffers).
    /// Conservative: an active partition always answers `dram_now`.
    pub fn next_activity_cycle(&self, dram_now: Cycle) -> Option<Cycle> {
        (!self.is_idle(dram_now)).then_some(dram_now)
    }

    /// The next MEM reply awaiting the reply network, if any.
    pub fn peek_reply(&self) -> Option<&Request> {
        self.reply_out.front()
    }

    /// Pops the reply previously returned by [`Partition::peek_reply`].
    pub fn pop_reply(&mut self) -> Option<Request> {
        self.reply_out.pop_front()
    }

    /// Whether the partition holds no work at all.
    pub fn is_idle(&self, dram_now: Cycle) -> bool {
        self.icnt_q.iter().all(VecDeque::is_empty)
            && self.l2dram_q.iter().all(VecDeque::is_empty)
            && self.l2_delay.is_empty()
            && self.pending_fills.is_empty()
            && self.pending_writebacks.is_empty()
            && self.reply_out.is_empty()
            && self.pim_acks.is_empty()
            && self.mc.is_idle(dram_now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_core::policy::PolicyKind;
    use pimsim_types::{AppId, PhysAddr, PimCommand, PimOpKind};

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn partition(c: &SystemConfig) -> Partition {
        Partition::new(0, c, PolicyKind::FrFcfs.build())
    }

    fn mapper(c: &SystemConfig) -> AddressMapper {
        AddressMapper::new(&c.addr_map, &c.dram, c.dram_word_bytes())
    }

    fn mem_read(id: u64, addr: u64) -> Request {
        Request::new(
            RequestId(id),
            AppId::GPU,
            RequestKind::MemRead,
            PhysAddr(addr),
            3,
            0,
        )
    }

    fn pim_load(id: u64) -> Request {
        let cmd = PimCommand {
            op: PimOpKind::RfLoad,
            channel: 0,
            row: 4 + id as u32,
            col: 0,
            rf_entry: 0,
            block_start: true,
            block_id: id,
        };
        Request::new(RequestId(id), AppId::PIM, RequestKind::Pim(cmd), PhysAddr(0), 8, 0)
    }

    /// Drives the partition until quiet, returning delivered MEM replies
    /// and PIM acks.
    fn drive(p: &mut Partition, m: &AddressMapper, cycles: u64) -> (Vec<Request>, Vec<Request>) {
        let mut next_id = 1_000_000u64;
        let mut alloc = move || {
            next_id += 1;
            RequestId(next_id)
        };
        let mut replies = Vec::new();
        let mut acks = Vec::new();
        for now in 0..cycles {
            p.step_l2(now, &mut alloc);
            p.step_dram(now, m); // 1:1 clocks are fine for unit tests
            acks.extend(p.take_pim_acks());
            while let Some(r) = p.pop_reply() {
                replies.push(r);
            }
        }
        (replies, acks)
    }

    #[test]
    fn mem_read_misses_fills_and_replies() {
        let c = cfg();
        let mut p = partition(&c);
        let m = mapper(&c);
        p.eject(0, mem_read(1, 0x40));
        let (replies, acks) = drive(&mut p, &m, 300);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].id, RequestId(1));
        assert!(acks.is_empty());
        assert_eq!(p.stats().fills_sent, 1);
        assert!(p.is_idle(300));
    }

    #[test]
    fn second_access_hits_in_l2() {
        let c = cfg();
        let mut p = partition(&c);
        let m = mapper(&c);
        p.eject(0, mem_read(1, 0x40));
        let _ = drive(&mut p, &m, 300);
        p.eject(0, mem_read(2, 0x40));
        let (replies, _) = drive(&mut p, &m, 100);
        assert_eq!(replies.len(), 1, "hit must reply without DRAM");
        assert_eq!(p.stats().fills_sent, 1, "no second fill");
    }

    #[test]
    fn pim_bypasses_l2() {
        let c = cfg();
        let mut p = partition(&c);
        let m = mapper(&c);
        p.eject(0, pim_load(5));
        let (replies, acks) = drive(&mut p, &m, 300);
        assert!(replies.is_empty());
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].id, RequestId(5));
        assert_eq!(p.l2().stats().hits + p.l2().stats().misses, 0, "L2 untouched");
    }

    #[test]
    fn vc1_pim_blocks_mem_behind_it() {
        // Fill the MC PIM path so PIM heads stall the shared queue.
        let mut c = cfg();
        c.mc.l2_to_dram_entries = 2;
        c.mc.pim_q_entries = 1;
        let mut p = Partition::new(0, &c, PolicyKind::MemFirst.build());
        let _m = mapper(&c);
        // Many PIM requests then one MEM request in the shared VC.
        for i in 0..8 {
            if p.can_eject(0) {
                p.eject(0, pim_load(i));
            }
        }
        if p.can_eject(0) {
            p.eject(0, mem_read(100, 0x40));
        }
        // After a few cycles with a tiny PIM queue, the MEM request is
        // still behind undrained PIM heads.
        let mut next_id = 1_000_000u64;
        let mut alloc = move || {
            next_id += 1;
            RequestId(next_id)
        };
        for now in 0..3 {
            p.step_l2(now, &mut alloc);
        }
        assert_eq!(p.stats().fills_sent, 0, "MEM must be stuck behind PIM heads");
    }

    #[test]
    fn vc2_lets_mem_pass_stuck_pim() {
        let mut c = cfg();
        c.noc.vc_mode = VcMode::SplitPim;
        c.mc.pim_q_entries = 1;
        c.mc.l2_to_dram_entries = 4; // 2 per VC
        let mut p = Partition::new(0, &c, PolicyKind::MemFirst.build());
        let m = mapper(&c);
        for i in 0..4 {
            if p.can_eject(1) {
                p.eject(1, pim_load(i));
            }
        }
        p.eject(0, mem_read(100, 0x40));
        let (replies, _) = drive(&mut p, &m, 300);
        assert_eq!(replies.len(), 1, "MEM must complete via its own VC");
        let _ = m;
    }

    #[test]
    fn eject_capacity_is_enforced() {
        let c = cfg();
        let mut p = partition(&c);
        let cap = c.mc.icnt_to_l2_entries; // single VC
        for i in 0..cap as u64 {
            assert!(p.can_eject(0));
            p.eject(0, mem_read(i, i * 32));
        }
        assert!(!p.can_eject(0));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn eject_overflow_panics() {
        let c = cfg();
        let mut p = partition(&c);
        for i in 0..=c.mc.icnt_to_l2_entries as u64 {
            p.eject(0, mem_read(i, i * 32));
        }
    }
}
