//! A memory partition: the per-channel slice of the memory subsystem
//! (Figure 7) — interconnect→L2 staging ports, an L2 slice, L2→DRAM
//! staging ports, and the memory controller.
//!
//! Under the baseline VC1 configuration both staging ports are single
//! FIFOs shared by MEM and PIM requests — the head-of-line blocking this
//! causes is exactly the denial-of-service chain of Figure 7a. Under VC2
//! each port is split in half, one lane per request class
//! ([`Port`] splits total capacity evenly, matching Section V-A's
//! equal-total-buffering comparison).
//!
//! The partition is a DRAM-domain [`Component`]; its L2 front half ticks
//! on the GPU clock via [`Partition::step_l2`]. Hand-offs with the rest
//! of the pipeline are typed credit-based queues: the crossbar ejects
//! into [`Partition::try_accept`] (the ingress [`Port`]), MEM replies
//! leave through the [`Partition::reply`] wire, and PIM acks through the
//! [`Partition::acks`] wire.

use std::collections::VecDeque;

use pimsim_cache::{AccessOutcome, CacheSlice};
use pimsim_component::{Component, Port, Schedule, Wire};
use pimsim_core::{Completion, MemoryController, SchedulePolicy};
use pimsim_dram::AddressMapper;
use pimsim_types::{Cycle, DecodedAddr, Request, RequestId, RequestKind, SystemConfig, VcMode};

use crate::pipeline::{INTERNAL_ID_BIT, INTERNAL_LANE_SHIFT};

/// Soft threshold on buffered outbound replies before the L2 stalls.
///
/// Not a hard wire capacity: fill installs release all waiters at once
/// and may briefly overshoot, exactly as the pre-port implementation did.
const REPLY_OUT_CAP: usize = 64;

/// Per-partition counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionStats {
    /// Requests accepted into the icnt→L2 ingress port.
    pub icnt_accepted: u64,
    /// Cycles the head of an icnt→L2 lane was stalled.
    pub icnt_head_stalls: u64,
    /// Fill requests sent to DRAM.
    pub fills_sent: u64,
    /// Writebacks sent to DRAM.
    pub writebacks_sent: u64,
}

/// One memory partition.
#[derive(Debug)]
pub struct Partition {
    channel: usize,
    vc_mode: VcMode,
    /// Interconnect→L2 staging port (one lane per VC).
    ingress: Port<Request>,
    l2: CacheSlice,
    /// L2→DRAM staging port (one lane per VC).
    to_dram: Port<Request>,
    /// The controller; public so experiments can read its stats.
    pub mc: MemoryController,
    /// L2 pipeline: (ready cycle, request) for hits and merged acks.
    l2_delay: VecDeque<(Cycle, Request)>,
    /// Fill completions from DRAM awaiting L2 install.
    pending_fills: VecDeque<Request>,
    /// Dirty victims awaiting L2→DRAM space.
    pending_writebacks: VecDeque<Request>,
    /// MEM completions awaiting injection into the reply network.
    reply: Wire<Request>,
    /// PIM acks awaiting credit return to the kernel, time-ordered by
    /// data-completion cycle: retire-time batching deposits a whole burst
    /// plan's acks here the moment the plan is created, and the
    /// completion stage drains only the due prefix each cycle — so each
    /// ack is observable at exactly the tick the eager per-tick path
    /// would have delivered it (DESIGN.md §4k).
    acks: Schedule<Request>,
    /// Timestamped eject batches from the request crossbar (DESIGN.md
    /// §4l): `(vc, request)` pairs keyed by the GPU cycle the deferred
    /// arbitration granted them, the ingress dual of the `acks`
    /// schedule. [`Partition::step_l2`] delivers the due prefix into the
    /// ingress port before any L2 work, so a replayed visit sees exactly
    /// the lane contents the live cycle would have.
    staged_ingress: Schedule<(usize, Request)>,
    /// DRAM tick of each staged arrival, FIFO-parallel to
    /// `staged_ingress` (deposits are (cycle, key)-ascending, so pops
    /// align). The front stamp feeds the arrival bound in
    /// [`Partition::bulk_horizon`].
    staged_dram: VecDeque<Cycle>,
    /// Staged arrivals per ingress VC — reserved lane slots the
    /// crossbar's eject-credit check must subtract before deferring
    /// further cycles.
    staged_counts: Vec<usize>,
    /// Non-PIM requests currently staged across the ingress and L2→DRAM
    /// ports — an O(1) mirror of scanning both ports, kept so the
    /// pure-PIM test in [`Partition::bulk_horizon`] costs nothing on the
    /// per-eject horizon invalidation path. Updated at every port
    /// entry/exit; pushing through [`Partition::ingress_mut`] bypasses
    /// the accounting (the debug cross-check in `bulk_horizon` trips if
    /// a driver does that and then defers).
    staged_mem: usize,
    /// Round-robin pointers for lane service.
    rr_icnt: usize,
    rr_l2dram: usize,
    /// Per-partition counter for internal (fill/writeback) request IDs;
    /// see [`Partition::mint_internal_id`].
    next_internal_id: u64,
    stats: PartitionStats,
}

impl Partition {
    /// Builds the partition for `channel`.
    pub fn new(channel: usize, cfg: &SystemConfig, policy: Box<dyn SchedulePolicy>) -> Self {
        assert!(
            (channel as u64) < (INTERNAL_ID_BIT >> INTERNAL_LANE_SHIFT),
            "channel index exceeds the internal-ID lane bits"
        );
        let vcs = cfg.noc.vc_mode.vc_count();
        Partition {
            channel,
            vc_mode: cfg.noc.vc_mode,
            ingress: Port::new(vcs, cfg.mc.icnt_to_l2_entries),
            l2: CacheSlice::new(&cfg.cache, cfg.dram.channels),
            to_dram: Port::new(vcs, cfg.mc.l2_to_dram_entries),
            mc: MemoryController::new(cfg, policy),
            l2_delay: VecDeque::new(),
            pending_fills: VecDeque::new(),
            pending_writebacks: VecDeque::new(),
            reply: Wire::unbounded(),
            acks: Schedule::new(),
            staged_ingress: Schedule::new(),
            staged_dram: VecDeque::new(),
            staged_counts: vec![0; vcs],
            staged_mem: 0,
            rr_icnt: 0,
            rr_l2dram: 0,
            next_internal_id: 0,
            stats: PartitionStats::default(),
        }
    }

    /// Mints a simulator-internal request ID (L2 fills and writebacks)
    /// from this partition's own ID lane:
    /// `INTERNAL_ID_BIT | (channel << INTERNAL_LANE_SHIFT) | counter`.
    ///
    /// Minting touches no cross-partition state, so partitions can step
    /// concurrently, and the sequence a partition mints depends only on
    /// its own traffic — identical whether the stage runs serial or
    /// parallel, with fast-forward on or off.
    pub(crate) fn mint_internal_id(&mut self) -> RequestId {
        debug_assert!(
            self.next_internal_id < 1 << INTERNAL_LANE_SHIFT,
            "internal ID counter overflowed its lane"
        );
        let id = RequestId(
            INTERNAL_ID_BIT
                | ((self.channel as u64) << INTERNAL_LANE_SHIFT)
                | self.next_internal_id,
        );
        self.next_internal_id += 1;
        id
    }

    /// The channel this partition serves.
    pub fn channel(&self) -> usize {
        self.channel
    }

    /// Counters snapshot (`icnt_accepted` is derived from the ingress
    /// port's transfer stats).
    pub fn stats(&self) -> PartitionStats {
        PartitionStats {
            icnt_accepted: self.ingress.total_pushed(),
            ..self.stats
        }
    }

    /// The L2 slice (for stats).
    pub fn l2(&self) -> &CacheSlice {
        &self.l2
    }

    fn vc_of(&self, is_pim: bool) -> usize {
        match self.vc_mode {
            VcMode::Shared => 0,
            VcMode::SplitPim => usize::from(is_pim),
        }
    }

    /// The interconnect→L2 ingress port.
    pub fn ingress(&self) -> &Port<Request> {
        &self.ingress
    }

    /// Mutable access to the ingress port (tests and custom drivers).
    pub fn ingress_mut(&mut self) -> &mut Port<Request> {
        &mut self.ingress
    }

    /// The MEM reply wire feeding the reply network.
    pub fn reply(&self) -> &Wire<Request> {
        &self.reply
    }

    /// Mutable access to the reply wire (the reply network pops it).
    pub fn reply_mut(&mut self) -> &mut Wire<Request> {
        &mut self.reply
    }

    /// The PIM ack schedule (out-of-band credit returns, time-ordered by
    /// completion cycle).
    pub fn acks(&self) -> &Schedule<Request> {
        &self.acks
    }

    /// Mutable access to the ack schedule (the completion stage drains
    /// the due prefix).
    pub fn acks_mut(&mut self) -> &mut Schedule<Request> {
        &mut self.acks
    }

    /// Occupancy of the interconnect→L2 staging lane on `vc`.
    pub fn icnt_q_len(&self, vc: usize) -> usize {
        self.ingress.lane(vc).len()
    }

    /// Occupancy of the L2→DRAM staging lane on `vc`.
    pub fn l2dram_q_len(&self, vc: usize) -> usize {
        self.to_dram.lane(vc).len()
    }

    /// Number of virtual channels in this partition's staging ports.
    pub fn vc_count(&self) -> usize {
        self.ingress.lane_count()
    }

    /// Accepts a request from the interconnect on `vc`, returning whether
    /// the ingress lane had credit (the crossbar's eject hand-off).
    pub fn try_accept(&mut self, vc: usize, req: Request) -> bool {
        let accepted = self.ingress.lane_mut(vc).try_send(req).is_ok();
        if accepted && !req.kind.is_pim() {
            self.staged_mem += 1;
        }
        accepted
    }

    /// Deposits a deferred crossbar ejection (DESIGN.md §4l): the grant
    /// that live arbitration would have delivered into the ingress lane
    /// on GPU cycle `gpu_at` (DRAM tick `dram_at`). Delivery happens at
    /// the top of the `step_l2` visit for that cycle, so lane contents at
    /// every L2 service point match the live schedule exactly.
    ///
    /// Only PIM requests are ever staged — the request network refuses
    /// to defer any cycle while a MEM flit is buffered.
    pub fn stage_arrival(&mut self, gpu_at: Cycle, dram_at: Cycle, vc: usize, req: Request) {
        debug_assert!(req.kind.is_pim(), "only PIM ejections are deferrable");
        self.staged_counts[vc] += 1;
        self.staged_dram.push_back(dram_at);
        self.staged_ingress.push(gpu_at, req.id.0, (vc, req));
        debug_assert_eq!(
            self.staged_ingress.straggler_len(),
            0,
            "eject batches must arrive in grant order"
        );
    }

    /// Staged-but-undelivered crossbar ejections.
    pub fn staged_len(&self) -> usize {
        self.staged_ingress.len()
    }

    /// Free ingress-lane slots on `vc` after reserving one for every
    /// staged arrival — the credit the crossbar may still defer against.
    pub fn eject_credit(&self, vc: usize) -> usize {
        let lane = self.ingress.lane(vc);
        lane.capacity()
            .saturating_sub(lane.len())
            .saturating_sub(self.staged_counts[vc])
    }

    /// Delivers every staged arrival due at or before `now` into its
    /// ingress lane. Credit was proven when the ejection was deferred and
    /// lane occupancy only shrinks between then and delivery, so
    /// acceptance cannot fail.
    fn deliver_staged(&mut self, now: Cycle) {
        while let Some((vc, req)) = self.staged_ingress.pop_due(now) {
            self.staged_dram.pop_front();
            self.staged_counts[vc] -= 1;
            let accepted = self.try_accept(vc, req);
            debug_assert!(accepted, "eject credit was proven at defer time");
        }
    }

    /// Delivers every staged arrival due at or before `now` immediately,
    /// without waiting for the `step_l2` visit. The live ejection path
    /// calls this (after catching the partition up) before handing a
    /// flit over through [`Partition::try_accept`]: arrivals staged for
    /// this very cycle precede that flit in the eager lane order, so
    /// they must land first for the hand-off verdict and the lane FIFO
    /// to match the live schedule exactly.
    pub fn flush_staged(&mut self, now: Cycle) {
        self.deliver_staged(now);
    }

    /// One GPU-clock step of the L2 stage. Fill and writeback IDs are
    /// minted from this partition's own lane
    /// ([`Partition::mint_internal_id`]).
    pub fn step_l2(&mut self, now: Cycle) {
        if self.staged_ingress.has_due(now) {
            self.deliver_staged(now);
        }
        self.process_fills(now);
        self.drain_writebacks();
        self.pop_icnt(now);
        self.drain_l2_delay(now);
    }

    /// Installs at most one fill per cycle and releases its waiters.
    fn process_fills(&mut self, now: Cycle) {
        let Some(fill) = self.pending_fills.pop_front() else {
            return;
        };
        let (waiters, writeback) = self.l2.fill(fill.addr, now);
        if let Some(addr) = writeback {
            let id = self.mint_internal_id();
            self.pending_writebacks.push_back(Request::new(
                id,
                fill.app,
                RequestKind::MemWrite,
                addr,
                fill.src_port,
                now,
            ));
        }
        for w in waiters {
            self.reply.send(w);
        }
    }

    fn drain_writebacks(&mut self) {
        let vc = self.vc_of(false);
        while !self.pending_writebacks.is_empty() && self.to_dram.lane(vc).can_accept() {
            let wb = self.pending_writebacks.pop_front().expect("nonempty");
            self.to_dram.lane_mut(vc).send(wb);
            self.staged_mem += 1;
            self.stats.writebacks_sent += 1;
        }
    }

    /// L2 lookups per GPU cycle (the slice's banked tag pipeline).
    const L2_LOOKUPS_PER_CYCLE: usize = 2;

    /// Services up to [`Self::L2_LOOKUPS_PER_CYCLE`] ingress lane heads
    /// per cycle, round-robin over VCs.
    fn pop_icnt(&mut self, now: Cycle) {
        let vcs = self.ingress.lane_count();
        for _ in 0..Self::L2_LOOKUPS_PER_CYCLE {
            if self.reply.len() >= REPLY_OUT_CAP {
                return; // backpressure from the reply network
            }
            let mut serviced = false;
            for i in 0..vcs {
                let vc = (self.rr_icnt + i) % vcs;
                let Some(&head) = self.ingress.lane(vc).peek() else {
                    continue;
                };
                if self.try_service_head(vc, head, now) {
                    self.rr_icnt = (vc + 1) % vcs;
                    serviced = true;
                    break;
                }
                self.stats.icnt_head_stalls += 1;
                // Head-of-line blocking: under VC1 a stuck head stalls
                // everything; under VC2 the other lane still gets its turn.
            }
            if !serviced {
                return;
            }
        }
    }

    /// Attempts to service one lane head; returns whether it was consumed.
    fn try_service_head(&mut self, vc: usize, head: Request, now: Cycle) -> bool {
        if head.kind.is_pim() {
            // PIM bypasses the L2 entirely.
            let dvc = self.vc_of(true);
            if self.to_dram.lane(dvc).can_accept() {
                self.ingress.lane_mut(vc).recv();
                self.to_dram.lane_mut(dvc).send(head);
                return true;
            }
            return false;
        }
        // MEM: a miss needs L2→DRAM space for its fill; check first so the
        // lookup never has to be undone.
        let dvc = self.vc_of(false);
        if !self.to_dram.lane(dvc).can_accept() {
            return false;
        }
        match self.l2.access(head, now) {
            AccessOutcome::Hit => {
                self.ingress.lane_mut(vc).recv();
                self.staged_mem -= 1;
                self.l2_delay.push_back((now + self.l2.latency(), head));
                true
            }
            AccessOutcome::MissAllocated => {
                // The head leaves the ingress and its fill enters the
                // L2→DRAM port: staged_mem is unchanged.
                self.ingress.lane_mut(vc).recv();
                let id = self.mint_internal_id();
                let fill = Request::new(
                    id,
                    head.app,
                    RequestKind::MemRead,
                    self.l2.line_addr(head.addr),
                    head.src_port,
                    now,
                );
                self.to_dram.lane_mut(dvc).send(fill);
                self.stats.fills_sent += 1;
                true
            }
            AccessOutcome::MissMerged => {
                self.ingress.lane_mut(vc).recv();
                self.staged_mem -= 1;
                true
            }
            AccessOutcome::Blocked => false,
        }
    }

    fn drain_l2_delay(&mut self, now: Cycle) {
        while let Some(&(ready, req)) = self.l2_delay.front() {
            if ready <= now {
                self.l2_delay.pop_front();
                self.reply.send(req);
            } else {
                break;
            }
        }
    }

    /// One DRAM-clock step: ingest from the L2→DRAM port, advance the MC,
    /// and sort its completions.
    pub fn step_dram(&mut self, dram_now: Cycle, mapper: &AddressMapper) {
        // Fast path: a fully idle controller with nothing to ingest can
        // skip the cycle entirely (common while a GPU-bound kernel
        // computes). Occupancy/BLP integrals skip these cycles too, which
        // only affects diagnostic averages.
        if self.to_dram.is_empty() && self.mc.is_idle(dram_now) {
            return;
        }
        // Ingest up to two requests per DRAM cycle, round-robin over
        // lanes, so queue entry never outpaces what the DRAM can service.
        let vcs = self.to_dram.lane_count();
        for _ in 0..2 {
            let mut ingested = false;
            for i in 0..vcs {
                let vc = (self.rr_l2dram + i) % vcs;
                let Some(&head) = self.to_dram.lane(vc).peek() else {
                    continue;
                };
                let is_pim = head.kind.is_pim();
                if !self.mc.can_accept(is_pim) {
                    continue;
                }
                self.to_dram.lane_mut(vc).recv();
                if !is_pim {
                    self.staged_mem -= 1;
                }
                let decoded = match head.kind {
                    RequestKind::Pim(cmd) => DecodedAddr {
                        channel: cmd.channel,
                        bank: 0,
                        row: cmd.row,
                        col: u32::from(cmd.col),
                    },
                    _ => {
                        let d = mapper.decode(head.addr);
                        debug_assert_eq!(
                            d.channel as usize, self.channel,
                            "request routed to the wrong partition"
                        );
                        d
                    }
                };
                self.mc.enqueue(head, decoded, dram_now);
                self.rr_l2dram = (vc + 1) % vcs;
                ingested = true;
                break;
            }
            if !ingested {
                break;
            }
        }
        self.mc.step(dram_now);
        self.harvest_completions(dram_now);
    }

    /// Harvests the controller's retire-time ack batch into the
    /// time-ordered schedule and routes matured heap completions — the
    /// shared tail of every step that can advance the controller.
    fn harvest_completions(&mut self, dram_now: Cycle) {
        while let Some(c) = self.mc.pop_batched_ack() {
            self.acks.push(c.at, c.req.id.0, c.req);
        }
        while let Some(Completion { req, at }) = self.mc.pop_completion_before(dram_now) {
            match req.kind {
                RequestKind::Pim(_) => self.acks.push(at, req.id.0, req),
                RequestKind::MemRead => self.pending_fills.push_back(req),
                RequestKind::MemWrite => {} // writeback retired
            }
        }
    }

    /// Steps `ticks` DRAM cycles starting at `first` — replaying the
    /// whole span in O(1) through the controller's stall memo when
    /// nothing else in the partition needs per-tick servicing, else
    /// falling back to per-tick [`Partition::step_dram`].
    ///
    /// The gate is exact: with the L2→DRAM port empty there is nothing to
    /// ingest, and [`MemoryController::quiet_replay_span`] itself refuses
    /// when a completion falls due inside the span (per-tick stepping
    /// would pop it at its exact cycle) or when the controller could go
    /// idle mid-span.
    pub fn step_dram_span(&mut self, first: Cycle, ticks: u64, mapper: &AddressMapper) {
        if ticks == 0 {
            return;
        }
        if self.to_dram.is_empty()
            && (self.mc.quiet_replay_span(first, ticks) || self.mc.plan_replay_span(first, ticks))
        {
            // Neither bulk replay creates completions: a plan's acks left
            // as a batch at retirement, and quiet spans hold none by
            // construction — nothing to harvest.
            return;
        }
        for t in 0..ticks {
            self.step_dram(first + t, mapper);
        }
    }

    /// Whether the GPU-clock L2 front half has nothing to do — a
    /// [`Partition::step_l2`] call would provably mutate nothing. The
    /// outbound reply wire is deliberately excluded: the reply network
    /// drains it without any L2 involvement.
    pub fn l2_quiet(&self) -> bool {
        self.ingress.is_empty()
            && self.l2_delay.is_empty()
            && self.pending_fills.is_empty()
            && self.pending_writebacks.is_empty()
    }

    /// Whether any staged request in `port` is a MEM (non-PIM) request.
    fn port_has_mem(port: &Port<Request>) -> bool {
        port.lanes()
            .any(|lane| lane.iter().any(|r| !r.kind.is_pim()))
    }

    /// How far the memory stage may defer this partition's servicing
    /// (both the L2 front half and DRAM ticks), given the next
    /// unserviced DRAM tick is `from`: every tick in `[from, horizon)`
    /// is reproducible later by [`Partition::replay_spans`] with
    /// bit-identical state and no observable (reply, ack delivery, fill)
    /// surfacing inside the window — provided no request is ejected into
    /// the partition in between (the memory stage re-derives the horizon
    /// on any `partition_mut` access). `None` means the partition needs
    /// live per-cycle service.
    ///
    /// MEM-side work refuses deferral outright: L2 hits, fills, and
    /// writebacks push replies at cycle granularity. A *pure-PIM*
    /// pipeline (staged PIM requests in the ingress or L2→DRAM ports)
    /// is deferrable and does not bound the window: PIM bypasses the
    /// L2, touches no reply wire, and the acks it produces are pulled
    /// by the delivery stage, which replays lagging partitions before
    /// every drain — so no production deadline falls inside the window.
    /// The one coupling to MEM state is the reply-wire backpressure
    /// threshold in the L2 service loop: while the wire sits below
    /// `REPLY_OUT_CAP` and only drains (nothing in a pure-PIM window
    /// pushes it), the threshold check resolves identically live and at
    /// replay; at or above the cap the stall could lift mid-window, so
    /// defer is refused.
    pub fn bulk_horizon(&self, from: Cycle) -> Option<Cycle> {
        if !self.l2_delay.is_empty()
            || !self.pending_fills.is_empty()
            || !self.pending_writebacks.is_empty()
        {
            return None;
        }
        let pipeline = !self.ingress.is_empty() || !self.to_dram.is_empty();
        let staged = !self.staged_ingress.is_empty();
        debug_assert_eq!(
            self.staged_mem > 0,
            Self::port_has_mem(&self.ingress) || Self::port_has_mem(&self.to_dram),
            "staged_mem counter out of sync with the port contents"
        );
        if (pipeline || staged) && self.reply.len() >= REPLY_OUT_CAP {
            return None;
        }
        if pipeline && self.staged_mem > 0 {
            return None;
        }
        // Buffered or staged pure-PIM work does not bound the window:
        // ingestion and issue replay through the live code paths, and
        // the acks they produce are *pulled* by the delivery stage
        // (which replays lagging partitions before every drain), so no
        // production deadline falls inside the window (DESIGN.md §4l).
        // MEM work cannot hide here — `staged_mem > 0` refused above and
        // the staged-ingress schedule is PIM-only by construction — so
        // the controller's own horizon (exact-tick MEM completions, MEM
        // regime bound) is the whole story.
        self.mc.bulk_horizon(from)
    }

    /// Replays deferred stage visits `(gpu_cycle, first_dram_tick,
    /// dram_ticks)` — the catch-up half of the
    /// [`Partition::bulk_horizon`] contract. With the pipeline frozen
    /// (nothing staged in the ports and a quiet L2 front half — deferral
    /// voids on ejects, so nothing changed since the horizon was taken),
    /// the GPU-cycle L2 steps are provable no-ops and the DRAM ticks
    /// collapse into one contiguous span through
    /// [`Partition::catch_up_span`]. With staged pure-PIM work the spans
    /// replay through the *live* code path — `step_l2` plus
    /// `step_dram_span` per recorded visit — which is bit-identical to
    /// having never deferred.
    pub fn replay_spans(&mut self, spans: &[(Cycle, Cycle, u64)], mapper: &AddressMapper) {
        let mut i = 0;
        while i < spans.len() {
            // Collapse the quiet run of visits up to the next staged
            // arrival's delivery cycle: with the ports empty and the L2
            // front half quiet, those visits provably touch only the
            // controller, so their DRAM ticks fold into one span.
            if self.l2_quiet() && self.to_dram.is_empty() {
                let j = match self.staged_ingress.next_at() {
                    None => spans.len(),
                    Some(due) => i + spans[i..].partition_point(|&(g, _, _)| g < due),
                };
                if j > i {
                    let (_, first, _) = spans[i];
                    let (_, last_first, last_ticks) = spans[j - 1];
                    self.catch_up_span(first, last_first + last_ticks - first);
                    i = j;
                    continue;
                }
            }
            let (gpu_now, first_dram, ticks) = spans[i];
            self.step_l2(gpu_now);
            self.step_dram_span(first_dram, ticks, mapper);
            i += 1;
        }
    }

    /// Replays the deferred DRAM ticks `[first, first+ticks)` for a
    /// partition with a frozen, empty pipeline: nothing to ingest, so
    /// this never consults the address mapper — it bulk-replays the span
    /// through the controller's stall memo or plan window, falling back
    /// to per-tick controller steps without the ingest scan.
    pub fn catch_up_span(&mut self, first: Cycle, ticks: u64) {
        if ticks == 0 {
            return;
        }
        debug_assert!(self.to_dram.is_empty(), "deferred span had an ingest");
        if self.mc.quiet_replay_span(first, ticks) || self.mc.plan_replay_span(first, ticks) {
            return;
        }
        for t in 0..ticks {
            let now = first + t;
            if self.mc.is_idle(now) {
                continue;
            }
            self.mc.step(now);
            self.harvest_completions(now);
        }
    }

    /// The earliest DRAM cycle at or after `dram_now` at which this
    /// partition has work, or `None` while it holds none anywhere
    /// (staging ports, L2 pipeline, controller, reply/ack wires). When
    /// the controller is the only busy piece, its answer (which can be a
    /// future cycle inside a stall window) passes through; otherwise an
    /// active partition answers `dram_now`.
    pub fn next_activity_cycle(&self, dram_now: Cycle) -> Option<Cycle> {
        if self.ingress.is_empty()
            && self.staged_ingress.is_empty()
            && self.to_dram.is_empty()
            && self.l2_delay.is_empty()
            && self.pending_fills.is_empty()
            && self.pending_writebacks.is_empty()
            && self.reply.is_empty()
            && self.acks.is_empty()
        {
            return self.mc.next_activity_cycle(dram_now);
        }
        Some(dram_now)
    }

    /// Whether the partition holds no work at all.
    pub fn is_idle(&self, dram_now: Cycle) -> bool {
        self.ingress.is_empty()
            && self.staged_ingress.is_empty()
            && self.to_dram.is_empty()
            && self.l2_delay.is_empty()
            && self.pending_fills.is_empty()
            && self.pending_writebacks.is_empty()
            && self.reply.is_empty()
            && self.acks.is_empty()
            && self.mc.is_idle(dram_now)
    }
}

impl Component for Partition {
    /// Physical-address → bank/row/col decoding for MEM requests.
    type Ctx<'a> = &'a AddressMapper;

    fn name(&self) -> &'static str {
        "partition"
    }

    /// One DRAM-clock tick ([`Partition::step_dram`]); the GPU-clock L2
    /// front half is the separate [`Partition::step_l2`].
    fn step(&mut self, now: Cycle, mapper: &AddressMapper) {
        self.step_dram(now, mapper);
    }

    fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        Partition::next_activity_cycle(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_core::policy::PolicyKind;
    use pimsim_types::{AppId, PhysAddr, PimCommand, PimOpKind};

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn partition(c: &SystemConfig) -> Partition {
        Partition::new(0, c, PolicyKind::FrFcfs.build())
    }

    fn mapper(c: &SystemConfig) -> AddressMapper {
        AddressMapper::new(&c.addr_map, &c.dram, c.dram_word_bytes())
    }

    fn mem_read(id: u64, addr: u64) -> Request {
        Request::new(
            RequestId(id),
            AppId::GPU,
            RequestKind::MemRead,
            PhysAddr(addr),
            3,
            0,
        )
    }

    fn pim_load(id: u64) -> Request {
        let cmd = PimCommand {
            op: PimOpKind::RfLoad,
            channel: 0,
            row: 4 + id as u32,
            col: 0,
            rf_entry: 0,
            block_start: true,
            block_id: id,
        };
        Request::new(
            RequestId(id),
            AppId::PIM,
            RequestKind::Pim(cmd),
            PhysAddr(0),
            8,
            0,
        )
    }

    /// Drives the partition until quiet, returning delivered MEM replies
    /// and PIM acks. One scratch vector per drive, not per cycle — the
    /// same drain discipline the completion stage uses.
    fn drive(p: &mut Partition, m: &AddressMapper, cycles: u64) -> (Vec<Request>, Vec<Request>) {
        let mut replies = Vec::new();
        let mut acks = Vec::new();
        for now in 0..cycles {
            p.step_l2(now);
            p.step_dram(now, m); // 1:1 clocks are fine for unit tests
            p.acks_mut().drain_due_into(now, &mut acks);
            while let Some(r) = p.reply_mut().recv() {
                replies.push(r);
            }
        }
        (replies, acks)
    }

    #[test]
    fn mem_read_misses_fills_and_replies() {
        let c = cfg();
        let mut p = partition(&c);
        let m = mapper(&c);
        assert!(p.try_accept(0, mem_read(1, 0x40)));
        let (replies, acks) = drive(&mut p, &m, 300);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].id, RequestId(1));
        assert!(acks.is_empty());
        assert_eq!(p.stats().fills_sent, 1);
        assert_eq!(p.stats().icnt_accepted, 1);
        assert!(p.is_idle(300));
    }

    #[test]
    fn second_access_hits_in_l2() {
        let c = cfg();
        let mut p = partition(&c);
        let m = mapper(&c);
        assert!(p.try_accept(0, mem_read(1, 0x40)));
        let _ = drive(&mut p, &m, 300);
        assert!(p.try_accept(0, mem_read(2, 0x40)));
        let (replies, _) = drive(&mut p, &m, 100);
        assert_eq!(replies.len(), 1, "hit must reply without DRAM");
        assert_eq!(p.stats().fills_sent, 1, "no second fill");
    }

    #[test]
    fn pim_bypasses_l2() {
        let c = cfg();
        let mut p = partition(&c);
        let m = mapper(&c);
        assert!(p.try_accept(0, pim_load(5)));
        let (replies, acks) = drive(&mut p, &m, 300);
        assert!(replies.is_empty());
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].id, RequestId(5));
        assert_eq!(
            p.l2().stats().hits + p.l2().stats().misses,
            0,
            "L2 untouched"
        );
    }

    #[test]
    fn vc1_pim_blocks_mem_behind_it() {
        // Fill the MC PIM path so PIM heads stall the shared lane.
        let mut c = cfg();
        c.mc.l2_to_dram_entries = 2;
        c.mc.pim_q_entries = 1;
        let mut p = Partition::new(0, &c, PolicyKind::MemFirst.build());
        let _m = mapper(&c);
        // Many PIM requests then one MEM request in the shared lane.
        for i in 0..8 {
            let _ = p.try_accept(0, pim_load(i));
        }
        let _ = p.try_accept(0, mem_read(100, 0x40));
        // After a few cycles with a tiny PIM queue, the MEM request is
        // still behind undrained PIM heads.
        for now in 0..3 {
            p.step_l2(now);
        }
        assert_eq!(
            p.stats().fills_sent,
            0,
            "MEM must be stuck behind PIM heads"
        );
    }

    #[test]
    fn vc2_lets_mem_pass_stuck_pim() {
        let mut c = cfg();
        c.noc.vc_mode = VcMode::SplitPim;
        c.mc.pim_q_entries = 1;
        c.mc.l2_to_dram_entries = 4; // 2 per lane
        let mut p = Partition::new(0, &c, PolicyKind::MemFirst.build());
        let m = mapper(&c);
        for i in 0..4 {
            let _ = p.try_accept(1, pim_load(i));
        }
        assert!(p.try_accept(0, mem_read(100, 0x40)));
        let (replies, _) = drive(&mut p, &m, 300);
        assert_eq!(replies.len(), 1, "MEM must complete via its own lane");
        let _ = m;
    }

    #[test]
    fn ingress_capacity_is_enforced() {
        let c = cfg();
        let mut p = partition(&c);
        let cap = c.mc.icnt_to_l2_entries; // single lane
        for i in 0..cap as u64 {
            assert!(p.ingress().lane(0).can_accept());
            assert!(p.try_accept(0, mem_read(i, i * 32)));
        }
        assert!(!p.ingress().lane(0).can_accept());
        assert!(
            !p.try_accept(0, mem_read(99, 99 * 32)),
            "refused, not panicked"
        );
        assert_eq!(p.ingress().lane(0).stats().refused, 1);
    }

    #[test]
    fn internal_id_lanes_never_collide_across_channels() {
        // One partition per channel, each minting a burst of internal IDs:
        // every ID must be unique, tagged, and monotone within its lane —
        // the exact properties parallel stepping and the completion-heap
        // tie-break rely on.
        let c = cfg();
        let mut seen = std::collections::HashSet::new();
        for ch in 0..32 {
            let mut p = Partition::new(ch, &c, PolicyKind::FrFcfs.build());
            let mut prev: Option<u64> = None;
            for _ in 0..1000 {
                let id = p.mint_internal_id().0;
                assert!(id & INTERNAL_ID_BIT != 0, "internal IDs must be tagged");
                assert_eq!(
                    (id & !INTERNAL_ID_BIT) >> INTERNAL_LANE_SHIFT,
                    ch as u64,
                    "lane bits must encode the channel"
                );
                assert!(seen.insert(id), "duplicate internal ID {id:#x}");
                if let Some(prev) = prev {
                    assert!(id > prev, "IDs must be monotone within a lane");
                }
                prev = Some(id);
            }
        }
        assert_eq!(seen.len(), 32 * 1000);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn ingress_overflow_panics() {
        let c = cfg();
        let mut p = partition(&c);
        for i in 0..=c.mc.icnt_to_l2_entries as u64 {
            p.ingress_mut().lane_mut(0).send(mem_read(i, i * 32));
        }
    }
}
