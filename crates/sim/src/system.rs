//! The full-system simulator: SMs → request crossbar → memory partitions
//! (L2 + MC + DRAM) → reply crossbar → SMs, with the GPU and DRAM clock
//! domains of Table I.
//!
//! The main loop is event-driven where it can be: when every network
//! queue and every partition is provably empty, the simulator jumps its
//! clocks directly to the next cycle at which some kernel can issue
//! (see [`Simulator::set_fast_forward`]), instead of ticking idle
//! components one cycle at a time. The skip is exact — fast-forwarded
//! runs are bit-identical to lock-step runs — because idle cycles mutate
//! nothing but the clocks, and the clock coupling uses exact integer
//! arithmetic ([`SystemConfig::dram_clock_ratio`]).

use pimsim_dram::AddressMapper;
use pimsim_gpu::KernelModel;
use pimsim_noc::Crossbar;
use pimsim_types::{
    AppId, Cycle, Request, RequestId, RequestKind, SystemConfig, VcMode,
};

use crate::partition::Partition;

/// Tag bit distinguishing simulator-internal request IDs (L2 fills and
/// writebacks) from kernel request IDs held in the inflight table.
const INTERNAL_ID_BIT: u64 = 1 << 63;

/// One slot of the [`InflightTable`].
#[derive(Debug, Clone, Copy)]
struct InflightEntry {
    /// Generation counter, bumped on every free so a recycled slot mints a
    /// fresh 64-bit ID (concurrently inflight IDs stay unique, and the
    /// completion heap's ID tie-break stays deterministic).
    gen: u32,
    /// `(kernel, slot)` owner while occupied.
    owner: Option<(u32, u32)>,
}

/// Free-list slab mapping in-flight kernel [`RequestId`]s to their
/// `(kernel, slot)` owners.
///
/// Replaces the seed's `HashMap<u64, (usize, usize)>`: lookups become a
/// bounds-checked index (the ID's low 32 bits are the slab slot, the high
/// bits its generation), inserts and removes are push/pop on a free list,
/// and the table's footprint stays at the high-water mark of concurrently
/// outstanding requests instead of rehashing on the hot path.
#[derive(Debug, Default)]
struct InflightTable {
    entries: Vec<InflightEntry>,
    free: Vec<u32>,
    len: usize,
}

impl InflightTable {
    /// Generations are 31-bit so a composed ID can never collide with
    /// [`INTERNAL_ID_BIT`].
    const GEN_MASK: u32 = 0x7fff_ffff;

    fn compose(gen: u32, slot: u32) -> u64 {
        (u64::from(gen & Self::GEN_MASK) << 32) | u64::from(slot)
    }

    /// The ID the next [`InflightTable::insert`] will return, with no
    /// state change. Letting the kernel model see the ID before the issue
    /// commits means a failed `try_issue` leaves the table — and the ID
    /// sequence — completely untouched, which the fast-forward path
    /// requires: an idle cycle must mutate nothing.
    fn peek_id(&self) -> RequestId {
        match self.free.last() {
            Some(&slot) => RequestId(Self::compose(self.entries[slot as usize].gen, slot)),
            None => RequestId(Self::compose(0, u32::try_from(self.entries.len()).expect("slab"))),
        }
    }

    /// Claims the peeked slot for `(kernel, slot)` and returns its ID.
    fn insert(&mut self, kernel: usize, slot: usize) -> RequestId {
        let owner = Some((kernel as u32, slot as u32));
        self.len += 1;
        match self.free.pop() {
            Some(idx) => {
                let e = &mut self.entries[idx as usize];
                debug_assert!(e.owner.is_none(), "free-list slot occupied");
                e.owner = owner;
                RequestId(Self::compose(e.gen, idx))
            }
            None => {
                let idx = u32::try_from(self.entries.len()).expect("slab exceeds u32 slots");
                self.entries.push(InflightEntry { gen: 0, owner });
                RequestId(Self::compose(0, idx))
            }
        }
    }

    /// Releases `id` and returns its owner; `None` for internal IDs,
    /// stale generations, and already-freed slots.
    fn remove(&mut self, id: RequestId) -> Option<(usize, usize)> {
        if id.0 & INTERNAL_ID_BIT != 0 {
            return None;
        }
        let slot = (id.0 & 0xffff_ffff) as usize;
        let e = self.entries.get_mut(slot)?;
        if Self::compose(e.gen, slot as u32) != id.0 {
            return None;
        }
        let (k, s) = e.owner.take()?;
        e.gen = (e.gen + 1) & Self::GEN_MASK;
        self.free.push(slot as u32);
        self.len -= 1;
        Some((k as usize, s as usize))
    }

    /// Number of live entries. O(1); the simulator uses this as the cheap
    /// first gate of the idle-span check — any outstanding kernel request
    /// means some component is busy, so the per-partition scan can be
    /// skipped entirely.
    fn len(&self) -> usize {
        self.len
    }
}

/// A kernel mounted on a set of SMs.
pub struct MountedKernel {
    /// The kernel model.
    pub model: Box<dyn KernelModel>,
    /// Global SM indices this kernel occupies (slot `i` = `sms[i]`).
    pub sms: Vec<usize>,
    /// Whether this kernel issues PIM requests.
    pub is_pim: bool,
    /// Restart the kernel when it completes (the paper's "run in a loop"
    /// methodology).
    pub restart: bool,
    /// GPU cycle the current run started.
    pub run_started: Cycle,
    /// Execution time (GPU cycles) of the first completed run.
    pub first_run_cycles: Option<u64>,
    /// Completed runs.
    pub runs: u64,
    /// Requests injected into the interconnect by this kernel.
    pub icnt_injections: u64,
}

impl std::fmt::Debug for MountedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MountedKernel")
            .field("name", &self.model.name())
            .field("sms", &self.sms.len())
            .field("is_pim", &self.is_pim)
            .field("runs", &self.runs)
            .finish()
    }
}

/// Error returned when a simulation exceeds its cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleBudgetExceeded {
    /// The budget that was exhausted.
    pub max_gpu_cycles: u64,
    /// Human-readable progress description.
    pub progress: String,
}

impl std::fmt::Display for CycleBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} GPU cycles ({})",
            self.max_gpu_cycles, self.progress
        )
    }
}

impl std::error::Error for CycleBudgetExceeded {}

/// The full-system simulator.
///
/// # Example
///
/// ```no_run
/// use pimsim_core::policy::PolicyKind;
/// use pimsim_sim::Simulator;
/// use pimsim_types::SystemConfig;
/// use pimsim_workloads::{gpu_kernel, rodinia::GpuBenchmark};
///
/// let cfg = SystemConfig::default();
/// let mut sim = Simulator::new(cfg, PolicyKind::FrFcfs);
/// let k = gpu_kernel(GpuBenchmark(3), 80, 0.2);
/// sim.mount(Box::new(k), (0..80).collect(), false, false);
/// let cycles = sim.run_until_all_first_done(50_000_000).unwrap();
/// assert!(cycles > 0);
/// ```
pub struct Simulator {
    cfg: SystemConfig,
    mapper: AddressMapper,
    req_xbar: Crossbar,
    reply_xbar: Crossbar,
    partitions: Vec<Partition>,
    kernels: Vec<MountedKernel>,
    /// Global SM index -> (kernel index, slot index).
    sm_map: Vec<Option<(usize, usize)>>,
    /// Outstanding requests per global SM (MEM kernels' throttle).
    sm_outstanding: Vec<usize>,
    /// RequestId -> (kernel, slot) for completion routing.
    inflight: InflightTable,
    gpu_cycle: Cycle,
    dram_cycle: Cycle,
    /// Integer clock-coupling accumulator: holds `gpu_cycles * clock_num
    /// mod clock_den`; a DRAM cycle fires on every `clock_den` carry.
    dram_acc: u64,
    /// DRAM:GPU clock ratio as an exact rational (see
    /// [`SystemConfig::dram_clock_ratio`]).
    clock_num: u64,
    clock_den: u64,
    /// Monotonic counter for simulator-internal IDs (L2 fills and
    /// writebacks), tagged with [`INTERNAL_ID_BIT`].
    next_internal_id: u64,
    /// Event-driven idle-span skipping (on by default; see
    /// [`Simulator::set_fast_forward`]).
    fast_forward: bool,
    /// Reusable per-cycle buffers (PIM acks, delivered replies).
    ack_scratch: Vec<Request>,
    reply_scratch: Vec<Request>,
    /// Number of idle-span jumps taken.
    skips: u64,
    /// GPU cycles covered by those jumps (not stepped one by one).
    skipped_cycles: u64,
}

impl Simulator {
    /// Builds an empty simulator; mount kernels before running.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: SystemConfig, policy: pimsim_core::PolicyKind) -> Self {
        cfg.validate().expect("invalid system configuration");
        let channels = cfg.dram.channels;
        let sms = cfg.gpu.num_sms;
        let mapper = AddressMapper::new(&cfg.addr_map, &cfg.dram, cfg.dram_word_bytes());
        let partitions = (0..channels)
            .map(|c| Partition::new(c, &cfg, policy.build()))
            .collect();
        let (clock_num, clock_den) = cfg.dram_clock_ratio();
        Simulator {
            req_xbar: Crossbar::new(sms, channels, cfg.noc.input_queue_entries, cfg.noc.vc_mode)
                .with_iterations(cfg.noc.islip_iterations),
            reply_xbar: Crossbar::new(channels, sms, cfg.noc.reply_queue_entries, VcMode::Shared),
            partitions,
            kernels: Vec::new(),
            sm_map: vec![None; sms],
            sm_outstanding: vec![0; sms],
            inflight: InflightTable::default(),
            gpu_cycle: 0,
            dram_cycle: 0,
            dram_acc: 0,
            clock_num,
            clock_den,
            next_internal_id: 0,
            fast_forward: true,
            ack_scratch: Vec::new(),
            reply_scratch: Vec::new(),
            skips: 0,
            skipped_cycles: 0,
            mapper,
            cfg,
        }
    }

    /// Enables or disables event-driven idle-span skipping (on by
    /// default). With it off, the simulator ticks every GPU cycle in
    /// lock-step. Both modes produce bit-identical results; the flag
    /// exists for regression testing and for measuring the speedup.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Whether event-driven idle-span skipping is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// `(jumps taken, GPU cycles covered by jumps)` — how much of the run
    /// the event-driven path fast-forwarded over.
    pub fn fast_forward_stats(&self) -> (u64, u64) {
        (self.skips, self.skipped_cycles)
    }

    /// Mounts `model` on the given global SM indices.
    ///
    /// # Panics
    ///
    /// Panics if an SM is already occupied, out of range, or the SM count
    /// does not match the model's slot count.
    pub fn mount(
        &mut self,
        model: Box<dyn KernelModel>,
        sms: Vec<usize>,
        is_pim: bool,
        restart: bool,
    ) -> usize {
        assert_eq!(
            sms.len(),
            model.num_slots(),
            "SM count must match the kernel's slots"
        );
        let idx = self.kernels.len();
        for (slot, &sm) in sms.iter().enumerate() {
            assert!(sm < self.sm_map.len(), "SM index out of range");
            assert!(self.sm_map[sm].is_none(), "SM {sm} already occupied");
            self.sm_map[sm] = Some((idx, slot));
        }
        self.kernels.push(MountedKernel {
            model,
            sms,
            is_pim,
            restart,
            run_started: self.gpu_cycle,
            first_run_cycles: None,
            runs: 0,
            icnt_injections: 0,
        });
        idx
    }

    /// The mounted kernels.
    pub fn kernels(&self) -> &[MountedKernel] {
        &self.kernels
    }

    /// The memory partitions (for stats).
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// GPU cycles elapsed.
    pub fn gpu_cycles(&self) -> u64 {
        self.gpu_cycle
    }

    /// DRAM cycles elapsed.
    pub fn dram_cycles(&self) -> u64 {
        self.dram_cycle
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Total flits buffered in the request network's input queues.
    pub fn request_noc_occupancy(&self) -> usize {
        self.req_xbar.total_occupancy()
    }

    /// Request-network counters.
    pub fn request_noc_stats(&self) -> pimsim_noc::CrossbarStats {
        self.req_xbar.stats()
    }

    /// Mints a simulator-internal ID (L2 fills and writebacks). These IDs
    /// live outside the inflight table — [`INTERNAL_ID_BIT`] keeps the two
    /// namespaces disjoint — and are only minted while traffic is in
    /// flight, so the sequence is identical with fast-forward on or off.
    fn alloc_internal_id(next: &mut u64) -> RequestId {
        let id = RequestId(INTERNAL_ID_BIT | *next);
        *next += 1;
        id
    }

    /// One GPU cycle of the whole system.
    pub fn step(&mut self) {
        let now = self.gpu_cycle;

        // 1. SM issue stage.
        self.issue_from_sms(now);

        // 2. Request network.
        let (req_xbar, partitions) = (&mut self.req_xbar, &mut self.partitions);
        req_xbar.step(now, |out, vc, req| {
            if partitions[out].can_eject(vc) {
                partitions[out].eject(vc, *req);
                true
            } else {
                false
            }
        });

        // 3. L2 stage per partition.
        let next_internal = &mut self.next_internal_id;
        for p in self.partitions.iter_mut() {
            let mut alloc = || Self::alloc_internal_id(next_internal);
            p.step_l2(now, &mut alloc);
        }

        // 4. DRAM clock domain (exact integer rational coupling).
        self.dram_acc += self.clock_num;
        while self.dram_acc >= self.clock_den {
            self.dram_acc -= self.clock_den;
            let dram_now = self.dram_cycle;
            for p in self.partitions.iter_mut() {
                p.step_dram(dram_now, &self.mapper);
            }
            self.dram_cycle += 1;
        }

        // 5. PIM acks (credit return, out-of-band).
        let mut acks = std::mem::take(&mut self.ack_scratch);
        for p in self.partitions.iter_mut() {
            p.drain_pim_acks_into(&mut acks);
        }
        for ack in &acks {
            self.complete_request(ack, now);
        }
        acks.clear();
        self.ack_scratch = acks;

        // 6. Reply network: inject from partitions, deliver to SMs.
        for c in 0..self.partitions.len() {
            while let Some(rep) = self.partitions[c].peek_reply() {
                let dest = rep.src_port as usize;
                if self.reply_xbar.can_inject(c, false) {
                    let rep = self.partitions[c].pop_reply().expect("peeked");
                    self.reply_xbar
                        .try_inject(c, rep, dest)
                        .expect("capacity checked");
                } else {
                    break;
                }
            }
        }
        let mut delivered = std::mem::take(&mut self.reply_scratch);
        self.reply_xbar.step(now, |_sm, _vc, req| {
            delivered.push(*req);
            true
        });
        for rep in &delivered {
            self.complete_request(rep, now);
        }
        delivered.clear();
        self.reply_scratch = delivered;

        // 7. Kernel completion / restart bookkeeping.
        self.check_kernel_completion(now);

        self.gpu_cycle += 1;
    }

    /// Attempts to jump the clocks over a provably idle span, stopping at
    /// `limit`. Returns whether any cycles were skipped.
    ///
    /// Soundness: the jump is taken only when both crossbars and every
    /// partition report no activity, i.e. no request, reply, fill,
    /// writeback, or DRAM command exists anywhere in the system. In that
    /// state a lock-step [`Simulator::step`] provably mutates nothing but
    /// the cycle counters — issue finds no ready kernel (by the
    /// [`KernelModel::next_activity_cycle`] contract), the crossbars add
    /// zero to their occupancy integrals without touching arbiter state,
    /// `step_l2` finds empty queues, and `step_dram` early-returns before
    /// ticking the channel. The only future event is kernel issue pacing,
    /// so the earliest activity hook across kernels bounds the skip, and
    /// the integer clock arithmetic advances `dram_cycle`/`dram_acc` to
    /// exactly the values per-cycle stepping would produce.
    ///
    /// Note "no activity" really is required, not just "idle this cycle":
    /// overshooting into a cycle where the controller is stepped would
    /// desynchronize the `McStats` cycle/occupancy/BLP integrals, which
    /// advance on every stepped controller cycle.
    fn skip_idle_span(&mut self, limit: Cycle) -> bool {
        let now = self.gpu_cycle;
        if now >= limit {
            return false;
        }
        // O(1) gate: every kernel request holds its inflight entry from
        // crossbar injection until its reply (or ack) is delivered, so a
        // nonempty table proves some component is busy without scanning
        // any of them.
        if self.inflight.len() > 0 {
            return false;
        }
        if self.req_xbar.next_activity_cycle(now).is_some()
            || self.reply_xbar.next_activity_cycle(now).is_some()
        {
            return false;
        }
        let dram_now = self.dram_cycle;
        if self
            .partitions
            .iter()
            .any(|p| p.next_activity_cycle(dram_now).is_some())
        {
            return false;
        }
        // The system is empty: only kernel pacing can create work.
        let target = self
            .kernels
            .iter()
            .filter_map(|k| k.model.next_activity_cycle(now))
            .map(|c| c.max(now))
            .min();
        let Some(target) = target else {
            // No kernel will ever issue again; let the lock-step path burn
            // the budget exactly as it would with fast-forward off.
            return false;
        };
        let target = target.min(limit);
        if target <= now {
            return false;
        }
        // Advance both clock domains exactly as `target - now` idle steps
        // would: steps = (acc + span*num) div den, acc' = same mod den.
        let span = target - now;
        let total = self.dram_acc + span * self.clock_num;
        self.dram_cycle += total / self.clock_den;
        self.dram_acc = total % self.clock_den;
        self.gpu_cycle = target;
        self.skips += 1;
        self.skipped_cycles += span;
        true
    }

    fn issue_from_sms(&mut self, now: Cycle) {
        for sm in 0..self.sm_map.len() {
            let Some((k, slot)) = self.sm_map[sm] else {
                continue;
            };
            let kernel = &mut self.kernels[k];
            let is_pim = kernel.is_pim;
            // MEM kernels are throttled by the SM's outstanding cap; PIM
            // kernels self-throttle per warp (store-buffer credits).
            if !is_pim && self.sm_outstanding[sm] >= self.cfg.gpu.max_outstanding_mem_per_sm {
                continue;
            }
            if !self.req_xbar.can_inject(sm, is_pim) {
                continue;
            }
            // Peek-then-commit: the ID is only consumed from the table if
            // the kernel actually issues, so idle probes leave the
            // allocator untouched (required for fast-forward bit-equality:
            // skipped cycles must not have burned IDs).
            let id = self.inflight.peek_id();
            let Some(issued) = kernel.model.try_issue(slot, now, id) else {
                continue;
            };
            debug_assert_eq!(issued.kind.is_pim(), is_pim);
            let req = Request::new(
                id,
                if is_pim { AppId::PIM } else { AppId::GPU },
                issued.kind,
                issued.addr,
                sm as u16,
                now,
            );
            let dest = match issued.kind {
                RequestKind::Pim(cmd) => cmd.channel as usize,
                _ => self.mapper.decode(issued.addr).channel as usize,
            };
            self.req_xbar
                .try_inject(sm, req, dest)
                .expect("capacity checked");
            kernel.icnt_injections += 1;
            let committed = self.inflight.insert(k, slot);
            debug_assert_eq!(committed, id);
            if !is_pim {
                self.sm_outstanding[sm] += 1;
            }
        }
    }

    fn complete_request(&mut self, req: &Request, now: Cycle) {
        let Some((k, slot)) = self.inflight.remove(req.id) else {
            // Fills and writebacks are simulator-internal: not in the table.
            return;
        };
        let kernel = &mut self.kernels[k];
        kernel.model.on_complete(slot, req.id, now);
        if !kernel.is_pim {
            let sm = kernel.sms[slot];
            debug_assert!(self.sm_outstanding[sm] > 0);
            self.sm_outstanding[sm] -= 1;
        }
    }

    fn check_kernel_completion(&mut self, now: Cycle) {
        for kernel in &mut self.kernels {
            if !kernel.model.is_done() {
                continue;
            }
            if kernel.restart {
                let elapsed = now + 1 - kernel.run_started;
                if kernel.first_run_cycles.is_none() {
                    kernel.first_run_cycles = Some(elapsed);
                }
                kernel.runs += 1;
                kernel.model.reset();
                kernel.run_started = now + 1;
            } else if kernel.first_run_cycles.is_none() {
                kernel.first_run_cycles = Some(now + 1 - kernel.run_started);
                kernel.runs = 1;
            }
        }
    }

    /// Runs until every mounted kernel has completed at least one run.
    /// Returns the GPU cycles elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`CycleBudgetExceeded`] if the budget runs out first.
    pub fn run_until_all_first_done(
        &mut self,
        max_gpu_cycles: u64,
    ) -> Result<u64, CycleBudgetExceeded> {
        self.run_with_starvation_cutoff(max_gpu_cycles, None)
    }

    /// Like [`Simulator::run_until_all_first_done`], but additionally
    /// declares starvation — and stops — once some kernel has completed
    /// `cutoff_runs` full runs while another has not completed any. This
    /// keeps denial-of-service cases (MEM-First, PIM-First, G&I) from
    /// burning the entire cycle budget: a kernel that is still unfinished
    /// after the co-runner looped that many times is starved for the
    /// purposes of the fairness metrics.
    ///
    /// # Errors
    ///
    /// Returns [`CycleBudgetExceeded`] on either the budget or the
    /// starvation cutoff, with the per-kernel progress in the message.
    pub fn run_with_starvation_cutoff(
        &mut self,
        max_gpu_cycles: u64,
        cutoff_runs: Option<u64>,
    ) -> Result<u64, CycleBudgetExceeded> {
        while self.kernels.iter().any(|k| k.first_run_cycles.is_none()) {
            let starved = cutoff_runs.is_some_and(|cut| {
                self.kernels.iter().any(|k| k.runs >= cut)
                    && self.kernels.iter().any(|k| k.first_run_cycles.is_none())
            });
            if self.gpu_cycle >= max_gpu_cycles || starved {
                let progress = self
                    .kernels
                    .iter()
                    .map(|k| {
                        format!(
                            "{}: runs={} first={:?}",
                            k.model.name(),
                            k.runs,
                            k.first_run_cycles
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                return Err(CycleBudgetExceeded {
                    max_gpu_cycles,
                    progress,
                });
            }
            if self.fast_forward && self.skip_idle_span(max_gpu_cycles) {
                // Re-check the budget before stepping: a skip clamped to
                // `max_gpu_cycles` must error exactly like lock-step would.
                continue;
            }
            self.step();
        }
        Ok(self.gpu_cycle)
    }

    /// Fills and writebacks are internal; MEM arrivals at the MC summed
    /// over channels.
    pub fn total_mem_arrivals(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.mc.stats().mem_arrivals)
            .sum()
    }

    /// PIM arrivals at the MC summed over channels.
    pub fn total_pim_arrivals(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.mc.stats().pim_arrivals)
            .sum()
    }

    /// Merged DRAM command counters across channels (energy accounting).
    pub fn merged_channel_stats(&self) -> pimsim_dram::ChannelStats {
        let mut agg = pimsim_dram::ChannelStats::default();
        for p in &self.partitions {
            let s = p.mc.channel_stats();
            agg.refreshes += s.refreshes;
            agg.acts += s.acts;
            agg.pres += s.pres;
            agg.reads += s.reads;
            agg.writes += s.writes;
            agg.pim_ops += s.pim_ops;
            agg.pim_blocks += s.pim_blocks;
        }
        agg
    }

    /// Total DRAM energy over the run under `energy` coefficients.
    pub fn total_energy(&self, energy: &pimsim_dram::EnergyConfig) -> pimsim_dram::EnergyBreakdown {
        pimsim_dram::channel_energy(
            energy,
            &self.merged_channel_stats(),
            self.dram_cycle * self.partitions.len() as u64,
            self.cfg.dram.banks as u32,
        )
    }

    /// Merged controller stats across channels.
    pub fn merged_mc_stats(&self) -> pimsim_core::McStats {
        let mut agg = pimsim_core::McStats::default();
        for p in &self.partitions {
            agg.merge(p.mc.stats());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_peek_matches_insert_and_is_pure() {
        let mut t = InflightTable::default();
        let peeked = t.peek_id();
        assert_eq!(t.peek_id(), peeked, "peek must be side-effect-free");
        assert_eq!(t.len(), 0);
        let id = t.insert(3, 7);
        assert_eq!(id, peeked);
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(id), Some((3, 7)));
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn inflight_recycled_slot_gets_fresh_generation() {
        let mut t = InflightTable::default();
        let a = t.insert(0, 0);
        assert_eq!(t.remove(a), Some((0, 0)));
        let b = t.insert(1, 2);
        assert_ne!(a, b, "recycled slot must mint a distinct ID");
        // The stale ID no longer resolves.
        assert_eq!(t.remove(a), None);
        assert_eq!(t.remove(b), Some((1, 2)));
    }

    #[test]
    fn inflight_rejects_internal_and_unknown_ids() {
        let mut t = InflightTable::default();
        let id = t.insert(0, 0);
        assert_eq!(t.remove(RequestId(INTERNAL_ID_BIT | id.0)), None);
        assert_eq!(t.remove(RequestId(id.0 + (1 << 32))), None, "wrong gen");
        assert_eq!(t.remove(RequestId(999)), None, "slot never allocated");
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(id), Some((0, 0)));
        assert_eq!(t.remove(id), None, "double free");
    }

    #[test]
    fn inflight_many_slots_stay_unique_while_outstanding() {
        let mut t = InflightTable::default();
        let ids: Vec<RequestId> = (0..64).map(|i| t.insert(i, i)).collect();
        let mut sorted: Vec<u64> = ids.iter().map(|id| id.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64);
        assert_eq!(t.len(), 64);
        // Free half, reinsert, and confirm no live ID is ever duplicated.
        for id in &ids[..32] {
            t.remove(*id).unwrap();
        }
        let fresh: Vec<RequestId> = (0..32).map(|i| t.insert(100 + i, 0)).collect();
        for f in &fresh {
            assert!(!ids.contains(f), "generation bump must prevent reuse");
        }
        assert_eq!(t.len(), 64);
    }
}
