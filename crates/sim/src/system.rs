//! The full-system simulator: a thin scheduler sequencing the pipeline
//! stages of [`crate::pipeline`] — SM issue → request crossbar → memory
//! partitions (L2 + MC + DRAM) → reply crossbar → SM completion — across
//! the GPU and DRAM clock domains of Table I.
//!
//! The main loop is event-driven where it can be: when every network
//! queue and every partition is provably empty, the simulator jumps its
//! clocks directly to the next cycle at which some kernel can issue
//! (see [`Simulator::set_fast_forward`]), instead of ticking idle
//! components one cycle at a time. The skip is exact — fast-forwarded
//! runs are bit-identical to lock-step runs — because idle cycles mutate
//! nothing but the clocks, and the clock coupling uses exact integer
//! arithmetic ([`SystemConfig::dram_clock_ratio`]).

use std::sync::Arc;
use std::time::Instant;

use pimsim_dram::AddressMapper;
use pimsim_gpu::KernelModel;
use pimsim_types::{Cycle, SystemConfig};

use crate::partition::Partition;
use crate::pipeline::{
    check_kernel_completion, ClockCoupler, CompletionStage, Component, IssueCtx, IssueStage,
    MemoryStage, ReplyNet, ReplyNetCtx, RequestNet,
};

pub use crate::pipeline::{CycleBudgetExceeded, MountedKernel};

/// Cumulative wall-clock time per pipeline stage, gathered while stage
/// profiling is on (see [`Simulator::set_stage_profiling`]). Lets the
/// hot-loop benchmark report where a run's wall time actually goes
/// without an external profiler.
///
/// Only stepped cycles are timed; fast-forward jumps cost no stage time
/// and are excluded.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageProfile {
    /// SM issue stage.
    pub issue_ns: u64,
    /// Request crossbar (injection, arbitration, ejection).
    pub request_net_ns: u64,
    /// Memory stage: L2 front halves plus all DRAM ticks of the cycle.
    pub memory_ns: u64,
    /// Reply crossbar.
    pub reply_net_ns: u64,
    /// Completion bookkeeping: PIM acks, reply retirement, kernel
    /// restart checks.
    pub completion_ns: u64,
    /// GPU cycles actually stepped while profiling (skipped spans are
    /// not counted).
    pub stepped_cycles: u64,
}

impl StageProfile {
    /// Total time across all five stages.
    pub fn total_ns(&self) -> u64 {
        self.issue_ns
            + self.request_net_ns
            + self.memory_ns
            + self.reply_net_ns
            + self.completion_ns
    }

    /// `(name, ns)` pairs in pipeline order, for reporting.
    pub fn stages(&self) -> [(&'static str, u64); 5] {
        [
            ("issue", self.issue_ns),
            ("request_net", self.request_net_ns),
            ("memory", self.memory_ns),
            ("reply_net", self.reply_net_ns),
            ("completion", self.completion_ns),
        ]
    }
}

/// The full-system simulator.
///
/// # Example
///
/// ```no_run
/// use pimsim_core::policy::PolicyKind;
/// use pimsim_sim::Simulator;
/// use pimsim_types::SystemConfig;
/// use pimsim_workloads::{gpu_kernel, rodinia::GpuBenchmark};
///
/// let cfg = SystemConfig::default();
/// let mut sim = Simulator::new(cfg, PolicyKind::FrFcfs);
/// let k = gpu_kernel(GpuBenchmark(3), 80, 0.2);
/// sim.mount(Box::new(k), (0..80).collect(), false, false);
/// let cycles = sim.run_until_all_first_done(50_000_000).unwrap();
/// assert!(cycles > 0);
/// ```
pub struct Simulator {
    pub(crate) cfg: SystemConfig,
    /// Shared (immutable) so parallel partition jobs can hold it.
    mapper: Arc<AddressMapper>,
    issue: IssueStage,
    request_net: RequestNet,
    pub(crate) memory: MemoryStage,
    reply_net: ReplyNet,
    completion: CompletionStage,
    pub(crate) clock: ClockCoupler,
    pub(crate) kernels: Vec<MountedKernel>,
    /// Event-driven idle-span skipping (on by default; see
    /// [`Simulator::set_fast_forward`]).
    pub(crate) fast_forward: bool,
    /// Number of idle-span jumps taken.
    skips: u64,
    /// GPU cycles covered by those jumps (not stepped one by one).
    skipped_cycles: u64,
    /// Per-stage wall-time accumulators; `None` (the default) keeps the
    /// hot loop free of timer reads.
    profile: Option<Box<StageProfile>>,
}

impl Simulator {
    /// Builds an empty simulator; mount kernels before running.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: SystemConfig, policy: pimsim_core::PolicyKind) -> Self {
        cfg.validate().expect("invalid system configuration");
        let mapper = Arc::new(AddressMapper::new(
            &cfg.addr_map,
            &cfg.dram,
            cfg.dram_word_bytes(),
        ));
        let (clock_num, clock_den) = cfg.dram_clock_ratio();
        Simulator {
            issue: IssueStage::new(cfg.gpu.num_sms, cfg.gpu.max_outstanding_mem_per_sm),
            request_net: RequestNet::new(&cfg),
            memory: MemoryStage::new(&cfg, policy),
            reply_net: ReplyNet::new(&cfg),
            completion: CompletionStage::new(),
            clock: ClockCoupler::new(clock_num, clock_den),
            kernels: Vec::new(),
            fast_forward: true,
            skips: 0,
            skipped_cycles: 0,
            profile: None,
            mapper,
            cfg,
        }
    }

    /// Enables or disables per-stage wall-time profiling (off by
    /// default). Enabling resets the accumulators. Profiling reads the
    /// monotonic clock several times per stepped cycle, so keep it off
    /// for throughput measurements and use a dedicated profiled pass.
    pub fn set_stage_profiling(&mut self, on: bool) {
        self.profile = on.then(Box::default);
    }

    /// The accumulated stage profile, if profiling is on.
    pub fn stage_profile(&self) -> Option<&StageProfile> {
        self.profile.as_deref()
    }

    /// Stamps the time since `*mark` into the field `sel` picks, and
    /// advances the mark. No-op (two `None` checks) when profiling is
    /// off.
    #[inline]
    fn lap(
        mark: &mut Option<Instant>,
        prof: &mut Option<Box<StageProfile>>,
        sel: impl FnOnce(&mut StageProfile) -> &mut u64,
    ) {
        if let (Some(t), Some(p)) = (mark.as_mut(), prof.as_mut()) {
            let now = Instant::now();
            *sel(p) += u64::try_from(now.duration_since(*t).as_nanos()).unwrap_or(u64::MAX);
            *t = now;
        }
    }

    /// Enables or disables event-driven idle-span skipping (on by
    /// default). With it off, the simulator ticks every GPU cycle in
    /// lock-step. Both modes produce bit-identical results; the flag
    /// exists for regression testing and for measuring the speedup.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Whether event-driven idle-span skipping is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// `(jumps taken, GPU cycles covered by jumps)` — how much of the run
    /// the event-driven path fast-forwarded over.
    pub fn fast_forward_stats(&self) -> (u64, u64) {
        (self.skips, self.skipped_cycles)
    }

    /// Mounts `model` on the given global SM indices.
    ///
    /// # Panics
    ///
    /// Panics if an SM is already occupied, out of range, or the SM count
    /// does not match the model's slot count.
    pub fn mount(
        &mut self,
        model: Box<dyn KernelModel>,
        sms: Vec<usize>,
        is_pim: bool,
        restart: bool,
    ) -> usize {
        assert_eq!(
            sms.len(),
            model.num_slots(),
            "SM count must match the kernel's slots"
        );
        let idx = self.kernels.len();
        for (slot, &sm) in sms.iter().enumerate() {
            self.issue.occupy(sm, idx, slot);
        }
        self.kernels.push(MountedKernel {
            model,
            sms,
            is_pim,
            restart,
            run_started: self.clock.gpu_now(),
            first_run_cycles: None,
            runs: 0,
            icnt_injections: 0,
        });
        idx
    }

    /// The mounted kernels.
    pub fn kernels(&self) -> &[MountedKernel] {
        &self.kernels
    }

    /// The memory partitions (for stats).
    pub fn partitions(&self) -> impl Iterator<Item = &Partition> {
        self.memory.iter()
    }

    /// The partition serving channel `c` (for stats).
    pub fn partition(&self, c: usize) -> &Partition {
        self.memory.get(c)
    }

    /// Sets how many threads step the memory partitions each cycle
    /// (1 = serial, the default unless `PIMSIM_THREADS` is set). Results
    /// are bit-identical at every width; see
    /// [`crate::pipeline::MemoryStage::set_threads`].
    pub fn set_memory_threads(&mut self, threads: usize) {
        self.memory.set_threads(threads);
    }

    /// GPU cycles elapsed.
    pub fn gpu_cycles(&self) -> u64 {
        self.clock.gpu_now()
    }

    /// DRAM cycles elapsed.
    pub fn dram_cycles(&self) -> u64 {
        self.clock.dram_now()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Total flits buffered in the request network's input queues.
    pub fn request_noc_occupancy(&self) -> usize {
        self.request_net.occupancy()
    }

    /// Request-network counters.
    pub fn request_noc_stats(&self) -> pimsim_noc::CrossbarStats {
        self.request_net.stats()
    }

    /// One GPU cycle of the whole system. The stage order is fixed:
    /// issue → request net → L2 → DRAM ticks → PIM acks → reply net →
    /// reply completions → kernel bookkeeping.
    pub fn step(&mut self) {
        let now = self.clock.gpu_now();
        let mut prof = self.profile.take();
        let mut mark = prof.as_ref().map(|_| Instant::now());

        // 1. SM issue stage.
        self.issue.step(
            now,
            IssueCtx {
                kernels: &mut self.kernels,
                net: &mut self.request_net,
                inflight: self.completion.inflight_mut(),
                mapper: self.mapper.as_ref(),
            },
        );
        Self::lap(&mut mark, &mut prof, |p| &mut p.issue_ns);

        // 2. Request network ejects into partition ingress ports.
        self.request_net.step(now, &mut self.memory);
        Self::lap(&mut mark, &mut prof, |p| &mut p.request_net_ns);

        // 3+4. The memory stage's whole cycle: L2 front halves (GPU
        // clock) plus every pending DRAM tick (exact integer rational
        // coupling) — one serial pass at width 1, one sharded pool batch
        // otherwise.
        self.clock.accrue_gpu_cycle();
        let (first_dram, dram_ticks) = self.clock.take_dram_span();
        self.memory
            .step_cycle_all(now, first_dram, dram_ticks, &self.mapper);
        Self::lap(&mut mark, &mut prof, |p| &mut p.memory_ns);

        // 5. PIM acks (credit return, out-of-band).
        self.completion
            .collect_acks(&mut self.memory, &mut self.kernels, &mut self.issue, now);
        Self::lap(&mut mark, &mut prof, |p| &mut p.completion_ns);

        // 6. Reply network: inject from partitions, deliver to SMs.
        let mut delivered = self.completion.begin_replies();
        self.reply_net.step(
            now,
            ReplyNetCtx {
                memory: &mut self.memory,
                delivered: &mut delivered,
            },
        );
        Self::lap(&mut mark, &mut prof, |p| &mut p.reply_net_ns);
        self.completion
            .finish_replies(delivered, &mut self.kernels, &mut self.issue, now);

        // 7. Kernel completion / restart bookkeeping.
        check_kernel_completion(&mut self.kernels, now);
        Self::lap(&mut mark, &mut prof, |p| &mut p.completion_ns);

        self.clock.finish_gpu_cycle();
        if let Some(p) = prof.as_mut() {
            p.stepped_cycles += 1;
        }
        self.profile = prof;
    }

    /// Attempts to jump the clocks over a provably quiet span, stopping
    /// at `limit`. Returns whether any cycles were skipped.
    ///
    /// Soundness: the jump is taken only when both network stages report
    /// no activity and every memory partition is either fully idle or
    /// *quiet* — all of its buffers empty and its controller inside a
    /// stall window (its activity horizon strictly in the future). In
    /// that state a lock-step [`Simulator::step`] mutates nothing but the
    /// cycle counters and the quiet controllers' stats integrals — issue
    /// finds no ready kernel (by the [`KernelModel::next_activity_cycle`]
    /// contract), the crossbars add zero to their occupancy integrals
    /// without touching arbiter state, the L2 stages find empty ports,
    /// and each quiet controller's cycles are replayed exactly by
    /// [`MemoryStage::quiet_replay_all`] after the jump. The skip is
    /// bounded by both the earliest kernel-pacing event and (via
    /// [`ClockCoupler::max_jump_for_dram_bound`]) the memory stage's
    /// horizon, so no skipped DRAM tick ever reaches a cycle where a
    /// controller would issue a command, pop a completion, or service a
    /// refresh.
    pub(crate) fn skip_idle_span(&mut self, limit: Cycle) -> bool {
        let now = self.clock.gpu_now();
        if now >= limit {
            return false;
        }
        // O(1) gate: every kernel request holds its inflight entry from
        // crossbar injection until its reply (or ack) is delivered, so a
        // nonempty table proves some component is busy without scanning
        // any of them.
        if !self.completion.inflight().is_empty() {
            return false;
        }
        if self.request_net.next_activity_cycle(now).is_some()
            || self.reply_net.next_activity_cycle(now).is_some()
        {
            return false;
        }
        let dram_now = self.clock.dram_now();
        let mem_horizon = self.memory.next_activity_cycle(dram_now);
        if mem_horizon.is_some_and(|at| at <= dram_now) {
            // Some partition needs servicing this very DRAM cycle
            // (buffered work, or a controller mid burst plan).
            return false;
        }
        // Nothing needs per-cycle servicing: only kernel pacing (and the
        // memory horizon, folded in below) can create work.
        let target = self
            .kernels
            .iter()
            .filter_map(|k| k.model.next_activity_cycle(now))
            .map(|c| c.max(now))
            .min();
        let Some(target) = target else {
            // No kernel will ever issue again; let the lock-step path burn
            // the budget exactly as it would with fast-forward off.
            return false;
        };
        let mut target = target.min(limit);
        if let Some(h) = mem_horizon {
            // Every skipped DRAM tick must stay strictly below the
            // horizon: cap the jump so `dram_now()` lands at most on `h`.
            target = target.min(self.clock.max_jump_for_dram_bound(h));
        }
        if target <= now {
            return false;
        }
        self.skips += 1;
        self.skipped_cycles += target - now;
        self.clock.jump_to(target);
        if mem_horizon.is_some() {
            let ticks = self.clock.dram_now() - dram_now;
            self.memory.quiet_replay_all(dram_now, ticks, &self.mapper);
        }
        true
    }
}
