//! The full-system simulator: SMs → request crossbar → memory partitions
//! (L2 + MC + DRAM) → reply crossbar → SMs, with the GPU and DRAM clock
//! domains of Table I.

use std::collections::HashMap;

use pimsim_dram::AddressMapper;
use pimsim_gpu::KernelModel;
use pimsim_noc::Crossbar;
use pimsim_types::{
    AppId, Cycle, Request, RequestId, RequestKind, SystemConfig, VcMode,
};

use crate::partition::Partition;

/// A kernel mounted on a set of SMs.
pub struct MountedKernel {
    /// The kernel model.
    pub model: Box<dyn KernelModel>,
    /// Global SM indices this kernel occupies (slot `i` = `sms[i]`).
    pub sms: Vec<usize>,
    /// Whether this kernel issues PIM requests.
    pub is_pim: bool,
    /// Restart the kernel when it completes (the paper's "run in a loop"
    /// methodology).
    pub restart: bool,
    /// GPU cycle the current run started.
    pub run_started: Cycle,
    /// Execution time (GPU cycles) of the first completed run.
    pub first_run_cycles: Option<u64>,
    /// Completed runs.
    pub runs: u64,
    /// Requests injected into the interconnect by this kernel.
    pub icnt_injections: u64,
}

impl std::fmt::Debug for MountedKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MountedKernel")
            .field("name", &self.model.name())
            .field("sms", &self.sms.len())
            .field("is_pim", &self.is_pim)
            .field("runs", &self.runs)
            .finish()
    }
}

/// Error returned when a simulation exceeds its cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleBudgetExceeded {
    /// The budget that was exhausted.
    pub max_gpu_cycles: u64,
    /// Human-readable progress description.
    pub progress: String,
}

impl std::fmt::Display for CycleBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation exceeded {} GPU cycles ({})",
            self.max_gpu_cycles, self.progress
        )
    }
}

impl std::error::Error for CycleBudgetExceeded {}

/// The full-system simulator.
///
/// # Example
///
/// ```no_run
/// use pimsim_core::policy::PolicyKind;
/// use pimsim_sim::Simulator;
/// use pimsim_types::SystemConfig;
/// use pimsim_workloads::{gpu_kernel, rodinia::GpuBenchmark};
///
/// let cfg = SystemConfig::default();
/// let mut sim = Simulator::new(cfg, PolicyKind::FrFcfs);
/// let k = gpu_kernel(GpuBenchmark(3), 80, 0.2);
/// sim.mount(Box::new(k), (0..80).collect(), false, false);
/// let cycles = sim.run_until_all_first_done(50_000_000).unwrap();
/// assert!(cycles > 0);
/// ```
pub struct Simulator {
    cfg: SystemConfig,
    mapper: AddressMapper,
    req_xbar: Crossbar,
    reply_xbar: Crossbar,
    partitions: Vec<Partition>,
    kernels: Vec<MountedKernel>,
    /// Global SM index -> (kernel index, slot index).
    sm_map: Vec<Option<(usize, usize)>>,
    /// Outstanding requests per global SM (MEM kernels' throttle).
    sm_outstanding: Vec<usize>,
    /// RequestId -> (kernel, slot) for completion routing.
    inflight: HashMap<u64, (usize, usize)>,
    gpu_cycle: Cycle,
    dram_cycle: Cycle,
    dram_acc: f64,
    next_id: u64,
}

impl Simulator {
    /// Builds an empty simulator; mount kernels before running.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: SystemConfig, policy: pimsim_core::PolicyKind) -> Self {
        cfg.validate().expect("invalid system configuration");
        let channels = cfg.dram.channels;
        let sms = cfg.gpu.num_sms;
        let mapper = AddressMapper::new(&cfg.addr_map, &cfg.dram, cfg.dram_word_bytes());
        let partitions = (0..channels)
            .map(|c| Partition::new(c, &cfg, policy.build()))
            .collect();
        Simulator {
            req_xbar: Crossbar::new(sms, channels, cfg.noc.input_queue_entries, cfg.noc.vc_mode)
                .with_iterations(cfg.noc.islip_iterations),
            reply_xbar: Crossbar::new(channels, sms, cfg.noc.reply_queue_entries, VcMode::Shared),
            partitions,
            kernels: Vec::new(),
            sm_map: vec![None; sms],
            sm_outstanding: vec![0; sms],
            inflight: HashMap::new(),
            gpu_cycle: 0,
            dram_cycle: 0,
            dram_acc: 0.0,
            next_id: 0,
            mapper,
            cfg,
        }
    }

    /// Mounts `model` on the given global SM indices.
    ///
    /// # Panics
    ///
    /// Panics if an SM is already occupied, out of range, or the SM count
    /// does not match the model's slot count.
    pub fn mount(
        &mut self,
        model: Box<dyn KernelModel>,
        sms: Vec<usize>,
        is_pim: bool,
        restart: bool,
    ) -> usize {
        assert_eq!(
            sms.len(),
            model.num_slots(),
            "SM count must match the kernel's slots"
        );
        let idx = self.kernels.len();
        for (slot, &sm) in sms.iter().enumerate() {
            assert!(sm < self.sm_map.len(), "SM index out of range");
            assert!(self.sm_map[sm].is_none(), "SM {sm} already occupied");
            self.sm_map[sm] = Some((idx, slot));
        }
        self.kernels.push(MountedKernel {
            model,
            sms,
            is_pim,
            restart,
            run_started: self.gpu_cycle,
            first_run_cycles: None,
            runs: 0,
            icnt_injections: 0,
        });
        idx
    }

    /// The mounted kernels.
    pub fn kernels(&self) -> &[MountedKernel] {
        &self.kernels
    }

    /// The memory partitions (for stats).
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// GPU cycles elapsed.
    pub fn gpu_cycles(&self) -> u64 {
        self.gpu_cycle
    }

    /// DRAM cycles elapsed.
    pub fn dram_cycles(&self) -> u64 {
        self.dram_cycle
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Total flits buffered in the request network's input queues.
    pub fn request_noc_occupancy(&self) -> usize {
        self.req_xbar.total_occupancy()
    }

    /// Request-network counters.
    pub fn request_noc_stats(&self) -> pimsim_noc::CrossbarStats {
        self.req_xbar.stats()
    }

    fn alloc_id(next: &mut u64) -> RequestId {
        let id = RequestId(*next);
        *next += 1;
        id
    }

    /// One GPU cycle of the whole system.
    pub fn step(&mut self) {
        let now = self.gpu_cycle;

        // 1. SM issue stage.
        self.issue_from_sms(now);

        // 2. Request network.
        let (req_xbar, partitions) = (&mut self.req_xbar, &mut self.partitions);
        req_xbar.step(now, |out, vc, req| {
            if partitions[out].can_eject(vc) {
                partitions[out].eject(vc, *req);
                true
            } else {
                false
            }
        });

        // 3. L2 stage per partition.
        let next_id = &mut self.next_id;
        for p in self.partitions.iter_mut() {
            let mut alloc = || Self::alloc_id(next_id);
            p.step_l2(now, &mut alloc);
        }

        // 4. DRAM clock domain.
        self.dram_acc += self.cfg.dram_per_gpu_cycle();
        while self.dram_acc >= 1.0 {
            self.dram_acc -= 1.0;
            let dram_now = self.dram_cycle;
            for p in self.partitions.iter_mut() {
                p.step_dram(dram_now, &self.mapper);
            }
            self.dram_cycle += 1;
        }

        // 5. PIM acks (credit return, out-of-band).
        for c in 0..self.partitions.len() {
            for ack in self.partitions[c].take_pim_acks() {
                self.complete_request(&ack, now);
            }
        }

        // 6. Reply network: inject from partitions, deliver to SMs.
        for c in 0..self.partitions.len() {
            while let Some(rep) = self.partitions[c].peek_reply() {
                let dest = rep.src_port as usize;
                if self.reply_xbar.can_inject(c, false) {
                    let rep = self.partitions[c].pop_reply().expect("peeked");
                    self.reply_xbar
                        .try_inject(c, rep, dest)
                        .expect("capacity checked");
                } else {
                    break;
                }
            }
        }
        let mut delivered: Vec<Request> = Vec::new();
        self.reply_xbar.step(now, |_sm, _vc, req| {
            delivered.push(*req);
            true
        });
        for rep in delivered {
            self.complete_request(&rep, now);
        }

        // 7. Kernel completion / restart bookkeeping.
        self.check_kernel_completion(now);

        self.gpu_cycle += 1;
    }

    fn issue_from_sms(&mut self, now: Cycle) {
        for sm in 0..self.sm_map.len() {
            let Some((k, slot)) = self.sm_map[sm] else {
                continue;
            };
            let kernel = &mut self.kernels[k];
            let is_pim = kernel.is_pim;
            // MEM kernels are throttled by the SM's outstanding cap; PIM
            // kernels self-throttle per warp (store-buffer credits).
            if !is_pim && self.sm_outstanding[sm] >= self.cfg.gpu.max_outstanding_mem_per_sm {
                continue;
            }
            if !self.req_xbar.can_inject(sm, is_pim) {
                continue;
            }
            let id = Self::alloc_id(&mut self.next_id);
            let Some(issued) = kernel.model.try_issue(slot, now, id) else {
                continue;
            };
            debug_assert_eq!(issued.kind.is_pim(), is_pim);
            let req = Request::new(
                id,
                if is_pim { AppId::PIM } else { AppId::GPU },
                issued.kind,
                issued.addr,
                sm as u16,
                now,
            );
            let dest = match issued.kind {
                RequestKind::Pim(cmd) => cmd.channel as usize,
                _ => self.mapper.decode(issued.addr).channel as usize,
            };
            self.req_xbar
                .try_inject(sm, req, dest)
                .expect("capacity checked");
            kernel.icnt_injections += 1;
            self.inflight.insert(id.0, (k, slot));
            if !is_pim {
                self.sm_outstanding[sm] += 1;
            }
        }
    }

    fn complete_request(&mut self, req: &Request, now: Cycle) {
        let Some((k, slot)) = self.inflight.remove(&req.id.0) else {
            // Fills and writebacks are simulator-internal: not in the map.
            return;
        };
        let kernel = &mut self.kernels[k];
        kernel.model.on_complete(slot, req.id, now);
        if !kernel.is_pim {
            let sm = kernel.sms[slot];
            debug_assert!(self.sm_outstanding[sm] > 0);
            self.sm_outstanding[sm] -= 1;
        }
    }

    fn check_kernel_completion(&mut self, now: Cycle) {
        for kernel in &mut self.kernels {
            if !kernel.model.is_done() {
                continue;
            }
            if kernel.restart {
                let elapsed = now + 1 - kernel.run_started;
                if kernel.first_run_cycles.is_none() {
                    kernel.first_run_cycles = Some(elapsed);
                }
                kernel.runs += 1;
                kernel.model.reset();
                kernel.run_started = now + 1;
            } else if kernel.first_run_cycles.is_none() {
                kernel.first_run_cycles = Some(now + 1 - kernel.run_started);
                kernel.runs = 1;
            }
        }
    }

    /// Runs until every mounted kernel has completed at least one run.
    /// Returns the GPU cycles elapsed.
    ///
    /// # Errors
    ///
    /// Returns [`CycleBudgetExceeded`] if the budget runs out first.
    pub fn run_until_all_first_done(
        &mut self,
        max_gpu_cycles: u64,
    ) -> Result<u64, CycleBudgetExceeded> {
        self.run_with_starvation_cutoff(max_gpu_cycles, None)
    }

    /// Like [`Simulator::run_until_all_first_done`], but additionally
    /// declares starvation — and stops — once some kernel has completed
    /// `cutoff_runs` full runs while another has not completed any. This
    /// keeps denial-of-service cases (MEM-First, PIM-First, G&I) from
    /// burning the entire cycle budget: a kernel that is still unfinished
    /// after the co-runner looped that many times is starved for the
    /// purposes of the fairness metrics.
    ///
    /// # Errors
    ///
    /// Returns [`CycleBudgetExceeded`] on either the budget or the
    /// starvation cutoff, with the per-kernel progress in the message.
    pub fn run_with_starvation_cutoff(
        &mut self,
        max_gpu_cycles: u64,
        cutoff_runs: Option<u64>,
    ) -> Result<u64, CycleBudgetExceeded> {
        while self.kernels.iter().any(|k| k.first_run_cycles.is_none()) {
            let starved = cutoff_runs.is_some_and(|cut| {
                self.kernels.iter().any(|k| k.runs >= cut)
                    && self.kernels.iter().any(|k| k.first_run_cycles.is_none())
            });
            if self.gpu_cycle >= max_gpu_cycles || starved {
                let progress = self
                    .kernels
                    .iter()
                    .map(|k| {
                        format!(
                            "{}: runs={} first={:?}",
                            k.model.name(),
                            k.runs,
                            k.first_run_cycles
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                return Err(CycleBudgetExceeded {
                    max_gpu_cycles,
                    progress,
                });
            }
            self.step();
        }
        Ok(self.gpu_cycle)
    }

    /// Fills and writebacks are internal; MEM arrivals at the MC summed
    /// over channels.
    pub fn total_mem_arrivals(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.mc.stats().mem_arrivals)
            .sum()
    }

    /// PIM arrivals at the MC summed over channels.
    pub fn total_pim_arrivals(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.mc.stats().pim_arrivals)
            .sum()
    }

    /// Merged DRAM command counters across channels (energy accounting).
    pub fn merged_channel_stats(&self) -> pimsim_dram::ChannelStats {
        let mut agg = pimsim_dram::ChannelStats::default();
        for p in &self.partitions {
            let s = p.mc.channel_stats();
            agg.refreshes += s.refreshes;
            agg.acts += s.acts;
            agg.pres += s.pres;
            agg.reads += s.reads;
            agg.writes += s.writes;
            agg.pim_ops += s.pim_ops;
            agg.pim_blocks += s.pim_blocks;
        }
        agg
    }

    /// Total DRAM energy over the run under `energy` coefficients.
    pub fn total_energy(&self, energy: &pimsim_dram::EnergyConfig) -> pimsim_dram::EnergyBreakdown {
        pimsim_dram::channel_energy(
            energy,
            &self.merged_channel_stats(),
            self.dram_cycle * self.partitions.len() as u64,
            self.cfg.dram.banks as u32,
        )
    }

    /// Merged controller stats across channels.
    pub fn merged_mc_stats(&self) -> pimsim_core::McStats {
        let mut agg = pimsim_core::McStats::default();
        for p in &self.partitions {
            agg.merge(p.mc.stats());
        }
        agg
    }
}
