//! The full-system simulator: a thin scheduler sequencing the pipeline
//! stages of [`crate::pipeline`] — SM issue → request crossbar → memory
//! partitions (L2 + MC + DRAM) → reply crossbar → SM completion — across
//! the GPU and DRAM clock domains of Table I.
//!
//! The main loop is event-driven where it can be: when every network
//! queue and every partition is provably empty, the simulator jumps its
//! clocks directly to the next cycle at which some kernel can issue
//! (see [`Simulator::set_fast_forward`]), instead of ticking idle
//! components one cycle at a time. The skip is exact — fast-forwarded
//! runs are bit-identical to lock-step runs — because idle cycles mutate
//! nothing but the clocks, and the clock coupling uses exact integer
//! arithmetic ([`SystemConfig::dram_clock_ratio`]).

use std::sync::Arc;
use std::time::Instant;

use pimsim_dram::AddressMapper;
use pimsim_gpu::KernelModel;
use pimsim_types::{Cycle, SystemConfig};

use crate::partition::Partition;
use crate::pipeline::{
    check_kernel_completion, ClockCoupler, CompletionStage, Component, IssueCtx, IssueStage,
    MemoryStage, ReplyNet, ReplyNetCtx, RequestNet,
};

pub use crate::pipeline::{CycleBudgetExceeded, MountedKernel};

/// Cumulative wall-clock time per pipeline stage, gathered while stage
/// profiling is on (see [`Simulator::set_stage_profiling`]). Lets the
/// hot-loop benchmark report where a run's wall time actually goes
/// without an external profiler.
///
/// Only stepped cycles are timed; fast-forward jumps cost no stage time
/// and are excluded.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageProfile {
    /// SM issue stage.
    pub issue_ns: u64,
    /// Request crossbar (injection, arbitration, ejection).
    pub request_net_ns: u64,
    /// Memory stage: L2 front halves plus all DRAM ticks of the cycle.
    pub memory_ns: u64,
    /// Reply crossbar.
    pub reply_net_ns: u64,
    /// Completion bookkeeping: PIM acks, reply retirement, kernel
    /// restart checks.
    pub completion_ns: u64,
    /// GPU cycles actually stepped while profiling (skipped spans are
    /// not counted).
    pub stepped_cycles: u64,
}

impl StageProfile {
    /// Total time across all five stages.
    pub fn total_ns(&self) -> u64 {
        self.issue_ns
            + self.request_net_ns
            + self.memory_ns
            + self.reply_net_ns
            + self.completion_ns
    }

    /// `(name, ns)` pairs in pipeline order, for reporting.
    pub fn stages(&self) -> [(&'static str, u64); 5] {
        [
            ("issue", self.issue_ns),
            ("request_net", self.request_net_ns),
            ("memory", self.memory_ns),
            ("reply_net", self.reply_net_ns),
            ("completion", self.completion_ns),
        ]
    }
}

/// How many times each pipeline stage actually ran (its code was
/// entered this cycle, as opposed to being skipped by the event-driven
/// delivery path). The first three stages run every stepped cycle; the
/// reply and completion stages only run when a completion can move —
/// the structural quantity behind the ticks-per-completion gate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StageTicks {
    pub issue: u64,
    pub request_net: u64,
    pub memory: u64,
    pub reply_net: u64,
    pub completion: u64,
}

/// The full-system simulator.
///
/// # Example
///
/// ```no_run
/// use pimsim_core::policy::PolicyKind;
/// use pimsim_sim::Simulator;
/// use pimsim_types::SystemConfig;
/// use pimsim_workloads::{gpu_kernel, rodinia::GpuBenchmark};
///
/// let cfg = SystemConfig::default();
/// let mut sim = Simulator::new(cfg, PolicyKind::FrFcfs);
/// let k = gpu_kernel(GpuBenchmark(3), 80, 0.2);
/// sim.mount(Box::new(k), (0..80).collect(), false, false);
/// let cycles = sim.run_until_all_first_done(50_000_000).unwrap();
/// assert!(cycles > 0);
/// ```
pub struct Simulator {
    pub(crate) cfg: SystemConfig,
    /// Shared (immutable) so parallel partition jobs can hold it.
    mapper: Arc<AddressMapper>,
    issue: IssueStage,
    request_net: RequestNet,
    pub(crate) memory: MemoryStage,
    reply_net: ReplyNet,
    completion: CompletionStage,
    pub(crate) clock: ClockCoupler,
    pub(crate) kernels: Vec<MountedKernel>,
    /// Event-driven idle-span skipping (on by default; see
    /// [`Simulator::set_fast_forward`]).
    pub(crate) fast_forward: bool,
    /// Event-driven completion delivery (on by default; see
    /// [`Simulator::set_event_delivery`]).
    event_delivery: bool,
    /// Retire-time ack batching (on by default; see
    /// [`Simulator::set_ack_batching`]).
    ack_batching: bool,
    /// Timestamped eject batching (on by default; see
    /// [`Simulator::set_eject_batching`]).
    eject_batching: bool,
    /// Number of idle-span jumps taken.
    skips: u64,
    /// GPU cycles covered by those jumps (not stepped one by one).
    skipped_cycles: u64,
    /// Per-stage run counts (see [`StageTicks`]).
    pub(crate) stage_ticks: StageTicks,
    /// Per-stage wall-time accumulators; `None` (the default) keeps the
    /// hot loop free of timer reads.
    profile: Option<Box<StageProfile>>,
}

impl Simulator {
    /// Builds an empty simulator; mount kernels before running.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: SystemConfig, policy: pimsim_core::PolicyKind) -> Self {
        cfg.validate().expect("invalid system configuration");
        // Decoder construction goes through the backend registry: the
        // pipeline stages service whatever substrate `cfg.dram_backend`
        // names without matching on the kind themselves.
        let mapper = Arc::new(pimsim_dram::backend::mapper_for(&cfg));
        let (clock_num, clock_den) = cfg.dram_clock_ratio();
        let mut sim = Simulator {
            issue: IssueStage::new(cfg.gpu.num_sms, cfg.gpu.max_outstanding_mem_per_sm),
            request_net: RequestNet::new(&cfg),
            memory: MemoryStage::new(&cfg, policy, Arc::clone(&mapper)),
            reply_net: ReplyNet::new(&cfg),
            completion: CompletionStage::new(),
            clock: ClockCoupler::new(clock_num, clock_den),
            kernels: Vec::new(),
            fast_forward: true,
            event_delivery: true,
            ack_batching: true,
            eject_batching: true,
            skips: 0,
            skipped_cycles: 0,
            stage_ticks: StageTicks::default(),
            profile: None,
            mapper,
            cfg,
        };
        // Raw controllers default to eager production (they have no
        // harvesting owner); the simulator's partitions do, so batching
        // is on by default here.
        sim.set_ack_batching(true);
        sim
    }

    /// Enables or disables per-stage wall-time profiling (off by
    /// default). Enabling resets the accumulators. Profiling reads the
    /// monotonic clock several times per stepped cycle, so keep it off
    /// for throughput measurements and use a dedicated profiled pass.
    pub fn set_stage_profiling(&mut self, on: bool) {
        self.profile = on.then(Box::default);
    }

    /// The accumulated stage profile, if profiling is on.
    pub fn stage_profile(&self) -> Option<&StageProfile> {
        self.profile.as_deref()
    }

    /// Stamps the time since `*mark` into the field `sel` picks, and
    /// advances the mark. No-op (two `None` checks) when profiling is
    /// off.
    #[inline]
    fn lap(
        mark: &mut Option<Instant>,
        prof: &mut Option<Box<StageProfile>>,
        sel: impl FnOnce(&mut StageProfile) -> &mut u64,
    ) {
        if let (Some(t), Some(p)) = (mark.as_mut(), prof.as_mut()) {
            let now = Instant::now();
            *sel(p) += u64::try_from(now.duration_since(*t).as_nanos()).unwrap_or(u64::MAX);
            *t = now;
        }
    }

    /// Enables or disables event-driven idle-span skipping (on by
    /// default). With it off, the simulator ticks every GPU cycle in
    /// lock-step. Both modes produce bit-identical results; the flag
    /// exists for regression testing and for measuring the speedup.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Whether event-driven idle-span skipping is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Enables or disables event-driven completion delivery (on by
    /// default). With it on, PIM acknowledgements accumulate in the
    /// partitions' ack wires until some mounted kernel reports
    /// ([`KernelModel::wants_completions`]) that delivery is observable,
    /// and the reply-network / completion stages are skipped on cycles
    /// where no reply exists anywhere. With it off, every completion is
    /// retired on the cycle it arrives and every stage ticks every cycle
    /// — the eager oracle. Both modes produce bit-identical observables
    /// (cycle counts, McStats, goldens); only the step mix's per-stage
    /// tick counters may differ. The flag exists for the oracle
    /// equivalence tests and for measuring the win.
    pub fn set_event_delivery(&mut self, on: bool) {
        self.event_delivery = on;
    }

    /// Whether event-driven completion delivery is enabled.
    pub fn event_delivery(&self) -> bool {
        self.event_delivery
    }

    /// Enables or disables retire-time ack batching (on by default).
    /// With it on, each controller emits a burst plan's completions as
    /// one timestamped batch at retire time, the partitions hold them in
    /// a time-ordered schedule, and the memory stage defers whole plan /
    /// stall windows instead of ticking through them — each ack still
    /// becomes *observable* at its exact analytic cycle (DESIGN.md §4k).
    /// With it off, every completion is produced by a per-tick
    /// controller step — the eager oracle. Both modes produce
    /// bit-identical observables (cycle counts, McStats, goldens); only
    /// the step mix's tick counters differ. Toggle before running.
    pub fn set_ack_batching(&mut self, on: bool) {
        self.ack_batching = on;
        for c in 0..self.memory.channel_count() {
            self.memory.partition_mut(c).mc.set_ack_batching(on);
        }
    }

    /// Whether retire-time ack batching is enabled.
    pub fn ack_batching(&self) -> bool {
        self.ack_batching
    }

    /// Enables or disables timestamped eject batching (on by default).
    /// With it on, whole request-crossbar arbitration cycles are
    /// deferred while every buffered flit is PIM, no input lane is full,
    /// and every destination lane has provable credit; at the next flush
    /// the deferred cycles replay in order and each grant lands in its
    /// partition's staged-ingress schedule, timestamped with the grant
    /// cycle, instead of forcing an eager per-eject catch-up
    /// (DESIGN.md §4l). With it off, the crossbar arbitrates every
    /// stepped cycle — the eager oracle. Both modes produce bit-identical
    /// observables (cycle counts, McStats, goldens); only the step mix's
    /// tick counters differ.
    pub fn set_eject_batching(&mut self, on: bool) {
        self.eject_batching = on;
        self.request_net.set_batched(on);
    }

    /// Whether timestamped eject batching is enabled.
    pub fn eject_batching(&self) -> bool {
        self.eject_batching
    }

    /// Replays any deferred memory-stage production up to the current
    /// DRAM service point. Must run before stats are harvested or
    /// partitions are inspected out of band — the run loop calls it on
    /// both exits so end-of-run observers never see a partition whose
    /// deferred span is unaccounted.
    pub(crate) fn sync_memory(&mut self) {
        // Deferred arbitration cycles stage their ejections first so the
        // catch-up replay delivers them at their exact arrival cycles.
        self.request_net.flush_into(&mut self.memory);
        self.memory.catch_up_to(self.clock.dram_now());
    }

    /// `(jumps taken, GPU cycles covered by jumps)` — how much of the run
    /// the event-driven path fast-forwarded over.
    pub fn fast_forward_stats(&self) -> (u64, u64) {
        (self.skips, self.skipped_cycles)
    }

    /// Kernel completions retired so far (PIM acks + MEM replies).
    pub(crate) fn completion_stage_delivered(&self) -> u64 {
        self.completion.delivered()
    }

    /// Mounts `model` on the given global SM indices.
    ///
    /// # Panics
    ///
    /// Panics if an SM is already occupied, out of range, or the SM count
    /// does not match the model's slot count.
    pub fn mount(
        &mut self,
        model: Box<dyn KernelModel>,
        sms: Vec<usize>,
        is_pim: bool,
        restart: bool,
    ) -> usize {
        assert_eq!(
            sms.len(),
            model.num_slots(),
            "SM count must match the kernel's slots"
        );
        let idx = self.kernels.len();
        for (slot, &sm) in sms.iter().enumerate() {
            self.issue.occupy(sm, idx, slot);
        }
        self.kernels.push(MountedKernel {
            model,
            sms,
            is_pim,
            restart,
            run_started: self.clock.gpu_now(),
            first_run_cycles: None,
            runs: 0,
            icnt_injections: 0,
        });
        idx
    }

    /// The mounted kernels.
    pub fn kernels(&self) -> &[MountedKernel] {
        &self.kernels
    }

    /// The memory partitions (for stats).
    pub fn partitions(&self) -> impl Iterator<Item = &Partition> {
        self.memory.iter()
    }

    /// The partition serving channel `c` (for stats).
    pub fn partition(&self, c: usize) -> &Partition {
        self.memory.get(c)
    }

    /// Sets how many threads step the memory partitions each cycle
    /// (1 = serial, the default unless `PIMSIM_THREADS` is set). Results
    /// are bit-identical at every width; see
    /// [`crate::pipeline::MemoryStage::set_threads`].
    pub fn set_memory_threads(&mut self, threads: usize) {
        self.memory.set_threads(threads);
    }

    /// GPU cycles elapsed.
    pub fn gpu_cycles(&self) -> u64 {
        self.clock.gpu_now()
    }

    /// DRAM cycles elapsed.
    pub fn dram_cycles(&self) -> u64 {
        self.clock.dram_now()
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Total flits in flight on the request path: buffered in the
    /// crossbar's input queues plus staged-but-undelivered ejections.
    pub fn request_noc_occupancy(&self) -> usize {
        self.request_net.occupancy(&self.memory)
    }

    /// Request-network counters.
    pub fn request_noc_stats(&self) -> pimsim_noc::CrossbarStats {
        self.request_net.stats()
    }

    /// One GPU cycle of the whole system. The stage order is fixed:
    /// issue → request net → L2 → DRAM ticks → PIM acks → reply net →
    /// reply completions → kernel bookkeeping.
    ///
    /// With event-driven delivery on (the default), the PIM-ack and
    /// reply stages only run on cycles where a completion can actually
    /// move or be observed; see [`Simulator::set_event_delivery`] for the
    /// contract and the soundness comments inline below.
    pub fn step(&mut self) {
        let now = self.clock.gpu_now();
        let mut prof = self.profile.take();
        let mut mark = prof.as_ref().map(|_| Instant::now());

        // 1. SM issue stage.
        self.issue.step(
            now,
            IssueCtx {
                kernels: &mut self.kernels,
                net: &mut self.request_net,
                inflight: self.completion.inflight_mut(),
                mapper: self.mapper.as_ref(),
            },
        );
        self.stage_ticks.issue += 1;
        Self::lap(&mut mark, &mut prof, |p| &mut p.issue_ns);

        // 2. Request network ejects into partition ingress ports.
        // Timestamped eject batching: while every buffered flit is PIM,
        // no input lane is full, and every destination lane has provable
        // credit, this cycle's arbitration is recorded instead of run —
        // it replays bit-identically at the next flush (before any live
        // memory step, so ejections always land in arrival order), with
        // each grant deposited into its partition's staged-ingress
        // schedule rather than through the per-eject catch-up path.
        // Deferred cycles do not count as request-net ticks: that
        // asymmetry is the measured win (the `ticks_request_net` gate).
        if self.eject_batching
            && self
                .request_net
                .try_defer_cycle(now, self.clock.dram_now(), &mut self.memory)
        {
            // Recorded for replay; nothing runs this cycle.
        } else {
            self.request_net.flush_into(&mut self.memory);
            self.request_net
                .step_live(now, self.clock.dram_now(), &mut self.memory);
            self.stage_ticks.request_net += 1;
        }
        Self::lap(&mut mark, &mut prof, |p| &mut p.request_net_ns);

        // 3+4. The memory stage's whole cycle: L2 front halves (GPU
        // clock) plus every pending DRAM tick (exact integer rational
        // coupling) — one serial pass at width 1, one sharded pool batch
        // otherwise.
        self.clock.accrue_gpu_cycle();
        let (first_dram, dram_ticks) = self.clock.take_dram_span();
        // Retire-time batching: when every partition reports a bulk
        // horizon covering this visit's window — MEM-side state quiet,
        // controllers idle / in plan or stall windows / simply unable to
        // complete anything within `min_completion_latency` ticks, and
        // at most pure-PIM work staged in the ports — the whole cycle is
        // recorded as deferred instead of stepped. Partitions replay
        // their share of the recorded visits lazily: on the next eject
        // into them (`partition_mut`), on the next live step, or at the
        // next global catch-up — through the exact live code paths, so
        // state is bit-identical and no observable (reply, ack, fill)
        // could have surfaced inside the window. Deferred cycles do not
        // count as memory-stage ticks: that asymmetry *is* the measured
        // win (the `ticks_memory` gate).
        // Arbitration cycles still deferred on the request side carry
        // only PIM flits (a buffered MEM flit refuses the request-side
        // defer and the cycle steps live), and PIM acks are pulled by
        // the delivery stage after replay — so in-flight deferred
        // arrivals never bound the memory window.
        let dram_end = first_dram + dram_ticks;
        let deferrable = self.ack_batching
            && (self.memory.can_defer_through(dram_end) || {
                // Second chance: a refusal from a *lagging* partition
                // reflects a horizon frozen at its last sync point,
                // not the live schedule. Stage any deferred ejections
                // (catch-up replays visits past their grant cycles),
                // catch up just the refusing partitions, and
                // re-check.
                self.request_net.flush_into(&mut self.memory);
                self.memory.refresh_lagging_through(dram_end)
            });
        if deferrable {
            self.memory.defer_cycle(now, first_dram, dram_ticks);
        } else {
            // Stage any deferred ejections first: the live step must see
            // every arrival the eager schedule would have delivered.
            self.request_net.flush_into(&mut self.memory);
            self.memory
                .step_cycle_all(now, first_dram, dram_ticks, &self.mapper);
            self.stage_ticks.memory += 1;
        }
        Self::lap(&mut mark, &mut prof, |p| &mut p.memory_ns);

        // 5. PIM acks (credit return, out-of-band). Event-driven: acks
        // are left to accumulate in the partitions' ack wires until some
        // PIM kernel says delivery is observable — a warp throttled at
        // its credit cap, or the completion tail where `is_done` is
        // advancing. This runs at the same position the eager schedule
        // delivers, so a gated delivery is never *early*; and because a
        // warp can only be at its cap here if it already was when this
        // stage last ran (issue precedes this stage in the same cycle),
        // every ack the eager schedule would have delivered before an
        // observable issue decision is delivered before that decision
        // here too. `on_complete` batching is exact by the
        // `wants_completions` contract.
        let mut completion_ticked = false;
        let deliver_acks = !self.event_delivery
            || self
                .kernels
                .iter()
                .any(|k| k.is_pim && k.model.wants_completions(now));
        if deliver_acks {
            // Acks become observable once their DRAM cycle has been
            // *serviced*: `dram_now()` is the next unserviced tick (the
            // span above ended at `dram_now() - 1`), so that is the drain
            // limit. Eager production pops each completion on its own
            // tick with the same bound, so both modes drain identically.
            // Production is pull-driven: the drain replays lagging
            // partitions first, so deferred ejections must be staged
            // like at every other catch-up entry point.
            self.request_net.flush_into(&mut self.memory);
            let ack_limit = self.clock.dram_now().saturating_sub(1);
            self.completion.collect_acks(
                &mut self.memory,
                &mut self.kernels,
                &mut self.issue,
                now,
                ack_limit,
            );
            completion_ticked = true;
        }
        Self::lap(&mut mark, &mut prof, |p| &mut p.completion_ns);

        // 6. Reply network: inject from partitions, deliver to SMs.
        // Skipped when no reply is queued in any partition wire
        // (`replies_pending`, exact as of this cycle's memory step) and
        // none is in flight inside the crossbar — then injection,
        // arbitration, and retirement would all be no-ops.
        let reply_active =
            !self.event_delivery || self.memory.replies_pending() || self.reply_net.has_traffic();
        if reply_active {
            // The reply network pops partition wires through
            // `partition_mut`, whose catch-up replays deferred memory
            // visits; deferred ejections must be staged first or the
            // replay would run those visits without their arrivals.
            self.request_net.flush_into(&mut self.memory);
            let mut delivered = self.completion.begin_replies();
            self.reply_net.step(
                now,
                ReplyNetCtx {
                    memory: &mut self.memory,
                    delivered: &mut delivered,
                },
            );
            self.stage_ticks.reply_net += 1;
            Self::lap(&mut mark, &mut prof, |p| &mut p.reply_net_ns);
            self.completion
                .finish_replies(delivered, &mut self.kernels, &mut self.issue, now);
            completion_ticked = true;
        } else {
            // The skip is licensed by the crossbar's quiet-span
            // contract: an empty arbitration cycle is a no-op.
            let quiet = self.reply_net.skip_quiet_span(now, 1);
            debug_assert!(
                quiet,
                "reply gate said quiet but the crossbar buffers flits"
            );
            Self::lap(&mut mark, &mut prof, |p| &mut p.reply_net_ns);
        }
        if completion_ticked {
            self.stage_ticks.completion += 1;
        }

        // 7. Kernel completion / restart bookkeeping.
        check_kernel_completion(&mut self.kernels, now);
        Self::lap(&mut mark, &mut prof, |p| &mut p.completion_ns);

        self.clock.finish_gpu_cycle();
        if let Some(p) = prof.as_mut() {
            p.stepped_cycles += 1;
        }
        self.profile = prof;
    }

    /// Attempts to jump the clocks over a provably quiet span, stopping
    /// at `limit`. Returns whether any cycles were skipped.
    ///
    /// Soundness: the jump is taken only when both network stages report
    /// no activity and every memory partition is either fully idle or
    /// *quiet* — all of its buffers empty and its controller inside a
    /// stall window (its activity horizon strictly in the future). In
    /// that state a lock-step [`Simulator::step`] mutates nothing but the
    /// cycle counters and the quiet controllers' stats integrals — issue
    /// finds no ready kernel (by the [`KernelModel::next_activity_cycle`]
    /// contract), the crossbars add zero to their occupancy integrals
    /// without touching arbiter state, the L2 stages find empty ports,
    /// and each quiet controller's cycles are replayed exactly by
    /// [`MemoryStage::quiet_replay_all`] after the jump. The skip is
    /// bounded by both the earliest kernel-pacing event and (via
    /// [`ClockCoupler::max_jump_for_dram_bound`]) the memory stage's
    /// horizon, so no skipped DRAM tick ever reaches a cycle where a
    /// controller would issue a command, pop a completion, or service a
    /// refresh.
    pub(crate) fn skip_idle_span(&mut self, limit: Cycle) -> bool {
        let now = self.clock.gpu_now();
        if now >= limit {
            return false;
        }
        // O(1) gate: every kernel request holds its inflight entry from
        // crossbar injection until its reply (or ack) is delivered, so a
        // nonempty table proves some component is busy without scanning
        // any of them.
        if !self.completion.inflight().is_empty() {
            return false;
        }
        // Both horizons fold in work parked outside the bare crossbars:
        // replies queued in partition wires but not yet injected, and
        // request-side ejections staged in partition schedules (or whole
        // arbitration cycles awaiting replay) but not yet delivered.
        if self.request_net.horizon(now, &self.memory).is_some()
            || self.reply_net.horizon(now, &self.memory).is_some()
        {
            return false;
        }
        let dram_now = self.clock.dram_now();
        // Replay any deferred production *before* the activity probe: the
        // probe memoizes partitions as known-idle and the catch-up skips
        // memoized ones, so probing first would lose the deferred span's
        // stats integrals. (A deferred partition is mid plan/stall and
        // never probes idle, but the ordering makes that a non-issue.)
        self.memory.catch_up_to(dram_now);
        let mem_horizon = self.memory.next_activity_cycle(dram_now);
        if mem_horizon.is_some_and(|at| at <= dram_now) {
            // Some partition needs servicing this very DRAM cycle
            // (buffered work, or a controller mid burst plan).
            return false;
        }
        // Nothing needs per-cycle servicing: only kernel pacing (and the
        // memory horizon, folded in below) can create work.
        let target = self
            .kernels
            .iter()
            .filter_map(|k| k.model.next_activity_cycle(now))
            .map(|c| c.max(now))
            .min();
        let Some(target) = target else {
            // No kernel will ever issue again; let the lock-step path burn
            // the budget exactly as it would with fast-forward off.
            return false;
        };
        let mut target = target.min(limit);
        if let Some(h) = mem_horizon {
            // Every skipped DRAM tick must stay strictly below the
            // horizon: cap the jump so `dram_now()` lands at most on `h`.
            target = target.min(self.clock.max_jump_for_dram_bound(h));
        }
        if target <= now {
            return false;
        }
        self.skips += 1;
        self.skipped_cycles += target - now;
        // Both crossbars collapse the span per their quiet-span
        // contract (they reported no activity above, so they buffer
        // nothing and empty arbitration cycles are no-ops).
        let quiet = self.request_net.skip_quiet_span(now, target - now)
            && self.reply_net.skip_quiet_span(now, target - now);
        debug_assert!(quiet, "skip licensed with flits buffered in a crossbar");
        self.clock.jump_to(target);
        if mem_horizon.is_some() {
            let ticks = self.clock.dram_now() - dram_now;
            self.memory.quiet_replay_all(dram_now, ticks, &self.mapper);
        }
        true
    }
}
