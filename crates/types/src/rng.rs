//! Small deterministic PRNG for workload generation and randomized tests.
//!
//! The simulator needs reproducible pseudo-randomness (synthetic kernels,
//! property-style tests) but no cryptographic strength, so we use
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a single 64-bit state,
//! excellent statistical quality for this purpose, and the same sequence on
//! every platform. Keeping it in-tree removes an external dependency from
//! the hot path and guarantees the address streams that calibrate the
//! paper's figures never change under us.

/// A SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use pimsim_types::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// let r = a.next_range(10);
/// assert!(r < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via 128-bit multiply (Lemire's
    /// unbiased-enough fast range reduction; the tiny modulo bias of the
    /// plain multiply-shift is irrelevant at simulation scales and keeps
    /// the generator branch-free).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "range bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        // p == 1.0 must always fire; next_f64() < 1.0 guarantees it.
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.next_range(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(r.chance(1.0));
            assert!(!r.chance(0.0));
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bound_rejected() {
        SplitMix64::new(0).next_range(0);
    }
}
