//! Shared vocabulary types for the `pim-coscheduling` simulator.
//!
//! This crate defines the request, address, identifier, and configuration
//! types that every other crate in the workspace builds on. It contains no
//! simulation logic of its own.
//!
//! # Example
//!
//! ```
//! use pimsim_types::{Request, RequestKind, PhysAddr, AppId, RequestId};
//!
//! let req = Request::new(
//!     RequestId(0),
//!     AppId::GPU,
//!     RequestKind::MemRead,
//!     PhysAddr(0x4000_0000),
//!     3,
//!     0,
//! );
//! assert!(req.kind.is_mem());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod request;
pub mod rng;

pub use config::{
    AddressMapConfig, CacheConfig, DramBackendKind, DramConfig, DramTiming, GpuConfig, McConfig,
    NocConfig, PagePolicy, SystemConfig, TimingPreset, VcMode,
};
pub use request::{
    AppId, DecodedAddr, Mode, PhysAddr, PimCommand, PimOpKind, Request, RequestId, RequestKind,
};
pub use rng::SplitMix64;

/// A simulation cycle count. The clock domain (GPU core vs. DRAM) is
/// documented at each use site.
pub type Cycle = u64;
