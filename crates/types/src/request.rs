//! Memory and PIM request types.
//!
//! The simulator distinguishes two request families, following the paper:
//!
//! * **MEM requests** — regular GPU loads/stores. They traverse the
//!   interconnect, are filtered by the L2 cache, and are serviced by the
//!   memory controller in *MEM mode* using per-bank scheduling.
//! * **PIM requests** — fine-grained PIM operations encoded as
//!   cache-streaming stores. They bypass all caches and are serviced in
//!   *PIM mode*, where a single request executes on **all banks of a
//!   channel in lock-step**.

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// A physical byte address.
///
/// The DRAM address mapper (in `pimsim-dram`) decodes this into a
/// [`DecodedAddr`] according to the configured bit layout.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// A physical address decoded into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Memory channel index.
    pub channel: u16,
    /// Bank index within the channel.
    pub bank: u16,
    /// Row index within the bank.
    pub row: u32,
    /// Column (DRAM-word) index within the row.
    pub col: u32,
}

/// Monotonically increasing request identifier, unique within a simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Identifies which co-executing application (kernel) a request belongs to.
///
/// In the paper's scenarios at most two applications co-execute: a regular
/// GPU kernel and a PIM kernel. The type is a small integer so other
/// pairings (e.g. two GPU kernels in Figure 5) are expressible too.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AppId(pub u8);

impl AppId {
    /// Conventional ID for the regular (load/store) GPU kernel.
    pub const GPU: AppId = AppId(0);
    /// Conventional ID for the PIM kernel.
    pub const PIM: AppId = AppId(1);

    /// Returns the underlying index, usable for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// The memory controller's servicing mode (Section II-A of the paper).
///
/// MEM and PIM requests cannot be serviced concurrently; the controller's
/// arbiter switches between the two modes, draining in-flight requests at
/// each switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Servicing regular load/store requests from the MEM queue.
    Mem,
    /// Servicing PIM requests from the PIM queue, all banks in lock-step.
    Pim,
}

impl Mode {
    /// The other mode.
    pub fn other(self) -> Mode {
        match self {
            Mode::Mem => Mode::Pim,
            Mode::Pim => Mode::Mem,
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Mem => write!(f, "MEM"),
            Mode::Pim => write!(f, "PIM"),
        }
    }
}

/// The kind of in-memory operation a PIM request performs (Figure 3).
///
/// All three kinds are column accesses from the DRAM's perspective; they
/// differ in how they use the PIM functional unit's register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimOpKind {
    /// Load a DRAM word from the open row into the register file.
    RfLoad,
    /// SIMD compute: combine the open row's DRAM word with a register file
    /// entry (e.g. add) and write the result back to the register file.
    RfCompute,
    /// Store a register file entry into the open row.
    RfStore,
}

impl std::fmt::Display for PimOpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PimOpKind::RfLoad => write!(f, "rf_load"),
            PimOpKind::RfCompute => write!(f, "rf_compute"),
            PimOpKind::RfStore => write!(f, "rf_store"),
        }
    }
}

/// A fine-grained PIM operation targeting all banks of one channel.
///
/// PIM kernels have a *block* structure: a block is a run of consecutive
/// PIM operations to the same row, separated from the next block by a
/// precharge + activate. Blocks must execute in order for correctness
/// (their operations communicate through the register file), which the
/// memory controller guarantees by servicing the PIM queue FCFS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PimCommand {
    /// Operation kind (load / compute / store relative to the RF).
    pub op: PimOpKind,
    /// Target memory channel. The op executes on all banks of this channel.
    pub channel: u16,
    /// Target row, identical across banks (lock-step execution).
    pub row: u32,
    /// Column (DRAM word) within the row.
    pub col: u16,
    /// Register file entry used by the op.
    pub rf_entry: u8,
    /// `true` for the first operation of a block: the controller must
    /// precharge and activate `row` on all banks before issuing it.
    pub block_start: bool,
    /// Monotonically increasing block number within the issuing kernel,
    /// used by ordering assertions.
    pub block_id: u64,
}

/// What a request asks the memory subsystem to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Regular load. Filtered by the L2 cache; returns data to the SM.
    MemRead,
    /// Regular store. Write-allocated in the L2 cache.
    MemWrite,
    /// Fine-grained PIM operation (a cache-streaming store at the SM);
    /// bypasses all caches.
    Pim(PimCommand),
}

impl RequestKind {
    /// `true` for regular load/store requests.
    pub fn is_mem(&self) -> bool {
        matches!(self, RequestKind::MemRead | RequestKind::MemWrite)
    }

    /// `true` for PIM requests.
    pub fn is_pim(&self) -> bool {
        matches!(self, RequestKind::Pim(_))
    }

    /// The memory controller mode that services this request kind.
    pub fn mode(&self) -> Mode {
        if self.is_pim() {
            Mode::Pim
        } else {
            Mode::Mem
        }
    }

    /// The PIM command, if this is a PIM request.
    pub fn pim(&self) -> Option<&PimCommand> {
        match self {
            RequestKind::Pim(cmd) => Some(cmd),
            _ => None,
        }
    }
}

/// A memory-subsystem request, from SM issue to completion.
///
/// Requests are created by the GPU model, carried through the interconnect
/// and cache as opaque payloads, and consumed by the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique identifier (issue order at the GPU).
    pub id: RequestId,
    /// Owning application.
    pub app: AppId,
    /// What to do.
    pub kind: RequestKind,
    /// Physical address (meaningful for MEM requests; for PIM requests the
    /// target is in the embedded [`PimCommand`] and this field holds a
    /// synthesized address for bookkeeping).
    pub addr: PhysAddr,
    /// Interconnect injection port (SM index) the request entered from;
    /// replies are routed back to this port.
    pub src_port: u16,
    /// GPU cycle at which the SM issued the request.
    pub issued_at: Cycle,
}

impl Request {
    /// Creates a new request.
    pub fn new(
        id: RequestId,
        app: AppId,
        kind: RequestKind,
        addr: PhysAddr,
        src_port: u16,
        issued_at: Cycle,
    ) -> Self {
        Request {
            id,
            app,
            kind,
            addr,
            src_port,
            issued_at,
        }
    }

    /// The servicing mode for this request.
    pub fn mode(&self) -> Mode {
        self.kind.mode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_other_is_involutive() {
        assert_eq!(Mode::Mem.other(), Mode::Pim);
        assert_eq!(Mode::Pim.other(), Mode::Mem);
        assert_eq!(Mode::Mem.other().other(), Mode::Mem);
    }

    #[test]
    fn request_kind_classification() {
        assert!(RequestKind::MemRead.is_mem());
        assert!(RequestKind::MemWrite.is_mem());
        assert!(!RequestKind::MemRead.is_pim());
        let cmd = PimCommand {
            op: PimOpKind::RfLoad,
            channel: 2,
            row: 7,
            col: 0,
            rf_entry: 0,
            block_start: true,
            block_id: 0,
        };
        let pim = RequestKind::Pim(cmd);
        assert!(pim.is_pim());
        assert!(!pim.is_mem());
        assert_eq!(pim.mode(), Mode::Pim);
        assert_eq!(pim.pim(), Some(&cmd));
        assert_eq!(RequestKind::MemRead.pim(), None);
    }

    #[test]
    fn request_constructor_preserves_fields() {
        let r = Request::new(
            RequestId(42),
            AppId::PIM,
            RequestKind::MemWrite,
            PhysAddr(0x1234),
            9,
            100,
        );
        assert_eq!(r.id, RequestId(42));
        assert_eq!(r.app, AppId::PIM);
        assert_eq!(r.addr.0, 0x1234);
        assert_eq!(r.src_port, 9);
        assert_eq!(r.issued_at, 100);
        assert_eq!(r.mode(), Mode::Mem);
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert_eq!(format!("{}", Mode::Mem), "MEM");
        assert_eq!(format!("{}", Mode::Pim), "PIM");
        assert_eq!(format!("{}", AppId::GPU), "app0");
        assert_eq!(format!("{}", RequestId(3)), "req#3");
        assert_eq!(format!("{}", PhysAddr(0x10)), "0x10");
        assert_eq!(format!("{}", PimOpKind::RfCompute), "rf_compute");
    }
}
