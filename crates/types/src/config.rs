//! System configuration.
//!
//! Defaults reproduce Table I of the paper (NVIDIA Quadro GV100-class GPU
//! with HBM memory). All sizes are per the units in each field's docs.

use serde::{Deserialize, Serialize};

/// Interconnect virtual-channel configuration (Section V of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VcMode {
    /// Baseline: MEM and PIM requests share a single virtual channel and a
    /// single set of queues ("VC1" in the paper, Figure 7a).
    Shared,
    /// Proposed: a separate virtual channel and queue for PIM requests all
    /// the way from the SMs to the memory controller ("VC2", Figure 7b).
    /// Existing queues are split in half so total buffering is unchanged.
    SplitPim,
}

impl VcMode {
    /// Number of virtual channels per port.
    pub fn vc_count(self) -> usize {
        match self {
            VcMode::Shared => 1,
            VcMode::SplitPim => 2,
        }
    }

    /// Paper-style label: `VC1` or `VC2`.
    pub fn label(self) -> &'static str {
        match self {
            VcMode::Shared => "VC1",
            VcMode::SplitPim => "VC2",
        }
    }
}

impl std::fmt::Display for VcMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// GPU core parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (Table I: 80).
    pub num_sms: usize,
    /// Core clock in MHz (Table I: 1132).
    pub core_clock_mhz: f64,
    /// Maximum in-flight MEM requests per SM (models the SM's MSHRs /
    /// load-store queue depth).
    pub max_outstanding_mem_per_sm: usize,
    /// Maximum in-flight PIM stores per warp. PIM stores are cache-streaming
    /// (non-temporal) stores that retire from the SM immediately, so a warp
    /// can keep hundreds in flight; the effective limit is interconnect and
    /// queue buffering. This must be large enough for PIM kernels to
    /// saturate the memory subsystem (Section IV) — the congestion chain of
    /// Figure 7a disappears if it is small.
    pub max_outstanding_pim_per_warp: usize,
    /// Warps per SM used by PIM kernels (paper: 4 warps/SM x 8 SMs = 32
    /// warps, one per memory channel).
    pub pim_warps_per_sm: usize,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 80,
            core_clock_mhz: 1132.0,
            max_outstanding_mem_per_sm: 64,
            max_outstanding_pim_per_warp: 256,
            pim_warps_per_sm: 4,
        }
    }
}

/// Interconnect parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Total buffer entries per injection port (Table I: 512). Under
    /// [`VcMode::SplitPim`] this is split in half between the MEM and PIM
    /// virtual channels, keeping total buffering equal to the baseline.
    pub input_queue_entries: usize,
    /// Virtual-channel configuration.
    pub vc_mode: VcMode,
    /// Buffer entries per reply-network input port (at the memory
    /// partitions). Replies are all MEM traffic, so this is never split.
    pub reply_queue_entries: usize,
    /// iSlip request-grant iterations per crossbar cycle (>= 1). A second
    /// iteration lets an input that lost arbitration propose its other
    /// VC's head toward a still-free output.
    pub islip_iterations: usize,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            input_queue_entries: 512,
            vc_mode: VcMode::Shared,
            reply_queue_entries: 512,
            islip_iterations: 1,
        }
    }
}

/// L2 cache parameters. The cache is sliced per memory channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes across all slices (Table I: 6 MB).
    pub total_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes. We use the 32 B DRAM atom (sectored-cache
    /// behavior): one miss produces one DRAM burst.
    pub line_bytes: usize,
    /// Tag/data pipeline latency in GPU cycles.
    pub latency: u64,
    /// Miss-status holding registers per slice.
    pub mshr_entries: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            total_bytes: 6 * 1024 * 1024,
            ways: 16,
            line_bytes: 32,
            latency: 32,
            mshr_entries: 48,
        }
    }
}

/// DRAM timing parameters, in DRAM cycles (Table I).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Column-to-column delay, different bank group.
    pub t_ccds: u64,
    /// Column-to-column delay, same bank group.
    pub t_ccdl: u64,
    /// Activate-to-activate delay across banks.
    pub t_rrd: u64,
    /// Activate-to-column delay (RAS-to-CAS).
    pub t_rcd: u64,
    /// Precharge period.
    pub t_rp: u64,
    /// Minimum row-open time (activate-to-precharge).
    pub t_ras: u64,
    /// Read CAS latency.
    pub t_cl: u64,
    /// Write latency.
    pub t_wl: u64,
    /// Write recovery (end of write burst to precharge).
    pub t_wr: u64,
    /// Read-to-precharge, long.
    pub t_rtpl: u64,
    /// Data-bus occupancy of one burst (burst length 2 on a DDR bus = 1
    /// DRAM clock).
    pub burst_cycles: u64,
    /// Four-activate window: at most four activates per rolling window of
    /// this many cycles. `0` disables the constraint (Table I does not
    /// list tFAW; enable it for fidelity ablations).
    pub t_faw: u64,
    /// Write-to-read turnaround: a read may not issue until this many
    /// cycles after the end of the last write burst. `0` disables it
    /// (not listed in Table I).
    pub t_wtr: u64,
    /// Average refresh interval: one all-bank refresh is due every this
    /// many cycles. `0` disables refresh (the paper's simulator
    /// configuration; enable for fidelity ablations).
    pub t_refi: u64,
    /// Refresh cycle time: banks are unavailable for this long per
    /// refresh.
    pub t_rfc: u64,
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming {
            t_ccds: 1,
            t_ccdl: 2,
            t_rrd: 3,
            t_rcd: 12,
            t_rp: 12,
            t_ras: 28,
            t_cl: 12,
            t_wl: 2,
            t_wr: 10,
            t_rtpl: 3,
            burst_cycles: 1,
            t_faw: 0,
            t_wtr: 0,
            t_refi: 0,
            t_rfc: 0,
        }
    }
}

/// A named, internally consistent timing parameterization.
///
/// This is the single constructor path for [`DramTiming`] values beyond
/// `Default`: the `t_faw`/`t_wtr`/`t_refi`/`t_rfc` fields follow a
/// "0 disables" convention, and hand-assembling them risks half-enabled
/// fidelity constraints (e.g. a rolling four-activate window with no
/// write-to-read turnaround). Each preset enables or disables those
/// constraints as a documented group; ablations that want one knob at a
/// time should start from a preset and zero individual fields explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingPreset {
    /// Table I of the paper (HBM at 850 MHz). tFAW/tWTR/refresh are all
    /// disabled, matching the paper's simulator configuration.
    Hbm2Table1,
    /// Table I plus the constraints the paper's table omits, at
    /// HBM-plausible values: tFAW=16, tWTR=4, tREFI=3328 (3.9 µs at 850
    /// MHz), tRFC=298 (350 ns). Used by the fidelity ablation bench.
    Hbm2Fidelity,
    /// LPDDR5X-PIM (LP5X-PIM Sim-style substrate): slower core timing in
    /// DRAM cycles at 937.5 MHz, burst length 32 on a x16 bus
    /// (`burst_cycles`=2), and the tFAW/tWTR constraints *enabled* —
    /// LPDDR5X parts are activation-power limited, so a backend that
    /// dropped the rolling-window paths would be silently wrong here.
    /// Refresh stays disabled to match the paper's baseline methodology.
    Lpddr5xPim,
}

impl DramTiming {
    /// Builds the timing for a named [`TimingPreset`] — the one sanctioned
    /// constructor for non-default timing sets (see the preset docs for
    /// why the fidelity fields travel as a group).
    pub fn preset(preset: TimingPreset) -> Self {
        match preset {
            TimingPreset::Hbm2Table1 => Self::default(),
            TimingPreset::Hbm2Fidelity => DramTiming {
                t_faw: 16,
                t_wtr: 4,
                t_refi: 3328,
                t_rfc: 298,
                ..Self::default()
            },
            TimingPreset::Lpddr5xPim => DramTiming {
                t_ccds: 2,
                t_ccdl: 4,
                t_rrd: 4,
                t_rcd: 15,
                t_rp: 15,
                t_ras: 34,
                t_cl: 15,
                t_wl: 7,
                t_wr: 14,
                t_rtpl: 6,
                burst_cycles: 2,
                t_faw: 16,
                t_wtr: 5,
                t_refi: 0,
                t_rfc: 0,
            },
        }
    }

    /// Table I timing plus the omitted constraints enabled
    /// ([`TimingPreset::Hbm2Fidelity`]). Kept as a named shorthand for the
    /// fidelity ablation bench.
    pub fn with_fidelity_extensions() -> Self {
        Self::preset(TimingPreset::Hbm2Fidelity)
    }
}

/// DRAM organization parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of memory channels (Table I: 32).
    pub channels: usize,
    /// Banks per channel (Table I: 16).
    pub banks: usize,
    /// Bank groups per channel; `t_ccdl` applies within a group, `t_ccds`
    /// across groups.
    pub bank_groups: usize,
    /// DRAM clock in MHz (Table I: 850).
    pub clock_mhz: f64,
    /// Rows per bank (sized for the scaled working sets).
    pub rows_per_bank: u32,
    /// DRAM words (columns) per row. With a 32 B word this is the row
    /// buffer size in words.
    pub cols_per_row: u32,
    /// PIM functional units per channel (Table I: 8; each FU is shared by a
    /// pair of banks).
    pub pim_fus_per_channel: usize,
    /// Register-file entries per PIM FU (Table I: 16; 8 per bank of the
    /// sharing pair).
    pub pim_rf_entries: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 32,
            banks: 16,
            bank_groups: 4,
            clock_mhz: 850.0,
            rows_per_bank: 1 << 13,
            cols_per_row: 64,
            pim_fus_per_channel: 8,
            pim_rf_entries: 16,
        }
    }
}

/// Row-buffer management policy for MEM accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Open-page: rows stay open after a column access (the paper's
    /// implicit policy; row hits are possible and FR-FCFS exploits them).
    Open,
    /// Closed-page: every MEM column access auto-precharges its bank
    /// (RDA/WRA). Kills row hits but removes conflict penalties —
    /// the classic trade, exposed for ablation. PIM blocks always run
    /// open-page (their structure requires it).
    Closed,
}

/// Memory-controller and memory-partition queue parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// MEM queue entries per channel (Table I: 64).
    pub mem_q_entries: usize,
    /// PIM queue entries per channel (Table I: 64).
    pub pim_q_entries: usize,
    /// Interconnect-to-L2 staging queue entries per partition (split per VC
    /// under [`VcMode::SplitPim`]).
    pub icnt_to_l2_entries: usize,
    /// L2-to-DRAM staging queue entries per partition (split per VC under
    /// [`VcMode::SplitPim`]).
    pub l2_to_dram_entries: usize,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            mem_q_entries: 64,
            pim_q_entries: 64,
            icnt_to_l2_entries: 32,
            l2_to_dram_entries: 32,
            page_policy: PagePolicy::Open,
        }
    }
}

/// Address-mapping scheme selection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressMapConfig {
    /// Bit-sliced mapping described by a pattern string over the address
    /// bits above the DRAM-word offset, most-significant bit first, using
    /// `R` (row), `B` (bank), `C` (column), and `D` (channel).
    ///
    /// Table I's layout is `RRRRRRRRRRRRRBBBCCCBDDDDDCCC`.
    BitPattern(String),
    /// Pseudo-random channel hashing in the spirit of I-poly (Rau, ISCA
    /// 1991): channel bits are XOR-folded from higher address bits. The
    /// paper turns this *off* for PIM programmability; we keep it available
    /// for ablations.
    IPolyHash,
}

impl AddressMapConfig {
    /// The Table I bit layout.
    pub fn table1() -> Self {
        AddressMapConfig::BitPattern("RRRRRRRRRRRRRBBBCCCBDDDDDCCC".to_owned())
    }
}

impl Default for AddressMapConfig {
    fn default() -> Self {
        AddressMapConfig::table1()
    }
}

/// Which DRAM backend a [`SystemConfig`] was configured for.
///
/// This is deliberately *pure data*: the name↔kind↔builder mapping, the
/// per-backend presets, and every `match` over these variants live in the
/// `pimsim-dram` backend registry (`pimsim_dram::backend`), mirroring how
/// `PolicyKind` is only interpreted by `pimsim_core::policy::registry`.
/// Crates outside `pimsim-dram` carry the kind around opaquely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DramBackendKind {
    /// The paper's HBM substrate (Table I). The default backend; a
    /// `SystemConfig::default()` is an HBM system.
    #[default]
    Hbm,
    /// LPDDR5X-PIM: per-rank PIM units modeled rank-as-subchannel, with
    /// LPDDR5X geometry and timing ([`TimingPreset::Lpddr5xPim`]).
    Lp5x {
        /// Ranks per physical channel; each rank is simulated as its own
        /// channel (its own PIM units, row buffers, and timing state).
        ranks: usize,
    },
}

/// Full system configuration. `SystemConfig::default()` reproduces Table I.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemConfig {
    /// GPU core parameters.
    pub gpu: GpuConfig,
    /// Interconnect parameters.
    pub noc: NocConfig,
    /// L2 cache parameters.
    pub cache: CacheConfig,
    /// DRAM organization and timing.
    pub dram: DramConfig,
    /// DRAM timing parameters.
    pub timing: DramTiming,
    /// Memory-controller queues.
    pub mc: McConfig,
    /// Address-mapping scheme.
    pub addr_map: AddressMapConfig,
    /// Which DRAM backend `dram`/`timing`/`addr_map` were configured for.
    /// Set by the backend registry (`pimsim_dram::backend::configure`);
    /// defaults to HBM, matching the Table I defaults of the other fields.
    pub dram_backend: DramBackendKind,
}

/// Error returned by [`SystemConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateConfigError(String);

impl std::fmt::Display for ValidateConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ValidateConfigError {}

impl SystemConfig {
    /// Checks internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateConfigError`] naming the first offending field
    /// when any structural parameter is zero, non-power-of-two where a
    /// power of two is required, or mutually inconsistent (e.g. banks not
    /// divisible by bank groups).
    pub fn validate(&self) -> Result<(), ValidateConfigError> {
        fn err(msg: impl Into<String>) -> Result<(), ValidateConfigError> {
            Err(ValidateConfigError(msg.into()))
        }
        if self.gpu.num_sms == 0 {
            return err("gpu.num_sms must be > 0");
        }
        if self.gpu.core_clock_mhz <= 0.0 || self.dram.clock_mhz <= 0.0 {
            return err("clock frequencies must be positive");
        }
        if self.dram.channels == 0 || !self.dram.channels.is_power_of_two() {
            return err("dram.channels must be a nonzero power of two");
        }
        if self.dram.banks == 0 || !self.dram.banks.is_power_of_two() {
            return err("dram.banks must be a nonzero power of two");
        }
        if self.dram.bank_groups == 0 || !self.dram.banks.is_multiple_of(self.dram.bank_groups) {
            return err("dram.banks must be divisible by dram.bank_groups");
        }
        if !self.dram.rows_per_bank.is_power_of_two() || !self.dram.cols_per_row.is_power_of_two() {
            return err("rows_per_bank and cols_per_row must be powers of two");
        }
        if self.dram.pim_fus_per_channel == 0
            || !self
                .dram
                .banks
                .is_multiple_of(self.dram.pim_fus_per_channel)
        {
            return err("dram.banks must be divisible by dram.pim_fus_per_channel");
        }
        if self.dram.pim_rf_entries == 0 {
            return err("dram.pim_rf_entries must be > 0");
        }
        if self.cache.line_bytes == 0 || !self.cache.line_bytes.is_power_of_two() {
            return err("cache.line_bytes must be a nonzero power of two");
        }
        if self.cache.ways == 0 || self.cache.total_bytes == 0 {
            return err("cache geometry must be nonzero");
        }
        let slice_bytes = self.cache.total_bytes / self.dram.channels;
        if slice_bytes / (self.cache.line_bytes * self.cache.ways) == 0 {
            return err("cache slice too small for one set");
        }
        if self.noc.input_queue_entries < self.noc.vc_mode.vc_count() {
            return err("noc.input_queue_entries must cover every VC");
        }
        if self.noc.islip_iterations == 0 {
            return err("noc.islip_iterations must be >= 1");
        }
        if self.timing.t_refi > 0 && self.timing.t_refi <= self.timing.t_rfc {
            return err("timing.t_refi must exceed timing.t_rfc (else refresh livelocks)");
        }
        if self.mc.mem_q_entries == 0 || self.mc.pim_q_entries == 0 {
            return err("mc queues must be nonzero");
        }
        if self.mc.icnt_to_l2_entries < self.noc.vc_mode.vc_count()
            || self.mc.l2_to_dram_entries < self.noc.vc_mode.vc_count()
        {
            return err("partition staging queues must cover every VC");
        }
        if let AddressMapConfig::BitPattern(p) = &self.addr_map {
            let (r, b, c, d) = pattern_counts(p);
            if r + b + c + d != p.len() {
                return err("address map pattern may only contain R/B/C/D");
            }
            if (1usize << d) != self.dram.channels {
                return err("address map channel bits do not match dram.channels");
            }
            if (1usize << b) != self.dram.banks {
                return err("address map bank bits do not match dram.banks");
            }
            if (1u64 << c) != u64::from(self.dram.cols_per_row) {
                return err("address map column bits do not match dram.cols_per_row");
            }
            if (1u64 << r) < u64::from(self.dram.rows_per_bank) {
                return err("address map row bits cannot index rows_per_bank");
            }
        }
        Ok(())
    }

    /// DRAM-word (atom) size in bytes implied by the cache line size.
    pub fn dram_word_bytes(&self) -> usize {
        self.cache.line_bytes
    }

    /// Ratio of DRAM clock to GPU clock, used by the two-domain stepper.
    pub fn dram_per_gpu_cycle(&self) -> f64 {
        self.dram.clock_mhz / self.gpu.core_clock_mhz
    }

    /// The DRAM:GPU clock ratio as an exact integer rational
    /// `(numerator, denominator)`, reduced to lowest terms. The two-domain
    /// stepper accumulates `numerator` per GPU cycle and steps the DRAM
    /// whenever the accumulator crosses `denominator`; because the
    /// arithmetic is integral, advancing `n` GPU cycles in one jump yields
    /// exactly the same DRAM-cycle schedule as `n` single steps — a
    /// property the f64 ratio cannot guarantee and which the event-driven
    /// fast-forward path relies on.
    ///
    /// Clocks are rounded to kHz, which is exact for every real HBM/GPU
    /// clock spec we model (Table I: 850 MHz / 1132 MHz).
    pub fn dram_clock_ratio(&self) -> (u64, u64) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let (mut num, mut den) = (
            (self.dram.clock_mhz * 1000.0).round() as u64,
            (self.gpu.core_clock_mhz * 1000.0).round() as u64,
        );
        let gcd = {
            let (mut a, mut b) = (num, den);
            while b != 0 {
                (a, b) = (b, a % b);
            }
            a.max(1)
        };
        num /= gcd;
        den /= gcd;
        (num, den)
    }

    /// Bytes addressable per channel under the current geometry.
    pub fn bytes_per_channel(&self) -> u64 {
        self.dram.banks as u64
            * u64::from(self.dram.rows_per_bank)
            * u64::from(self.dram.cols_per_row)
            * self.dram_word_bytes() as u64
    }
}

fn pattern_counts(p: &str) -> (usize, usize, usize, usize) {
    let mut r = 0;
    let mut b = 0;
    let mut c = 0;
    let mut d = 0;
    for ch in p.chars() {
        match ch {
            'R' => r += 1,
            'B' => b += 1,
            'C' => c += 1,
            'D' => d += 1,
            _ => {}
        }
    }
    (r, b, c, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_table1_and_valid() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.gpu.num_sms, 80);
        assert_eq!(cfg.dram.channels, 32);
        assert_eq!(cfg.dram.banks, 16);
        assert_eq!(cfg.timing.t_rcd, 12);
        assert_eq!(cfg.timing.t_ras, 28);
        assert_eq!(cfg.mc.mem_q_entries, 64);
        assert_eq!(cfg.noc.input_queue_entries, 512);
        cfg.validate().expect("Table I defaults must validate");
    }

    #[test]
    fn vc_mode_labels() {
        assert_eq!(VcMode::Shared.label(), "VC1");
        assert_eq!(VcMode::SplitPim.label(), "VC2");
        assert_eq!(VcMode::Shared.vc_count(), 1);
        assert_eq!(VcMode::SplitPim.vc_count(), 2);
    }

    #[test]
    fn validation_rejects_zero_sms() {
        let mut cfg = SystemConfig::default();
        cfg.gpu.num_sms = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_mismatched_channel_bits() {
        let mut cfg = SystemConfig::default();
        cfg.dram.channels = 16; // pattern still encodes 5 channel bits
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_non_power_of_two_banks() {
        let mut cfg = SystemConfig::default();
        cfg.dram.banks = 12;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_pattern_chars() {
        let cfg = SystemConfig {
            addr_map: AddressMapConfig::BitPattern("RRXX".into()),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn clock_ratio_matches_table1() {
        let cfg = SystemConfig::default();
        let r = cfg.dram_per_gpu_cycle();
        assert!((r - 850.0 / 1132.0).abs() < 1e-12);
    }

    #[test]
    fn integer_clock_ratio_is_reduced_and_consistent() {
        let cfg = SystemConfig::default();
        let (num, den) = cfg.dram_clock_ratio();
        // gcd(850_000, 1_132_000) = 2_000.
        assert_eq!((num, den), (425, 566));
        let f = cfg.dram_per_gpu_cycle();
        assert!((num as f64 / den as f64 - f).abs() < 1e-12);
        // Jumping n cycles must equal n single steps for any accumulator.
        let (mut acc_a, mut steps_a) = (0u64, 0u64);
        for _ in 0..10_000u64 {
            acc_a += num;
            while acc_a >= den {
                acc_a -= den;
                steps_a += 1;
            }
        }
        let total = 10_000u64 * num;
        assert_eq!(steps_a, total / den);
        assert_eq!(acc_a, total % den);
    }

    #[test]
    fn validation_rejects_refresh_livelock() {
        let mut cfg = SystemConfig::default();
        cfg.timing.t_refi = 50;
        cfg.timing.t_rfc = 100;
        assert!(cfg.validate().is_err());
        cfg.timing = DramTiming::with_fidelity_extensions();
        cfg.validate().unwrap();
    }

    #[test]
    fn ipoly_variant_validates() {
        let cfg = SystemConfig {
            addr_map: AddressMapConfig::IPolyHash,
            ..Default::default()
        };
        cfg.validate().unwrap();
    }
}
