//! `pimsim` — command-line driver for the pim-coscheduling simulator.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pimsim_cli::parse_args(&args) {
        Ok(cmd) => std::process::exit(pimsim_cli::run(cmd)),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", pimsim_cli::USAGE);
            std::process::exit(2);
        }
    }
}
