//! Command parsing and execution for the `pimsim` command-line driver.
//!
//! The CLI runs individual simulations without writing any Rust:
//!
//! ```sh
//! pimsim list
//! pimsim standalone --gpu G4 --sms 80 --scale 0.3
//! pimsim standalone --pim P1 --scale 0.3
//! pimsim coexec --gpu G11 --pim P4 --policy f3fs --mem-cap 32 --pim-cap 32 --vc 2
//! pimsim collab --policy fr-fcfs --scale 0.3
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pimsim_core::PolicyKind;
use pimsim_sim::Runner;
use pimsim_types::{DramBackendKind, SystemConfig, VcMode};
use pimsim_workloads::{
    gpu_kernel, llm_scenario, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark,
};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List available kernels and policies.
    List,
    /// Run one kernel alone.
    Standalone(RunOpts),
    /// Competitive co-execution (GPU on 72 SMs, PIM on 8).
    Coexec(RunOpts),
    /// Collaborative LLM scenario.
    Collab(RunOpts),
}

/// Options shared by the run subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// GPU benchmark (e.g. `G4`), if any.
    pub gpu: Option<GpuBenchmark>,
    /// PIM benchmark (e.g. `P1`), if any.
    pub pim: Option<PimBenchmark>,
    /// SMs for a standalone GPU kernel.
    pub sms: usize,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// DRAM backend (substrate), resolved through the backend registry.
    pub dram: DramBackendKind,
    /// Interconnect configuration.
    pub vc: VcMode,
    /// Workload scale.
    pub scale: f64,
    /// GPU-cycle budget.
    pub budget: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            gpu: None,
            pim: None,
            sms: 80,
            policy: PolicyKind::f3fs_competitive(),
            dram: DramBackendKind::default(),
            vc: VcMode::Shared,
            scale: 0.2,
            budget: 4_000_000,
        }
    }
}

/// Error produced while parsing arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError(pub String);

impl std::fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseCliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseCliError> {
    Err(ParseCliError(msg.into()))
}

/// Parses a benchmark label like `G4` or `g12`.
pub fn parse_gpu(s: &str) -> Result<GpuBenchmark, ParseCliError> {
    let upper = s.to_ascii_uppercase();
    let n: u8 = upper
        .strip_prefix('G')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseCliError(format!("invalid GPU benchmark: {s} (expected G1..G20)")))?;
    if (1..=20).contains(&n) {
        Ok(GpuBenchmark(n))
    } else {
        err(format!("GPU benchmark out of range: {s}"))
    }
}

/// Parses a benchmark label like `P1`.
pub fn parse_pim(s: &str) -> Result<PimBenchmark, ParseCliError> {
    let upper = s.to_ascii_uppercase();
    let n: u8 = upper
        .strip_prefix('P')
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| ParseCliError(format!("invalid PIM benchmark: {s} (expected P1..P9)")))?;
    if (1..=9).contains(&n) {
        Ok(PimBenchmark(n))
    } else {
        err(format!("PIM benchmark out of range: {s}"))
    }
}

/// Parses a policy spec — a registered name, optionally followed by
/// `:key=value,...` parameters — by delegating to the policy registry
/// ([`PolicyKind::parse_spec`]). `--mem-cap`/`--pim-cap` flags are
/// applied on top later via [`PolicyKind::apply_param`].
pub fn parse_policy(s: &str) -> Result<PolicyKind, ParseCliError> {
    PolicyKind::parse_spec(s).map_err(|e| ParseCliError(e.0))
}

/// Parses a DRAM backend spec — a registered name, optionally followed by
/// `:key=value,...` parameters — by delegating to the backend registry
/// ([`pimsim_dram::backend::parse_spec`]).
pub fn parse_dram(s: &str) -> Result<DramBackendKind, ParseCliError> {
    pimsim_dram::backend::parse_spec(s).map_err(|e| ParseCliError(e.0))
}

/// Parses the full argument list (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ParseCliError> {
    let Some((sub, rest)) = args.split_first() else {
        return err(USAGE);
    };
    match sub.as_str() {
        "list" => Ok(Command::List),
        "standalone" | "coexec" | "collab" => {
            let mut opts = RunOpts::default();
            let mut mem_cap: Option<u64> = None;
            let mut pim_cap: Option<u64> = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, ParseCliError> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseCliError(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--gpu" => opts.gpu = Some(parse_gpu(&value("--gpu")?)?),
                    "--pim" => opts.pim = Some(parse_pim(&value("--pim")?)?),
                    "--sms" => {
                        opts.sms = value("--sms")?
                            .parse()
                            .map_err(|_| ParseCliError("--sms needs an integer".into()))?
                    }
                    "--policy" => opts.policy = parse_policy(&value("--policy")?)?,
                    "--dram" => opts.dram = parse_dram(&value("--dram")?)?,
                    "--vc" => {
                        opts.vc = match value("--vc")?.as_str() {
                            "1" | "vc1" | "VC1" => VcMode::Shared,
                            "2" | "vc2" | "VC2" => VcMode::SplitPim,
                            other => return err(format!("--vc must be 1 or 2, got {other}")),
                        }
                    }
                    "--scale" => {
                        opts.scale = value("--scale")?
                            .parse()
                            .map_err(|_| ParseCliError("--scale needs a number".into()))?
                    }
                    "--budget" => {
                        opts.budget = value("--budget")?
                            .parse()
                            .map_err(|_| ParseCliError("--budget needs an integer".into()))?
                    }
                    "--mem-cap" => {
                        mem_cap = Some(
                            value("--mem-cap")?
                                .parse()
                                .map_err(|_| ParseCliError("--mem-cap needs an integer".into()))?,
                        )
                    }
                    "--pim-cap" => {
                        pim_cap = Some(
                            value("--pim-cap")?
                                .parse()
                                .map_err(|_| ParseCliError("--pim-cap needs an integer".into()))?,
                        )
                    }
                    other => return err(format!("unknown flag: {other}")),
                }
            }
            if opts.scale <= 0.0 {
                return err("--scale must be positive");
            }
            for (key, value) in [("mem-cap", mem_cap), ("pim-cap", pim_cap)] {
                if let Some(v) = value {
                    opts.policy = opts
                        .policy
                        .apply_param(key, v)
                        .map_err(|e| ParseCliError(format!("--{key}: {e}")))?;
                }
            }
            match sub.as_str() {
                "standalone" => {
                    if opts.gpu.is_some() == opts.pim.is_some() {
                        return err("standalone needs exactly one of --gpu or --pim");
                    }
                    Ok(Command::Standalone(opts))
                }
                "coexec" => {
                    if opts.gpu.is_none() || opts.pim.is_none() {
                        return err("coexec needs both --gpu and --pim");
                    }
                    Ok(Command::Coexec(opts))
                }
                _ => Ok(Command::Collab(opts)),
            }
        }
        other => err(format!("unknown subcommand: {other}\n{USAGE}")),
    }
}

/// Usage text.
pub const USAGE: &str = "usage:
  pimsim list
  pimsim standalone (--gpu G<n> [--sms N] | --pim P<n>) [common flags]
  pimsim coexec --gpu G<n> --pim P<n> [common flags]
  pimsim collab [common flags]
common flags:
  --policy <name[:key=value,...]>   (`pimsim list` prints every name)
  --dram <name[:key=value,...]>     (DRAM backend, e.g. hbm, lp5x:ranks=4)
  --mem-cap N --pim-cap N           (f3fs variants only)
  --vc <1|2>  --scale F  --budget N";

fn system_for(opts: &RunOpts) -> SystemConfig {
    let mut system = SystemConfig::default();
    pimsim_dram::backend::configure(opts.dram, &mut system);
    system.noc.vc_mode = opts.vc;
    system
}

fn print_mc_stats(mc: &pimsim_core::McStats) {
    println!("memory controller:");
    println!(
        "  served: {} MEM / {} PIM; switches: {} ({} MEM->PIM)",
        mc.mem_served, mc.pim_served, mc.switches, mc.switches_mem_to_pim
    );
    if let Some(r) = mc.mem_rbhr() {
        println!("  MEM row-buffer hit rate: {:.1}%", r * 100.0);
    }
    if let Some(r) = mc.pim_rbhr() {
        println!("  PIM row-buffer hit rate: {:.1}%", r * 100.0);
    }
    if let Some(b) = mc.avg_blp() {
        println!("  avg bank-level parallelism: {b:.1}");
    }
    for (label, h) in [("MEM", &mc.mem_latency), ("PIM", &mc.pim_latency)] {
        if h.count() > 0 {
            println!(
                "  {label} latency (DRAM cycles): mean {:.0}, p50 {}, p99 {}, max {}",
                h.mean().unwrap_or(0.0),
                h.quantile(0.5).unwrap_or(0),
                h.quantile(0.99).unwrap_or(0),
                h.max()
            );
        }
    }
}

/// Executes a parsed command. Returns a process exit code.
pub fn run(cmd: Command) -> i32 {
    match cmd {
        Command::List => {
            println!("GPU benchmarks (Table II):");
            for b in GpuBenchmark::all() {
                println!("  {b}");
            }
            println!("PIM benchmarks (Table III):");
            for b in PimBenchmark::all() {
                println!("  {b}");
            }
            println!("policies (--policy <name[:key=value,...]>):");
            for d in pimsim_core::policy::registry::descriptors() {
                println!("  {:<20} {}", d.name, d.summary);
                if !d.aliases.is_empty() {
                    println!("  {:<20}   aliases: {}", "", d.aliases.join(", "));
                }
                for p in d.params {
                    println!("  {:<20}   {}: {}", "", p.key, p.help);
                }
            }
            println!("DRAM backends (--dram <name[:key=value,...]>):");
            for d in pimsim_dram::backend::descriptors() {
                println!("  {:<20} {}", d.name, d.summary);
                if !d.aliases.is_empty() {
                    println!("  {:<20}   aliases: {}", "", d.aliases.join(", "));
                }
                for p in d.params {
                    println!("  {:<20}   {}: {}", "", p.key, p.help);
                }
            }
            0
        }
        Command::Standalone(opts) => {
            let system = system_for(&opts);
            let outstanding = system.gpu.max_outstanding_pim_per_warp as u32;
            let channels = system.dram.channels;
            let warps = system.gpu.pim_warps_per_sm;
            let mut runner = Runner::new(system, opts.policy);
            runner.max_gpu_cycles = opts.budget;
            let result = if let Some(g) = opts.gpu {
                println!("standalone {g} on {} SMs (scale {})", opts.sms, opts.scale);
                runner.standalone(Box::new(gpu_kernel(g, opts.sms, opts.scale)), 0, false)
            } else {
                let p = opts.pim.expect("validated");
                println!(
                    "standalone {p} on {} SMs (scale {})",
                    channels / warps,
                    opts.scale
                );
                runner.standalone(
                    Box::new(pim_kernel(p, channels, warps, outstanding, opts.scale)),
                    0,
                    true,
                )
            };
            match result {
                Ok(out) => {
                    println!(
                        "execution time: {} GPU cycles; icnt rate {:.1}/kcyc, DRAM rate {:.1}/kcyc",
                        out.cycles,
                        out.icnt_rate(),
                        out.dram_rate()
                    );
                    print_mc_stats(&out.mc);
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Command::Coexec(opts) => {
            let g = opts.gpu.expect("validated");
            let p = opts.pim.expect("validated");
            let system = system_for(&opts);
            let outstanding = system.gpu.max_outstanding_pim_per_warp as u32;
            let channels = system.dram.channels;
            let warps = system.gpu.pim_warps_per_sm;
            println!(
                "coexec {g} (72 SMs) + {p} (8 SMs), {} under {} (scale {})",
                opts.vc, opts.policy, opts.scale
            );
            // Standalone baselines for the metrics.
            let solo = Runner::new(system_for(&opts), PolicyKind::FrFcfs);
            let ga = match solo.standalone(Box::new(gpu_kernel(g, 80, opts.scale)), 0, false) {
                Ok(o) => o.cycles,
                Err(e) => {
                    eprintln!("error: GPU baseline: {e}");
                    return 1;
                }
            };
            let pa = match solo.standalone(
                Box::new(pim_kernel(p, channels, warps, outstanding, opts.scale)),
                0,
                true,
            ) {
                Ok(o) => o.cycles,
                Err(e) => {
                    eprintln!("error: PIM baseline: {e}");
                    return 1;
                }
            };
            let mut runner = Runner::new(system, opts.policy);
            runner.max_gpu_cycles = opts.budget;
            let out = runner.coexec(
                Box::new(gpu_kernel(g, 72, opts.scale)),
                Box::new(pim_kernel(p, channels, warps, outstanding, opts.scale)),
                true,
            );
            let m = out.metrics(ga, pa);
            println!(
                "first runs: GPU {} cycles{}, PIM {} cycles{}",
                out.gpu_first_run,
                if out.gpu_starved { " (STARVED)" } else { "" },
                out.pim_first_run,
                if out.pim_starved { " (STARVED)" } else { "" },
            );
            println!(
                "speedups: MEM {:.3}, PIM {:.3}; fairness index {:.3}, system throughput {:.3}",
                m.mem_speedup,
                m.pim_speedup,
                m.fairness_index(),
                m.system_throughput()
            );
            print_mc_stats(&out.mc);
            0
        }
        Command::Collab(opts) => {
            let system = system_for(&opts);
            let outstanding = system.gpu.max_outstanding_pim_per_warp as u32;
            println!(
                "collaborative LLM (QKV + MHA), {} under {} (scale {})",
                opts.vc, opts.policy, opts.scale
            );
            let solo = Runner::new(system_for(&opts), PolicyKind::FrFcfs);
            let s = llm_scenario(72, 32, 4, outstanding, opts.scale);
            let qa = match solo.standalone(Box::new(s.qkv), 8, false) {
                Ok(o) => o.cycles,
                Err(e) => {
                    eprintln!("error: QKV baseline: {e}");
                    return 1;
                }
            };
            let s = llm_scenario(72, 32, 4, outstanding, opts.scale);
            let ma = match solo.standalone(Box::new(s.mha), 0, true) {
                Ok(o) => o.cycles,
                Err(e) => {
                    eprintln!("error: MHA baseline: {e}");
                    return 1;
                }
            };
            let mut runner = Runner::new(system, opts.policy);
            runner.max_gpu_cycles = opts.budget;
            let s = llm_scenario(72, 32, 4, outstanding, opts.scale);
            match runner.collaborative(Box::new(s.qkv), Box::new(s.mha)) {
                Ok(out) => {
                    println!(
                        "QKV alone {qa}, MHA alone {ma}, concurrent {} cycles",
                        out.concurrent_cycles
                    );
                    println!(
                        "speedup vs sequential: {:.3} (ideal {:.3})",
                        out.speedup(qa, ma),
                        pimsim_sim::CollabOutcome::ideal_speedup(qa, ma)
                    );
                    print_mc_stats(&out.mc);
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_list() {
        assert_eq!(parse_args(&args("list")).unwrap(), Command::List);
    }

    #[test]
    fn parses_standalone_gpu() {
        let cmd = parse_args(&args("standalone --gpu G4 --sms 40 --scale 0.5")).unwrap();
        let Command::Standalone(o) = cmd else {
            panic!("wrong subcommand")
        };
        assert_eq!(o.gpu, Some(GpuBenchmark(4)));
        assert_eq!(o.sms, 40);
        assert_eq!(o.scale, 0.5);
    }

    #[test]
    fn parses_coexec_with_caps() {
        let cmd = parse_args(&args(
            "coexec --gpu g11 --pim p4 --policy f3fs --mem-cap 64 --pim-cap 16 --vc 2",
        ))
        .unwrap();
        let Command::Coexec(o) = cmd else {
            panic!("wrong subcommand")
        };
        assert_eq!(
            o.policy,
            PolicyKind::F3fs {
                mem_cap: 64,
                pim_cap: 16
            }
        );
        assert_eq!(o.vc, VcMode::SplitPim);
    }

    #[test]
    fn rejects_caps_on_non_f3fs() {
        let e =
            parse_args(&args("coexec --gpu G1 --pim P1 --policy fcfs --mem-cap 8")).unwrap_err();
        assert!(e.0.contains("no tunable parameter"), "{e}");
    }

    #[test]
    fn parses_policy_spec_with_parameters() {
        let cmd = parse_args(&args("collab --policy bliss:threshold=8")).unwrap();
        let Command::Collab(o) = cmd else {
            panic!("wrong subcommand")
        };
        assert_eq!(
            o.policy,
            PolicyKind::Bliss {
                threshold: 8,
                clear_interval: 10_000
            }
        );
    }

    #[test]
    fn rejects_standalone_with_both_kernels() {
        assert!(parse_args(&args("standalone --gpu G1 --pim P1")).is_err());
        assert!(parse_args(&args("standalone")).is_err());
    }

    #[test]
    fn rejects_coexec_missing_kernel() {
        assert!(parse_args(&args("coexec --gpu G1")).is_err());
    }

    #[test]
    fn parses_every_registered_policy_name() {
        for d in pimsim_core::policy::registry::descriptors() {
            let kind = parse_policy(d.name).unwrap_or_else(|e| panic!("{}: {e}", d.name));
            assert_eq!(kind, d.default_kind());
            for alias in d.aliases {
                assert_eq!(parse_policy(alias).unwrap(), kind, "alias {alias}");
            }
        }
        assert!(parse_policy("nonsense").is_err());
    }

    #[test]
    fn rejects_bad_benchmarks() {
        assert!(parse_gpu("G21").is_err());
        assert!(parse_gpu("X2").is_err());
        assert!(parse_pim("P0").is_err());
        assert!(parse_pim("P10").is_err());
        assert!(parse_gpu("g20").is_ok());
        assert!(parse_pim("p9").is_ok());
    }

    #[test]
    fn parses_dram_backend_spec() {
        let cmd = parse_args(&args("standalone --pim P1 --dram lp5x:ranks=2")).unwrap();
        let Command::Standalone(o) = cmd else {
            panic!("wrong subcommand")
        };
        assert_eq!(o.dram, DramBackendKind::Lp5x { ranks: 2 });
        let system = system_for(&o);
        assert_eq!(system.dram.channels, 16);
        assert_eq!(system.dram_backend, o.dram);
    }

    #[test]
    fn parses_every_registered_backend_name() {
        for d in pimsim_dram::backend::descriptors() {
            let kind = parse_dram(d.name).unwrap_or_else(|e| panic!("{}: {e}", d.name));
            assert_eq!(kind, d.default_kind());
            for alias in d.aliases {
                assert_eq!(parse_dram(alias).unwrap(), kind, "alias {alias}");
            }
        }
        assert!(parse_dram("ddr9").is_err());
    }

    #[test]
    fn rejects_bad_backend_params() {
        let e = parse_args(&args("standalone --pim P1 --dram lp5x:ranks=banana")).unwrap_err();
        assert!(e.0.contains("unsigned"), "{e}");
        let e = parse_args(&args("standalone --pim P1 --dram hbm:ranks=4")).unwrap_err();
        assert!(e.0.contains("no tunable parameter"), "{e}");
    }

    #[test]
    fn rejects_unknown_flags_and_subcommands() {
        assert!(parse_args(&args("coexec --gpu G1 --pim P1 --frobnicate 3")).is_err());
        assert!(parse_args(&args("dance")).is_err());
        assert!(parse_args(&[]).is_err());
    }
}
