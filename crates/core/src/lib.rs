//! PIM-aware memory controller — the primary contribution of the
//! reproduced paper.
//!
//! A [`MemoryController`] owns one channel's MEM and PIM queues (Figure 1),
//! a cycle-level DRAM channel, and a pluggable [`policy::SchedulePolicy`]
//! that decides when to switch between MEM and PIM servicing modes. All
//! nine policies from the paper's evaluation are provided, including the
//! proposed **F3FS** (current-mode-first FR-FCFS with per-mode bypass
//! CAPs, Section VII).
//!
//! # Example
//!
//! ```
//! use pimsim_core::{MemoryController, policy::PolicyKind};
//! use pimsim_dram::AddressMapper;
//! use pimsim_types::{
//!     AppId, PhysAddr, Request, RequestId, RequestKind, SystemConfig,
//! };
//!
//! let cfg = SystemConfig::default();
//! let mapper = AddressMapper::new(&cfg.addr_map, &cfg.dram, cfg.dram_word_bytes());
//! let mut mc = MemoryController::new(&cfg, PolicyKind::F3fs { mem_cap: 256, pim_cap: 256 }.build());
//!
//! let req = Request::new(RequestId(0), AppId::GPU, RequestKind::MemRead, PhysAddr(0x1000), 0, 0);
//! mc.enqueue(req, mapper.decode(req.addr), 0);
//! let mut done = Vec::new();
//! for cycle in 0..200 {
//!     mc.step(cycle);
//!     mc.pop_completions_into(cycle, &mut done);
//! }
//! assert_eq!(done.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complexity;
pub mod controller;
pub mod policy;
pub mod queue;

pub use controller::{Completion, McStats, MemoryController, StepMix};
pub use policy::{PolicyKind, SchedulePolicy};
pub use queue::{McQueues, QueuedRequest};

#[cfg(test)]
mod tests {
    use super::policy::PolicyKind;
    use super::*;
    use pimsim_dram::AddressMapper;
    use pimsim_types::{
        AppId, Mode, PhysAddr, PimCommand, PimOpKind, Request, RequestId, RequestKind, SystemConfig,
    };

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    fn mapper(c: &SystemConfig) -> AddressMapper {
        AddressMapper::new(&c.addr_map, &c.dram, c.dram_word_bytes())
    }

    fn mem_read(id: u64, addr: u64) -> Request {
        Request::new(
            RequestId(id),
            AppId::GPU,
            RequestKind::MemRead,
            PhysAddr(addr),
            0,
            0,
        )
    }

    fn pim_op(
        id: u64,
        op: PimOpKind,
        row: u32,
        col: u16,
        block_start: bool,
        block_id: u64,
    ) -> Request {
        let cmd = PimCommand {
            op,
            channel: 0,
            row,
            col,
            rf_entry: 0,
            block_start,
            block_id,
        };
        Request::new(
            RequestId(id),
            AppId::PIM,
            RequestKind::Pim(cmd),
            PhysAddr(0),
            0,
            0,
        )
    }

    fn run_until_idle(mc: &mut MemoryController, limit: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in 0..limit {
            mc.step(now);
            mc.pop_completions_into(now, &mut done);
            if mc.is_idle(now) {
                return done;
            }
        }
        panic!("controller did not go idle within {limit} cycles");
    }

    #[test]
    fn services_a_single_mem_read() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::FrFcfs.build());
        let r = mem_read(0, 0x4000);
        mc.enqueue(r, m.decode(r.addr), 0);
        let done = run_until_idle(&mut mc, 500);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].req.id, RequestId(0));
        // ACT(tRCD=12) + RD(tCL=12+burst 1) = 25 at the earliest.
        assert!(done[0].at >= 25, "completion too early: {}", done[0].at);
        assert_eq!(mc.stats().mem_served, 1);
        assert_eq!(mc.stats().mem_row_misses, 1);
        assert_eq!(mc.stats().mem_row_hits, 0);
    }

    #[test]
    fn row_hits_are_detected() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::FrFcfs.build());
        // Two reads to the same row (consecutive words within a channel,
        // same bank): decode both and assert same bank/row, different col.
        let a0 = 0x0u64;
        let a1 = 0x20u64; // next 32 B word, same row per Table I mapping
        let (d0, d1) = (m.decode(PhysAddr(a0)), m.decode(PhysAddr(a1)));
        assert_eq!((d0.bank, d0.row), (d1.bank, d1.row));
        mc.enqueue(mem_read(0, a0), d0, 0);
        mc.enqueue(mem_read(1, a1), d1, 0);
        let done = run_until_idle(&mut mc, 500);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().mem_row_hits, 1);
        assert_eq!(mc.stats().mem_row_misses, 1);
    }

    #[test]
    fn executes_a_pim_block() {
        let c = cfg();
        let mut mc = MemoryController::new(&c, PolicyKind::FrFcfs.build());
        // A block of 4 ops to row 7: load, compute, compute, store.
        mc.enqueue(
            pim_op(0, PimOpKind::RfLoad, 7, 0, true, 0),
            Default::default(),
            0,
        );
        for (i, op) in [
            PimOpKind::RfCompute,
            PimOpKind::RfCompute,
            PimOpKind::RfStore,
        ]
        .into_iter()
        .enumerate()
        {
            mc.enqueue(
                pim_op(1 + i as u64, op, 7, 1 + i as u32 as u16, false, 0),
                Default::default(),
                0,
            );
        }
        let done = run_until_idle(&mut mc, 500);
        assert_eq!(done.len(), 4);
        let s = mc.stats();
        assert_eq!(s.pim_served, 4);
        assert_eq!(s.pim_row_misses, 1, "block start opens the row");
        assert_eq!(s.pim_row_hits, 3);
    }

    #[test]
    fn mode_switch_drains_and_counts() {
        let c = cfg();
        let m = mapper(&c);
        // FCFS: strict arrival order MEM, PIM, MEM forces two switches.
        let mut mc = MemoryController::new(&c, PolicyKind::Fcfs.build());
        let r0 = mem_read(0, 0x0);
        mc.enqueue(r0, m.decode(r0.addr), 0);
        mc.enqueue(
            pim_op(1, PimOpKind::RfLoad, 9, 0, true, 0),
            Default::default(),
            0,
        );
        let r2 = mem_read(2, 0x20);
        mc.enqueue(r2, m.decode(r2.addr), 0);
        let done = run_until_idle(&mut mc, 2000);
        assert_eq!(done.len(), 3);
        let s = mc.stats();
        assert!(s.switches >= 2, "expected >=2 switches, got {}", s.switches);
        assert!(s.switches_mem_to_pim >= 1);
        // The MEM->PIM switch closed row 0's row; request 2 re-opens it.
        assert!(s.switch_conflicts >= 1, "switch conflict not attributed");
    }

    #[test]
    fn mem_first_starves_pim_until_mem_done() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::MemFirst.build());
        mc.enqueue(
            pim_op(0, PimOpKind::RfLoad, 3, 0, true, 0),
            Default::default(),
            0,
        );
        for i in 0..8u64 {
            let r = mem_read(1 + i, i * 0x20);
            mc.enqueue(r, m.decode(r.addr), 0);
        }
        let done = run_until_idle(&mut mc, 2000);
        // The PIM op (oldest!) must complete last under MEM-First.
        assert_eq!(done.last().expect("nonempty").req.app, AppId::PIM);
        assert_eq!(done.len(), 9);
    }

    #[test]
    fn f3fs_caps_bypasses_and_switches() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(
            &c,
            PolicyKind::F3fs {
                mem_cap: 2,
                pim_cap: 2,
            }
            .build(),
        );
        // Older PIM request, then a stream of MEM row hits that would run
        // forever under plain FR-FCFS.
        mc.enqueue(
            pim_op(0, PimOpKind::RfLoad, 3, 0, true, 0),
            Default::default(),
            0,
        );
        for i in 0..6u64 {
            let r = mem_read(1 + i, i * 0x20);
            mc.enqueue(r, m.decode(r.addr), 0);
        }
        let done = run_until_idle(&mut mc, 4000);
        assert_eq!(done.len(), 7);
        // The PIM request must complete before all MEM requests do: the
        // CAP of 2 forces a switch after two bypassing MEM issues.
        let pim_pos = done
            .iter()
            .position(|d| d.req.app == AppId::PIM)
            .expect("PIM completed");
        assert!(
            pim_pos < done.len() - 1,
            "F3FS cap must prevent PIM starvation (pos {pim_pos})"
        );
        assert!(mc.stats().switches >= 1);
    }

    #[test]
    fn blp_accounting_sees_parallel_banks() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::FrFcfs.build());
        // Requests to many distinct banks: bank bits are at pattern bits
        // 13..16 and 19 of the word address (Table I) -> stride of
        // 1 << (5 + 13) bytes flips bank bits with same channel.
        for i in 0..8u64 {
            let addr = i << (5 + 13);
            let r = mem_read(i, addr);
            let d = m.decode(r.addr);
            assert_eq!(d.channel, 0);
            mc.enqueue(r, d, 0);
        }
        let _ = run_until_idle(&mut mc, 4000);
        let blp = mc.stats().avg_blp().expect("some activity");
        assert!(blp > 1.05, "expected bank parallelism, got {blp}");
    }

    #[test]
    fn gather_issue_waits_for_high_watermark() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::GatherIssue { high: 8, low: 2 }.build());
        // Seven PIM ops (below high=8) plus one MEM request: MEM mode holds.
        for i in 0..7u64 {
            mc.enqueue(
                pim_op(i, PimOpKind::RfLoad, 3 + i as u32, 0, true, i),
                Default::default(),
                0,
            );
        }
        let r = mem_read(100, 0x0);
        mc.enqueue(r, m.decode(r.addr), 0);
        for now in 0..10 {
            mc.step(now);
        }
        assert_eq!(mc.mode(), Mode::Mem, "PIM below the high watermark");
        // The eighth PIM request crosses the watermark.
        mc.enqueue(
            pim_op(7, PimOpKind::RfLoad, 10, 0, true, 7),
            Default::default(),
            10,
        );
        let mut switched = false;
        let mut drained = Vec::new();
        for now in 10..400 {
            mc.step(now);
            mc.pop_completions_into(now, &mut drained);
            if mc.mode() == Mode::Pim {
                switched = true;
                break;
            }
        }
        assert!(switched, "G&I must gather to the watermark then switch");
    }

    #[test]
    fn bliss_blacklists_the_streaking_app_end_to_end() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(
            &c,
            PolicyKind::Bliss {
                threshold: 2,
                clear_interval: 1_000_000,
            }
            .build(),
        );
        // A long GPU streak, then one PIM op; BLISS must deprioritize the
        // streaking GPU app so the PIM op completes before the MEM tail.
        for i in 0..32u64 {
            let r = mem_read(i, i * 0x20);
            mc.enqueue(r, m.decode(r.addr), 0);
        }
        mc.enqueue(
            pim_op(99, PimOpKind::RfLoad, 5, 0, true, 0),
            Default::default(),
            0,
        );
        let mut done = Vec::new();
        for now in 0..5_000 {
            mc.step(now);
            mc.pop_completions_into(now, &mut done);
            if mc.is_idle(now) {
                break;
            }
        }
        assert_eq!(done.len(), 33);
        let pim_pos = done
            .iter()
            .position(|d| d.req.app == AppId::PIM)
            .expect("pim completed");
        assert!(
            pim_pos < done.len() - 4,
            "blacklisting must let the PIM op through before the MEM tail (pos {pim_pos})"
        );
    }

    #[test]
    fn drain_latency_is_positive_when_mem_is_in_flight() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::Fcfs.build());
        // Oldest is MEM, then a PIM op: FCFS serves MEM then must drain
        // before switching to PIM.
        let r = mem_read(0, 0x0);
        mc.enqueue(r, m.decode(r.addr), 0);
        mc.enqueue(
            pim_op(1, PimOpKind::RfLoad, 9, 0, true, 0),
            Default::default(),
            0,
        );
        let mut drained = Vec::new();
        for now in 0..400 {
            mc.step(now);
            mc.pop_completions_into(now, &mut drained);
        }
        let s = mc.stats();
        assert_eq!(s.switches_mem_to_pim, 1);
        assert!(
            s.mem_drain_latency_sum > 0,
            "the in-flight MEM read must have forced a drain"
        );
        assert!(s.cycles_draining > 0);
    }

    #[test]
    fn switch_conflicts_not_counted_for_unrelated_rows() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::Fcfs.build());
        // MEM to row A, then PIM (closes rows), then MEM to a *different*
        // row on the same bank: the reopen is NOT a switch conflict.
        let a = mem_read(0, 0x0);
        mc.enqueue(a, m.decode(a.addr), 0);
        mc.enqueue(
            pim_op(1, PimOpKind::RfLoad, 9, 0, true, 0),
            Default::default(),
            0,
        );
        // Same bank as 0x0 but a different row: flip a row bit (bit 20+5).
        let b = mem_read(2, 1 << 25);
        let da = m.decode(PhysAddr(0x0));
        let db = m.decode(PhysAddr(1 << 25));
        assert_eq!(da.bank, db.bank);
        assert_ne!(da.row, db.row);
        mc.enqueue(b, db, 0);
        let mut drained = Vec::new();
        for now in 0..800 {
            mc.step(now);
            mc.pop_completions_into(now, &mut drained);
            if mc.is_idle(now) {
                break;
            }
        }
        assert_eq!(
            mc.stats().switch_conflicts,
            0,
            "different row, no conflict charge"
        );
    }

    #[test]
    fn latency_histograms_match_service_counts() {
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::FrFcfs.build());
        for i in 0..6u64 {
            let r = mem_read(i, i * 0x20);
            mc.enqueue(r, m.decode(r.addr), 0);
        }
        for i in 0..4u64 {
            mc.enqueue(
                pim_op(10 + i, PimOpKind::RfLoad, 3, i as u16, i == 0, 0),
                Default::default(),
                0,
            );
        }
        let _ = run_until_idle(&mut mc, 2_000);
        let s = mc.stats();
        assert_eq!(s.mem_latency.count(), s.mem_served);
        assert_eq!(s.pim_latency.count(), s.pim_served);
        assert!(
            s.mem_latency.quantile(0.5).unwrap() >= 13,
            "at least tCL+burst"
        );
    }

    #[test]
    fn refresh_config_steals_service_time() {
        let mut c = cfg();
        c.timing.t_refi = 80;
        c.timing.t_rfc = 40;
        let m = mapper(&c);
        let run = |c: &SystemConfig| {
            let mut mc = MemoryController::new(c, PolicyKind::FrFcfs.build());
            for i in 0..64u64 {
                let r = mem_read(i, i * 0x20);
                mc.enqueue(r, m.decode(r.addr), 0);
            }
            let done = run_until_idle(&mut mc, 20_000);
            done.iter().map(|d| d.at).max().unwrap()
        };
        let with_refresh = run(&c);
        let baseline = run(&cfg());
        assert!(
            with_refresh > baseline,
            "refresh ({with_refresh}) must slow the stream vs baseline ({baseline})"
        );
    }

    #[test]
    fn fr_fcfs_bank_stall_holds_hits_once_conflicted() {
        // With an older PIM request waiting and a MEM stream that has both
        // hits and conflicts, FR-FCFS's conflict bits must eventually stall
        // every bank and switch — even though hits keep arriving.
        let c = cfg();
        let m = mapper(&c);
        let mut mc = MemoryController::new(&c, PolicyKind::FrFcfs.build());
        mc.enqueue(
            pim_op(0, PimOpKind::RfLoad, 7, 0, true, 0),
            Default::default(),
            0,
        );
        // Conflicting MEM pairs on one bank (same bank, different rows).
        for i in 0..8u64 {
            let addr = (i % 2) * (1 << 25) + i * 0x20;
            let r = mem_read(1 + i, addr);
            mc.enqueue(r, m.decode(r.addr), 0);
        }
        let done = run_until_idle(&mut mc, 4_000);
        assert_eq!(done.len(), 9);
        assert!(
            mc.stats().switches >= 1,
            "conflict bits must force the switch"
        );
    }

    #[test]
    fn closed_page_policy_kills_row_hits() {
        let mut c = cfg();
        c.mc.page_policy = pimsim_types::PagePolicy::Closed;
        let m = mapper(&c);
        let run = |c: &SystemConfig| {
            let mut mc = MemoryController::new(c, PolicyKind::FrFcfs.build());
            // A same-row burst that is all hits under open-page.
            for i in 0..8u64 {
                let r = mem_read(i, i * 0x20);
                mc.enqueue(r, m.decode(r.addr), 0);
            }
            let _ = run_until_idle(&mut mc, 4_000);
            (mc.stats().mem_row_hits, mc.stats().mem_row_misses)
        };
        let (open_hits, _) = run(&cfg());
        let (closed_hits, closed_misses) = run(&c);
        assert!(
            open_hits >= 6,
            "open-page burst must mostly hit ({open_hits})"
        );
        assert_eq!(closed_hits + closed_misses, 8);
        assert!(
            closed_hits <= 1,
            "closed-page must auto-precharge between accesses ({closed_hits} hits)"
        );
    }

    #[test]
    fn controller_starts_in_mem_mode() {
        let c = cfg();
        let mc = MemoryController::new(&c, PolicyKind::FrFcfs.build());
        assert_eq!(mc.mode(), Mode::Mem);
        assert_eq!(mc.policy_name(), "FR-FCFS");
    }
}
