//! The eight baseline scheduling policies of Section III-D.
//!
//! None of these (except G&I) were designed for PIM; each is given the
//! mode-switching behavior the paper describes for it.

use pimsim_types::{AppId, Cycle, Mode};

use super::{PolicyView, SchedulePolicy};
use crate::queue::QueuedRequest;

/// Work-conserving fallback: stay in `mode` unless its queue is empty and
/// the other queue is not.
fn work_conserving(view: &PolicyView<'_>, mode: Mode) -> Mode {
    if view.queue_len(mode) == 0 && view.queue_len(mode.other()) > 0 {
        mode.other()
    } else {
        mode
    }
}

/// Whether a queued PIM op starts a new block (the per-op analogue of
/// [`PolicyView::pim_head_is_block_start`], for walking the queue in the
/// `stable_pim_run` bounds).
fn block_start(q: &QueuedRequest) -> bool {
    q.req.kind.pim().is_some_and(|c| c.block_start)
}

/// First-come first-served across both queues: the globally-oldest request
/// defines the mode, and MEM requests are served strictly by age (no
/// first-ready reordering).
#[derive(Debug, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        Fcfs
    }
}

impl SchedulePolicy for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        view.oldest_mode().unwrap_or(view.mode)
    }

    fn mem_class(&self, _q: &QueuedRequest, _is_row_hit: bool, _view: &PolicyView<'_>) -> u32 {
        0 // pure age order
    }

    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        // FCFS keeps choosing PIM while the PIM head is no younger than
        // every MEM request (ties go to PIM). The oldest MEM age cannot
        // drop while the mode stays PIM (no removals, arrivals are
        // strictly younger than everything queued), so the bound is
        // arrival-proof.
        let m = view.oldest_age(Mode::Mem);
        view.pim
            .iter()
            .take_while(|q| m.is_none_or(|a| q.age <= a))
            .count() as u64
    }
}

/// Always issues MEM requests if there are any (Cho et al., ISCA 2020).
#[derive(Debug, Default)]
pub struct MemFirst;

impl MemFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        MemFirst
    }
}

impl SchedulePolicy for MemFirst {
    fn name(&self) -> &'static str {
        "MEM-First"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        if view.queue_len(Mode::Mem) > 0 {
            Mode::Mem
        } else if view.queue_len(Mode::Pim) > 0 {
            Mode::Pim
        } else {
            view.mode
        }
    }

    // `stable_pim_run` stays at the default 0: a single MEM arrival flips
    // the desired mode, so no PIM run survives arbitrary arrivals.
}

/// Always issues PIM requests if there are any.
#[derive(Debug, Default)]
pub struct PimFirst;

impl PimFirst {
    /// Creates the policy.
    pub fn new() -> Self {
        PimFirst
    }
}

impl SchedulePolicy for PimFirst {
    fn name(&self) -> &'static str {
        "PIM-First"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        if view.queue_len(Mode::Pim) > 0 {
            Mode::Pim
        } else if view.queue_len(Mode::Mem) > 0 {
            Mode::Mem
        } else {
            view.mode
        }
    }

    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        // PIM-First stays in PIM mode while any PIM op is queued, so the
        // entire queued prefix is retirable; arrivals only extend it.
        view.pim.len() as u64
    }
}

/// The per-bank conflict-bit machinery FR-FCFS uses to switch out of MEM
/// mode (Section III-D): a bank sets its conflict bit — and *stalls* —
/// when its next request is a row-buffer conflict while the globally
/// oldest request is a PIM request; the switch happens once every bank
/// with pending MEM requests has set its bit.
#[derive(Debug, Default)]
struct ConflictBits {
    mask: u64,
}

impl ConflictBits {
    /// Updates the bits from the current view; returns `true` when all
    /// pending banks are conflicted (switch condition met).
    fn update(&mut self, view: &PolicyView<'_>) -> bool {
        if view.oldest_mode() != Some(Mode::Pim) {
            // No older PIM request waiting: conflicts don't accumulate.
            self.mask = 0;
            return false;
        }
        let (pending, hit) = view.mem_bank_masks();
        self.mask |= pending & !hit;
        pending != 0 && pending & !self.mask == 0
    }

    fn clear(&mut self) {
        self.mask = 0;
    }

    fn masked(&self, bank: usize) -> bool {
        bank < 64 && (self.mask >> bank) & 1 == 1
    }
}

/// First-ready FCFS (Rixner et al., ISCA 2000) with the paper's PIM-mode
/// switching: in MEM mode, each bank sets a sticky conflict bit (and
/// stalls) when it hits a row conflict while the oldest request is PIM;
/// the mode switches once every pending bank is conflicted. In PIM mode
/// it yields at a block boundary when the oldest request is MEM.
#[derive(Debug, Default)]
pub struct FrFcfs {
    conflicts: ConflictBits,
}

impl FrFcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        FrFcfs::default()
    }
}

impl SchedulePolicy for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        match view.mode {
            Mode::Mem => {
                if self.conflicts.update(view) {
                    Mode::Pim
                } else {
                    work_conserving(view, Mode::Mem)
                }
            }
            Mode::Pim => {
                let oldest_is_mem = view.oldest_mode() == Some(Mode::Mem);
                if oldest_is_mem && view.pim_head_is_block_start() {
                    Mode::Mem
                } else {
                    work_conserving(view, Mode::Pim)
                }
            }
        }
    }

    fn bank_masked(&self, bank: usize) -> bool {
        self.conflicts.masked(bank)
    }

    fn on_switch_complete(&mut self, _to: Mode, _now: Cycle) {
        self.conflicts.clear();
    }

    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        // In PIM mode FR-FCFS yields only when the head starts a block
        // *and* the globally-oldest request is MEM. The oldest MEM age is
        // fixed while the mode stays PIM, and arrivals are younger than
        // every counted op, so the yield condition per op is stable.
        let m = view.oldest_age(Mode::Mem);
        view.pim
            .iter()
            .take_while(|q| !(block_start(q) && m.is_some_and(|a| a < q.age)))
            .count() as u64
    }
}

/// FR-FCFS-Cap (Mutlu & Moscibroda, MICRO 2007): FR-FCFS, but at most
/// `cap` requests may bypass the globally-oldest request before age order
/// takes over (restoring starvation freedom).
#[derive(Debug)]
pub struct FrFcfsCap {
    cap: u32,
    bypassed: u32,
    conflicts: ConflictBits,
}

impl FrFcfsCap {
    /// Creates the policy with the given bypass cap (paper: 32).
    pub fn new(cap: u32) -> Self {
        FrFcfsCap {
            cap,
            bypassed: 0,
            conflicts: ConflictBits::default(),
        }
    }

    fn cap_reached(&self) -> bool {
        self.bypassed >= self.cap
    }
}

impl SchedulePolicy for FrFcfsCap {
    fn name(&self) -> &'static str {
        "FR-FCFS-Cap"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        let oldest = view.oldest_mode();
        if self.cap_reached() {
            // Serve the oldest request next, switching if needed.
            return oldest.unwrap_or(view.mode);
        }
        match view.mode {
            Mode::Mem => {
                if self.conflicts.update(view) {
                    Mode::Pim
                } else {
                    work_conserving(view, Mode::Mem)
                }
            }
            Mode::Pim => {
                let oldest_is_mem = oldest == Some(Mode::Mem);
                if oldest_is_mem && view.pim_head_is_block_start() {
                    Mode::Mem
                } else {
                    work_conserving(view, Mode::Pim)
                }
            }
        }
    }

    fn bank_masked(&self, bank: usize) -> bool {
        // The cap overrides stalls: once reached, the oldest request must
        // be able to issue.
        !self.cap_reached() && self.conflicts.masked(bank)
    }

    fn mem_class(&self, _q: &QueuedRequest, is_row_hit: bool, _view: &PolicyView<'_>) -> u32 {
        if self.cap_reached() {
            0 // age order until the oldest is served
        } else {
            u32::from(!is_row_hit)
        }
    }

    fn on_mem_issued(&mut self, q: &QueuedRequest, bypassed_older_pim: bool, _now: Cycle) {
        // Serving anything younger than the globally-oldest counts toward
        // the cap; serving the oldest resets it.
        let _ = q;
        if bypassed_older_pim {
            self.bypassed += 1;
        } else {
            self.bypassed = 0;
        }
    }

    fn on_pim_issued(&mut self, _q: &QueuedRequest, bypassed_older_mem: bool, _now: Cycle) {
        if bypassed_older_mem {
            self.bypassed += 1;
        } else {
            self.bypassed = 0;
        }
    }

    fn on_switch_complete(&mut self, _to: Mode, _now: Cycle) {
        self.bypassed = 0;
        self.conflicts.clear();
    }

    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        // Replays the cap arithmetic the per-cycle oracle would perform:
        // each counted op updates the bypass counter exactly as
        // `on_pim_issued` will when it retires. Once the cap is reached
        // the policy serves the globally-oldest request, so the run ends
        // at the first capped bypass; below the cap it ends at FR-FCFS's
        // block-boundary yield.
        let m = view.oldest_age(Mode::Mem);
        let mut counter = self.bypassed;
        let mut n = 0u64;
        for q in view.pim {
            let bypasses = m.is_some_and(|a| a < q.age);
            let keeps_pim = if counter >= self.cap {
                // Oldest-first: PIM retains the tie.
                !bypasses
            } else {
                !(bypasses && block_start(q))
            };
            if !keeps_pim {
                break;
            }
            n += 1;
            counter = if bypasses { counter + 1 } else { 0 };
        }
        n
    }
}

/// BLISS (Subramanian et al., TPDS 2016): applications that issue more
/// than `threshold` requests consecutively are blacklisted; priority is
/// then (non-blacklisted, row hit, oldest). The blacklist clears every
/// `clear_interval` DRAM cycles.
#[derive(Debug)]
pub struct Bliss {
    threshold: u32,
    clear_interval: u64,
    blacklisted: Vec<bool>,
    streak_app: Option<AppId>,
    streak: u32,
    last_clear: Cycle,
}

impl Bliss {
    /// Creates the policy (paper: threshold 4).
    pub fn new(threshold: u32, clear_interval: u64) -> Self {
        Bliss {
            threshold,
            clear_interval,
            blacklisted: vec![false; 256],
            streak_app: None,
            streak: 0,
            last_clear: 0,
        }
    }

    fn note_served(&mut self, app: AppId) {
        if self.streak_app == Some(app) {
            self.streak += 1;
        } else {
            self.streak_app = Some(app);
            self.streak = 1;
        }
        if self.streak > self.threshold {
            self.blacklisted[app.index()] = true;
        }
    }

    fn maybe_clear(&mut self, now: Cycle) {
        if now.saturating_sub(self.last_clear) >= self.clear_interval {
            self.blacklisted.iter_mut().for_each(|b| *b = false);
            self.last_clear = now;
        }
    }

    /// Whether `app` is currently blacklisted.
    pub fn is_blacklisted(&self, app: AppId) -> bool {
        self.blacklisted[app.index()]
    }
}

impl SchedulePolicy for Bliss {
    fn name(&self) -> &'static str {
        "BLISS"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        self.maybe_clear(view.now);
        // Best MEM candidate: (blacklisted, !hit, age); best PIM candidate:
        // (blacklisted, !continuation, age). Lower tuple wins.
        let best_mem = view
            .mem
            .iter()
            .map(|q| {
                let hit = view
                    .open_rows
                    .get(q.decoded.bank as usize)
                    .copied()
                    .flatten()
                    == Some(q.decoded.row);
                (
                    u8::from(self.is_blacklisted(q.req.app)),
                    u8::from(!hit),
                    q.age,
                )
            })
            .min();
        let best_pim = view.pim.front().map(|q| {
            (
                u8::from(self.is_blacklisted(q.req.app)),
                u8::from(view.pim_head_is_block_start()),
                q.age,
            )
        });
        match (best_mem, best_pim) {
            (None, None) => view.mode,
            (Some(_), None) => Mode::Mem,
            (None, Some(_)) => Mode::Pim,
            (Some(m), Some(p)) => {
                if m <= p {
                    Mode::Mem
                } else {
                    Mode::Pim
                }
            }
        }
    }

    fn mem_class(&self, q: &QueuedRequest, is_row_hit: bool, _view: &PolicyView<'_>) -> u32 {
        u32::from(self.is_blacklisted(q.req.app)) * 2 + u32::from(!is_row_hit)
    }

    fn on_mem_issued(&mut self, q: &QueuedRequest, _bypassed_older_pim: bool, _now: Cycle) {
        self.note_served(q.req.app);
    }

    fn on_pim_issued(&mut self, q: &QueuedRequest, _bypassed_older_mem: bool, _now: Cycle) {
        self.note_served(q.req.app);
    }

    fn decision_stable_until(&self, now: Cycle) -> Cycle {
        // The blacklist clears at the first stepped cycle past the
        // interval; decisions may flip there, so the stall memo must hand
        // control back for a full step at that boundary.
        let _ = now;
        self.last_clear.saturating_add(self.clear_interval)
    }

    // `stable_pim_run` stays at the default 0: the blacklist both clears
    // with time and grows with every served request, so per-op decisions
    // inside a run are not arrival-proof.
}

/// FR-RR-FCFS (Jog et al., GPGPU-7): row hit first, next mode in
/// round-robin order on a row-buffer conflict, oldest first within the
/// current mode. Unlike FR-FCFS, the switch does not wait for the other
/// mode's request to become the oldest.
///
/// "Oldest first within the current mode" (priority 3) means every mode
/// visit services at least its oldest request — opening its row if needed
/// — before a conflict can rotate the mode again. Without that guarantee
/// the policy would bounce straight back after every switch (a fresh mode
/// starts with no row hits because the drain left the other mode's rows
/// open).
#[derive(Debug, Default)]
pub struct FrRrFcfs {
    served_since_switch: bool,
}

impl FrRrFcfs {
    /// Creates the policy.
    pub fn new() -> Self {
        FrRrFcfs::default()
    }
}

impl SchedulePolicy for FrRrFcfs {
    fn name(&self) -> &'static str {
        "FR-RR-FCFS"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        match view.mode {
            Mode::Mem => {
                if view.queue_len(Mode::Mem) > 0
                    && (view.mem_has_row_hit() || !self.served_since_switch)
                {
                    Mode::Mem
                } else if view.queue_len(Mode::Pim) > 0 {
                    Mode::Pim
                } else {
                    work_conserving(view, Mode::Mem)
                }
            }
            Mode::Pim => {
                if view.queue_len(Mode::Pim) > 0
                    && (!view.pim_head_is_block_start() || !self.served_since_switch)
                {
                    Mode::Pim
                } else if view.queue_len(Mode::Mem) > 0 {
                    Mode::Mem
                } else {
                    work_conserving(view, Mode::Pim)
                }
            }
        }
    }

    fn on_mem_issued(&mut self, _q: &QueuedRequest, _bypassed: bool, _now: Cycle) {
        self.served_since_switch = true;
    }

    fn on_pim_issued(&mut self, _q: &QueuedRequest, _bypassed: bool, _now: Cycle) {
        self.served_since_switch = true;
    }

    fn on_switch_complete(&mut self, _to: Mode, _now: Cycle) {
        self.served_since_switch = false;
    }

    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        // The head op is already sanctioned by this cycle's
        // `desired_mode`; its issue sets `served_since_switch`, after
        // which the visit lasts exactly until the next block boundary —
        // regardless of what arrives in the MEM queue (mid-block ops keep
        // PIM unconditionally).
        if view.pim.is_empty() {
            return 0;
        }
        1 + view
            .pim
            .iter()
            .skip(1)
            .take_while(|q| !block_start(q))
            .count() as u64
    }
}

/// Gather & Issue (Lee et al., ICCE-Asia 2021): switch to PIM when the PIM
/// queue reaches the `high` watermark, drain until it falls to `low`.
#[derive(Debug)]
pub struct GatherIssue {
    high: usize,
    low: usize,
}

impl GatherIssue {
    /// Creates the policy (paper: high 56, low 32).
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn new(high: usize, low: usize) -> Self {
        assert!(low < high, "G&I watermarks require low < high");
        GatherIssue { high, low }
    }
}

impl SchedulePolicy for GatherIssue {
    fn name(&self) -> &'static str {
        "G&I"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        let pim_len = view.queue_len(Mode::Pim);
        match view.mode {
            Mode::Mem => {
                if pim_len >= self.high {
                    Mode::Pim
                } else {
                    work_conserving(view, Mode::Mem)
                }
            }
            Mode::Pim => {
                if pim_len <= self.low && view.queue_len(Mode::Mem) > 0 {
                    Mode::Mem
                } else {
                    work_conserving(view, Mode::Pim)
                }
            }
        }
    }

    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        // The drain continues while the PIM queue sits above the low
        // watermark. A MEM arrival can end the visit the moment occupancy
        // reaches `low`, so the arrival-proof run is the drain down to the
        // watermark (PIM arrivals only lengthen it; they are not counted).
        (view.pim.len() as u64).saturating_sub(self.low as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_types::{
        DecodedAddr, PhysAddr, PimCommand, PimOpKind, Request, RequestId, RequestKind,
    };
    use std::collections::VecDeque;

    fn mem_q(age: u64, bank: u16, row: u32) -> QueuedRequest {
        QueuedRequest {
            req: Request::new(
                RequestId(age),
                AppId::GPU,
                RequestKind::MemRead,
                PhysAddr(0),
                0,
                0,
            ),
            decoded: DecodedAddr {
                channel: 0,
                bank,
                row,
                col: 0,
            },
            age,
            arrived: 0,
            opened_row: false,
        }
    }

    fn pim_q(age: u64, block_start: bool) -> QueuedRequest {
        let cmd = PimCommand {
            op: PimOpKind::RfLoad,
            channel: 0,
            row: 5,
            col: 0,
            rf_entry: 0,
            block_start,
            block_id: 0,
        };
        QueuedRequest {
            req: Request::new(
                RequestId(age),
                AppId::PIM,
                RequestKind::Pim(cmd),
                PhysAddr(0),
                0,
                0,
            ),
            decoded: DecodedAddr::default(),
            age,
            arrived: 0,
            opened_row: false,
        }
    }

    struct Fixture {
        mem: Vec<QueuedRequest>,
        pim: VecDeque<QueuedRequest>,
        open_rows: Vec<Option<u32>>,
        mode: Mode,
        now: Cycle,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                mem: Vec::new(),
                pim: VecDeque::new(),
                open_rows: vec![None; 16],
                mode: Mode::Mem,
                now: 0,
            }
        }

        fn view(&self) -> PolicyView<'_> {
            PolicyView {
                now: self.now,
                mode: self.mode,
                mem: &self.mem,
                pim: &self.pim,
                open_rows: &self.open_rows,
            }
        }
    }

    #[test]
    fn fcfs_follows_global_age() {
        let mut f = Fixture::new();
        f.pim.push_back(pim_q(0, true));
        f.mem.push(mem_q(1, 0, 0));
        let mut p = Fcfs::new();
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
        f.pim.clear();
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn mem_first_starves_pim_while_mem_pending() {
        let mut f = Fixture::new();
        f.pim.push_back(pim_q(0, true));
        f.mem.push(mem_q(1, 0, 0));
        f.mode = Mode::Pim;
        let mut p = MemFirst::new();
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
        f.mem.clear();
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
    }

    #[test]
    fn pim_first_mirrors_mem_first() {
        let mut f = Fixture::new();
        f.pim.push_back(pim_q(5, true));
        f.mem.push(mem_q(0, 0, 0));
        let mut p = PimFirst::new();
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
    }

    #[test]
    fn fr_fcfs_stays_on_row_hits_even_when_pim_is_older() {
        let mut f = Fixture::new();
        f.pim.push_back(pim_q(0, true));
        f.mem.push(mem_q(1, 2, 7));
        f.open_rows[2] = Some(7); // row hit available
        let mut p = FrFcfs::new();
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
        // Hit disappears -> conflict with an older PIM request -> switch.
        f.open_rows[2] = Some(9);
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
    }

    #[test]
    fn fr_fcfs_does_not_switch_when_mem_is_oldest() {
        let mut f = Fixture::new();
        f.mem.push(mem_q(0, 2, 7)); // oldest is MEM
        f.pim.push_back(pim_q(1, true));
        f.open_rows[2] = Some(9); // conflict
        let mut p = FrFcfs::new();
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn fr_fcfs_pim_mode_yields_only_at_block_boundary() {
        let mut f = Fixture::new();
        f.mode = Mode::Pim;
        f.mem.push(mem_q(0, 0, 0)); // older MEM waiting
        f.pim.push_back(pim_q(1, false)); // mid-block
        let mut p = FrFcfs::new();
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
        f.pim[0] = pim_q(1, true); // block boundary
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn fr_fcfs_cap_forces_oldest_after_cap() {
        let mut f = Fixture::new();
        f.pim.push_back(pim_q(0, false)); // oldest overall is PIM
        f.mem.push(mem_q(1, 2, 7));
        f.open_rows[2] = Some(7); // MEM row hits keep flowing
        let mut p = FrFcfsCap::new(2);
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
        // Two bypassing MEM issues reach the cap.
        p.on_mem_issued(&f.mem[0], true, 0);
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
        p.on_mem_issued(&f.mem[0], true, 1);
        assert_eq!(
            p.desired_mode(&f.view()),
            Mode::Pim,
            "cap reached: serve oldest"
        );
        // And MEM selection degrades to pure age order.
        assert_eq!(p.mem_class(&f.mem[0], true, &f.view()), 0);
        // Serving the oldest resets the counter.
        p.on_pim_issued(&f.pim[0], false, 2);
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn bliss_blacklists_streaking_app() {
        let mut f = Fixture::new();
        f.mem.push(mem_q(10, 0, 1));
        f.pim.push_back(pim_q(11, false));
        let mut p = Bliss::new(2, 1_000_000);
        for _ in 0..3 {
            p.on_mem_issued(&f.mem[0], false, 0);
        }
        assert!(p.is_blacklisted(AppId::GPU));
        assert!(!p.is_blacklisted(AppId::PIM));
        // Blacklisted MEM loses to PIM despite being older.
        f.mem[0].age = 0;
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
        assert!(p.mem_class(&f.mem[0], true, &f.view()) >= 2);
    }

    #[test]
    fn bliss_clears_blacklist_after_interval() {
        let mut f = Fixture::new();
        f.mem.push(mem_q(0, 0, 1));
        let mut p = Bliss::new(1, 100);
        p.on_mem_issued(&f.mem[0], false, 0);
        p.on_mem_issued(&f.mem[0], false, 1);
        assert!(p.is_blacklisted(AppId::GPU));
        f.now = 150;
        let _ = p.desired_mode(&f.view());
        assert!(!p.is_blacklisted(AppId::GPU));
    }

    #[test]
    fn fr_rr_switches_on_conflict_regardless_of_age() {
        let mut f = Fixture::new();
        // MEM is oldest but has no row hit; PIM pending -> switch anyway,
        // once this mode visit has serviced at least one request.
        f.mem.push(mem_q(0, 2, 7));
        f.pim.push_back(pim_q(1, true));
        f.open_rows[2] = Some(9);
        let mut p = FrRrFcfs::new();
        assert_eq!(
            p.desired_mode(&f.view()),
            Mode::Mem,
            "oldest-first guarantees one service per visit"
        );
        p.on_mem_issued(&f.mem[0], false, 0);
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
        // With a hit, stay (even after having served).
        f.open_rows[2] = Some(7);
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn fr_rr_pim_visit_finishes_its_block() {
        let mut f = Fixture::new();
        f.mode = Mode::Pim;
        f.mem.push(mem_q(0, 2, 7));
        f.pim.push_back(pim_q(1, true)); // block boundary at the head
        let mut p = FrRrFcfs::new();
        // Fresh visit: serve the boundary op rather than bounce back.
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
        p.on_pim_issued(&f.pim[0], false, 0);
        // Next boundary rotates to MEM.
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn gather_issue_watermarks() {
        let mut f = Fixture::new();
        f.mem.push(mem_q(0, 0, 0));
        let mut p = GatherIssue::new(4, 2);
        for i in 0..3 {
            f.pim.push_back(pim_q(1 + i, false));
        }
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem, "below high watermark");
        f.pim.push_back(pim_q(9, false));
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim, "high watermark hit");
        f.mode = Mode::Pim;
        f.pim.pop_front();
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim, "still above low");
        f.pim.pop_front();
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem, "drained to low");
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn gather_issue_rejects_bad_watermarks() {
        let _ = GatherIssue::new(2, 4);
    }

    #[test]
    fn empty_queues_stay_in_current_mode() {
        let f = Fixture::new();
        for kind in super::super::PolicyKind::all() {
            let mut p = kind.build();
            assert_eq!(
                p.desired_mode(&f.view()),
                Mode::Mem,
                "{} must not switch with empty queues",
                p.name()
            );
        }
    }
}
