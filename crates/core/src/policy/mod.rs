//! Memory-controller scheduling policies (Section III-D and VII).
//!
//! A policy decides two things each DRAM cycle:
//!
//! 1. the **desired servicing mode** (MEM or PIM) — returning the other
//!    mode makes the controller drain in-flight requests and switch;
//! 2. the **priority class** of each MEM request — the controller serves
//!    the legal request with the lowest `(class, age)`. PIM requests are
//!    always serviced FCFS for correctness, in every policy.
//!
//! All policies except FCFS use FR-FCFS (row hits first) inside MEM mode,
//! matching the paper.

mod baselines;
mod f3fs;
pub mod registry;
mod sms;

pub use baselines::{Bliss, Fcfs, FrFcfs, FrFcfsCap, FrRrFcfs, GatherIssue, MemFirst, PimFirst};
pub use f3fs::F3fs;
pub use registry::{ParamSpec, PolicyDescriptor, PolicyParseError};
pub use sms::Sms;

use std::collections::VecDeque;

use pimsim_types::{Cycle, Mode};
use serde::{Deserialize, Serialize};

use crate::queue::QueuedRequest;

/// Read-only controller state handed to policies.
#[derive(Debug)]
pub struct PolicyView<'a> {
    /// Current DRAM cycle.
    pub now: Cycle,
    /// Current servicing mode.
    pub mode: Mode,
    /// MEM queue, in arrival order.
    pub mem: &'a [QueuedRequest],
    /// PIM queue, in service (FCFS) order.
    pub pim: &'a VecDeque<QueuedRequest>,
    /// Open row per bank (`None` = precharged).
    pub open_rows: &'a [Option<u32>],
}

impl PolicyView<'_> {
    /// Mode of the globally-oldest queued request, if any.
    pub fn oldest_mode(&self) -> Option<Mode> {
        let m = self.mem.iter().map(|q| q.age).min();
        let p = self.pim.front().map(|q| q.age);
        match (m, p) {
            (None, None) => None,
            (Some(_), None) => Some(Mode::Mem),
            (None, Some(_)) => Some(Mode::Pim),
            (Some(ma), Some(pa)) => Some(if ma < pa { Mode::Mem } else { Mode::Pim }),
        }
    }

    /// Age of the oldest request of `mode`, if any.
    pub fn oldest_age(&self, mode: Mode) -> Option<u64> {
        match mode {
            Mode::Mem => self.mem.iter().map(|q| q.age).min(),
            Mode::Pim => self.pim.front().map(|q| q.age),
        }
    }

    /// Whether any queued MEM request would be a row-buffer hit right now.
    pub fn mem_has_row_hit(&self) -> bool {
        self.mem.iter().any(|q| {
            self.open_rows
                .get(q.decoded.bank as usize)
                .copied()
                .flatten()
                == Some(q.decoded.row)
        })
    }

    /// Whether the PIM queue head starts a new block (the PIM analogue of
    /// a row-buffer conflict: it needs a precharge + activate).
    pub fn pim_head_is_block_start(&self) -> bool {
        self.pim
            .front()
            .and_then(|q| q.req.kind.pim())
            .is_some_and(|c| c.block_start)
    }

    /// Bitmasks over banks (bit b = bank b, up to 64 banks): banks with
    /// pending MEM requests, and banks where some pending MEM request is a
    /// row hit right now.
    pub fn mem_bank_masks(&self) -> (u64, u64) {
        let mut pending = 0u64;
        let mut hit = 0u64;
        for q in self.mem {
            let b = q.decoded.bank as usize;
            debug_assert!(b < 64, "bank mask supports up to 64 banks");
            pending |= 1 << b;
            if self.open_rows.get(b).copied().flatten() == Some(q.decoded.row) {
                hit |= 1 << b;
            }
        }
        (pending, hit)
    }

    /// Number of queued requests of `mode`.
    pub fn queue_len(&self, mode: Mode) -> usize {
        match mode {
            Mode::Mem => self.mem.len(),
            Mode::Pim => self.pim.len(),
        }
    }
}

/// A mode-switching and MEM-prioritization policy.
///
/// Implementations are notified of issued requests and completed switches
/// so they can maintain counters (caps, blacklists). The controller calls
/// [`SchedulePolicy::desired_mode`] once per DRAM cycle; implementations
/// must not mutate observable decision state inside it in a way that
/// depends on being called exactly once.
pub trait SchedulePolicy: std::fmt::Debug + Send {
    /// Short name, e.g. `"F3FS"`.
    fn name(&self) -> &'static str;

    /// The servicing mode the policy wants. Returning the non-current mode
    /// triggers a drain-and-switch.
    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode;

    /// Priority class of a MEM request (lower wins; ties broken by age).
    /// `is_row_hit` is whether serving it now would hit the row buffer.
    ///
    /// The default is FR-FCFS: hits before non-hits.
    fn mem_class(&self, q: &QueuedRequest, is_row_hit: bool, view: &PolicyView<'_>) -> u32 {
        let _ = (q, view);
        u32::from(!is_row_hit)
    }

    /// Whether `bank` is stalled by the policy. FR-FCFS's mode-switch
    /// logic stalls a bank once it records a row-buffer conflict while the
    /// oldest request belongs to the other mode (Section III-D); the
    /// controller then issues nothing for that bank until the switch.
    fn bank_masked(&self, bank: usize) -> bool {
        let _ = bank;
        false
    }

    /// Called when a MEM request's column command issues.
    /// `bypassed_older_pim` is whether an older PIM request was waiting.
    fn on_mem_issued(&mut self, q: &QueuedRequest, bypassed_older_pim: bool, now: Cycle) {
        let _ = (q, bypassed_older_pim, now);
    }

    /// Called when a PIM request's column operation issues.
    /// `bypassed_older_mem` is whether an older MEM request was waiting.
    fn on_pim_issued(&mut self, q: &QueuedRequest, bypassed_older_mem: bool, now: Cycle) {
        let _ = (q, bypassed_older_mem, now);
    }

    /// Called when a mode switch completes (after the drain).
    fn on_switch_complete(&mut self, to: Mode, now: Cycle) {
        let _ = (to, now);
    }

    /// The last cycle through which this policy's decisions
    /// ([`SchedulePolicy::desired_mode`], [`SchedulePolicy::mem_class`],
    /// [`SchedulePolicy::bank_masked`]) are guaranteed unchanged, provided
    /// the [`PolicyView`] stays constant and none of the `on_*` hooks fire
    /// in between. The controller's stall memo skips the per-cycle
    /// `desired_mode` calls inside this window, so implementations whose
    /// repeated calls have side effects must bound it:
    ///
    /// * a purely view-driven policy (the default) returns `Cycle::MAX`;
    /// * a time-driven policy returns its next self-scheduled transition
    ///   (BLISS: the next blacklist-clear boundary);
    /// * a policy whose `desired_mode` is not idempotent under a constant
    ///   view (SMS advances its RNG per call) returns `now`, disabling the
    ///   skip entirely.
    fn decision_stable_until(&self, now: Cycle) -> Cycle {
        let _ = now;
        Cycle::MAX
    }

    /// How many leading PIM-queue operations the controller may retire
    /// back-to-back — one per `max(tCCDl, 1)` DRAM cycles, FCFS, without
    /// re-consulting [`SchedulePolicy::desired_mode`] — under the burst
    /// plan (DESIGN.md §4h). The controller consults this only on a cycle
    /// where `desired_mode` has already chosen PIM and the head op is
    /// legal to issue, so the count may assume the head op issues at the
    /// consulting cycle.
    ///
    /// This is a stronger promise than
    /// [`SchedulePolicy::decision_stable_until`]: the guarantee must hold
    /// **unconditionally**, for any requests that arrive in either queue
    /// while the run is in flight. The controller may therefore keep the
    /// plan alive across enqueues, which is what makes saturated bursts
    /// (an arrival every issue) retirable in closed form at all. What the
    /// implementation can rely on:
    ///
    /// * no MEM request is removed while the mode stays PIM, and every
    ///   arrival in either queue gets a larger age than anything queued —
    ///   so an age comparison that holds against the current oldest MEM
    ///   request keeps holding;
    /// * [`SchedulePolicy::on_pim_issued`] fires for each retired op, at
    ///   its analytic issue cycle, exactly as in per-cycle stepping;
    /// * the counted ops target one open row (the controller intersects
    ///   this bound with the same-row prefix and the refresh horizon).
    ///
    /// A policy whose PIM-mode decision can flip on an arrival (MEM-First)
    /// or with time alone (BLISS's clear boundary, SMS's per-call RNG)
    /// must return 0 — the default — which opts out of burst retirement
    /// entirely and falls back to per-cycle stepping.
    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        let _ = view;
        0
    }
}

/// Policy selection plus tuning parameters; buildable into a boxed policy.
///
/// # Example
///
/// ```
/// use pimsim_core::policy::PolicyKind;
///
/// let policy = PolicyKind::F3fs { mem_cap: 256, pim_cap: 256 }.build();
/// assert_eq!(policy.name(), "F3FS");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First-come first-served across both queues.
    Fcfs,
    /// Always service MEM requests when any exist.
    MemFirst,
    /// Always service PIM requests when any exist.
    PimFirst,
    /// First-ready FCFS (Rixner et al.): row hits first; switches when the
    /// oldest request is from the other mode and no row hit remains.
    FrFcfs,
    /// FR-FCFS with a cap on row hits bypassing the oldest request.
    FrFcfsCap {
        /// Maximum bypasses before oldest-first takes over (paper: 32).
        cap: u32,
    },
    /// Blacklisting memory scheduler (Subramanian et al.).
    Bliss {
        /// Consecutive requests from one application before blacklisting
        /// (paper: 4).
        threshold: u32,
        /// Blacklist clearing interval in DRAM cycles.
        clear_interval: u64,
    },
    /// First-ready round-robin FCFS (Jog et al.): cycles modes on row
    /// conflicts.
    FrRrFcfs,
    /// Gather & Issue (Lee et al.): watermark-driven PIM draining.
    GatherIssue {
        /// PIM-queue occupancy that triggers a switch to PIM (paper: 56).
        high: usize,
        /// Occupancy at which draining stops (paper: 32).
        low: usize,
    },
    /// First Mode-FR-FCFS — this paper's proposal: current mode first, row
    /// hit second, oldest third, with per-mode bypass CAPs.
    F3fs {
        /// CAP on MEM requests bypassing an older PIM request.
        mem_cap: u32,
        /// CAP on PIM requests bypassing an older MEM request.
        pim_cap: u32,
    },
    /// SMS-lite (Ausavarungnirun et al., ISCA 2012): batch-granularity
    /// scheduling with a probabilistic SJF/round-robin batch scheduler.
    /// The paper's related work argues SMS is unsuitable for host/PIM
    /// co-scheduling (batches cannot be serviced in parallel); this
    /// extension makes the claim testable (`sms_study` bench).
    Sms {
        /// Maximum requests per batch.
        batch_cap: u32,
        /// Probability (percent) of the shortest-job-first choice.
        sjf_percent: u32,
    },
    /// Ablation variant of F3FS (Figure 14a): the CAP counts requests in
    /// the current mode, but without the "current mode first" stage.
    F3fsNoModeFirst {
        /// CAP on MEM requests bypassing an older PIM request.
        mem_cap: u32,
        /// CAP on PIM requests bypassing an older MEM request.
        pim_cap: u32,
    },
}

impl PolicyKind {
    /// Builds the policy instance.
    pub fn build(self) -> Box<dyn SchedulePolicy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs::new()),
            PolicyKind::MemFirst => Box::new(MemFirst::new()),
            PolicyKind::PimFirst => Box::new(PimFirst::new()),
            PolicyKind::FrFcfs => Box::new(FrFcfs::new()),
            PolicyKind::FrFcfsCap { cap } => Box::new(FrFcfsCap::new(cap)),
            PolicyKind::Bliss {
                threshold,
                clear_interval,
            } => Box::new(Bliss::new(threshold, clear_interval)),
            PolicyKind::FrRrFcfs => Box::new(FrRrFcfs::new()),
            PolicyKind::GatherIssue { high, low } => Box::new(GatherIssue::new(high, low)),
            PolicyKind::Sms {
                batch_cap,
                sjf_percent,
            } => Box::new(Sms::new(batch_cap, sjf_percent)),
            PolicyKind::F3fs { mem_cap, pim_cap } => Box::new(F3fs::new(mem_cap, pim_cap)),
            PolicyKind::F3fsNoModeFirst { mem_cap, pim_cap } => {
                Box::new(F3fs::without_mode_first(mem_cap, pim_cap))
            }
        }
    }

    /// Paper-style display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "FCFS",
            PolicyKind::MemFirst => "MEM-First",
            PolicyKind::PimFirst => "PIM-First",
            PolicyKind::FrFcfs => "FR-FCFS",
            PolicyKind::FrFcfsCap { .. } => "FR-FCFS-Cap",
            PolicyKind::Bliss { .. } => "BLISS",
            PolicyKind::FrRrFcfs => "FR-RR-FCFS",
            PolicyKind::GatherIssue { .. } => "G&I",
            PolicyKind::Sms { .. } => "SMS",
            PolicyKind::F3fs { .. } => "F3FS",
            PolicyKind::F3fsNoModeFirst { .. } => "F3FS",
        }
    }

    /// The eight baseline policies with the paper's parameter settings.
    pub fn baselines() -> Vec<PolicyKind> {
        vec![
            PolicyKind::Fcfs,
            PolicyKind::MemFirst,
            PolicyKind::PimFirst,
            PolicyKind::FrFcfs,
            PolicyKind::FrFcfsCap { cap: 32 },
            PolicyKind::Bliss {
                threshold: 4,
                clear_interval: 10_000,
            },
            PolicyKind::FrRrFcfs,
            PolicyKind::GatherIssue { high: 56, low: 32 },
        ]
    }

    /// All nine evaluated policies: the baselines plus F3FS with the
    /// symmetric competitive CAP.
    ///
    /// The paper empirically sets its competitive CAP to 256 — a multiple
    /// of the per-bank PIM register-file size (8), chosen by a sensitivity
    /// study against full-size workloads. Our workloads are scaled down
    /// (see `DESIGN.md`), and the same sensitivity study against them
    /// lands on 32 (= 4 x RF size); the `fig14`/cap-sweep bench
    /// regenerates that study.
    pub fn all() -> Vec<PolicyKind> {
        let mut v = Self::baselines();
        v.push(Self::f3fs_competitive());
        v
    }

    /// F3FS with the symmetric competitive CAP for the scaled workloads.
    pub fn f3fs_competitive() -> PolicyKind {
        PolicyKind::F3fs {
            mem_cap: 32,
            pim_cap: 32,
        }
    }

    /// Parses a registry spec string (`"f3fs:mem-cap=64"`); see
    /// [`registry::parse_spec`].
    pub fn parse_spec(spec: &str) -> Result<PolicyKind, PolicyParseError> {
        registry::parse_spec(spec)
    }

    /// The registered canonical spec name, e.g. `"fr-fcfs-cap"`; see
    /// [`registry::canonical_name`].
    pub fn canonical_name(self) -> &'static str {
        registry::canonical_name(self)
    }

    /// Returns `self` with tunable parameter `key` set to `value`; see
    /// [`registry::apply_param`].
    pub fn apply_param(self, key: &str, value: u64) -> Result<PolicyKind, PolicyParseError> {
        registry::apply_param(self, key, value)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_build_with_matching_names() {
        for kind in PolicyKind::all() {
            let p = kind.build();
            assert_eq!(p.name(), kind.label());
        }
    }

    #[test]
    fn baselines_exclude_f3fs() {
        assert_eq!(PolicyKind::baselines().len(), 8);
        assert!(PolicyKind::baselines()
            .iter()
            .all(|k| !matches!(k, PolicyKind::F3fs { .. })));
        assert_eq!(PolicyKind::all().len(), 9);
    }

    #[test]
    fn view_helpers_report_ages_and_masks() {
        use crate::queue::QueuedRequest;
        use pimsim_types::{AppId, DecodedAddr, PhysAddr, Request, RequestId, RequestKind};
        let mem: Vec<QueuedRequest> = [(5u64, 2u16, 7u32), (9, 2, 8), (3, 4, 1)]
            .into_iter()
            .map(|(age, bank, row)| QueuedRequest {
                req: Request::new(
                    RequestId(age),
                    AppId::GPU,
                    RequestKind::MemRead,
                    PhysAddr(0),
                    0,
                    0,
                ),
                decoded: DecodedAddr {
                    channel: 0,
                    bank,
                    row,
                    col: 0,
                },
                age,
                arrived: 0,
                opened_row: false,
            })
            .collect();
        let pim = std::collections::VecDeque::new();
        let mut open_rows = vec![None; 16];
        open_rows[2] = Some(7);
        let view = PolicyView {
            now: 0,
            mode: Mode::Mem,
            mem: &mem,
            pim: &pim,
            open_rows: &open_rows,
        };
        assert_eq!(view.oldest_mode(), Some(Mode::Mem));
        assert_eq!(view.oldest_age(Mode::Mem), Some(3));
        assert_eq!(view.oldest_age(Mode::Pim), None);
        assert!(view.mem_has_row_hit(), "bank 2 row 7 is open");
        assert!(!view.pim_head_is_block_start());
        let (pending, hit) = view.mem_bank_masks();
        assert_eq!(pending, (1 << 2) | (1 << 4));
        assert_eq!(hit, 1 << 2, "only the age-5 request hits");
        assert_eq!(view.queue_len(Mode::Mem), 3);
        assert_eq!(view.queue_len(Mode::Pim), 0);
    }

    #[test]
    fn oldest_mode_breaks_ties_toward_pim() {
        use crate::queue::QueuedRequest;
        use pimsim_types::{
            AppId, DecodedAddr, PhysAddr, PimCommand, PimOpKind, Request, RequestId, RequestKind,
        };
        // Equal ages cannot occur in practice (the MC assigns unique ages)
        // but the comparator must still be total: the tie goes to PIM.
        let mem = vec![QueuedRequest {
            req: Request::new(
                RequestId(0),
                AppId::GPU,
                RequestKind::MemRead,
                PhysAddr(0),
                0,
                0,
            ),
            decoded: DecodedAddr::default(),
            age: 4,
            arrived: 0,
            opened_row: false,
        }];
        let mut pim = std::collections::VecDeque::new();
        pim.push_back(QueuedRequest {
            req: Request::new(
                RequestId(1),
                AppId::PIM,
                RequestKind::Pim(PimCommand {
                    op: PimOpKind::RfLoad,
                    channel: 0,
                    row: 0,
                    col: 0,
                    rf_entry: 0,
                    block_start: true,
                    block_id: 0,
                }),
                PhysAddr(0),
                0,
                0,
            ),
            decoded: DecodedAddr::default(),
            age: 4,
            arrived: 0,
            opened_row: false,
        });
        let open_rows = vec![None; 16];
        let view = PolicyView {
            now: 0,
            mode: Mode::Mem,
            mem: &mem,
            pim: &pim,
            open_rows: &open_rows,
        };
        assert_eq!(view.oldest_mode(), Some(Mode::Pim));
    }

    #[test]
    fn labels_match_paper_names() {
        assert_eq!(PolicyKind::FrRrFcfs.label(), "FR-RR-FCFS");
        assert_eq!(PolicyKind::GatherIssue { high: 56, low: 32 }.label(), "G&I");
        assert_eq!(
            PolicyKind::F3fs {
                mem_cap: 1,
                pim_cap: 1
            }
            .to_string(),
            "F3FS"
        );
    }
}
