//! SMS-lite: a batch-granularity scheduler in the spirit of the Staged
//! Memory Scheduler (Ausavarungnirun et al., ISCA 2012), which the paper's
//! related-work section argues is unsuitable for host/PIM co-scheduling:
//! SMS assumes batches from different sources can be serviced in parallel
//! on different banks, but MEM and PIM batches are *mutually exclusive* —
//! a PIM batch occupies every bank.
//!
//! This implementation reproduces SMS's scheduling structure at the
//! mode-arbiter level so the claim is testable:
//!
//! * requests are serviced in **batches** of up to `batch_cap` requests
//!   from one source (MEM or PIM);
//! * when a batch completes, the next source is picked by shortest-job
//!   first (fewest queued requests) with probability `sjf_percent`/100,
//!   else round-robin — SMS's two-mode batch scheduler.

use pimsim_types::{Cycle, Mode};

use super::{PolicyView, SchedulePolicy};
use crate::queue::QueuedRequest;

/// The SMS-lite policy.
///
/// # Example
///
/// ```
/// use pimsim_core::policy::{SchedulePolicy, Sms};
///
/// let sms = Sms::new(16, 90);
/// assert_eq!(sms.name(), "SMS");
/// ```
#[derive(Debug)]
pub struct Sms {
    batch_cap: u32,
    sjf_percent: u32,
    /// Requests served in the current batch.
    in_batch: u32,
    /// Round-robin pointer for the non-SJF choice.
    rr_next: Mode,
    /// Deterministic pseudo-random state for the SJF/RR coin.
    lcg: u64,
    /// Mode the current batch belongs to (sticky until the batch ends).
    batch_mode: Option<Mode>,
}

impl Sms {
    /// Creates SMS-lite with the given batch size cap and SJF probability
    /// (percent, 0..=100).
    ///
    /// # Panics
    ///
    /// Panics if `batch_cap` is zero or `sjf_percent > 100`.
    pub fn new(batch_cap: u32, sjf_percent: u32) -> Self {
        assert!(batch_cap > 0, "SMS batch cap must be nonzero");
        assert!(sjf_percent <= 100, "sjf_percent is a percentage");
        Sms {
            batch_cap,
            sjf_percent,
            in_batch: 0,
            rr_next: Mode::Pim,
            lcg: 0x853c_49e6_748f_ea9b,
            batch_mode: None,
        }
    }

    fn coin(&mut self) -> u32 {
        // Deterministic LCG; SMS's probabilistic choice without breaking
        // run-to-run reproducibility.
        self.lcg = self
            .lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.lcg >> 33) % 100) as u32
    }

    fn pick_next_batch(&mut self, view: &PolicyView<'_>) -> Mode {
        let mem_len = view.queue_len(Mode::Mem);
        let pim_len = view.queue_len(Mode::Pim);
        if mem_len == 0 {
            return Mode::Pim;
        }
        if pim_len == 0 {
            return Mode::Mem;
        }
        if self.coin() < self.sjf_percent {
            // Shortest job first: the source with fewer queued requests.
            if mem_len <= pim_len {
                Mode::Mem
            } else {
                Mode::Pim
            }
        } else {
            let m = self.rr_next;
            self.rr_next = m.other();
            m
        }
    }
}

impl SchedulePolicy for Sms {
    fn name(&self) -> &'static str {
        "SMS"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        // Continue the current batch while it has budget and supply.
        if let Some(mode) = self.batch_mode {
            if self.in_batch < self.batch_cap && view.queue_len(mode) > 0 {
                return mode;
            }
        }
        // Batch boundary: form the next one.
        let next = self.pick_next_batch(view);
        self.batch_mode = Some(next);
        self.in_batch = 0;
        next
    }

    fn decision_stable_until(&self, now: Cycle) -> Cycle {
        // The batch scheduler's RNG advances on every call at a batch
        // boundary: `desired_mode` is not idempotent, so the controller
        // must consult it every cycle.
        now
    }

    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        // SMS opts in with the only guarantee it can make: none. Burst
        // retirement would skip the per-cycle `desired_mode` calls whose
        // RNG draws define the batch schedule, so every run is length 0
        // and PIM bursts step cycle by cycle (mirroring
        // `decision_stable_until` above).
        let _ = view;
        0
    }

    fn on_mem_issued(&mut self, _q: &QueuedRequest, _bypassed: bool, _now: Cycle) {
        if self.batch_mode == Some(Mode::Mem) {
            self.in_batch += 1;
        }
    }

    fn on_pim_issued(&mut self, _q: &QueuedRequest, _bypassed: bool, _now: Cycle) {
        if self.batch_mode == Some(Mode::Pim) {
            self.in_batch += 1;
        }
    }

    fn on_switch_complete(&mut self, to: Mode, _now: Cycle) {
        self.batch_mode = Some(to);
        self.in_batch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_types::{
        AppId, DecodedAddr, PhysAddr, PimCommand, PimOpKind, Request, RequestId, RequestKind,
    };
    use std::collections::VecDeque;

    fn mem_q(age: u64) -> QueuedRequest {
        QueuedRequest {
            req: Request::new(
                RequestId(age),
                AppId::GPU,
                RequestKind::MemRead,
                PhysAddr(0),
                0,
                0,
            ),
            decoded: DecodedAddr::default(),
            age,
            arrived: 0,
            opened_row: false,
        }
    }

    fn pim_q(age: u64) -> QueuedRequest {
        QueuedRequest {
            req: Request::new(
                RequestId(age),
                AppId::PIM,
                RequestKind::Pim(PimCommand {
                    op: PimOpKind::RfLoad,
                    channel: 0,
                    row: 0,
                    col: 0,
                    rf_entry: 0,
                    block_start: true,
                    block_id: age,
                }),
                PhysAddr(0),
                0,
                0,
            ),
            decoded: DecodedAddr::default(),
            age,
            arrived: 0,
            opened_row: false,
        }
    }

    struct Fix {
        mem: Vec<QueuedRequest>,
        pim: VecDeque<QueuedRequest>,
        open_rows: Vec<Option<u32>>,
        mode: Mode,
    }

    impl Fix {
        fn new() -> Self {
            Fix {
                mem: Vec::new(),
                pim: VecDeque::new(),
                open_rows: vec![None; 16],
                mode: Mode::Mem,
            }
        }

        fn view(&self) -> PolicyView<'_> {
            PolicyView {
                now: 0,
                mode: self.mode,
                mem: &self.mem,
                pim: &self.pim,
                open_rows: &self.open_rows,
            }
        }
    }

    #[test]
    fn batch_sticks_until_cap() {
        let mut f = Fix::new();
        for i in 0..8 {
            f.mem.push(mem_q(i));
            f.pim.push_back(pim_q(100 + i));
        }
        let mut p = Sms::new(3, 100); // always SJF; queues equal -> MEM
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
        p.on_switch_complete(Mode::Mem, 0);
        for _ in 0..2 {
            p.on_mem_issued(&f.mem[0], false, 0);
            assert_eq!(p.desired_mode(&f.view()), Mode::Mem, "batch not done");
        }
        p.on_mem_issued(&f.mem[0], false, 0);
        // Cap reached: next batch decision happens; with SJF and equal
        // queue lengths MEM wins again, but the batch counter reset.
        let next = p.desired_mode(&f.view());
        assert_eq!(next, Mode::Mem);
    }

    #[test]
    fn sjf_prefers_the_shorter_queue() {
        let mut f = Fix::new();
        f.mem.push(mem_q(0));
        for i in 0..6 {
            f.pim.push_back(pim_q(10 + i));
        }
        let mut p = Sms::new(1, 100);
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem, "MEM is the short job");
    }

    #[test]
    fn round_robin_alternates_with_zero_sjf() {
        let mut f = Fix::new();
        for i in 0..4 {
            f.mem.push(mem_q(i));
            f.pim.push_back(pim_q(100 + i));
        }
        let mut p = Sms::new(1, 0); // pure round-robin
        let mut modes = Vec::new();
        for _ in 0..4 {
            let m = p.desired_mode(&f.view());
            modes.push(m);
            p.on_switch_complete(m, 0);
            match m {
                Mode::Mem => p.on_mem_issued(&f.mem[0], false, 0),
                Mode::Pim => p.on_pim_issued(&f.pim[0], false, 0),
            }
        }
        for w in modes.windows(2) {
            assert_ne!(w[0], w[1], "round-robin must alternate: {modes:?}");
        }
    }

    #[test]
    fn empty_queue_yields_to_the_other_source() {
        let mut f = Fix::new();
        f.pim.push_back(pim_q(0));
        let mut p = Sms::new(4, 50);
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
    }

    #[test]
    fn deterministic_coin() {
        let mut a = Sms::new(4, 50);
        let mut b = Sms::new(4, 50);
        for _ in 0..100 {
            assert_eq!(a.coin(), b.coin());
        }
    }

    #[test]
    #[should_panic(expected = "batch cap must be nonzero")]
    fn zero_batch_cap_rejected() {
        let _ = Sms::new(0, 50);
    }
}
