//! Name ↔ kind ↔ builder registry for scheduling policies.
//!
//! Front-ends (the CLI, bench binaries, sweep drivers) used to each carry
//! their own `match` over [`PolicyKind`] to map user-facing names to
//! variants and to apply tuning parameters. This module centralizes that
//! mapping: every policy is registered once with its canonical name,
//! accepted aliases, default parameters, and the set of tunable keys.
//!
//! # Example
//!
//! ```
//! use pimsim_core::policy::PolicyKind;
//!
//! let kind = PolicyKind::parse_spec("f3fs:mem-cap=64,pim-cap=16").unwrap();
//! assert_eq!(
//!     kind,
//!     PolicyKind::F3fs {
//!         mem_cap: 64,
//!         pim_cap: 16
//!     }
//! );
//! assert_eq!(kind.canonical_name(), "f3fs");
//! ```

use super::PolicyKind;

/// One tunable integer parameter of a registered policy.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Parameter key as written in a spec string, e.g. `"mem-cap"`.
    pub key: &'static str,
    /// One-line description shown in help listings.
    pub help: &'static str,
}

/// A registered scheduling policy.
#[derive(Debug, Clone, Copy)]
pub struct PolicyDescriptor {
    /// Canonical spec name, e.g. `"fr-fcfs-cap"`.
    pub name: &'static str,
    /// Accepted alternative spellings (matched case-insensitively).
    pub aliases: &'static [&'static str],
    /// One-line description shown in help listings.
    pub summary: &'static str,
    /// Tunable parameters accepted after `name:` in a spec string.
    pub params: &'static [ParamSpec],
    default_kind: PolicyKind,
}

impl PolicyDescriptor {
    /// The policy's [`PolicyKind`] with its registered default parameters.
    pub fn default_kind(&self) -> PolicyKind {
        self.default_kind
    }
}

/// Error from [`parse_spec`] or [`apply_param`]: an unknown policy name,
/// unknown parameter key, or out-of-range value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError(pub String);

impl std::fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for PolicyParseError {}

static REGISTRY: &[PolicyDescriptor] = &[
    PolicyDescriptor {
        name: "fcfs",
        aliases: &[],
        summary: "first-come first-served across both queues",
        params: &[],
        default_kind: PolicyKind::Fcfs,
    },
    PolicyDescriptor {
        name: "mem-first",
        aliases: &["memfirst"],
        summary: "always service MEM requests when any exist",
        params: &[],
        default_kind: PolicyKind::MemFirst,
    },
    PolicyDescriptor {
        name: "pim-first",
        aliases: &["pimfirst"],
        summary: "always service PIM requests when any exist",
        params: &[],
        default_kind: PolicyKind::PimFirst,
    },
    PolicyDescriptor {
        name: "fr-fcfs",
        aliases: &["frfcfs"],
        summary: "first-ready FCFS: row hits first, oldest-mode switching",
        params: &[],
        default_kind: PolicyKind::FrFcfs,
    },
    PolicyDescriptor {
        name: "fr-fcfs-cap",
        aliases: &["frfcfs-cap"],
        summary: "FR-FCFS with a cap on row hits bypassing the oldest request",
        params: &[ParamSpec {
            key: "cap",
            help: "max bypasses before oldest-first takes over",
        }],
        default_kind: PolicyKind::FrFcfsCap { cap: 32 },
    },
    PolicyDescriptor {
        name: "bliss",
        aliases: &[],
        summary: "blacklisting memory scheduler (Subramanian et al.)",
        params: &[
            ParamSpec {
                key: "threshold",
                help: "consecutive requests from one application before blacklisting",
            },
            ParamSpec {
                key: "clear-interval",
                help: "blacklist clearing interval in DRAM cycles",
            },
        ],
        default_kind: PolicyKind::Bliss {
            threshold: 4,
            clear_interval: 10_000,
        },
    },
    PolicyDescriptor {
        name: "fr-rr-fcfs",
        aliases: &["frrrfcfs"],
        summary: "first-ready round-robin FCFS: cycles modes on row conflicts",
        params: &[],
        default_kind: PolicyKind::FrRrFcfs,
    },
    PolicyDescriptor {
        name: "gi",
        aliases: &["g&i", "gather-issue"],
        summary: "Gather & Issue: watermark-driven PIM draining",
        params: &[
            ParamSpec {
                key: "high",
                help: "PIM-queue occupancy that triggers a switch to PIM",
            },
            ParamSpec {
                key: "low",
                help: "occupancy at which draining stops",
            },
        ],
        default_kind: PolicyKind::GatherIssue { high: 56, low: 32 },
    },
    PolicyDescriptor {
        name: "f3fs",
        aliases: &[],
        summary: "First Mode-FR-FCFS (this paper) with per-mode bypass CAPs",
        params: &[
            ParamSpec {
                key: "mem-cap",
                help: "CAP on MEM requests bypassing an older PIM request",
            },
            ParamSpec {
                key: "pim-cap",
                help: "CAP on PIM requests bypassing an older MEM request",
            },
        ],
        default_kind: PolicyKind::F3fs {
            mem_cap: 32,
            pim_cap: 32,
        },
    },
    PolicyDescriptor {
        name: "sms",
        aliases: &[],
        summary: "SMS-lite: batch-granularity scheduling with probabilistic SJF",
        params: &[
            ParamSpec {
                key: "batch-cap",
                help: "maximum requests per batch",
            },
            ParamSpec {
                key: "sjf-percent",
                help: "probability (percent) of the shortest-job-first choice",
            },
        ],
        default_kind: PolicyKind::Sms {
            batch_cap: 32,
            sjf_percent: 90,
        },
    },
    PolicyDescriptor {
        name: "f3fs-no-mode-first",
        aliases: &["f3fs-ablate"],
        summary: "F3FS ablation: CAPs without the current-mode-first stage",
        params: &[
            ParamSpec {
                key: "mem-cap",
                help: "CAP on MEM requests bypassing an older PIM request",
            },
            ParamSpec {
                key: "pim-cap",
                help: "CAP on PIM requests bypassing an older MEM request",
            },
        ],
        default_kind: PolicyKind::F3fsNoModeFirst {
            mem_cap: 32,
            pim_cap: 32,
        },
    },
];

/// All registered policies, in presentation order.
pub fn descriptors() -> &'static [PolicyDescriptor] {
    REGISTRY
}

/// Finds a policy by canonical name or alias (case-insensitive).
pub fn lookup(name: &str) -> Option<&'static PolicyDescriptor> {
    REGISTRY.iter().find(|d| {
        d.name.eq_ignore_ascii_case(name) || d.aliases.iter().any(|a| a.eq_ignore_ascii_case(name))
    })
}

/// The registered canonical name for a kind, regardless of its parameters.
pub fn canonical_name(kind: PolicyKind) -> &'static str {
    let name = match kind {
        PolicyKind::Fcfs => "fcfs",
        PolicyKind::MemFirst => "mem-first",
        PolicyKind::PimFirst => "pim-first",
        PolicyKind::FrFcfs => "fr-fcfs",
        PolicyKind::FrFcfsCap { .. } => "fr-fcfs-cap",
        PolicyKind::Bliss { .. } => "bliss",
        PolicyKind::FrRrFcfs => "fr-rr-fcfs",
        PolicyKind::GatherIssue { .. } => "gi",
        PolicyKind::Sms { .. } => "sms",
        PolicyKind::F3fs { .. } => "f3fs",
        PolicyKind::F3fsNoModeFirst { .. } => "f3fs-no-mode-first",
    };
    debug_assert!(lookup(name).is_some(), "canonical name not registered");
    name
}

fn narrow<T: TryFrom<u64>>(name: &str, key: &str, value: u64) -> Result<T, PolicyParseError> {
    T::try_from(value)
        .map_err(|_| PolicyParseError(format!("{name}: value {value} out of range for '{key}'")))
}

/// Returns `kind` with the tunable parameter `key` set to `value`.
///
/// Fails if the policy has no such parameter or the value does not fit the
/// parameter's type.
pub fn apply_param(
    kind: PolicyKind,
    key: &str,
    value: u64,
) -> Result<PolicyKind, PolicyParseError> {
    let name = canonical_name(kind);
    let unknown = || {
        let d = lookup(name).expect("canonical name registered");
        let keys: Vec<&str> = d.params.iter().map(|p| p.key).collect();
        PolicyParseError(if keys.is_empty() {
            format!("policy '{name}' has no tunable parameters (got '{key}')")
        } else {
            format!(
                "policy '{name}' has no tunable parameter '{key}' (accepts: {})",
                keys.join(", ")
            )
        })
    };
    match (kind, key) {
        (PolicyKind::FrFcfsCap { .. }, "cap") => Ok(PolicyKind::FrFcfsCap {
            cap: narrow(name, key, value)?,
        }),
        (PolicyKind::Bliss { clear_interval, .. }, "threshold") => Ok(PolicyKind::Bliss {
            threshold: narrow(name, key, value)?,
            clear_interval,
        }),
        (PolicyKind::Bliss { threshold, .. }, "clear-interval") => Ok(PolicyKind::Bliss {
            threshold,
            clear_interval: value,
        }),
        (PolicyKind::GatherIssue { low, .. }, "high") => Ok(PolicyKind::GatherIssue {
            high: narrow(name, key, value)?,
            low,
        }),
        (PolicyKind::GatherIssue { high, .. }, "low") => Ok(PolicyKind::GatherIssue {
            high,
            low: narrow(name, key, value)?,
        }),
        (PolicyKind::Sms { sjf_percent, .. }, "batch-cap") => Ok(PolicyKind::Sms {
            batch_cap: narrow(name, key, value)?,
            sjf_percent,
        }),
        (PolicyKind::Sms { batch_cap, .. }, "sjf-percent") => Ok(PolicyKind::Sms {
            batch_cap,
            sjf_percent: narrow(name, key, value)?,
        }),
        (PolicyKind::F3fs { pim_cap, .. }, "mem-cap") => Ok(PolicyKind::F3fs {
            mem_cap: narrow(name, key, value)?,
            pim_cap,
        }),
        (PolicyKind::F3fs { mem_cap, .. }, "pim-cap") => Ok(PolicyKind::F3fs {
            mem_cap,
            pim_cap: narrow(name, key, value)?,
        }),
        (PolicyKind::F3fsNoModeFirst { pim_cap, .. }, "mem-cap") => {
            Ok(PolicyKind::F3fsNoModeFirst {
                mem_cap: narrow(name, key, value)?,
                pim_cap,
            })
        }
        (PolicyKind::F3fsNoModeFirst { mem_cap, .. }, "pim-cap") => {
            Ok(PolicyKind::F3fsNoModeFirst {
                mem_cap,
                pim_cap: narrow(name, key, value)?,
            })
        }
        _ => Err(unknown()),
    }
}

/// Parses a policy spec string: a registered name, optionally followed by
/// `:key=value` pairs separated by commas.
///
/// `"fr-fcfs"`, `"f3fs:mem-cap=64,pim-cap=16"`, `"bliss:threshold=8"`.
pub fn parse_spec(spec: &str) -> Result<PolicyKind, PolicyParseError> {
    let (name, params) = match spec.split_once(':') {
        Some((n, p)) => (n.trim(), Some(p)),
        None => (spec.trim(), None),
    };
    let desc = lookup(name).ok_or_else(|| {
        let names: Vec<&str> = REGISTRY.iter().map(|d| d.name).collect();
        PolicyParseError(format!(
            "unknown policy '{name}' (known: {})",
            names.join(", ")
        ))
    })?;
    let mut kind = desc.default_kind();
    if let Some(params) = params {
        for pair in params.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once('=').ok_or_else(|| {
                PolicyParseError(format!("{}: expected 'key=value', got '{pair}'", desc.name))
            })?;
            let value: u64 = value.trim().parse().map_err(|_| {
                PolicyParseError(format!(
                    "{}: parameter '{}' needs an unsigned integer, got '{}'",
                    desc.name,
                    key.trim(),
                    value.trim()
                ))
            })?;
            kind = apply_param(kind, key.trim(), value)?;
        }
    }
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_descriptor_round_trips_name_and_kind() {
        for d in descriptors() {
            let kind = d.default_kind();
            assert_eq!(canonical_name(kind), d.name, "name/kind mismatch");
            assert_eq!(parse_spec(d.name).unwrap(), kind, "parse({})", d.name);
            for alias in d.aliases {
                assert_eq!(parse_spec(alias).unwrap(), kind, "alias {alias}");
            }
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(lookup("FR-FCFS").unwrap().name, "fr-fcfs");
        assert_eq!(lookup("G&I").unwrap().name, "gi");
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn parse_spec_applies_parameters() {
        assert_eq!(
            parse_spec("f3fs:mem-cap=64,pim-cap=16").unwrap(),
            PolicyKind::F3fs {
                mem_cap: 64,
                pim_cap: 16
            }
        );
        assert_eq!(
            parse_spec("bliss:threshold=8").unwrap(),
            PolicyKind::Bliss {
                threshold: 8,
                clear_interval: 10_000
            }
        );
        assert_eq!(
            parse_spec("gi:high=40,low=8").unwrap(),
            PolicyKind::GatherIssue { high: 40, low: 8 }
        );
    }

    #[test]
    fn parse_spec_rejects_bad_input() {
        assert!(parse_spec("warp-speed").unwrap_err().0.contains("unknown"));
        assert!(parse_spec("fcfs:cap=3")
            .unwrap_err()
            .0
            .contains("no tunable parameter"));
        assert!(parse_spec("f3fs:mem-cap")
            .unwrap_err()
            .0
            .contains("key=value"));
        assert!(parse_spec("f3fs:mem-cap=many")
            .unwrap_err()
            .0
            .contains("unsigned"));
        assert!(parse_spec("f3fs:mem-cap=99999999999")
            .unwrap_err()
            .0
            .contains("out of range"));
    }

    #[test]
    fn apply_param_rejects_foreign_keys() {
        let e = apply_param(PolicyKind::FrFcfs, "mem-cap", 1).unwrap_err();
        assert!(e.0.contains("no tunable parameter"), "{e}");
        let e = apply_param(PolicyKind::f3fs_competitive(), "cap", 1).unwrap_err();
        assert!(e.0.contains("accepts: mem-cap, pim-cap"), "{e}");
    }
}
