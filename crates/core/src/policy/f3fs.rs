//! First Mode-FR-FCFS (F3FS) — the paper's proposed policy (Section VII).
//!
//! F3FS adds an arbitration stage in front of FR-FCFS that favors requests
//! in the **current mode**, implementing the priority order:
//!
//! 1. current mode first,
//! 2. row buffer hit first,
//! 3. oldest first.
//!
//! Favoring the current mode maximizes locality and minimizes switching.
//! To prevent starvation, F3FS caps the number of requests serviced in the
//! current mode that **bypass an older request of the other mode**, where
//! age is the incrementing ID assigned at controller entry. The CAPs are
//! per-mode and may be asymmetric: a collaborative workload can favor its
//! slower kernel (Section VII-B configures MEM/PIM = 256/128 for the LLM
//! under VC1), and system software could use asymmetry to encode process
//! priorities.

use pimsim_types::{Cycle, Mode};

use super::{PolicyView, SchedulePolicy};
use crate::queue::QueuedRequest;

/// The F3FS policy.
///
/// # Example
///
/// ```
/// use pimsim_core::policy::{F3fs, SchedulePolicy};
///
/// // Symmetric CAPs for competitive fairness (paper: 256/256).
/// let f3fs = F3fs::new(256, 256);
/// assert_eq!(f3fs.name(), "F3FS");
/// ```
#[derive(Debug)]
pub struct F3fs {
    mem_cap: u32,
    pim_cap: u32,
    /// Requests served in the current mode that bypassed an older
    /// other-mode request, since the last switch.
    bypassed: u32,
    /// When `false`, the "current mode first" stage is removed (ablation
    /// component 2 of Figure 14a): mode switching reverts to FR-FCFS's
    /// conflict-driven rule, keeping only the request-count CAP.
    mode_first: bool,
}

impl F3fs {
    /// Creates F3FS with per-mode bypass CAPs.
    ///
    /// # Panics
    ///
    /// Panics if either CAP is zero (a zero cap would force a switch before
    /// any request could be serviced).
    pub fn new(mem_cap: u32, pim_cap: u32) -> Self {
        assert!(mem_cap > 0 && pim_cap > 0, "F3FS CAPs must be nonzero");
        F3fs {
            mem_cap,
            pim_cap,
            bypassed: 0,
            mode_first: true,
        }
    }

    /// The Figure 14a ablation variant: the CAP counts requests in the
    /// current mode, but switching is FR-FCFS's conflict-driven rule
    /// instead of "current mode first".
    pub fn without_mode_first(mem_cap: u32, pim_cap: u32) -> Self {
        let mut p = Self::new(mem_cap, pim_cap);
        p.mode_first = false;
        p
    }

    /// The CAP applying to requests served in `mode`.
    pub fn cap(&self, mode: Mode) -> u32 {
        match mode {
            Mode::Mem => self.mem_cap,
            Mode::Pim => self.pim_cap,
        }
    }

    /// Current bypass count since the last switch.
    pub fn bypassed(&self) -> u32 {
        self.bypassed
    }
}

impl SchedulePolicy for F3fs {
    fn name(&self) -> &'static str {
        "F3FS"
    }

    fn desired_mode(&mut self, view: &PolicyView<'_>) -> Mode {
        let cur = view.mode;
        let other = cur.other();
        // Work conservation: an empty current queue yields immediately.
        if view.queue_len(cur) == 0 {
            return if view.queue_len(other) > 0 {
                other
            } else {
                cur
            };
        }
        // CAP exceeded while an older other-mode request waits: yield.
        if self.bypassed >= self.cap(cur) && view.queue_len(other) > 0 {
            let oldest_other = view.oldest_age(other);
            let oldest_cur = view.oldest_age(cur);
            if oldest_other < oldest_cur {
                return other;
            }
        }
        if self.mode_first {
            // Current mode first.
            return cur;
        }
        // Ablation variant: FR-FCFS's conflict-driven switching.
        let oldest_is_other = view.oldest_mode() == Some(other);
        let conflicted = match cur {
            Mode::Mem => !view.mem_has_row_hit(),
            Mode::Pim => view.pim_head_is_block_start(),
        };
        if oldest_is_other && conflicted {
            other
        } else {
            cur
        }
    }

    // Within MEM mode F3FS is plain FR-FCFS (the default mem_class).

    fn on_mem_issued(&mut self, _q: &QueuedRequest, bypassed_older_pim: bool, _now: Cycle) {
        if bypassed_older_pim {
            self.bypassed += 1;
        }
    }

    fn on_pim_issued(&mut self, _q: &QueuedRequest, bypassed_older_mem: bool, _now: Cycle) {
        if bypassed_older_mem {
            self.bypassed += 1;
        }
    }

    fn on_switch_complete(&mut self, _to: Mode, _now: Cycle) {
        self.bypassed = 0;
    }

    fn stable_pim_run(&self, view: &PolicyView<'_>) -> u64 {
        // Replays the CAP arithmetic the per-cycle schedule would perform
        // in PIM mode: each counted op bumps the bypass counter exactly
        // as `on_pim_issued` will when it retires, and the run ends where
        // the CAP yield (or, in the ablation variant, FR-FCFS's
        // block-boundary rule) would switch. The oldest MEM age is fixed
        // while the mode stays PIM and arrivals are strictly younger than
        // every counted op, so each per-op verdict is arrival-proof.
        let m = view.oldest_age(Mode::Mem);
        let cap = self.cap(Mode::Pim);
        let mut counter = self.bypassed;
        let mut n = 0u64;
        for q in view.pim {
            let bypasses = m.is_some_and(|a| a < q.age);
            if counter >= cap && bypasses {
                break;
            }
            let starts_block = q.req.kind.pim().is_some_and(|c| c.block_start);
            if !self.mode_first && bypasses && starts_block {
                break;
            }
            n += 1;
            if bypasses {
                counter += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_types::{
        AppId, DecodedAddr, PhysAddr, PimCommand, PimOpKind, Request, RequestId, RequestKind,
    };
    use std::collections::VecDeque;

    fn mem_q(age: u64) -> QueuedRequest {
        QueuedRequest {
            req: Request::new(
                RequestId(age),
                AppId::GPU,
                RequestKind::MemRead,
                PhysAddr(0),
                0,
                0,
            ),
            decoded: DecodedAddr::default(),
            age,
            arrived: 0,
            opened_row: false,
        }
    }

    fn pim_q(age: u64) -> QueuedRequest {
        let cmd = PimCommand {
            op: PimOpKind::RfLoad,
            channel: 0,
            row: 0,
            col: 0,
            rf_entry: 0,
            block_start: true,
            block_id: 0,
        };
        QueuedRequest {
            req: Request::new(
                RequestId(age),
                AppId::PIM,
                RequestKind::Pim(cmd),
                PhysAddr(0),
                0,
                0,
            ),
            decoded: DecodedAddr::default(),
            age,
            arrived: 0,
            opened_row: false,
        }
    }

    struct Fix {
        mem: Vec<QueuedRequest>,
        pim: VecDeque<QueuedRequest>,
        open_rows: Vec<Option<u32>>,
        mode: Mode,
    }

    impl Fix {
        fn new(mode: Mode) -> Self {
            Fix {
                mem: Vec::new(),
                pim: VecDeque::new(),
                open_rows: vec![None; 16],
                mode,
            }
        }

        fn view(&self) -> PolicyView<'_> {
            PolicyView {
                now: 0,
                mode: self.mode,
                mem: &self.mem,
                pim: &self.pim,
                open_rows: &self.open_rows,
            }
        }
    }

    #[test]
    fn favors_current_mode_below_cap() {
        let mut f = Fix::new(Mode::Mem);
        f.pim.push_back(pim_q(0)); // older PIM waiting
        f.mem.push(mem_q(1));
        let mut p = F3fs::new(4, 4);
        // Even with the PIM request older, MEM mode persists below the cap.
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn switches_once_cap_is_exceeded() {
        let mut f = Fix::new(Mode::Mem);
        f.pim.push_back(pim_q(0));
        f.mem.push(mem_q(1));
        let mut p = F3fs::new(2, 2);
        p.on_mem_issued(&f.mem[0], true, 0);
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem, "1 bypass < cap 2");
        p.on_mem_issued(&f.mem[0], true, 1);
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim, "cap reached");
    }

    #[test]
    fn non_bypassing_service_does_not_count() {
        let mut f = Fix::new(Mode::Mem);
        f.mem.push(mem_q(0)); // MEM is oldest: serving it bypasses nothing
        f.pim.push_back(pim_q(1));
        let mut p = F3fs::new(1, 1);
        p.on_mem_issued(&f.mem[0], false, 0);
        p.on_mem_issued(&f.mem[0], false, 1);
        assert_eq!(p.bypassed(), 0);
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn cap_only_yields_to_an_older_other_request() {
        // Cap reached, but the other queue's request is *younger*: stay.
        let mut f = Fix::new(Mode::Mem);
        f.mem.push(mem_q(0));
        f.pim.push_back(pim_q(5));
        let mut p = F3fs::new(1, 1);
        p.on_mem_issued(&f.mem[0], true, 0); // force counter to 1
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem);
    }

    #[test]
    fn switch_resets_counter() {
        let mut f = Fix::new(Mode::Pim);
        f.mem.push(mem_q(0));
        f.pim.push_back(pim_q(1));
        let mut p = F3fs::new(2, 1);
        p.on_pim_issued(&f.pim[0], true, 0);
        assert_eq!(p.desired_mode(&f.view()), Mode::Mem, "pim cap 1 reached");
        p.on_switch_complete(Mode::Mem, 5);
        assert_eq!(p.bypassed(), 0);
    }

    #[test]
    fn asymmetric_caps_apply_per_mode() {
        let p = F3fs::new(256, 128);
        assert_eq!(p.cap(Mode::Mem), 256);
        assert_eq!(p.cap(Mode::Pim), 128);
    }

    #[test]
    fn empty_current_queue_yields_immediately() {
        let mut f = Fix::new(Mode::Mem);
        f.pim.push_back(pim_q(7));
        let mut p = F3fs::new(8, 8);
        assert_eq!(p.desired_mode(&f.view()), Mode::Pim);
    }

    #[test]
    #[should_panic(expected = "CAPs must be nonzero")]
    fn zero_cap_rejected() {
        let _ = F3fs::new(0, 4);
    }
}
