//! Memory-controller request queues.
//!
//! Each channel's controller keeps two queues (Figure 1): a MEM queue for
//! regular loads/stores and a PIM queue, serviced in FCFS order for
//! correctness. Every request receives an incrementing *age* ID on entry —
//! the age ordering is what "oldest first" and F3FS's bypass CAP are
//! defined over (Section VII).

use std::collections::VecDeque;

use pimsim_types::{Cycle, DecodedAddr, Request};

/// A request inside the memory controller, annotated with its decoded DRAM
/// coordinates and its MC-assigned age.
#[derive(Debug, Clone, Copy)]
pub struct QueuedRequest {
    /// The request payload.
    pub req: Request,
    /// DRAM coordinates (for PIM requests: channel/row/col of the op; the
    /// bank field is unused because PIM executes on all banks).
    pub decoded: DecodedAddr,
    /// Incrementing ID assigned on arrival at this controller; smaller is
    /// older.
    pub age: u64,
    /// DRAM cycle of arrival at this controller.
    pub arrived: Cycle,
    /// Controller bookkeeping: an ACT has been issued on this request's
    /// behalf (its column access will not count as a row hit).
    pub opened_row: bool,
}

/// The MEM and PIM queues of one channel's controller.
#[derive(Debug, Clone)]
pub struct McQueues {
    mem: Vec<QueuedRequest>,
    pim: VecDeque<QueuedRequest>,
    mem_capacity: usize,
    pim_capacity: usize,
    next_age: u64,
    /// Queued MEM requests per bank (index = `bank % 64`), maintained on
    /// enqueue/remove so the per-cycle BLP integral never rescans the
    /// queue.
    mem_bank_counts: Vec<u16>,
    /// Bit `b` set iff `mem_bank_counts[b] > 0`.
    mem_bank_mask: u64,
}

impl McQueues {
    /// Creates empty queues with the given capacities.
    pub fn new(mem_capacity: usize, pim_capacity: usize) -> Self {
        McQueues {
            mem: Vec::with_capacity(mem_capacity),
            pim: VecDeque::with_capacity(pim_capacity),
            mem_capacity,
            pim_capacity,
            next_age: 0,
            mem_bank_counts: vec![0; 64],
            mem_bank_mask: 0,
        }
    }

    /// Whether a request of the given kind can be accepted now.
    pub fn can_accept(&self, is_pim: bool) -> bool {
        if is_pim {
            self.pim.len() < self.pim_capacity
        } else {
            self.mem.len() < self.mem_capacity
        }
    }

    /// Enqueues `req`, assigning it the next age.
    ///
    /// # Panics
    ///
    /// Panics if the target queue is full (check [`McQueues::can_accept`]).
    pub fn enqueue(&mut self, req: Request, decoded: DecodedAddr, now: Cycle) -> u64 {
        let age = self.next_age;
        self.next_age += 1;
        let q = QueuedRequest {
            req,
            decoded,
            age,
            arrived: now,
            opened_row: false,
        };
        if req.kind.is_pim() {
            assert!(self.pim.len() < self.pim_capacity, "PIM queue overflow");
            self.pim.push_back(q);
        } else {
            assert!(self.mem.len() < self.mem_capacity, "MEM queue overflow");
            let b = decoded.bank as usize % 64;
            self.mem_bank_counts[b] += 1;
            self.mem_bank_mask |= 1 << b;
            self.mem.push(q);
        }
        age
    }

    /// The MEM queue in arrival order.
    pub fn mem(&self) -> &[QueuedRequest] {
        &self.mem
    }

    /// Mutable access to the MEM queue (controller bookkeeping only).
    pub(crate) fn mem_mut(&mut self) -> &mut [QueuedRequest] {
        &mut self.mem
    }

    /// The PIM queue in arrival (and hence service) order.
    pub fn pim(&self) -> &VecDeque<QueuedRequest> {
        &self.pim
    }

    /// Marks `opened_row` on the PIM queue head.
    pub(crate) fn mark_pim_head_opened(&mut self) {
        if let Some(h) = self.pim.front_mut() {
            h.opened_row = true;
        }
    }

    /// Removes and returns the MEM request at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove_mem(&mut self, index: usize) -> QueuedRequest {
        let q = self.mem.remove(index);
        let b = q.decoded.bank as usize % 64;
        self.mem_bank_counts[b] -= 1;
        if self.mem_bank_counts[b] == 0 {
            self.mem_bank_mask &= !(1 << b);
        }
        q
    }

    /// Bitmask of banks (bit = `bank % 64`) with at least one queued MEM
    /// request, maintained incrementally on enqueue/remove.
    pub fn mem_bank_mask(&self) -> u64 {
        debug_assert_eq!(
            self.mem_bank_mask,
            self.mem
                .iter()
                .fold(0u64, |m, q| m | 1 << (q.decoded.bank as usize % 64))
        );
        self.mem_bank_mask
    }

    /// Removes and returns the PIM queue head.
    pub fn pop_pim(&mut self) -> Option<QueuedRequest> {
        self.pim.pop_front()
    }

    /// Age of the oldest MEM request.
    pub fn oldest_mem_age(&self) -> Option<u64> {
        self.mem.iter().map(|q| q.age).min()
    }

    /// Age of the oldest PIM request (the queue head, since PIM is FCFS).
    pub fn oldest_pim_age(&self) -> Option<u64> {
        self.pim.front().map(|q| q.age)
    }

    /// Number of queued MEM requests.
    pub fn mem_len(&self) -> usize {
        self.mem.len()
    }

    /// Number of queued PIM requests.
    pub fn pim_len(&self) -> usize {
        self.pim.len()
    }

    /// MEM queue capacity.
    pub fn mem_capacity(&self) -> usize {
        self.mem_capacity
    }

    /// PIM queue capacity.
    pub fn pim_capacity(&self) -> usize {
        self.pim_capacity
    }

    /// `true` when both queues are empty.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty() && self.pim.is_empty()
    }

    /// The earliest cycle at or after `now` at which these queues hold
    /// work for the controller, or `None` while both are empty. Queues
    /// have no timers, so the answer is always `now` or never.
    pub fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        (!self.is_empty()).then_some(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_types::{AppId, PhysAddr, PimCommand, PimOpKind, RequestId, RequestKind};

    fn mem_req(id: u64) -> (Request, DecodedAddr) {
        (
            Request::new(
                RequestId(id),
                AppId::GPU,
                RequestKind::MemRead,
                PhysAddr(id * 32),
                0,
                0,
            ),
            DecodedAddr::default(),
        )
    }

    fn pim_req(id: u64) -> (Request, DecodedAddr) {
        let cmd = PimCommand {
            op: PimOpKind::RfLoad,
            channel: 0,
            row: 1,
            col: 0,
            rf_entry: 0,
            block_start: true,
            block_id: id,
        };
        (
            Request::new(
                RequestId(id),
                AppId::PIM,
                RequestKind::Pim(cmd),
                PhysAddr(0),
                0,
                0,
            ),
            DecodedAddr::default(),
        )
    }

    #[test]
    fn ages_increase_across_both_queues() {
        let mut q = McQueues::new(4, 4);
        let (m0, d) = mem_req(0);
        let (p0, dp) = pim_req(1);
        let (m1, d1) = mem_req(2);
        assert_eq!(q.enqueue(m0, d, 0), 0);
        assert_eq!(q.enqueue(p0, dp, 1), 1);
        assert_eq!(q.enqueue(m1, d1, 2), 2);
        assert_eq!(q.oldest_mem_age(), Some(0));
        assert_eq!(q.oldest_pim_age(), Some(1));
    }

    #[test]
    fn capacity_is_enforced_per_queue() {
        let mut q = McQueues::new(1, 1);
        let (m, d) = mem_req(0);
        q.enqueue(m, d, 0);
        assert!(!q.can_accept(false));
        assert!(q.can_accept(true));
        let (p, dp) = pim_req(1);
        q.enqueue(p, dp, 0);
        assert!(!q.can_accept(true));
    }

    #[test]
    #[should_panic(expected = "MEM queue overflow")]
    fn overflow_panics() {
        let mut q = McQueues::new(1, 1);
        let (m, d) = mem_req(0);
        q.enqueue(m, d, 0);
        let (m2, d2) = mem_req(1);
        q.enqueue(m2, d2, 0);
    }

    #[test]
    fn pim_pops_in_fcfs_order() {
        let mut q = McQueues::new(2, 4);
        for i in 0..3 {
            let (p, d) = pim_req(i);
            q.enqueue(p, d, 0);
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop_pim())
            .map(|x| x.req.id.0)
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn capacities_and_emptiness_are_reported() {
        let mut q = McQueues::new(3, 5);
        assert_eq!(q.mem_capacity(), 3);
        assert_eq!(q.pim_capacity(), 5);
        assert!(q.is_empty());
        let (m, d) = mem_req(0);
        q.enqueue(m, d, 7);
        assert!(!q.is_empty());
        assert_eq!(q.mem()[0].arrived, 7);
        let r = q.remove_mem(0);
        assert!(!r.opened_row, "requests enter with no ACT history");
        assert!(q.is_empty());
    }

    #[test]
    fn remove_mem_by_index() {
        let mut q = McQueues::new(4, 1);
        for i in 0..3 {
            let (m, d) = mem_req(i);
            q.enqueue(m, d, 0);
        }
        let r = q.remove_mem(1);
        assert_eq!(r.req.id.0, 1);
        assert_eq!(q.mem_len(), 2);
        assert_eq!(q.oldest_mem_age(), Some(0));
    }
}
