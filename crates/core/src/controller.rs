//! The per-channel memory controller: queues, mode switching with drain,
//! DRAM command generation, and statistics.
//!
//! The controller is the *mechanism* half of the design: each DRAM cycle it
//! asks its [`SchedulePolicy`] for the desired mode, performs drains and
//! switches, and issues at most one DRAM command chosen by walking the
//! policy's `(class, age)` priority over legal candidates. PIM requests are
//! always serviced FCFS (queue order) for correctness.

use std::collections::{BinaryHeap, VecDeque};

use pimsim_dram::{Channel, DramCommand, PimEngine};
use pimsim_stats::Histogram;
use pimsim_types::{
    Cycle, DecodedAddr, Mode, PagePolicy, PimOpKind, Request, RequestKind, SystemConfig,
};

use crate::policy::{PolicyView, SchedulePolicy};
use crate::queue::{McQueues, QueuedRequest};

/// A serviced request leaving the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub req: Request,
    /// DRAM cycle at which its data transfer completes.
    pub at: Cycle,
}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse time order so BinaryHeap pops the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.req.id.cmp(&self.req.id))
    }
}

/// Mode-switch bookkeeping while draining.
#[derive(Debug, Clone, Copy)]
struct SwitchInProgress {
    target: Mode,
    started: Cycle,
}

/// Controller statistics (the sources for Figures 4, 6, and 10).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McStats {
    /// MEM requests accepted into the MEM queue.
    pub mem_arrivals: u64,
    /// PIM requests accepted into the PIM queue.
    pub pim_arrivals: u64,
    /// MEM requests serviced (column command issued).
    pub mem_served: u64,
    /// PIM requests serviced.
    pub pim_served: u64,
    /// MEM column commands that hit the row buffer.
    pub mem_row_hits: u64,
    /// MEM requests that required an activate (row miss/conflict).
    pub mem_row_misses: u64,
    /// PIM ops that hit (mid-block ops).
    pub pim_row_hits: u64,
    /// PIM ops that required an all-bank activate (block starts).
    pub pim_row_misses: u64,
    /// Completed mode switches.
    pub switches: u64,
    /// Completed MEM→PIM switches.
    pub switches_mem_to_pim: u64,
    /// Total drain latency (DRAM cycles) across MEM→PIM switches.
    pub mem_drain_latency_sum: u64,
    /// MEM requests that had to re-open a row a switch had closed
    /// ("additional MEM conflicts", Figure 10b).
    pub switch_conflicts: u64,
    /// Sum over active DRAM cycles of the number of busy banks (BLP
    /// numerator; Figure 4c).
    pub blp_sum: u64,
    /// DRAM cycles with at least one busy bank (BLP denominator).
    pub active_cycles: u64,
    /// Sum over cycles of MEM queue occupancy.
    pub mem_q_occupancy_sum: u64,
    /// Sum over cycles of PIM queue occupancy.
    pub pim_q_occupancy_sum: u64,
    /// Cycles stepped.
    pub cycles: u64,
    /// Cycles spent in MEM mode (not draining).
    pub cycles_mem_mode: u64,
    /// Cycles spent in PIM mode (not draining).
    pub cycles_pim_mode: u64,
    /// Cycles spent draining for a mode switch.
    pub cycles_draining: u64,
    /// Per-request MEM latency (controller arrival to data completion),
    /// DRAM cycles.
    pub mem_latency: Histogram,
    /// Per-request PIM latency, DRAM cycles.
    pub pim_latency: Histogram,
}

impl McStats {
    /// MEM row-buffer hit rate, if any MEM request was serviced.
    pub fn mem_rbhr(&self) -> Option<f64> {
        let total = self.mem_row_hits + self.mem_row_misses;
        (total > 0).then(|| self.mem_row_hits as f64 / total as f64)
    }

    /// PIM row-buffer hit rate.
    pub fn pim_rbhr(&self) -> Option<f64> {
        let total = self.pim_row_hits + self.pim_row_misses;
        (total > 0).then(|| self.pim_row_hits as f64 / total as f64)
    }

    /// Average bank-level parallelism over active DRAM cycles.
    pub fn avg_blp(&self) -> Option<f64> {
        (self.active_cycles > 0).then(|| self.blp_sum as f64 / self.active_cycles as f64)
    }

    /// Average MEM conflicts added per MEM→PIM switch.
    pub fn conflicts_per_switch(&self) -> Option<f64> {
        (self.switches_mem_to_pim > 0)
            .then(|| self.switch_conflicts as f64 / self.switches_mem_to_pim as f64)
    }

    /// Average MEM drain latency per MEM→PIM switch, in DRAM cycles.
    pub fn drain_latency_per_switch(&self) -> Option<f64> {
        (self.switches_mem_to_pim > 0)
            .then(|| self.mem_drain_latency_sum as f64 / self.switches_mem_to_pim as f64)
    }

    /// Merges the counters of another controller (for cross-channel
    /// aggregation).
    pub fn merge(&mut self, o: &McStats) {
        self.mem_arrivals += o.mem_arrivals;
        self.pim_arrivals += o.pim_arrivals;
        self.mem_served += o.mem_served;
        self.pim_served += o.pim_served;
        self.mem_row_hits += o.mem_row_hits;
        self.mem_row_misses += o.mem_row_misses;
        self.pim_row_hits += o.pim_row_hits;
        self.pim_row_misses += o.pim_row_misses;
        self.switches += o.switches;
        self.switches_mem_to_pim += o.switches_mem_to_pim;
        self.mem_drain_latency_sum += o.mem_drain_latency_sum;
        self.switch_conflicts += o.switch_conflicts;
        self.blp_sum += o.blp_sum;
        self.active_cycles += o.active_cycles;
        self.mem_q_occupancy_sum += o.mem_q_occupancy_sum;
        self.pim_q_occupancy_sum += o.pim_q_occupancy_sum;
        self.cycles += o.cycles;
        self.cycles_mem_mode += o.cycles_mem_mode;
        self.cycles_pim_mode += o.cycles_pim_mode;
        self.cycles_draining += o.cycles_draining;
        self.mem_latency.merge(&o.mem_latency);
        self.pim_latency.merge(&o.pim_latency);
    }
}

impl pimsim_stats::Mergeable for McStats {
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

/// How the controller's cycles were serviced: full scheduling steps,
/// O(1) stall-memo replays, or closed-form burst-plan retirement
/// (DESIGN.md §4h). Kept outside [`McStats`] on purpose — the
/// fast/oracle equivalence tests compare `McStats` bit-for-bit, and the
/// step mix is exactly what is *allowed* to differ between the two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepMix {
    /// Cycles serviced by a full scheduling step.
    pub full_steps: u64,
    /// Cycles replayed by the stall memo (per-tick and bulk spans).
    pub memo_replayed: u64,
    /// Cycles retired inside a burst-plan window.
    pub burst_retired: u64,
    /// Armed stall windows voided by an enqueue before they elapsed.
    pub memo_invalidations: u64,
    /// Burst plans created. Plans are never invalidated: the policy's
    /// `stable_pim_run` guarantee is unconditional and the refresh
    /// horizon is folded in at planning time.
    pub bursts_planned: u64,
    /// PIM ops retired through burst plans.
    pub burst_ops: u64,
    /// GPU cycles in which the issue stage ran. Controllers leave the
    /// per-stage tick counters at zero; the simulator fills them in when
    /// merging (it owns the pipeline, controllers only see DRAM ticks).
    pub ticks_issue: u64,
    /// GPU cycles in which the request crossbar ran.
    pub ticks_request_net: u64,
    /// GPU cycles in which the memory stage ran.
    pub ticks_memory: u64,
    /// GPU cycles in which the reply crossbar actually stepped (the
    /// event-driven path skips it while no reply is queued or in flight).
    pub ticks_reply_net: u64,
    /// GPU cycles in which the completion stage retired anything (ack
    /// collection or reply retirement; skipped while every mounted kernel
    /// defers delivery).
    pub ticks_completion: u64,
    /// Kernel completions retired (PIM acks + MEM replies). The
    /// denominator of the ticks-per-completion structural gate.
    pub completions_delivered: u64,
    /// Retire-time completion batches emitted (one per burst plan whose
    /// acks were deposited as a timestamped batch; DESIGN.md §4k).
    pub ack_batches: u64,
    /// PIM completions emitted through the retire-time batch path instead
    /// of the per-tick completion heap. Zero means the batching path
    /// silently disengaged — the tier-1 smoke fails on that.
    pub acks_batched: u64,
    /// Burst-plan windows bulk-replayed by `plan_replay_span` (each span
    /// covers many `burst_retired` ticks in one call).
    pub plan_spans_replayed: u64,
    /// Timestamped eject batches deposited into partition staged-ingress
    /// schedules (one per empty→nonempty transition of a partition's
    /// schedule; DESIGN.md §4l).
    pub eject_batches: u64,
    /// Crossbar ejections delivered through the staged (deferred-replay)
    /// path instead of an eager per-eject hand-off. Zero with traffic
    /// means eject batching silently disengaged — the tier-1 smoke
    /// fails on that.
    pub requests_batched: u64,
    /// Per-partition catch-up replays that had at least one deferred
    /// visit to work through.
    pub replay_batches: u64,
    /// Deferred stage visits replayed across all `replay_batches` — the
    /// numerator of [`StepMix::mean_deferral_window`].
    pub replayed_visits: u64,
}

impl StepMix {
    /// Fraction of serviced cycles retired by burst plans, if any cycle
    /// was serviced.
    pub fn burst_hit_rate(&self) -> Option<f64> {
        let total = self.full_steps + self.memo_replayed + self.burst_retired;
        (total > 0).then(|| self.burst_retired as f64 / total as f64)
    }

    /// Mean deferred visits replayed per per-partition catch-up — the
    /// length of the average deferral window as one partition sees it.
    /// §4k's per-eject catch-up collapsed this to ≈4 cycles on saturated
    /// PIM; eject batching (§4l) is meant to stretch it back out.
    pub fn mean_deferral_window(&self) -> Option<f64> {
        (self.replay_batches > 0).then(|| self.replayed_visits as f64 / self.replay_batches as f64)
    }
}

impl pimsim_stats::Mergeable for StepMix {
    fn merge_from(&mut self, o: &Self) {
        self.full_steps += o.full_steps;
        self.memo_replayed += o.memo_replayed;
        self.burst_retired += o.burst_retired;
        self.memo_invalidations += o.memo_invalidations;
        self.bursts_planned += o.bursts_planned;
        self.burst_ops += o.burst_ops;
        self.ticks_issue += o.ticks_issue;
        self.ticks_request_net += o.ticks_request_net;
        self.ticks_memory += o.ticks_memory;
        self.ticks_reply_net += o.ticks_reply_net;
        self.ticks_completion += o.ticks_completion;
        self.completions_delivered += o.completions_delivered;
        self.ack_batches += o.ack_batches;
        self.acks_batched += o.acks_batched;
        self.plan_spans_replayed += o.plan_spans_replayed;
        self.eject_batches += o.eject_batches;
        self.requests_batched += o.requests_batched;
        self.replay_batches += o.replay_batches;
        self.replayed_visits += o.replayed_visits;
    }
}

/// One channel's memory controller.
///
/// # Example
///
/// ```
/// use pimsim_core::{MemoryController, policy::PolicyKind};
/// use pimsim_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// let mc = MemoryController::new(&cfg, PolicyKind::FrFcfs.build());
/// assert!(mc.is_idle(0));
/// ```
#[derive(Debug)]
pub struct MemoryController {
    queues: McQueues,
    channel: Channel,
    pim_engine: PimEngine,
    mode: Mode,
    switch: Option<SwitchInProgress>,
    policy: Box<dyn SchedulePolicy>,
    completions: BinaryHeap<Completion>,
    /// Rows open at the last MEM→PIM switch; used to attribute reopened
    /// rows to the switch (Figure 10b).
    rows_at_switch: Vec<Option<u32>>,
    /// Scratch: open row per bank, rebuilt each cycle for the policy view.
    open_rows: Vec<Option<u32>>,
    /// Scratch for [`MemoryController::issue_mem`]: best candidate per
    /// bank, reused across cycles so the hot loop allocates nothing.
    scratch_best: Vec<Option<(u32, u64, usize, bool)>>,
    /// Scratch for [`MemoryController::issue_mem`]: bank issue order.
    scratch_order: Vec<(u32, u64, usize)>,
    page_policy: PagePolicy,
    /// Stall memo: cycles strictly before this are replayed by
    /// [`MemoryController::replay_cycle`] in O(1) — the arming full step
    /// proved no command can issue and no policy decision can change
    /// before it. `0` means no stall is armed.
    stall_until: Cycle,
    /// Queue-demand bank mask captured at stall arm time (BLP replay);
    /// frozen for the window because nothing issues and any enqueue
    /// invalidates the memo.
    stall_qmask: u64,
    /// Bank busy expiries `(busy_until, bit)` live at arm time, sorted
    /// ascending; consumed through `stall_busy_ptr` as time passes.
    stall_busy: Vec<(Cycle, u64)>,
    stall_busy_ptr: usize,
    /// OR of the not-yet-expired `stall_busy` bits.
    stall_busy_mask: u64,
    /// Oracle knob: `false` forces a full step every cycle (what the
    /// stall-memo equivalence property test compares against).
    stall_enabled: bool,
    /// Burst plan (DESIGN.md §4h): cycles strictly before this are
    /// serviced by [`MemoryController::plan_replay_cycle`] — the plan's
    /// issue cycles were computed analytically at creation, and each op's
    /// observable effects fire at its own issue tick without any
    /// scheduling work. `0` means no plan is live. Unlike the stall memo,
    /// a plan survives enqueues: the policy's `stable_pim_run` guarantee
    /// is unconditional.
    plan_until: Cycle,
    /// The plan's creation cycle (= the first op's issue cycle).
    plan_first: Cycle,
    /// Issue stride inside the plan (`max(tCCDl, 1)`).
    plan_stride: Cycle,
    /// Planned ops not yet virtually issued. Eagerly-popped ops still
    /// occupy their queue slots from the outside world's point of view
    /// until their analytic issue cycle passes, so `can_accept`,
    /// `pim_q_len`, and the occupancy integral add this back.
    plan_reserved: usize,
    /// Oracle knob for the burst plan, mirroring `stall_enabled`.
    burst_enabled: bool,
    /// Scratch for [`MemoryController::retire_burst`]: per-op
    /// `writes_row` flags, reused across plans.
    burst_writes: Vec<bool>,
    /// Scratch for [`MemoryController::retire_burst`]: per-op completion
    /// cycles from the channel's bulk issue.
    burst_completions: Vec<Cycle>,
    /// The plan's not-yet-issued ops, front = next to issue: the popped
    /// request, its data-completion cycle, and its frozen bypass flag.
    /// Per-op accounting (stats, policy hook, engine op, completion
    /// hand-off) runs at each op's analytic issue cycle, so a stats
    /// snapshot taken mid-plan is bit-identical to per-cycle stepping.
    plan_ops: VecDeque<(QueuedRequest, Cycle, bool)>,
    /// `channel.row_epoch()` at the last `open_rows` rebuild; the scratch
    /// view is only rebuilt when the channel's row state actually moved.
    open_rows_epoch: u64,
    /// Retire-time ack batching (DESIGN.md §4k): with it on, PIM
    /// completions bypass the per-tick `completions` heap and are
    /// deposited — already timestamped — into `ack_batch` the moment
    /// their data-completion cycle is known in closed form (at burst
    /// retirement, or at single-op issue). The owner harvests the batch
    /// after every state-mutating call and re-sorts it into a
    /// time-ordered delivery schedule, so each ack is still *observable*
    /// at its exact tick. `false` is the eager oracle path.
    ack_batching: bool,
    /// Timestamped PIM completions awaiting harvest by the owner, in
    /// deposit order — ascending `at` within a plan, so a FIFO harvest
    /// hands the owner's delivery schedule a monotone stream (its O(1)
    /// sorted lane, no heap traffic).
    ack_batch: VecDeque<Completion>,
    /// Monotone max `at` over all batched PIM completions ever emitted.
    /// While `now <= ack_horizon` the controller reports itself non-idle,
    /// replicating exactly the cycles the eager path keeps a PIM
    /// completion in its heap — the idle fast path and the stats
    /// integrals therefore match the eager oracle bit for bit. `0` means
    /// no batched ack was ever emitted (real completions land at `at > 0`).
    ack_horizon: Cycle,
    mix: StepMix,
    stats: McStats,
}

impl MemoryController {
    /// Creates a controller for one channel.
    pub fn new(cfg: &SystemConfig, policy: Box<dyn SchedulePolicy>) -> Self {
        let banks = cfg.dram.banks;
        let rf_per_bank = cfg.dram.pim_rf_entries * cfg.dram.pim_fus_per_channel / cfg.dram.banks;
        MemoryController {
            queues: McQueues::new(cfg.mc.mem_q_entries, cfg.mc.pim_q_entries),
            // Constructed through the backend registry, so the controller
            // services whichever substrate `cfg.dram_backend` names
            // without knowing its kind.
            channel: pimsim_dram::backend::channel_for(cfg),
            pim_engine: PimEngine::new(rf_per_bank.max(1)),
            mode: Mode::Mem,
            switch: None,
            policy,
            completions: BinaryHeap::new(),
            rows_at_switch: vec![None; banks],
            open_rows: vec![None; banks],
            scratch_best: vec![None; banks],
            scratch_order: Vec::with_capacity(banks),
            page_policy: cfg.mc.page_policy,
            stall_until: 0,
            stall_qmask: 0,
            stall_busy: Vec::with_capacity(banks),
            stall_busy_ptr: 0,
            stall_busy_mask: 0,
            stall_enabled: true,
            plan_until: 0,
            plan_first: 0,
            plan_stride: 1,
            plan_reserved: 0,
            burst_enabled: true,
            burst_writes: Vec::new(),
            burst_completions: Vec::new(),
            plan_ops: VecDeque::new(),
            open_rows_epoch: u64::MAX,
            // Off at the raw-controller level: a bare `MemoryController`
            // has no harvesting owner, so batched acks would pile up
            // unobserved (and `is_idle` would pin false). The simulator's
            // partition owns a delivery schedule and turns this on.
            ack_batching: false,
            ack_batch: VecDeque::new(),
            ack_horizon: 0,
            mix: StepMix::default(),
            stats: McStats::default(),
        }
    }

    /// Disables (or re-enables) the stall memo; with it off the controller
    /// takes a full step every cycle — the brute-force oracle the
    /// equivalence property test compares the memo against.
    pub fn set_stall_enabled(&mut self, enabled: bool) {
        self.stall_enabled = enabled;
        self.stall_until = 0;
    }

    /// Disables (or re-enables) closed-form burst retirement; with it off
    /// every PIM op issues through the per-cycle path — the brute-force
    /// oracle the burst equivalence property test compares against. Call
    /// before stepping: a live plan cannot be un-retired.
    ///
    /// # Panics
    ///
    /// Panics if a burst plan is currently live.
    pub fn set_burst_enabled(&mut self, enabled: bool) {
        assert!(
            self.plan_reserved == 0,
            "cannot toggle burst retirement mid-plan"
        );
        self.burst_enabled = enabled;
    }

    /// Enables (or disables) retire-time ack batching. Off by default at
    /// this level — only an owner that harvests `pop_batched_ack` into a
    /// time-ordered delivery schedule (the simulator's partition) may
    /// turn it on; with it off every PIM completion goes through the
    /// per-tick `completions` heap — the eager oracle the
    /// `ack_batching_matches_per_tick_oracle` test compares the batched
    /// path against. Call before stepping.
    ///
    /// # Panics
    ///
    /// Panics if a burst plan is live or a batch awaits harvest.
    pub fn set_ack_batching(&mut self, enabled: bool) {
        assert!(
            self.plan_reserved == 0 && self.ack_batch.is_empty(),
            "cannot toggle ack batching mid-plan"
        );
        self.ack_batching = enabled;
    }

    /// Whether retire-time ack batching is on.
    pub fn ack_batching(&self) -> bool {
        self.ack_batching
    }

    /// How this controller's cycles were serviced (full steps vs memo
    /// replays vs burst retirement) — observability only, never part of
    /// the fast/oracle equivalence surface.
    pub fn step_mix(&self) -> StepMix {
        self.mix
    }

    /// Current servicing mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Name of the installed policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Whether a request of the given kind can be accepted. Ops a burst
    /// plan retired eagerly still occupy their PIM-queue slots until
    /// their analytic issue cycles pass, so arrival pacing — and with it
    /// every downstream age and timestamp — matches per-cycle stepping
    /// exactly.
    pub fn can_accept(&self, is_pim: bool) -> bool {
        if is_pim {
            self.queues.pim_len() + self.plan_reserved < self.queues.pim_capacity()
        } else {
            self.queues.can_accept(false)
        }
    }

    /// Queued MEM requests.
    pub fn mem_q_len(&self) -> usize {
        self.queues.mem_len()
    }

    /// Queued PIM requests (including a live burst plan's not-yet-issued
    /// reservations; see [`MemoryController::can_accept`]).
    pub fn pim_q_len(&self) -> usize {
        self.queues.pim_len() + self.plan_reserved
    }

    /// Accepts a request.
    ///
    /// # Panics
    ///
    /// Panics if the target queue is full (check [`MemoryController::can_accept`]).
    pub fn enqueue(&mut self, req: Request, decoded: DecodedAddr, now: Cycle) {
        if req.kind.is_pim() {
            self.stats.pim_arrivals += 1;
        } else {
            self.stats.mem_arrivals += 1;
        }
        // New work changes the scheduling view: any armed stall is void.
        // A live burst plan, by contrast, survives: the policy's
        // `stable_pim_run` guarantee is unconditional over arrivals.
        if now < self.stall_until {
            self.mix.memo_invalidations += 1;
        }
        self.stall_until = 0;
        self.queues.enqueue(req, decoded, now);
    }

    /// True when no requests are queued, in flight, or awaiting pickup.
    /// In batched mode an already-emitted PIM ack keeps the controller
    /// non-idle until its data-completion cycle passes — exactly the
    /// cycles the eager path holds it in the `completions` heap — so the
    /// idle fast path accrues identical stats in both modes.
    pub fn is_idle(&self, now: Cycle) -> bool {
        self.queues.is_empty()
            && self.channel.quiescent(now)
            && self.switch.is_none()
            && self.completions.is_empty()
            && self.ack_batch.is_empty()
            && (!self.ack_batching || self.ack_horizon == 0 || now > self.ack_horizon)
    }

    /// Appends all completions with `at <= now` to `out` — the
    /// scratch-buffer form of the old Vec-per-call `pop_completions`, so
    /// per-tick consumers reuse one buffer across the whole run.
    pub fn pop_completions_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        while let Some(c) = self.pop_completion_before(now) {
            out.push(c);
        }
    }

    /// Pops the earliest completion with `at <= now`, if any — the
    /// allocation-free form of [`MemoryController::pop_completions`] for
    /// per-cycle consumers that process completions one at a time.
    pub fn pop_completion_before(&mut self, now: Cycle) -> Option<Completion> {
        if self.completions.peek().is_some_and(|c| c.at <= now) {
            return self.completions.pop();
        }
        None
    }

    /// Takes the oldest completion out of the retire-time ack batch —
    /// deposit order, so the stream is ascending `at` within a plan and
    /// the owner's delivery schedule absorbs it on its O(1) sorted lane.
    /// Harvest until `None` after every call that can issue PIM work
    /// ([`MemoryController::step`],
    /// [`MemoryController::plan_replay_span`]).
    pub fn pop_batched_ack(&mut self) -> Option<Completion> {
        self.ack_batch.pop_front()
    }

    /// Routes a PIM completion: into the retire-time batch when batching
    /// is on (timestamped, harvested by the owner), into the per-tick
    /// heap otherwise (the eager oracle path).
    fn push_pim_completion(&mut self, req: Request, at: Cycle) {
        if self.ack_batching {
            self.ack_batch.push_back(Completion { req, at });
            self.ack_horizon = self.ack_horizon.max(at);
            self.mix.acks_batched += 1;
        } else {
            self.completions.push(Completion { req, at });
        }
    }

    /// The earliest cycle at or after `now` at which this controller can
    /// *do* something, or `None` while it is completely idle (no queued
    /// requests, no in-flight data, no pending switch, no undelivered
    /// completions). Inside an armed stall window the answer is the
    /// window's end (or an earlier completion hand-off) rather than a
    /// perpetual `now` — so the probe no longer reports "busy forever"
    /// while a PIM block merely waits out a timing constraint.
    pub fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        if self.is_idle(now) {
            return None;
        }
        if now < self.plan_until {
            // Plan ticks need per-tick service: a completion falls due
            // roughly every issue stride, and the virtual queue drains.
            return Some(now);
        }
        if now < self.stall_until {
            let next = self
                .completions
                .peek()
                .map_or(self.stall_until, |c| c.at.min(self.stall_until));
            return Some(next.max(now));
        }
        Some(now)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// The DRAM channel's command counters (for energy accounting).
    pub fn channel_stats(&self) -> pimsim_dram::ChannelStats {
        self.channel.stats()
    }

    /// Advances the controller by one DRAM cycle — an O(1) burst-plan
    /// replay inside a live plan window, an O(1) stats replay inside an
    /// armed stall window, a full scheduling step otherwise.
    pub fn step(&mut self, now: Cycle) {
        if now < self.plan_until {
            self.mix.burst_retired += 1;
            self.plan_replay_cycle(now);
        } else if now < self.stall_until {
            self.mix.memo_replayed += 1;
            self.replay_cycle(now);
        } else {
            self.mix.full_steps += 1;
            self.step_full(now);
        }
    }

    /// Replays one cycle inside a live burst plan in O(1): the per-cycle
    /// stats integrals advance exactly as [`MemoryController::step_full`]
    /// would have advanced them, and on the plan's issue-stride ticks the
    /// next planned op performs its observable issue effects
    /// ([`MemoryController::issue_planned_op`]) — no scheduling decision,
    /// no queue scan, no channel legality check.
    fn plan_replay_cycle(&mut self, now: Cycle) {
        // `channel.tick` would be a no-op: plans never extend to
        // `next_refresh` and are never created with a refresh pending.
        debug_assert!(!self.channel.refresh_pending() && now < self.channel.next_refresh());
        self.stats.cycles += 1;
        self.stats.mem_q_occupancy_sum += self.queues.mem_len() as u64;
        // Occupancy samples before this cycle's issue, like `step_full`.
        self.stats.pim_q_occupancy_sum += (self.queues.pim_len() + self.plan_reserved) as u64;
        // Virtual PIM demand covers every bank and each op's data is in
        // flight past the window end, so the BLP mask is full throughout.
        self.stats.blp_sum += self.channel.num_banks() as u64;
        self.stats.active_cycles += 1;
        debug_assert!(self.switch.is_none());
        self.stats.cycles_pim_mode += 1;
        if (now - self.plan_first).is_multiple_of(self.plan_stride) {
            debug_assert!(self.plan_reserved > 0, "plan window outlived its ops");
            self.plan_reserved -= 1;
            self.issue_planned_op(now);
        }
    }

    /// Replays one cycle inside an armed stall window. The arming full
    /// step proved that until `stall_until` no command can issue, the
    /// policy's decision cannot change, no refresh falls due, and the
    /// drain/mode state is frozen — so only the per-cycle stats integrals
    /// advance, exactly as [`MemoryController::step_full`] would have
    /// advanced them.
    fn replay_cycle(&mut self, now: Cycle) {
        // `channel.tick` would be a no-op: stalls are never armed with a
        // refresh pending and never extend past `next_refresh`.
        debug_assert!(!self.channel.refresh_pending() && now < self.channel.next_refresh());
        self.stats.cycles += 1;
        self.stats.mem_q_occupancy_sum += self.queues.mem_len() as u64;
        self.stats.pim_q_occupancy_sum += self.queues.pim_len() as u64;
        while self.stall_busy_ptr < self.stall_busy.len()
            && self.stall_busy[self.stall_busy_ptr].0 <= now
        {
            self.stall_busy_mask &= !self.stall_busy[self.stall_busy_ptr].1;
            self.stall_busy_ptr += 1;
        }
        let busy_banks = u64::from((self.stall_qmask | self.stall_busy_mask).count_ones());
        if busy_banks > 0 {
            self.stats.blp_sum += busy_banks;
            self.stats.active_cycles += 1;
        }
        if self.switch.is_some() {
            self.stats.cycles_draining += 1;
        } else {
            match self.mode {
                Mode::Mem => self.stats.cycles_mem_mode += 1,
                Mode::Pim => self.stats.cycles_pim_mode += 1,
            }
        }
    }

    /// The full per-cycle scheduling step: drain handling, policy
    /// consultation, command issue — and, when the cycle went idle, arming
    /// the stall memo with the earliest cycle anything can change.
    fn step_full(&mut self, now: Cycle) {
        self.channel.tick(now);
        self.stats.cycles += 1;
        self.stats.mem_q_occupancy_sum += self.queues.mem_len() as u64;
        self.stats.pim_q_occupancy_sum += self.queues.pim_len() as u64;
        self.integrate_blp(now);

        // 1. Complete an in-progress switch once the drain finishes.
        if let Some(sw) = self.switch {
            if self.channel.quiescent(now) {
                self.finish_switch(sw, now);
            } else {
                self.stats.cycles_draining += 1;
                self.arm_drain_stall(now);
                return; // still draining: no commands issue
            }
        }

        // 2. Consult the policy.
        self.refresh_open_rows();
        let desired = {
            let view = PolicyView {
                now,
                mode: self.mode,
                mem: self.queues.mem(),
                pim: self.queues.pim(),
                open_rows: &self.open_rows,
            };
            self.policy.desired_mode(&view)
        };
        if desired != self.mode {
            self.begin_switch(desired, now);
            // A drain may complete instantly if nothing is in flight.
            if let Some(sw) = self.switch {
                if self.channel.quiescent(now) {
                    self.finish_switch(sw, now);
                } else {
                    self.stats.cycles_draining += 1;
                    self.arm_drain_stall(now);
                    return;
                }
            }
        }

        // 3. Issue at most one command in the current mode.
        let candidate_at = match self.mode {
            Mode::Mem => {
                self.stats.cycles_mem_mode += 1;
                self.issue_mem(now)
            }
            Mode::Pim => {
                self.stats.cycles_pim_mode += 1;
                self.issue_pim(now)
            }
        };
        match candidate_at {
            // A command issued: the view changed, nothing is provably
            // stable.
            None => self.stall_until = now,
            Some(at) => self.arm_idle_stall(now, at),
        }
    }

    /// Arms the stall memo while draining for a mode switch: no command
    /// issues and the policy is not consulted until all in-flight data
    /// lands (or a refresh falls due first).
    fn arm_drain_stall(&mut self, now: Cycle) {
        if !self.stall_enabled || self.channel.refresh_pending() {
            self.stall_until = now;
            return;
        }
        let drained = self.channel.busy_until().unwrap_or(now);
        self.arm_stall(now, drained.min(self.channel.next_refresh()));
    }

    /// Arms the stall memo after a steady-mode cycle that issued nothing:
    /// the next full step happens at the earliest of a candidate command
    /// becoming legal, a self-scheduled policy transition, or a refresh
    /// falling due. An enqueue invalidates the memo.
    fn arm_idle_stall(&mut self, now: Cycle, candidate_at: Cycle) {
        if !self.stall_enabled || self.channel.refresh_pending() {
            self.stall_until = now;
            return;
        }
        let until = candidate_at
            .min(self.policy.decision_stable_until(now))
            .min(self.channel.next_refresh());
        self.arm_stall(now, until);
    }

    fn arm_stall(&mut self, now: Cycle, until: Cycle) {
        self.stall_until = until;
        if until <= now + 1 {
            return; // no replayable cycle in the window
        }
        // Capture the BLP-mask inputs: queue demand is frozen for the
        // window, and bank busy bits only expire as time passes.
        let n = self.channel.num_banks();
        let mut qmask = self.queues.mem_bank_mask();
        if self.queues.pim_len() > 0 {
            qmask |= (1u64 << n) - 1;
        }
        self.stall_qmask = qmask;
        self.stall_busy.clear();
        self.stall_busy_ptr = 0;
        self.stall_busy_mask = 0;
        for b in 0..n {
            if let Some(at) = self.channel.bank_busy_until(b) {
                if at > now {
                    self.stall_busy.push((at, 1 << b));
                    self.stall_busy_mask |= 1 << b;
                }
            }
        }
        self.stall_busy.sort_unstable_by_key(|&(at, _)| at);
    }

    /// Attempts to replay the whole DRAM-tick span `[first, first+ticks)`
    /// at once, in O(busy-bit expiries) instead of O(ticks). Succeeds —
    /// returning `true` with every stats integral advanced exactly as
    /// per-cycle stepping would have — only when the span lies strictly
    /// inside an armed stall window, no completion falls due in it (the
    /// owner must pop completions at their exact tick), and the
    /// controller cannot go idle mid-span (idle cycles are skipped by the
    /// owner, not accrued). Returns `false` with no state change
    /// otherwise.
    pub fn quiet_replay_span(&mut self, first: Cycle, ticks: u64) -> bool {
        if ticks == 0 {
            return true;
        }
        if first < self.plan_until {
            // Burst-plan ticks drain the virtual queue one op per stride;
            // they must be stepped individually.
            return false;
        }
        let last = first + (ticks - 1);
        if last >= self.stall_until {
            return false;
        }
        if self.completions.peek().is_some_and(|c| c.at <= last) {
            return false;
        }
        if self.is_idle(last) {
            // Not idle at `first` but idle by `last`: the per-cycle path
            // stops accruing stats the moment the controller goes idle.
            return false;
        }
        debug_assert!(!self.channel.refresh_pending() && last < self.channel.next_refresh());
        self.stats.cycles += ticks;
        self.stats.mem_q_occupancy_sum += self.queues.mem_len() as u64 * ticks;
        self.stats.pim_q_occupancy_sum += self.queues.pim_len() as u64 * ticks;
        if self.switch.is_some() {
            self.stats.cycles_draining += ticks;
        } else {
            match self.mode {
                Mode::Mem => self.stats.cycles_mem_mode += ticks,
                Mode::Pim => self.stats.cycles_pim_mode += ticks,
            }
        }
        // The BLP mask is piecewise-constant between busy-bit expiries.
        let mut t = first;
        while t <= last {
            while self.stall_busy_ptr < self.stall_busy.len()
                && self.stall_busy[self.stall_busy_ptr].0 <= t
            {
                self.stall_busy_mask &= !self.stall_busy[self.stall_busy_ptr].1;
                self.stall_busy_ptr += 1;
            }
            let seg_last = if self.stall_busy_ptr < self.stall_busy.len() {
                (self.stall_busy[self.stall_busy_ptr].0 - 1).min(last)
            } else {
                last
            };
            let busy_banks = u64::from((self.stall_qmask | self.stall_busy_mask).count_ones());
            let span = seg_last - t + 1;
            if busy_banks > 0 {
                self.stats.blp_sum += busy_banks * span;
                self.stats.active_cycles += span;
            }
            t = seg_last + 1;
        }
        self.mix.memo_replayed += ticks;
        true
    }

    /// Attempts to replay the whole DRAM-tick span `[first, first+ticks)`
    /// inside a live burst-plan window at once — the plan-window dual of
    /// [`MemoryController::quiet_replay_span`], and the bulk step the
    /// retire-time ack batch licenses: with every completion already
    /// emitted at retirement, the only per-tick work left in the window
    /// is stats integrals and the per-op issue observables, both of which
    /// advance here in O(ops in span) instead of O(ticks). Succeeds only
    /// in batched mode (the eager oracle must hand each completion off at
    /// its own tick), only when the span lies strictly inside the plan
    /// window, and only when no heap completion (an internal MEM
    /// writeback) falls due in it. Returns `false` with no state change
    /// otherwise.
    pub fn plan_replay_span(&mut self, first: Cycle, ticks: u64) -> bool {
        if ticks == 0 {
            return true;
        }
        if !self.ack_batching || first >= self.plan_until {
            return false;
        }
        let last = first + (ticks - 1);
        if last >= self.plan_until {
            return false;
        }
        if self.completions.peek().is_some_and(|c| c.at <= last) {
            return false;
        }
        // Same invariants as `plan_replay_cycle`: plans never meet a
        // refresh, and PIM mode holds for the whole window.
        debug_assert!(!self.channel.refresh_pending() && last < self.channel.next_refresh());
        debug_assert!(self.switch.is_none());
        self.stats.cycles += ticks;
        self.stats.mem_q_occupancy_sum += self.queues.mem_len() as u64 * ticks;
        self.stats.blp_sum += self.channel.num_banks() as u64 * ticks;
        self.stats.active_cycles += ticks;
        self.stats.cycles_pim_mode += ticks;
        // PIM occupancy is piecewise-constant between issue-stride ticks,
        // sampled before each tick's issue — segment `[t, issue]` uses the
        // pre-issue reservation count, then the op issues and the count
        // drops (exactly `plan_replay_cycle`'s sample-then-issue order).
        let mut t = first;
        loop {
            let off = (t - self.plan_first) % self.plan_stride;
            let next_issue = if off == 0 {
                t
            } else {
                t + (self.plan_stride - off)
            };
            let seg_last = next_issue.min(last);
            self.stats.pim_q_occupancy_sum +=
                (self.queues.pim_len() + self.plan_reserved) as u64 * (seg_last - t + 1);
            if next_issue > last {
                break;
            }
            debug_assert!(self.plan_reserved > 0, "plan window outlived its ops");
            self.plan_reserved -= 1;
            self.issue_planned_op(next_issue);
            if next_issue == last {
                break;
            }
            t = next_issue + 1;
        }
        self.mix.burst_retired += ticks;
        self.mix.plan_spans_replayed += 1;
        true
    }

    /// A sound lower bound on (completion cycle − issue cycle) for every
    /// column command this controller's channel can issue: reads complete
    /// at `t_cl (+ burst)`, writes and PIM writes at `t_wl + burst`, PIM
    /// reads at `t_cl` — so nothing ever completes earlier than
    /// `min(t_cl, t_wl + burst)` after its issue tick. The deferral
    /// machinery leans on this: any issue a deferred tick would have made
    /// cannot produce an observable completion for at least this many
    /// ticks, so a window no longer than this is always replayable.
    pub fn min_completion_latency(&self) -> Cycle {
        let (_, read_lat, write_lat) = self.channel.pim_burst_timing();
        let l_min = read_lat.min(write_lat);
        debug_assert!(l_min >= 1, "a zero-latency completion breaks deferral");
        l_min
    }

    /// How far the owner may defer this controller's DRAM ticks, given
    /// the next tick to service is `from`: every tick in
    /// `[from, horizon)` is guaranteed to be reproducible later —
    /// in O(1) through [`MemoryController::quiet_replay_span`] /
    /// [`MemoryController::plan_replay_span`] / the idle fast path when
    /// the regime allows, by exact per-tick [`MemoryController::step`]
    /// replay otherwise — with no completion falling due inside the
    /// window. Arrivals void the deferral on the owner's side.
    /// `Some(Cycle::MAX)` means the controller is idle and stays idle
    /// absent arrivals; `None` means batching is off (the eager oracle
    /// needs its per-tick hand-off).
    ///
    /// The bound is built from two pieces, taking the minimum:
    /// - the earliest heap completion, which must be popped at its exact
    ///   tick. In batched mode PIM completions bypass the heap (they are
    ///   deposited timestamped into the ack batch and *pulled* by the
    ///   delivery stage, which replays lagging partitions before every
    ///   drain), so the heap holds only MEM fills/writebacks here; and
    /// - the regime bound, which applies only while MEM requests are
    ///   queued: a MEM issue deposits an exact-tick heap completion, so
    ///   no such completion can fall due before the earliest possible
    ///   issue plus [`MemoryController::min_completion_latency`]. Inside
    ///   a plan window the next scheduling decision is at `plan_until`;
    ///   inside an armed stall window, at `stall_until`; an actively
    ///   scheduling controller can issue as soon as `from` itself. With
    ///   no MEM queued there is nothing production-bound in the window —
    ///   PIM acks are pull-produced — and the regime is unbounded.
    pub fn bulk_horizon(&self, from: Cycle) -> Option<Cycle> {
        if !self.ack_batching {
            return None;
        }
        if self.is_idle(from) {
            return Some(Cycle::MAX);
        }
        let mem_due = self.completions.peek().map_or(Cycle::MAX, |c| c.at);
        let regime = if self.queues.mem_len() == 0 {
            Cycle::MAX
        } else {
            let l_min = self.min_completion_latency();
            if from < self.plan_until {
                self.plan_until.saturating_add(l_min)
            } else if from < self.stall_until {
                self.stall_until.saturating_add(l_min)
            } else {
                from.saturating_add(l_min)
            }
        };
        Some(regime.min(mem_due))
    }

    /// The earliest cycle a *new* enqueue arriving at DRAM tick `at`
    /// could produce an observable completion. Unlike
    /// [`MemoryController::bulk_horizon`]'s regime bound, this is sound
    /// even though the arrival is not yet enqueued: an arrival cannot
    /// issue before its own tick, and while a burst plan is live it
    /// cannot issue before the plan's end either — plans survive
    /// enqueues unconditionally. A stall memo offers no such cover (the
    /// enqueue voids it and the freed controller may issue immediately),
    /// so the bound deliberately ignores `stall_until`. The eject-batch
    /// deferral (DESIGN.md §4l) caps windows with this: a staged or
    /// still-buffered arrival bounds the window instead of punching it.
    pub fn arrival_bound(&self, at: Cycle) -> Cycle {
        at.max(self.plan_until)
            .saturating_add(self.min_completion_latency())
    }

    fn integrate_blp(&mut self, now: Cycle) {
        // Bank-level parallelism counts banks with at least one
        // outstanding request (queued or with data in flight), averaged
        // over cycles where the DRAM is servicing anything — the standard
        // BLP definition the paper uses in Figure 4c. A pending PIM
        // request targets every bank (lock-step execution).
        let n = self.channel.num_banks();
        let mut mask = self.queues.mem_bank_mask();
        if self.queues.pim_len() > 0 {
            mask |= (1u64 << n) - 1;
        }
        for b in 0..n {
            if self.channel.bank_busy(b, now) {
                mask |= 1 << b;
            }
        }
        let busy_banks = u64::from(mask.count_ones());
        if busy_banks > 0 {
            self.stats.blp_sum += busy_banks;
            self.stats.active_cycles += 1;
        }
    }

    fn refresh_open_rows(&mut self) {
        let epoch = self.channel.row_epoch();
        if epoch == self.open_rows_epoch {
            return;
        }
        self.open_rows_epoch = epoch;
        for b in 0..self.channel.num_banks() {
            self.open_rows[b] = self.channel.open_row(b);
        }
    }

    fn begin_switch(&mut self, target: Mode, now: Cycle) {
        debug_assert_ne!(target, self.mode);
        self.switch = Some(SwitchInProgress {
            target,
            started: now,
        });
    }

    fn finish_switch(&mut self, sw: SwitchInProgress, now: Cycle) {
        if self.mode == Mode::Mem && sw.target == Mode::Pim {
            self.stats.switches_mem_to_pim += 1;
            self.stats.mem_drain_latency_sum += now - sw.started;
            // Remember which rows the switch will close, to attribute
            // later re-opens to this switch.
            for b in 0..self.channel.num_banks() {
                self.rows_at_switch[b] = self.channel.open_row(b);
            }
        }
        self.stats.switches += 1;
        self.mode = sw.target;
        self.switch = None;
        self.policy.on_switch_complete(sw.target, now);
    }

    /// MEM-mode issue: walk banks, compute the best (class, age) candidate
    /// action per bank, then issue the globally best action that is legal.
    ///
    /// Returns `None` when a command issued, else `Some(c)` where `c` is
    /// the earliest cycle any current candidate's chosen command becomes
    /// legal (`Cycle::MAX` with no candidates) — the stall memo's wake-up
    /// event. At that cycle the rank walk re-runs over the identical
    /// candidate set and issues exactly what per-cycle stepping would
    /// have.
    fn issue_mem(&mut self, now: Cycle) -> Option<Cycle> {
        if self.queues.mem_len() == 0 {
            return Some(Cycle::MAX);
        }
        self.refresh_open_rows();
        let n_banks = self.channel.num_banks();
        // Best candidate per bank: (class, age, queue index, is_hit).
        // Borrowed out of self so the issue loop below can mutate the
        // channel and queues; restored at the end (no per-cycle allocation).
        let mut best = std::mem::take(&mut self.scratch_best);
        best.clear();
        best.resize(n_banks, None);
        {
            let view = PolicyView {
                now,
                mode: self.mode,
                mem: self.queues.mem(),
                pim: self.queues.pim(),
                open_rows: &self.open_rows,
            };
            for (idx, q) in view.mem.iter().enumerate() {
                let bank = q.decoded.bank as usize;
                if self.policy.bank_masked(bank) {
                    // The policy's switch logic has stalled this bank
                    // (FR-FCFS conflict bit) — issue nothing for it.
                    continue;
                }
                let hit = self.open_rows[bank] == Some(q.decoded.row);
                let class = self.policy.mem_class(q, hit, &view);
                let cand = (class, q.age, idx, hit);
                if best[bank].is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best[bank] = Some(cand);
                }
            }
        }
        // Rank banks by their best candidate and issue the first legal
        // command for the best-ranked serviceable one.
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        order.extend(
            best.iter()
                .enumerate()
                .filter_map(|(bank, c)| c.map(|(class, age, _, _)| (class, age, bank))),
        );
        order.sort_unstable();
        let mut earliest = Cycle::MAX;
        let mut issued = false;
        'banks: for &(_, _, bank) in &order {
            let (_, _, idx, hit) = best[bank].expect("ranked banks have candidates");
            let q = self.queues.mem()[idx];
            let cmd = if hit {
                let closed = self.page_policy == PagePolicy::Closed;
                match (q.req.kind, closed) {
                    (RequestKind::MemRead, false) => DramCommand::Read { bank },
                    (RequestKind::MemRead, true) => DramCommand::ReadAuto { bank },
                    (RequestKind::MemWrite, false) => DramCommand::Write { bank },
                    (RequestKind::MemWrite, true) => DramCommand::WriteAuto { bank },
                    (RequestKind::Pim(_), _) => unreachable!("PIM in MEM queue"),
                }
            } else if self.open_rows[bank].is_some() {
                DramCommand::Pre { bank }
            } else {
                DramCommand::Act {
                    bank,
                    row: q.decoded.row,
                }
            };
            if self.channel.can_issue(cmd, now) {
                match cmd {
                    DramCommand::Act { row, .. } => {
                        self.channel.issue(cmd, now);
                        self.note_mem_act(idx, bank, row);
                    }
                    DramCommand::Pre { .. } => {
                        self.channel.issue(cmd, now);
                    }
                    _ => {
                        let done = self.channel.issue(cmd, now).expect("column command");
                        let q = self.queues.remove_mem(idx);
                        self.note_mem_issued(&q, now);
                        self.stats
                            .mem_latency
                            .record(done.saturating_sub(q.arrived));
                        self.completions.push(Completion {
                            req: q.req,
                            at: done,
                        });
                    }
                }
                issued = true;
                break 'banks;
            }
            if let Some(at) = self.channel.earliest_issue(cmd, now) {
                earliest = earliest.min(at);
            }
        }
        self.scratch_best = best;
        self.scratch_order = order;
        if issued {
            None
        } else {
            Some(earliest)
        }
    }

    fn note_mem_act(&mut self, idx: usize, bank: usize, row: u32) {
        self.queues.mem_mut()[idx].opened_row = true;
        // Attribute the conflict to a mode switch if the switch closed this
        // very row (Figure 10b).
        if self.rows_at_switch[bank] == Some(row) {
            self.stats.switch_conflicts += 1;
        }
        self.rows_at_switch[bank] = None;
    }

    fn note_mem_issued(&mut self, q: &QueuedRequest, now: Cycle) {
        self.stats.mem_served += 1;
        // Hit/miss is per serviced request: a request whose service needed
        // one or more activates is a miss, anything else hit the open row.
        if !q.opened_row {
            self.stats.mem_row_hits += 1;
        } else {
            self.stats.mem_row_misses += 1;
        }
        let bypassed = self
            .queues
            .oldest_pim_age()
            .is_some_and(|pim_age| pim_age < q.age);
        self.policy.on_mem_issued(q, bypassed, now);
    }

    /// PIM-mode issue: FCFS on the PIM queue; all banks move in lock-step.
    ///
    /// Returns `None` when a command issued, else `Some(c)` with the
    /// earliest cycle the head's next command becomes legal (`Cycle::MAX`
    /// with an empty queue or a refresh in the way).
    fn issue_pim(&mut self, now: Cycle) -> Option<Cycle> {
        let Some(head) = self.queues.pim().front().copied() else {
            return Some(Cycle::MAX);
        };
        let cmd = head
            .req
            .kind
            .pim()
            .copied()
            .expect("PIM queue holds PIM requests");
        if self.channel.all_banks_open_to(cmd.row) {
            let op = DramCommand::PimOp {
                writes_row: cmd.op == PimOpKind::RfStore,
            };
            if self.channel.can_issue(op, now) {
                if self.burst_enabled && self.try_retire_burst(cmd.row, now) {
                    return None;
                }
                let done = self.channel.issue(op, now).expect("column command");
                let q = self.queues.pop_pim().expect("head exists");
                self.pim_engine
                    .execute(&cmd)
                    .expect("PIM RF discipline violated by workload");
                self.stats.pim_served += 1;
                if q.opened_row {
                    self.stats.pim_row_misses += 1;
                } else {
                    self.stats.pim_row_hits += 1;
                }
                let bypassed = self
                    .queues
                    .oldest_mem_age()
                    .is_some_and(|mem_age| mem_age < q.age);
                self.policy.on_pim_issued(&q, bypassed, now);
                self.stats
                    .pim_latency
                    .record(done.saturating_sub(q.arrived));
                self.push_pim_completion(q.req, done);
                return None;
            }
            return Some(self.channel.earliest_issue(op, now).unwrap_or(Cycle::MAX));
        }
        // Need to (re)open cmd.row on all banks: precharge any bank open to
        // another row, then all-bank activate.
        if self.channel.any_bank_open() {
            let pre = DramCommand::PreAll;
            if self.channel.can_issue(pre, now) {
                self.channel.issue(pre, now);
                return None;
            }
            return Some(self.channel.earliest_issue(pre, now).unwrap_or(Cycle::MAX));
        }
        let act = DramCommand::PimActAll { row: cmd.row };
        if self.channel.can_issue(act, now) {
            self.channel.issue(act, now);
            self.queues.mark_pim_head_opened();
            return None;
        }
        Some(self.channel.earliest_issue(act, now).unwrap_or(Cycle::MAX))
    }

    /// Attempts to retire a homogeneous run at the head of the PIM queue
    /// as one closed-form burst plan (DESIGN.md §4h). Called only on a
    /// cycle where the policy chose PIM and the head op is legal to issue
    /// right now, so the run's first op is already sanctioned. Returns
    /// `true` when a plan of at least two ops was created (the head op
    /// included), `false` — with no state change — when the policy
    /// declines, the same-row prefix is too short, or a refresh cuts the
    /// window down to a single op.
    fn try_retire_burst(&mut self, head_row: u32, now: Cycle) -> bool {
        self.refresh_open_rows();
        let policy_run = {
            let view = PolicyView {
                now,
                mode: self.mode,
                mem: self.queues.mem(),
                pim: self.queues.pim(),
                open_rows: &self.open_rows,
            };
            self.policy.stable_pim_run(&view)
        };
        if policy_run < 2 {
            return false;
        }
        let cap = usize::try_from(policy_run).unwrap_or(usize::MAX);
        // The channel state is only closed-form while the open row never
        // moves: the burst is the same-row prefix of the queue.
        let mut n = self
            .queues
            .pim()
            .iter()
            .take(cap)
            .take_while(|q| q.req.kind.pim().is_some_and(|c| c.row == head_row))
            .count();
        // Every issue in the series must land strictly before the next
        // refresh: at `next_refresh` the per-cycle path would set
        // `refresh_pending` and stall the queue.
        let (stride, _, _) = self.channel.pim_burst_timing();
        let nr = self.channel.next_refresh();
        if nr != Cycle::MAX {
            debug_assert!(nr > now, "refresh due but head op deemed legal");
            let max_n = ((nr - 1 - now) / stride + 1) as usize;
            n = n.min(max_n);
        }
        if n < 2 {
            return false;
        }
        self.retire_burst(n, now);
        true
    }

    /// Retires the leading `n` PIM ops analytically: issues the whole
    /// series on the channel in one bulk state application and opens the
    /// plan window that [`MemoryController::plan_replay_cycle`] drains.
    /// The issue series is `s_k = now + k · max(tCCDl, 1)`; per-op
    /// completions come from the channel ([`Channel::issue_pim_burst`]).
    ///
    /// Only the *channel* state and the queue pops are eager (both hidden
    /// behind the plan window — the channel is not consulted and the
    /// queue occupancy is virtualized until it closes). Every per-op
    /// *observable* — stats counters, latency sample, policy hook, engine
    /// op, completion hand-off — is deferred to the op's analytic issue
    /// cycle via `plan_ops`, so stats snapshots taken mid-plan match
    /// per-cycle stepping bit for bit. The head op issues right here: its
    /// issue cycle is the creation cycle itself.
    fn retire_burst(&mut self, n: usize, now: Cycle) {
        let (stride, _, _) = self.channel.pim_burst_timing();
        // Fixed for the whole span: MEM issues nothing in PIM mode and
        // arrivals are strictly younger than the current oldest.
        let oldest_mem = self.queues.oldest_mem_age();
        let mut writes = std::mem::take(&mut self.burst_writes);
        writes.clear();
        writes.extend(
            self.queues
                .pim()
                .iter()
                .take(n)
                .map(|q| q.req.kind.pim().is_some_and(|c| c.op == PimOpKind::RfStore)),
        );
        let mut dones = std::mem::take(&mut self.burst_completions);
        dones.clear();
        self.channel.issue_pim_burst(now, &writes, &mut dones);
        debug_assert!(self.plan_ops.is_empty(), "previous plan not drained");
        for &done in dones.iter() {
            let q = self.queues.pop_pim().expect("planned ops are queued");
            let bypassed = oldest_mem.is_some_and(|mem_age| mem_age < q.age);
            // The whole plan's completions are known right now; in batched
            // mode they leave as one retire-time timestamped batch and the
            // plan window never ticks to produce them.
            if self.ack_batching {
                self.push_pim_completion(q.req, done);
            }
            self.plan_ops.push_back((q, done, bypassed));
        }
        if self.ack_batching {
            self.mix.ack_batches += 1;
        }
        self.burst_writes = writes;
        self.burst_completions = dones;
        self.plan_first = now;
        self.plan_stride = stride;
        self.plan_until = now + (n as Cycle - 1) * stride + 1;
        self.plan_reserved = n - 1;
        self.mix.bursts_planned += 1;
        self.mix.burst_ops += n as u64;
        self.issue_planned_op(now);
    }

    /// Performs one planned op's observable issue effects at its analytic
    /// issue cycle `now` — exactly what the per-cycle path does when it
    /// issues a `PimOp`, minus the channel state transition (already
    /// applied in bulk at plan creation; the per-op command tally is
    /// re-attributed here via [`Channel::tally_pim_op`]).
    fn issue_planned_op(&mut self, now: Cycle) {
        let (q, done, bypassed) = self
            .plan_ops
            .pop_front()
            .expect("plan window outlived its ops");
        let cmd = q
            .req
            .kind
            .pim()
            .copied()
            .expect("PIM queue holds PIM requests");
        self.pim_engine
            .execute(&cmd)
            .expect("PIM RF discipline violated by workload");
        self.channel.tally_pim_op();
        self.stats.pim_served += 1;
        if q.opened_row {
            self.stats.pim_row_misses += 1;
        } else {
            self.stats.pim_row_hits += 1;
        }
        self.policy.on_pim_issued(&q, bypassed, now);
        self.stats
            .pim_latency
            .record(done.saturating_sub(q.arrived));
        // In batched mode the completion already left with the plan's
        // retire-time batch; only the eager oracle hands it off here.
        if !self.ack_batching {
            self.completions.push(Completion {
                req: q.req,
                at: done,
            });
        }
    }
}
