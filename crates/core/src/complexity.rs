//! Structural complexity accounting for mode-switch logic (Section VII-A).
//!
//! The paper synthesizes the FR-FCFS and F3FS mode-switch logic with Vitis
//! HLS on an AMD XCZU5EV FPGA, reporting 377/88 LUTs/FFs for FR-FCFS and
//! 275/143 for F3FS. We cannot run an FPGA flow here, so this module
//! provides the *substitute* documented in `DESIGN.md`: a structural count
//! of the storage and comparison elements each switch-logic design needs,
//! which exposes the same qualitative trade-off — F3FS swaps FR-FCFS's
//! per-bank conflict tracking (wide AND-reduction over per-bank state) for
//! a pair of counters and comparators, trading combinational area (LUTs)
//! for a few more flip-flops.

use serde::{Deserialize, Serialize};

/// Structural element counts for one mode-switch logic design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchLogicComplexity {
    /// Design name.
    pub name: &'static str,
    /// State bits (flip-flops).
    pub state_bits: u32,
    /// Comparators (age/ID and threshold compares).
    pub comparators: u32,
    /// Wide AND/OR reduction trees (over per-bank signals).
    pub reductions: u32,
    /// Counters that increment/reset.
    pub counters: u32,
}

/// Structural complexity of FR-FCFS's switch logic for `banks` banks:
/// a conflict bit and an issued-at-least-once bit per bank, per-bank
/// row comparators, and an all-banks AND reduction.
pub fn fr_fcfs_complexity(banks: u32) -> SwitchLogicComplexity {
    SwitchLogicComplexity {
        name: "FR-FCFS",
        // conflict bit + "has issued" bit per bank, plus the mode bit.
        state_bits: 2 * banks + 1,
        // one open-row vs. request-row comparator per bank, plus the
        // oldest-request mode compare.
        comparators: banks + 1,
        // AND over per-bank conflict bits, OR over pending masks.
        reductions: 2,
        counters: 0,
    }
}

/// Structural complexity of F3FS's switch logic: two CAP counters with
/// threshold comparators and an age comparator against the oldest
/// other-mode request; no per-bank tracking at all.
pub fn f3fs_complexity(cap_bits: u32) -> SwitchLogicComplexity {
    SwitchLogicComplexity {
        name: "F3FS",
        // two CAP counters + mode bit + registered CAP values.
        state_bits: 2 * cap_bits + 1 + 2 * cap_bits,
        // bypass-age comparator, two threshold comparators.
        comparators: 3,
        reductions: 0,
        counters: 2,
    }
}

impl SwitchLogicComplexity {
    /// A single scalar proxy for combinational area: comparators weigh
    /// most, reductions scale with bank count.
    pub fn combinational_score(&self, banks: u32) -> u32 {
        self.comparators * 8 + self.reductions * banks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f3fs_trades_logic_for_state() {
        // The paper's synthesis: F3FS has fewer LUTs (275 vs 377) but more
        // FFs (143 vs 88). Our structural proxy must show the same
        // direction: less combinational logic, more state than... note
        // FR-FCFS state is per-bank bits, so compare combinational only.
        let fr = fr_fcfs_complexity(16);
        let f3 = f3fs_complexity(10); // CAP up to 1024
        assert!(
            f3.combinational_score(16) < fr.combinational_score(16),
            "F3FS must need less combinational logic"
        );
        assert!(f3.counters > fr.counters, "F3FS adds counters");
        assert_eq!(fr.counters, 0);
    }

    #[test]
    fn fr_fcfs_scales_with_banks() {
        assert!(fr_fcfs_complexity(32).state_bits > fr_fcfs_complexity(16).state_bits);
        // F3FS is bank-count independent.
        assert_eq!(f3fs_complexity(8), f3fs_complexity(8));
    }
}
