//! Interconnect model: the crossbar between GPU SMs and memory partitions.
//!
//! Implements the paper's baseline single-VC interconnect ("VC1") and the
//! proposed configuration with a separate PIM virtual channel ("VC2",
//! Section V-A), including the modified iSlip arbitration that round-robins
//! between the two VCs on every link.
//!
//! The same [`Crossbar`] type serves as both the request network (SMs →
//! memory partitions) and the reply network (memory partitions → SMs).
//!
//! # Example
//!
//! ```
//! use pimsim_noc::Crossbar;
//! use pimsim_types::VcMode;
//!
//! // 80 SMs to 32 memory partitions, 512-entry port buffers, split VCs.
//! let xbar = Crossbar::new(80, 32, 512, VcMode::SplitPim);
//! assert_eq!(xbar.num_inputs(), 80);
//! assert_eq!(xbar.num_outputs(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossbar;

pub use crossbar::{Crossbar, CrossbarStats, VcIndex};
