//! Input-queued crossbar with virtual channels and iSlip-style arbitration.
//!
//! The paper's GPU connects SMs to memory partitions through a crossbar
//! (GPGPU-Sim's interconnect). We model an input-queued crossbar:
//!
//! * each input port has one FIFO per virtual channel (one VC in the
//!   baseline `VC1` configuration, separate MEM and PIM VCs in `VC2`);
//! * each output port grants at most one flit per cycle, selected by a
//!   rotating-priority (iSlip-style) arbiter over requesting inputs;
//! * per the paper's modification of iSlip (Section V-A), each input link
//!   records the VC it last served and switches to the other VC when that
//!   VC has traffic, giving MEM and PIM round-robin service on every link;
//! * ejection is subject to downstream backpressure: a grant only succeeds
//!   if the destination queue (per-VC under `VC2`) accepts the flit.
//!
//! A request occupies a single flit. Buffer capacity is expressed in flits
//! per input port, split evenly across VCs (Section V-A keeps *total*
//! buffering equal between VC1 and VC2).

use std::collections::VecDeque;

use pimsim_types::{Cycle, Request, VcMode};

/// Virtual-channel index within a port.
pub type VcIndex = usize;

/// A queued flit: a request plus its destination output port and the
/// cycle it entered the crossbar. The timestamp makes deferred
/// arbitration exact: a replayed cycle `g` must only see flits with
/// `inject_at <= g`, and because injections append and per-lane
/// timestamps are nondecreasing, the visible set is always a queue
/// prefix.
#[derive(Debug, Clone, Copy)]
struct Flit {
    req: Request,
    dest: usize,
    inject_at: Cycle,
}

/// Per-input-port state.
#[derive(Debug, Clone)]
struct InputPort {
    vcs: Vec<VecDeque<Flit>>,
    capacity_per_vc: usize,
    /// VC served most recently on this link (for the modified iSlip VC
    /// round-robin).
    last_vc: VcIndex,
}

impl InputPort {
    fn occupancy(&self) -> usize {
        self.vcs.iter().map(VecDeque::len).sum()
    }
}

/// Aggregate crossbar counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrossbarStats {
    /// Flits accepted into input buffers.
    pub injected: u64,
    /// Injections refused because the target VC buffer was full.
    pub inject_stalls: u64,
    /// Flits delivered to their output.
    pub ejected: u64,
    /// Grants refused by downstream backpressure.
    pub eject_stalls: u64,
    /// Sum over cycles of total buffered flits (divide by cycles for mean
    /// occupancy).
    pub occupancy_integral: u64,
}

/// An input-queued crossbar switch.
///
/// # Example
///
/// ```
/// use pimsim_noc::Crossbar;
/// use pimsim_types::{Request, RequestId, RequestKind, AppId, PhysAddr, VcMode};
///
/// let mut xbar = Crossbar::new(2, 2, 8, VcMode::Shared);
/// let req = Request::new(RequestId(0), AppId::GPU, RequestKind::MemRead, PhysAddr(0), 0, 0);
/// xbar.try_inject(0, 0, req, 1).unwrap();
/// let mut out = Vec::new();
/// xbar.step(0, |port, _vc, req| {
///     out.push((port, req.id));
///     true
/// });
/// assert_eq!(out.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    inputs: Vec<InputPort>,
    n_out: usize,
    /// Per-output rotating grant pointer over inputs.
    grant_ptr: Vec<usize>,
    vc_mode: VcMode,
    /// iSlip request-grant iterations per cycle. With one iteration an
    /// input that loses arbitration idles the cycle; further iterations
    /// let it propose its other VC's head toward a still-free output.
    iterations: usize,
    stats: CrossbarStats,
    /// Running count of buffered flits across all inputs, maintained on
    /// inject/eject so the per-cycle empty check is O(1).
    occupancy: usize,
    /// Bit `i` set iff input `i` buffers at least one flit, as 64-bit
    /// words. The proposal gather walks set bits instead of scanning
    /// every input port.
    busy_in: Vec<u64>,
    /// Buffered flits per `(dest, vc)` slot (`dest * vcs + vc`),
    /// maintained on inject/eject so the eject-credit horizon check is a
    /// counter read per destination lane instead of a queue scan.
    buffered: Vec<usize>,
    /// Buffered non-PIM flits, total. Any MEM flit in flight disables
    /// arbitration deferral (its L2-hit reply timing is not covered by
    /// the PIM completion-latency bound), so the check must be O(1).
    buffered_mem: usize,
    /// Input VC lanes currently at capacity. While zero, one more
    /// injection per input per cycle (the issue stage's K=1 bound) cannot
    /// be refused, so deferring ejections cannot change `can_inject`
    /// answers.
    full_lanes: usize,
    /// Words per input-set bitmask (`busy_in.len()`, and the stride of
    /// each output's stripe in the request scratch).
    in_words: usize,
    /// Arbitration scratch, reused across [`Crossbar::step`] calls so the
    /// per-cycle hot path allocates nothing.
    scratch: StepScratch,
}

/// Reusable per-step arbitration state (see [`Crossbar::step`]).
#[derive(Debug, Clone, Default)]
struct StepScratch {
    input_done: Vec<bool>,
    output_done: Vec<bool>,
    proposal: Vec<Option<VcIndex>>,
    /// Per-output requester set: output `o` owns the word stripe
    /// `[o * in_words, (o + 1) * in_words)`, bit `i` = input `i` proposed
    /// its head flit to `o` this iteration.
    request_words: Vec<u64>,
}

/// First set bit of `stripe` at or after `start`, wrapping below `start`
/// if none — the rotating-priority search order of an iSlip grant
/// pointer, word-at-a-time.
fn first_set_from(stripe: &[u64], start: usize) -> Option<usize> {
    let words = stripe.len();
    let (sw, sb) = (start / 64, start % 64);
    if sw < words {
        let masked = stripe[sw] & (!0u64 << sb);
        if masked != 0 {
            return Some(sw * 64 + masked.trailing_zeros() as usize);
        }
        for (w, &bits) in stripe.iter().enumerate().skip(sw + 1) {
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
    }
    // Wrap: bits strictly below `start`.
    for (w, &bits) in stripe.iter().enumerate().take(sw.min(words)) {
        if bits != 0 {
            return Some(w * 64 + bits.trailing_zeros() as usize);
        }
    }
    if sw < words && sb > 0 {
        let masked = stripe[sw] & !(!0u64 << sb);
        if masked != 0 {
            return Some(sw * 64 + masked.trailing_zeros() as usize);
        }
    }
    None
}

impl Crossbar {
    /// Creates a crossbar with `n_in` input ports, `n_out` output ports,
    /// and `buffer_entries` total flit slots per input port (split evenly
    /// across VCs).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `buffer_entries` cannot give
    /// every VC at least one slot.
    pub fn new(n_in: usize, n_out: usize, buffer_entries: usize, vc_mode: VcMode) -> Self {
        assert!(n_in > 0 && n_out > 0, "crossbar dimensions must be nonzero");
        let vcs = vc_mode.vc_count();
        let per_vc = buffer_entries / vcs;
        assert!(per_vc > 0, "buffer_entries must cover every VC");
        let in_words = n_in.div_ceil(64);
        Crossbar {
            inputs: (0..n_in)
                .map(|_| InputPort {
                    vcs: (0..vcs).map(|_| VecDeque::new()).collect(),
                    capacity_per_vc: per_vc,
                    last_vc: 0,
                })
                .collect(),
            n_out,
            grant_ptr: vec![0; n_out],
            vc_mode,
            iterations: 1,
            stats: CrossbarStats::default(),
            occupancy: 0,
            busy_in: vec![0; in_words],
            buffered: vec![0; n_out * vcs],
            buffered_mem: 0,
            full_lanes: 0,
            in_words,
            scratch: StepScratch {
                input_done: vec![false; n_in],
                output_done: vec![false; n_out],
                proposal: vec![None; n_in],
                request_words: vec![0; n_out * in_words],
            },
        }
    }

    /// Sets the number of iSlip iterations per cycle (at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations > 0, "iSlip needs at least one iteration");
        self.iterations = iterations;
        self
    }

    /// Number of input ports.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn num_outputs(&self) -> usize {
        self.n_out
    }

    /// Virtual channels per port under the current configuration.
    pub fn vc_count(&self) -> usize {
        self.vc_mode.vc_count()
    }

    /// The virtual channel a request uses under the current configuration.
    pub fn vc_for(&self, req: &Request) -> VcIndex {
        match self.vc_mode {
            VcMode::Shared => 0,
            VcMode::SplitPim => usize::from(req.kind.is_pim()),
        }
    }

    /// Whether `input` can accept a request of the given PIM-ness now.
    pub fn can_inject(&self, input: usize, is_pim: bool) -> bool {
        let vc = match self.vc_mode {
            VcMode::Shared => 0,
            VcMode::SplitPim => usize::from(is_pim),
        };
        let p = &self.inputs[input];
        p.vcs[vc].len() < p.capacity_per_vc
    }

    /// Injects `req` at `input` on cycle `now`, destined for output port
    /// `dest`.
    ///
    /// # Errors
    ///
    /// Returns the request back if the target VC buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `dest` is out of range.
    pub fn try_inject(
        &mut self,
        now: Cycle,
        input: usize,
        req: Request,
        dest: usize,
    ) -> Result<(), Request> {
        assert!(dest < self.n_out, "dest out of range");
        let vc = self.vc_for(&req);
        let p = &mut self.inputs[input];
        if p.vcs[vc].len() >= p.capacity_per_vc {
            self.stats.inject_stalls += 1;
            return Err(req);
        }
        debug_assert!(
            p.vcs[vc].back().is_none_or(|f| f.inject_at <= now),
            "per-lane inject timestamps must be nondecreasing"
        );
        p.vcs[vc].push_back(Flit {
            req,
            dest,
            inject_at: now,
        });
        if p.vcs[vc].len() == p.capacity_per_vc {
            self.full_lanes += 1;
        }
        self.busy_in[input / 64] |= 1 << (input % 64);
        self.occupancy += 1;
        self.buffered[dest * self.vc_mode.vc_count() + vc] += 1;
        if !req.kind.is_pim() {
            self.buffered_mem += 1;
        }
        self.stats.injected += 1;
        Ok(())
    }

    /// Buffered flits headed for `(dest, vc)`. O(1): maintained on
    /// inject/eject.
    pub fn buffered_for(&self, dest: usize, vc: VcIndex) -> usize {
        self.buffered[dest * self.vc_mode.vc_count() + vc]
    }

    /// Whether any buffered flit targets `dest`, across VCs.
    pub fn buffered_dest(&self, dest: usize) -> bool {
        let vcs = self.vc_mode.vc_count();
        self.buffered[dest * vcs..(dest + 1) * vcs]
            .iter()
            .any(|&n| n > 0)
    }

    /// Buffered non-PIM flits, total. O(1).
    pub fn buffered_mem(&self) -> usize {
        self.buffered_mem
    }

    /// Whether any input VC lane is at capacity. O(1). While `false`,
    /// deferring ejections cannot change an injection verdict before the
    /// next per-cycle check, because each input injects at most one flit
    /// per cycle.
    pub fn has_full_input_lane(&self) -> bool {
        self.full_lanes > 0
    }

    /// Total flits buffered at `input`.
    pub fn input_occupancy(&self, input: usize) -> usize {
        self.inputs[input].occupancy()
    }

    /// Total flits buffered in the crossbar. O(1): maintained on
    /// inject/eject.
    pub fn total_occupancy(&self) -> usize {
        debug_assert_eq!(
            self.occupancy,
            self.inputs.iter().map(InputPort::occupancy).sum::<usize>()
        );
        self.occupancy
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CrossbarStats {
        self.stats
    }

    /// The earliest cycle at or after `now` at which this crossbar can do
    /// work, or `None` while it is empty. An input-queued crossbar has no
    /// internal timers: it is active exactly when it buffers flits, so the
    /// answer is always `now` or never. (The grant pointers and VC
    /// round-robin state only advance on successful grants, so idle cycles
    /// leave the arbiter state untouched — skipping them is exact.)
    pub fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        (self.total_occupancy() > 0).then_some(now)
    }

    /// Advances the crossbar over a span of cycles it is known to be
    /// quiet, the interconnect mirror of the controller's
    /// `quiet_replay_span`: returns `true` — and is exactly equivalent to
    /// calling [`Crossbar::step`] once per cycle of the span — iff the
    /// crossbar buffers nothing.
    ///
    /// Exactness argument: an empty arbitration cycle grants nothing,
    /// leaves every grant pointer and VC round-robin pointer untouched
    /// (iSlip pointers only advance on successful grants), and adds zero
    /// to the occupancy integral, so any number of them collapse to a
    /// no-op. With flits buffered the span cannot be collapsed (grants
    /// would fire and move arbiter state), so the caller must fall back to
    /// per-cycle stepping; `false` signals that without touching anything.
    pub fn skip_quiet_span(&mut self, _first: Cycle, _cycles: u64) -> bool {
        if self.occupancy != 0 {
            return false;
        }
        debug_assert_eq!(
            self.inputs.iter().map(InputPort::occupancy).sum::<usize>(),
            0,
            "occupancy counter out of sync with input buffers"
        );
        true
    }

    /// Whether lane `vc` of `input` has a head flit visible at cycle
    /// `now`. Per-lane timestamps are nondecreasing, so an invisible head
    /// means the whole lane is invisible.
    fn lane_visible(&self, input: usize, vc: VcIndex, now: Cycle) -> bool {
        self.inputs[input].vcs[vc]
            .front()
            .is_some_and(|f| f.inject_at <= now)
    }

    /// Head-flit VC an input proposes on cycle `now`: the modified iSlip
    /// VC round-robin (switch away from `last_vc` when the other VC has
    /// traffic). Only flits injected at or before `now` participate, so a
    /// replayed cycle sees exactly what the live cycle saw.
    fn propose_vc(&self, input: usize, now: Cycle) -> Option<VcIndex> {
        let p = &self.inputs[input];
        match p.vcs.len() {
            1 => self.lane_visible(input, 0, now).then_some(0),
            _ => {
                let other = 1 - p.last_vc;
                if self.lane_visible(input, other, now) {
                    Some(other)
                } else if self.lane_visible(input, p.last_vc, now) {
                    Some(p.last_vc)
                } else {
                    None
                }
            }
        }
    }

    /// Runs one arbitration cycle.
    ///
    /// `eject(output, vc, request)` is called for each granted flit and
    /// must return `true` to accept it (downstream queue has space). On
    /// `false`, the flit stays queued and the grant pointer does not
    /// advance (iSlip only advances pointers on successful grants).
    pub fn step<F>(&mut self, now: Cycle, eject: F)
    where
        F: FnMut(usize, VcIndex, &Request) -> bool,
    {
        if self.occupancy == 0 {
            // Nothing buffered: arbitration would grant nothing and leave
            // every grant pointer and VC round-robin untouched, so the
            // whole step reduces to the (zero) occupancy-integral update.
            return;
        }
        self.stats.occupancy_integral += self.occupancy as u64;
        self.arbitrate(now, eject);
    }

    /// Replays the arbitration cycle `at` after its live step was
    /// deferred. `injected_upto` is `stats().injected` captured when the
    /// cycle was deferred; because replay runs in chronological order,
    /// the flits the live cycle would have seen are exactly the
    /// `injected_upto - stats.ejected` oldest buffered ones, and the
    /// per-flit `inject_at` gate inside arbitration enforces precisely
    /// that prefix. The occupancy integral is advanced by the visible
    /// count, matching the live step's contribution bit for bit.
    pub fn replay_cycle<F>(&mut self, at: Cycle, injected_upto: u64, eject: F)
    where
        F: FnMut(usize, VcIndex, &Request) -> bool,
    {
        let visible = injected_upto.saturating_sub(self.stats.ejected);
        if visible == 0 {
            // The live cycle would have early-returned on an empty
            // crossbar without touching arbiter state.
            return;
        }
        self.stats.occupancy_integral += visible;
        self.arbitrate(at, eject);
    }

    /// One iSlip arbitration pass over the flits visible at `now`.
    fn arbitrate<F>(&mut self, now: Cycle, mut eject: F)
    where
        F: FnMut(usize, VcIndex, &Request) -> bool,
    {
        let n_in = self.inputs.len();
        // Borrow the scratch out of self for the duration of the step so
        // the arbitration loops can mutate `self.inputs` freely; the
        // buffers go back at the end, so steady-state steps never allocate.
        let mut scratch = std::mem::take(&mut self.scratch);
        let input_done = &mut scratch.input_done;
        let output_done = &mut scratch.output_done;
        input_done.clear();
        input_done.resize(n_in, false);
        output_done.clear();
        output_done.resize(self.n_out, false);
        scratch.proposal.resize(n_in, None);
        let in_words = self.in_words;
        scratch.request_words.resize(self.n_out * in_words, 0);
        for _iter in 0..self.iterations {
            // Gather one proposal per ungranted input toward an
            // ungranted output: the VC round-robin choice first, falling
            // back to the other VC if its head targets a free output.
            // Only inputs with buffered flits (the `busy_in` set) are
            // visited, in the same ascending order as the old full scan.
            let proposal = &mut scratch.proposal;
            let request_words = &mut scratch.request_words;
            proposal.fill(None);
            request_words.fill(0);
            let mut any_requests = false;
            for (wi, &word) in self.busy_in.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let i = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if input_done[i] {
                        continue;
                    }
                    let Some(first) = self.propose_vc(i, now) else {
                        continue;
                    };
                    let n_vcs = self.inputs[i].vcs.len();
                    // The preferred VC, then any other VC with a visible
                    // head.
                    for off in 0..n_vcs {
                        let vc = if off == 0 {
                            first
                        } else {
                            let other = (first + off) % n_vcs;
                            if !self.lane_visible(i, other, now) {
                                continue;
                            }
                            other
                        };
                        let dest = self.inputs[i].vcs[vc]
                            .front()
                            .expect("candidate VC must be nonempty")
                            .dest;
                        if !output_done[dest] {
                            proposal[i] = Some(vc);
                            request_words[dest * in_words + i / 64] |= 1 << (i % 64);
                            any_requests = true;
                            break;
                        }
                    }
                }
            }
            if !any_requests {
                break;
            }
            // Output arbitration: rotating priority over inputs, advanced
            // only on a successful grant. The requester set is a bitmask,
            // so the rotating search is find-first-set instead of a
            // membership scan.
            for out in 0..self.n_out {
                if output_done[out] {
                    continue;
                }
                let stripe = &request_words[out * in_words..(out + 1) * in_words];
                let Some(cand) = first_set_from(stripe, self.grant_ptr[out]) else {
                    continue;
                };
                let vc = proposal[cand].expect("granted input must have proposed");
                let flit = *self.inputs[cand].vcs[vc]
                    .front()
                    .expect("candidate VC must be nonempty");
                debug_assert_eq!(flit.dest, out);
                if eject(out, vc, &flit.req) {
                    if self.inputs[cand].vcs[vc].len() == self.inputs[cand].capacity_per_vc {
                        self.full_lanes -= 1;
                    }
                    self.inputs[cand].vcs[vc].pop_front();
                    if self.inputs[cand].occupancy() == 0 {
                        self.busy_in[cand / 64] &= !(1 << (cand % 64));
                    }
                    self.occupancy -= 1;
                    self.buffered[out * self.vc_mode.vc_count() + vc] -= 1;
                    if !flit.req.kind.is_pim() {
                        self.buffered_mem -= 1;
                    }
                    self.inputs[cand].last_vc = vc;
                    self.grant_ptr[out] = (cand + 1) % n_in;
                    self.stats.ejected += 1;
                    input_done[cand] = true;
                    output_done[out] = true;
                } else {
                    self.stats.eject_stalls += 1;
                    // Backpressured output: no point retrying it this
                    // cycle.
                    output_done[out] = true;
                }
                // One grant attempt per output per iteration.
            }
        }
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_types::{AppId, PhysAddr, PimCommand, PimOpKind, RequestId, RequestKind};

    fn mem_req(id: u64, src: u16) -> Request {
        Request::new(
            RequestId(id),
            AppId::GPU,
            RequestKind::MemRead,
            PhysAddr(id * 32),
            src,
            0,
        )
    }

    fn pim_req(id: u64, src: u16) -> Request {
        let cmd = PimCommand {
            op: PimOpKind::RfLoad,
            channel: 0,
            row: 0,
            col: 0,
            rf_entry: 0,
            block_start: false,
            block_id: 0,
        };
        Request::new(
            RequestId(id),
            AppId::PIM,
            RequestKind::Pim(cmd),
            PhysAddr(0),
            src,
            0,
        )
    }

    #[test]
    fn delivers_a_flit_end_to_end() {
        let mut x = Crossbar::new(4, 2, 8, VcMode::Shared);
        x.try_inject(0, 2, mem_req(7, 2), 1).unwrap();
        let mut seen = Vec::new();
        x.step(0, |out, vc, req| {
            seen.push((out, vc, req.id.0));
            true
        });
        assert_eq!(seen, vec![(1, 0, 7)]);
        assert_eq!(x.total_occupancy(), 0);
    }

    #[test]
    fn one_grant_per_output_per_cycle() {
        let mut x = Crossbar::new(4, 1, 8, VcMode::Shared);
        for i in 0..4 {
            x.try_inject(0, i, mem_req(i as u64, i as u16), 0).unwrap();
        }
        let mut count = 0;
        x.step(0, |_, _, _| {
            count += 1;
            true
        });
        assert_eq!(count, 1);
        assert_eq!(x.total_occupancy(), 3);
    }

    #[test]
    fn grant_pointer_rotates_fairly() {
        let mut x = Crossbar::new(3, 1, 8, VcMode::Shared);
        // Keep all inputs loaded; the output must serve them round-robin.
        for round in 0..9u64 {
            for i in 0..3 {
                let _ = x.try_inject(0, i, mem_req(round * 3 + i as u64, i as u16), 0);
            }
        }
        let mut served = Vec::new();
        for cyc in 0..9 {
            x.step(cyc, |_, _, req| {
                served.push(req.src_port);
                true
            });
        }
        let counts = [0u16, 1, 2].map(|p| served.iter().filter(|&&s| s == p).count());
        assert_eq!(counts, [3, 3, 3], "iSlip must serve equal loads equally");
    }

    #[test]
    fn backpressure_keeps_flit_queued() {
        let mut x = Crossbar::new(1, 1, 8, VcMode::Shared);
        x.try_inject(0, 0, mem_req(1, 0), 0).unwrap();
        x.step(0, |_, _, _| false);
        assert_eq!(x.total_occupancy(), 1, "refused flit must stay");
        let mut got = 0;
        x.step(1, |_, _, _| {
            got += 1;
            true
        });
        assert_eq!(got, 1);
        assert_eq!(x.stats().eject_stalls, 1);
    }

    #[test]
    fn full_vc_rejects_injection() {
        let mut x = Crossbar::new(1, 1, 2, VcMode::Shared);
        x.try_inject(0, 0, mem_req(0, 0), 0).unwrap();
        x.try_inject(0, 0, mem_req(1, 0), 0).unwrap();
        assert!(x.try_inject(0, 0, mem_req(2, 0), 0).is_err());
        assert!(!x.can_inject(0, false));
        assert_eq!(x.stats().inject_stalls, 1);
    }

    #[test]
    fn split_vcs_isolate_pim_from_mem() {
        // VC2: fill the PIM VC completely; MEM injections must still work.
        let mut x = Crossbar::new(1, 1, 8, VcMode::SplitPim);
        for i in 0..4 {
            x.try_inject(0, 0, pim_req(i, 0), 0).unwrap();
        }
        assert!(!x.can_inject(0, true), "PIM VC full");
        assert!(x.can_inject(0, false), "MEM VC unaffected");
        x.try_inject(0, 0, mem_req(100, 0), 0).unwrap();
    }

    #[test]
    fn vc2_alternates_mem_and_pim_on_a_link() {
        let mut x = Crossbar::new(1, 1, 64, VcMode::SplitPim);
        for i in 0..4 {
            x.try_inject(0, 0, pim_req(i, 0), 0).unwrap();
            x.try_inject(0, 0, mem_req(100 + i, 0), 0).unwrap();
        }
        let mut kinds = Vec::new();
        for cyc in 0..8 {
            x.step(cyc, |_, _, req| {
                kinds.push(req.kind.is_pim());
                true
            });
        }
        // Round-robin between VCs: strict alternation while both have
        // traffic.
        for w in kinds.windows(2).take(6) {
            assert_ne!(w[0], w[1], "VCs must alternate under load: {kinds:?}");
        }
    }

    #[test]
    fn shared_vc_lets_pim_block_mem() {
        // The VC1 pathology from the paper: PIM flits ahead of a MEM flit
        // in the same FIFO deny it service while the MC ejection is slow.
        let mut x = Crossbar::new(1, 1, 16, VcMode::Shared);
        for i in 0..8 {
            x.try_inject(0, 0, pim_req(i, 0), 0).unwrap();
        }
        x.try_inject(0, 0, mem_req(100, 0), 0).unwrap();
        // Downstream accepts nothing (e.g. PIM queue full at the MC).
        for cyc in 0..4 {
            x.step(cyc, |_, _, req| !req.kind.is_pim());
        }
        // The MEM request is still stuck behind PIM heads.
        assert_eq!(x.total_occupancy(), 9);
    }

    #[test]
    fn second_islip_iteration_recovers_lost_inputs() {
        // Input 0 and 1 both propose their PIM heads to output 0; with two
        // VCs and two iterations, the loser's MEM head (to output 1) still
        // goes through in the same cycle.
        let mut one = Crossbar::new(2, 2, 64, VcMode::SplitPim);
        let mut two = Crossbar::new(2, 2, 64, VcMode::SplitPim).with_iterations(2);
        for x in [&mut one, &mut two] {
            for i in 0..2 {
                x.try_inject(0, i, pim_req(i as u64, i as u16), 0).unwrap();
                x.try_inject(0, i, mem_req(10 + i as u64, i as u16), 1)
                    .unwrap();
            }
        }
        let count = |x: &mut Crossbar| {
            let mut n = 0;
            x.step(0, |_, _, _| {
                n += 1;
                true
            });
            n
        };
        let n1 = count(&mut one);
        let n2 = count(&mut two);
        assert!(n2 > n1, "two iterations must deliver more ({n1} vs {n2})");
        assert_eq!(n2, 2, "both outputs busy with two iterations");
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_rejected() {
        let _ = Crossbar::new(2, 2, 8, VcMode::Shared).with_iterations(0);
    }

    #[test]
    fn occupancy_integral_accumulates() {
        let mut x = Crossbar::new(1, 1, 8, VcMode::Shared);
        x.try_inject(0, 0, mem_req(0, 0), 0).unwrap();
        x.step(0, |_, _, _| false);
        x.step(1, |_, _, _| false);
        assert_eq!(x.stats().occupancy_integral, 2);
    }

    #[test]
    fn skip_quiet_span_matches_stepping_empty_cycles() {
        // Build two crossbars with identical mid-rotation arbiter state,
        // advance one with per-cycle empty steps and the other with a
        // bulk quiet span, then check the next contended cycle grants
        // identically (pointer state preserved) and stats agree.
        let build = || {
            let mut x = Crossbar::new(3, 1, 8, VcMode::Shared);
            for i in 0..3 {
                x.try_inject(0, i, mem_req(i as u64, 0), 0).unwrap();
            }
            // One contended cycle leaves the output grant pointer mid-way.
            x.step(0, |_, _, _| true);
            // Drain the rest so the span is genuinely quiet.
            x.step(1, |_, _, _| true);
            x.step(2, |_, _, _| true);
            assert_eq!(x.total_occupancy(), 0);
            x
        };
        let mut stepped = build();
        let mut skipped = build();
        for cyc in 3..40 {
            stepped.step(cyc, |_, _, _| true);
        }
        assert!(skipped.skip_quiet_span(3, 37), "empty crossbar must skip");
        assert_eq!(stepped.stats(), skipped.stats());
        for x in [&mut stepped, &mut skipped] {
            for i in 0..3 {
                x.try_inject(0, i, mem_req(10 + i as u64, 0), 0).unwrap();
            }
        }
        let grant = |x: &mut Crossbar| {
            let mut got = Vec::new();
            x.step(40, |out, vc, req| {
                got.push((out, vc, req.id.0));
                true
            });
            got
        };
        assert_eq!(
            grant(&mut stepped),
            grant(&mut skipped),
            "arbiter state must be untouched by the bulk skip"
        );
    }

    #[test]
    fn skip_quiet_span_refuses_buffered_flits() {
        let mut x = Crossbar::new(2, 1, 8, VcMode::Shared);
        x.try_inject(0, 0, mem_req(1, 1), 0).unwrap();
        assert!(!x.skip_quiet_span(0, 5), "buffered flit blocks the skip");
        assert_eq!(x.total_occupancy(), 1, "refusal must not touch state");
    }
}
