//! The collaborative scenario: a GPT-3-6.7B-like decoder layer
//! (Section III-B, "Collaborative").
//!
//! The paper overlaps QKV generation (three GEMMs on the GPU SMs) with
//! multi-head attention (GEMV + softmax on PIM), following AttAcc/NeuPIMs.
//! Model shape: batch 128, sequence length 1024, embedding 4096, with the
//! KV cache loaded on demand.
//!
//! The scenario's defining property (Section VI-B): **QKV generation is
//! the longer-running kernel, but the PIM kernel produces far more
//! traffic** — so naive policies let MHA's PIM stream throttle the GEMMs
//! that the end-to-end latency actually depends on.

use pimsim_gpu::PimKernelModel;
use pimsim_gpu::{GpuKernelParams, PimKernelSpec, PimPhase, SyntheticGpuKernel};

/// The two halves of the collaborative scenario.
#[derive(Debug, Clone)]
pub struct LlmScenario {
    /// QKV generation: three chained GEMMs on the GPU SMs (modeled as one
    /// request stream with GEMM-like locality).
    pub qkv: SyntheticGpuKernel,
    /// Multi-head attention: GEMV + softmax on the PIM FUs.
    pub mha: PimKernelModel,
}

/// GEMM-like parameters for QKV generation on `num_sms` SMs.
///
/// GEMMs are blocked: high L2 reuse (tiles are re-touched), long
/// sequential runs (row-major tile loads), moderate per-SM pacing (the
/// math pipeline is busy between loads).
pub fn qkv_params(scale: f64) -> GpuKernelParams {
    assert!(scale > 0.0, "scale must be positive");
    GpuKernelParams {
        name: "QKV-GEMM".into(),
        // Three GEMMs' worth of traffic; tuned so QKV alone runs longer
        // than MHA alone (the paper's premise) while the L2 filters most
        // of it (GEMM tiles reside in cache).
        total_requests: ((180_000_f64) * scale).max(1.0) as u64,
        issue_interval: 3,
        read_fraction: 0.85,
        footprint_bytes: 96 * 1024 * 1024,
        row_locality: 0.9,
        l2_reuse: 0.85,
        streams_per_slot: 4,
        seed: 0x11f,
    }
}

/// GEMV/softmax spec for MHA on `channels` channels.
///
/// GEMV over the on-demand KV cache: streaming loads with accumulating
/// computes; the softmax adds a short store phase. Less total *time* than
/// QKV, but a much higher injection rate (every op is a PIM store, nothing
/// is cached).
pub fn mha_spec(channels: usize, scale: f64) -> PimKernelSpec {
    assert!(scale > 0.0, "scale must be positive");
    use PimPhase::{Compute, Load, Store};
    PimKernelSpec {
        name: "MHA-GEMV".into(),
        pattern: vec![Load, Compute, Compute, Compute, Store],
        ops_per_block: 16,
        blocks_per_channel: ((64_f64) * scale).max(1.0) as u64,
        channels,
        rf_entries_per_bank: 8,
        max_row: 1 << 13,
    }
}

/// Builds the collaborative scenario: QKV on `gpu_sms` SMs, MHA on
/// `channels / warps_per_sm` SMs.
pub fn llm_scenario(
    gpu_sms: usize,
    channels: usize,
    warps_per_sm: usize,
    max_outstanding: u32,
    scale: f64,
) -> LlmScenario {
    LlmScenario {
        qkv: SyntheticGpuKernel::new(qkv_params(scale), gpu_sms),
        mha: PimKernelModel::new(
            mha_spec(channels, scale),
            channels / warps_per_sm,
            warps_per_sm,
            max_outstanding,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_gpu::KernelModel;

    #[test]
    fn scenario_builds_with_paper_shape() {
        let s = llm_scenario(72, 32, 4, 256, 0.1);
        assert_eq!(s.qkv.num_slots(), 72);
        assert_eq!(s.mha.num_slots(), 8);
    }

    #[test]
    fn qkv_is_cache_friendly_mha_is_not_cacheable() {
        let p = qkv_params(1.0);
        assert!(p.l2_reuse > 0.5, "GEMMs tile well in the L2");
        // MHA is PIM: bypasses caches by construction.
        let m = mha_spec(32, 1.0);
        assert!(m.total_ops() > 0);
    }

    #[test]
    fn specs_validate() {
        qkv_params(1.0).validate();
        mha_spec(32, 1.0).validate();
        qkv_params(0.05).validate();
    }
}
