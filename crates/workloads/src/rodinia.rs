//! The 20 Rodinia GPU benchmarks of Table II, as calibrated synthetic
//! kernel models.
//!
//! Calibration targets the qualitative characterization of Figure 4:
//!
//! * G4 (cfd) has the highest *interconnect* request rate;
//! * G15 (nn) has the highest *DRAM* request rate (streaming, no reuse);
//! * G6 (gaussian) has the highest bank-level parallelism and poor row
//!   locality (the paper reports an average RBHR of 32%);
//! * G17 (pathfinder) has the highest row-buffer hit rate;
//! * G10 (huffman) is compute-intensive (Figure 13 uses it as the
//!   low-memory-intensity extreme);
//! * G19 (srad_v2) produces heavy interconnect traffic that the L2
//!   filters well (the "common case of moderate memory traffic").

use pimsim_gpu::{GpuKernelParams, SyntheticGpuKernel};
use serde::{Deserialize, Serialize};

/// Identifier of a Rodinia benchmark (G1..G20 in the paper's tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuBenchmark(pub u8);

impl GpuBenchmark {
    /// All twenty benchmarks, G1..G20.
    pub fn all() -> Vec<GpuBenchmark> {
        (1..=20).map(GpuBenchmark).collect()
    }

    /// The benchmark's name per Table II.
    pub fn name(self) -> &'static str {
        match self.0 {
            1 => "b+tree",
            2 => "backprop",
            3 => "bfs",
            4 => "cfd",
            5 => "dwt2d",
            6 => "gaussian",
            7 => "heartwall",
            8 => "hotspot",
            9 => "hotspot3D",
            10 => "huffman",
            11 => "kmeans",
            12 => "lavaMD",
            13 => "lud",
            14 => "mummergpu",
            15 => "nn",
            16 => "nw",
            17 => "pathfinder",
            18 => "srad_v1",
            19 => "srad_v2",
            20 => "streamcluster",
            _ => panic!("GpuBenchmark index out of range: {}", self.0),
        }
    }

    /// The paper's label, `G1`..`G20`.
    pub fn label(self) -> String {
        format!("G{}", self.0)
    }
}

impl std::fmt::Display for GpuBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.label(), self.name())
    }
}

/// Calibrated parameters for `bench`, with work scaled by `scale`
/// (1.0 = the default fast-sweep size).
///
/// # Panics
///
/// Panics if `bench` is outside `G1..G20` or `scale` is not positive.
pub fn gpu_kernel_params(bench: GpuBenchmark, scale: f64) -> GpuKernelParams {
    assert!(scale > 0.0, "scale must be positive");
    // (requests, interval, read_frac, footprint MiB, row_loc, l2_reuse, streams)
    // Issue intervals fold in the L1 cache's filtering and the kernels'
    // instruction mix (we model neither explicitly): a GPU SM injects into
    // the interconnect far below one request per cycle, which is what lets
    // an 8-SM PIM kernel rival an 80-SM GPU kernel's interconnect arrival
    // rate (Figure 4a: PIM is only 17.8% below GPU-80 on average).
    let (reqs, interval, read, foot_mib, row, l2, streams) = match bench.0 {
        1 => (30_000, 10, 0.90, 16, 0.30, 0.50, 4), // b+tree: pointer chasing
        2 => (40_000, 8, 0.60, 24, 0.85, 0.30, 4),  // backprop: streaming
        3 => (35_000, 8, 0.85, 32, 0.20, 0.40, 8),  // bfs: irregular
        4 => (60_000, 2, 0.75, 24, 0.70, 0.60, 8),  // cfd: peak icnt rate
        5 => (30_000, 10, 0.65, 16, 0.80, 0.50, 4), // dwt2d
        6 => (45_000, 5, 0.70, 48, 0.22, 0.30, 16), // gaussian: peak BLP, poor RBHR
        7 => (15_000, 30, 0.80, 8, 0.60, 0.60, 2),  // heartwall: compute-heavy
        8 => (25_000, 15, 0.65, 16, 0.80, 0.70, 4), // hotspot
        9 => (35_000, 10, 0.70, 24, 0.70, 0.50, 6), // hotspot3D
        10 => (8_000, 100, 0.80, 4, 0.50, 0.50, 2), // huffman: compute-intensive
        11 => (55_000, 5, 0.85, 48, 0.60, 0.15, 8), // kmeans: heavy DRAM traffic
        12 => (12_000, 40, 0.75, 8, 0.60, 0.70, 2), // lavaMD: compute-heavy
        13 => (25_000, 15, 0.70, 16, 0.70, 0.60, 4), // lud
        14 => (35_000, 10, 0.90, 32, 0.30, 0.35, 6), // mummergpu: irregular
        15 => (60_000, 3, 0.95, 64, 0.80, 0.02, 8), // nn: peak DRAM rate, no reuse
        16 => (25_000, 12, 0.65, 16, 0.60, 0.50, 4), // nw
        17 => (50_000, 5, 0.75, 24, 0.97, 0.30, 2), // pathfinder: peak RBHR
        18 => (30_000, 10, 0.70, 16, 0.80, 0.50, 4), // srad_v1
        19 => (60_000, 3, 0.65, 32, 0.85, 0.75, 4), // srad_v2: icnt-heavy, L2-filtered
        20 => (35_000, 8, 0.80, 24, 0.75, 0.40, 4), // streamcluster
        _ => panic!("GpuBenchmark index out of range: {}", bench.0),
    };
    GpuKernelParams {
        name: bench.name().to_owned(),
        total_requests: ((reqs as f64) * scale).max(1.0) as u64,
        issue_interval: interval,
        read_fraction: read,
        footprint_bytes: foot_mib * 1024 * 1024,
        row_locality: row,
        l2_reuse: l2,
        streams_per_slot: streams,
        seed: 0xC0FFEE ^ u64::from(bench.0),
    }
}

/// Builds the kernel model for `bench` on `num_sms` SMs.
pub fn gpu_kernel(bench: GpuBenchmark, num_sms: usize, scale: f64) -> SyntheticGpuKernel {
    SyntheticGpuKernel::new(gpu_kernel_params(bench, scale), num_sms)
}

/// The full suite, in order G1..G20.
pub fn rodinia_suite(num_sms: usize, scale: f64) -> Vec<SyntheticGpuKernel> {
    GpuBenchmark::all()
        .into_iter()
        .map(|b| gpu_kernel(b, num_sms, scale))
        .collect()
}

/// The paper's "most memory intensive" picks (Figure 5): cfd (icnt rate),
/// gaussian (BLP), nn (DRAM rate), pathfinder (RBHR).
pub fn memory_intensive_picks() -> [GpuBenchmark; 4] {
    [
        GpuBenchmark(4),
        GpuBenchmark(6),
        GpuBenchmark(15),
        GpuBenchmark(17),
    ]
}

/// Figure 13's kernel slice: compute-intensive G10 plus memory-intensive
/// G6, G11, G17, G19.
pub fn figure13_picks() -> [GpuBenchmark; 5] {
    [
        GpuBenchmark(10),
        GpuBenchmark(6),
        GpuBenchmark(11),
        GpuBenchmark(17),
        GpuBenchmark(19),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_gpu::KernelModel;

    #[test]
    fn suite_has_twenty_distinct_kernels() {
        let suite = rodinia_suite(8, 0.1);
        assert_eq!(suite.len(), 20);
        let mut names: Vec<&str> = suite.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "benchmark names must be unique");
    }

    #[test]
    fn all_parameters_validate() {
        for b in GpuBenchmark::all() {
            gpu_kernel_params(b, 1.0).validate();
            gpu_kernel_params(b, 0.05).validate();
        }
    }

    #[test]
    fn labels_match_paper_numbering() {
        assert_eq!(GpuBenchmark(4).label(), "G4");
        assert_eq!(GpuBenchmark(4).name(), "cfd");
        assert_eq!(GpuBenchmark(17).name(), "pathfinder");
        assert_eq!(GpuBenchmark(10).to_string(), "G10 (huffman)");
    }

    #[test]
    fn calibration_extremes_hold() {
        // G10 must be the least intensive (largest interval); G4/G15/G19
        // the most intensive (interval 1).
        let intervals: Vec<u64> = GpuBenchmark::all()
            .into_iter()
            .map(|b| gpu_kernel_params(b, 1.0).issue_interval)
            .collect();
        let g10 = intervals[9];
        assert_eq!(g10, *intervals.iter().max().unwrap());
        assert_eq!(gpu_kernel_params(GpuBenchmark(4), 1.0).issue_interval, 2);
        // G17 has the highest row locality; G15 the lowest L2 reuse.
        let rows: Vec<f64> = GpuBenchmark::all()
            .into_iter()
            .map(|b| gpu_kernel_params(b, 1.0).row_locality)
            .collect();
        assert_eq!(rows[16], rows.iter().cloned().fold(0.0, f64::max));
        let l2s: Vec<f64> = GpuBenchmark::all()
            .into_iter()
            .map(|b| gpu_kernel_params(b, 1.0).l2_reuse)
            .collect();
        assert_eq!(l2s[14], l2s.iter().cloned().fold(1.0, f64::min));
        // G6 has the most streams (BLP).
        let streams: Vec<usize> = GpuBenchmark::all()
            .into_iter()
            .map(|b| gpu_kernel_params(b, 1.0).streams_per_slot)
            .collect();
        assert_eq!(streams[5], *streams.iter().max().unwrap());
    }

    #[test]
    fn scale_grows_request_counts() {
        let small = gpu_kernel_params(GpuBenchmark(1), 0.5).total_requests;
        let big = gpu_kernel_params(GpuBenchmark(1), 2.0).total_requests;
        assert_eq!(big, small * 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_benchmark_panics() {
        let _ = gpu_kernel_params(GpuBenchmark(21), 1.0);
    }
}
