//! A second collaborative scenario (extension): FFT split across GPU SMs
//! and PIM FUs, in the spirit of Pimacolaba (Ibrahim & Aga, MEMSYS 2024),
//! which the paper cites as a collaborative use case alongside the LLM.
//!
//! The decomposition follows the four-step FFT: the PIM side performs the
//! row-wise butterfly passes in place (long same-row blocks — exactly what
//! bank-level PIM is good at), while the GPU performs the transpose and
//! twiddle multiplication between passes (strided, cache-unfriendly
//! traffic). Unlike the LLM, here the *PIM* stage is the longer one, so
//! policy preferences flip — a useful second data point for the
//! collaborative analysis.

use pimsim_gpu::{GpuKernelParams, PimKernelModel, PimKernelSpec, PimPhase, SyntheticGpuKernel};

/// The two halves of the FFT scenario.
#[derive(Debug, Clone)]
pub struct FftScenario {
    /// Transpose + twiddle factors on the GPU SMs.
    pub transpose: SyntheticGpuKernel,
    /// Row-wise butterfly passes on the PIM FUs.
    pub butterflies: PimKernelModel,
}

/// GPU-side transpose/twiddle parameters.
///
/// Transposes stride across rows (poor row locality, modest L2 reuse from
/// tile buffering) — the opposite profile of the LLM's GEMMs.
pub fn transpose_params(scale: f64) -> GpuKernelParams {
    assert!(scale > 0.0, "scale must be positive");
    GpuKernelParams {
        name: "FFT-transpose".into(),
        total_requests: ((60_000_f64) * scale).max(1.0) as u64,
        issue_interval: 5,
        read_fraction: 0.5, // read one layout, write the other
        footprint_bytes: 64 * 1024 * 1024,
        row_locality: 0.3,
        l2_reuse: 0.4,
        streams_per_slot: 8,
        seed: 0xFF7,
    }
}

/// PIM-side butterfly spec: long same-row blocks of load/compute/store
/// (in-place butterflies over row-resident data), several passes.
pub fn butterfly_spec(channels: usize, scale: f64) -> PimKernelSpec {
    assert!(scale > 0.0, "scale must be positive");
    use PimPhase::{Compute, Load, Store};
    PimKernelSpec {
        name: "FFT-butterflies".into(),
        pattern: vec![Load, Compute, Compute, Store],
        ops_per_block: 64, // row-long in-place passes
        blocks_per_channel: ((160_f64) * scale).max(1.0) as u64,
        channels,
        rf_entries_per_bank: 8,
        max_row: 1 << 13,
    }
}

/// Builds the FFT scenario.
pub fn fft_scenario(
    gpu_sms: usize,
    channels: usize,
    warps_per_sm: usize,
    max_outstanding: u32,
    scale: f64,
) -> FftScenario {
    FftScenario {
        transpose: SyntheticGpuKernel::new(transpose_params(scale), gpu_sms),
        butterflies: PimKernelModel::new(
            butterfly_spec(channels, scale),
            channels / warps_per_sm,
            warps_per_sm,
            max_outstanding,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_gpu::KernelModel;

    #[test]
    fn scenario_builds() {
        let s = fft_scenario(72, 32, 4, 256, 0.1);
        assert_eq!(s.transpose.num_slots(), 72);
        assert_eq!(s.butterflies.num_slots(), 8);
        transpose_params(1.0).validate();
        butterfly_spec(32, 1.0).validate();
    }

    #[test]
    fn profiles_are_opposite_to_the_llm() {
        // FFT: GPU side strided/cache-unfriendly; LLM: GPU side cache
        // friendly. The two scenarios must bracket the design space.
        let fft = transpose_params(1.0);
        let llm = crate::llm::qkv_params(1.0);
        assert!(fft.row_locality < llm.row_locality);
        assert!(fft.l2_reuse < llm.l2_reuse);
        // FFT butterflies run row-long blocks (maximal PIM locality).
        assert_eq!(butterfly_spec(32, 1.0).ops_per_block, 64);
    }
}
