//! The nine PIM benchmarks of Table III, as block-structured PIM kernel
//! specs (borrowed by the paper from OrderLight's PIM-amenable suite).
//!
//! Each kernel is characterized by its repeating block phase pattern (how
//! many rows a logical chunk touches and in what roles) and its block
//! length, which determines its row-buffer hit rate: a block of `n` ops
//! hits on `n-1` of them.

use pimsim_gpu::{PimKernelModel, PimKernelSpec, PimPhase};
use serde::{Deserialize, Serialize};

/// Identifier of a PIM benchmark (P1..P9 in Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PimBenchmark(pub u8);

impl PimBenchmark {
    /// All nine benchmarks, P1..P9.
    pub fn all() -> Vec<PimBenchmark> {
        (1..=9).map(PimBenchmark).collect()
    }

    /// The benchmark's name per Table III.
    pub fn name(self) -> &'static str {
        match self.0 {
            1 => "Stream Add",
            2 => "Stream Copy",
            3 => "Stream Daxpy",
            4 => "Stream Scale",
            5 => "BN Fwd",
            6 => "BN Bwd",
            7 => "Fully connected",
            8 => "KMeans",
            9 => "GRIM",
            _ => panic!("PimBenchmark index out of range: {}", self.0),
        }
    }

    /// The paper's label, `P1`..`P9`.
    pub fn label(self) -> String {
        format!("P{}", self.0)
    }
}

impl std::fmt::Display for PimBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.label(), self.name())
    }
}

/// Builds the spec for `bench` on `channels` channels, with work scaled by
/// `scale` (1.0 = the default fast-sweep size).
///
/// # Panics
///
/// Panics if `bench` is outside `P1..P9` or `scale` is not positive.
pub fn pim_kernel_spec(bench: PimBenchmark, channels: usize, scale: f64) -> PimKernelSpec {
    assert!(scale > 0.0, "scale must be positive");
    use PimPhase::{Compute, Load, Store};
    // (pattern, ops_per_block, base blocks/channel)
    // Block lengths reflect each kernel's data layout: vectors are laid
    // out in row-buffer-sized chunks (Section II-B), and co-locating the
    // operand chunks of one computation in the same row yields blocks of
    // several RF-loads' worth of consecutive same-row operations. Longer
    // blocks amortize the precharge+activate boundary and raise the row
    // buffer hit rate ((n-1)/n for an n-op block), reproducing the high
    // PIM locality of Figure 4d (Stream Scale: 99.6%).
    let (pattern, ops_per_block, base_blocks): (Vec<PimPhase>, u32, u64) = match bench.0 {
        // STREAM kernels: one op per element, long regular blocks.
        1 => (vec![Load, Compute, Store], 24, 120), // add: c = a + b
        2 => (vec![Load, Store], 16, 210),          // copy: c = a
        3 => (vec![Load, Compute, Compute, Store], 32, 120), // daxpy: c = a*x + y
        4 => (vec![Load, Store], 64, 120),          // scale: row-long blocks
        // Batch norm: a few computes per element.
        5 => (vec![Load, Compute, Compute, Store], 32, 70),
        6 => (vec![Load, Compute, Compute, Compute, Store], 32, 60),
        // Fully connected: compute-dominated GEMV accumulation.
        7 => (
            vec![
                Load, Compute, Compute, Compute, Compute, Compute, Compute, Store,
            ],
            64,
            30,
        ),
        // KMeans: distance computes, occasional assignment store.
        8 => (vec![Load, Compute, Compute, Compute, Store], 40, 50),
        // GRIM: bitvector filtering, wide computes.
        9 => (vec![Load, Compute, Store], 32, 60),
        _ => panic!("PimBenchmark index out of range: {}", bench.0),
    };
    PimKernelSpec {
        name: bench.name().to_owned(),
        pattern,
        ops_per_block,
        blocks_per_channel: ((base_blocks as f64) * scale).max(1.0) as u64,
        channels,
        rf_entries_per_bank: 8,
        max_row: 1 << 13,
    }
}

/// Builds the kernel model for `bench`: 8 SMs x 4 warps = one warp per
/// channel (the paper's mapping), with a per-warp outstanding cap of
/// `max_outstanding`.
pub fn pim_kernel(
    bench: PimBenchmark,
    channels: usize,
    warps_per_sm: usize,
    max_outstanding: u32,
    scale: f64,
) -> PimKernelModel {
    let spec = pim_kernel_spec(bench, channels, scale);
    let num_sms = channels / warps_per_sm;
    PimKernelModel::new(spec, num_sms, warps_per_sm, max_outstanding)
}

/// STREAM-Triad (`a = b + s*c`), which the paper *excludes* from its
/// suite because it has the same access pattern as STREAM-Add (Section
/// III-B, footnote 2). Provided as an extension so the exclusion
/// rationale is checkable: its block structure matches P1's with one
/// extra compute phase.
pub fn stream_triad_spec(channels: usize, scale: f64) -> PimKernelSpec {
    assert!(scale > 0.0, "scale must be positive");
    use PimPhase::{Compute, Load, Store};
    PimKernelSpec {
        name: "Stream Triad".to_owned(),
        pattern: vec![Load, Compute, Store],
        ops_per_block: 24,
        blocks_per_channel: ((120_f64) * scale).max(1.0) as u64,
        channels,
        rf_entries_per_bank: 8,
        max_row: 1 << 13,
    }
}

/// The full suite, in order P1..P9.
pub fn pim_suite(
    channels: usize,
    warps_per_sm: usize,
    max_outstanding: u32,
    scale: f64,
) -> Vec<PimKernelModel> {
    PimBenchmark::all()
        .into_iter()
        .map(|b| pim_kernel(b, channels, warps_per_sm, max_outstanding, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_gpu::KernelModel;

    #[test]
    fn suite_has_nine_kernels() {
        let suite = pim_suite(32, 4, 32, 0.1);
        assert_eq!(suite.len(), 9);
    }

    #[test]
    fn all_specs_validate() {
        for b in PimBenchmark::all() {
            pim_kernel_spec(b, 32, 1.0).validate();
        }
    }

    #[test]
    fn scale_kernel_has_row_long_blocks() {
        // Stream Scale's near-perfect RBHR (99.6% in Figure 4d) comes from
        // row-long blocks: 64 ops -> 63/64 hits.
        let s = pim_kernel_spec(PimBenchmark(4), 32, 1.0);
        assert_eq!(s.ops_per_block, 64);
    }

    #[test]
    fn patterns_start_with_load() {
        for b in PimBenchmark::all() {
            let s = pim_kernel_spec(b, 32, 1.0);
            assert_eq!(s.pattern[0], PimPhase::Load, "{}", b);
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PimBenchmark(1).label(), "P1");
        assert_eq!(PimBenchmark(1).name(), "Stream Add");
        assert_eq!(PimBenchmark(9).name(), "GRIM");
        assert_eq!(PimBenchmark(4).to_string(), "P4 (Stream Scale)");
    }

    #[test]
    fn model_mapping_matches_paper_shape() {
        // 32 channels / 4 warps per SM = 8 SMs.
        let k = pim_kernel(PimBenchmark(1), 32, 4, 32, 0.1);
        assert_eq!(k.num_slots(), 8);
    }

    #[test]
    fn total_ops_scale_linearly() {
        let small = pim_kernel_spec(PimBenchmark(2), 32, 1.0).total_ops();
        let big = pim_kernel_spec(PimBenchmark(2), 32, 2.0).total_ops();
        assert_eq!(big, small * 2);
    }

    #[test]
    fn triad_matches_adds_access_pattern() {
        // The paper excludes Triad because it duplicates Add's pattern;
        // structurally they must agree on everything the memory system
        // sees (phases per chunk, block length, total work shape).
        let add = pim_kernel_spec(PimBenchmark(1), 32, 1.0);
        let triad = stream_triad_spec(32, 1.0);
        assert_eq!(add.pattern, triad.pattern);
        assert_eq!(add.ops_per_block, triad.ops_per_block);
        assert_eq!(add.blocks_per_channel, triad.blocks_per_channel);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_benchmark_panics() {
        let _ = pim_kernel_spec(PimBenchmark(0), 32, 1.0);
    }
}
