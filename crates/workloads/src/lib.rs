//! Workload definitions: the 20 Rodinia-like GPU kernels (Table II), the
//! 9 PIM kernels (Table III), and the GPT-3-like collaborative LLM
//! scenario of the paper's evaluation.
//!
//! The kernels are *synthetic models* calibrated to the memory-behaviour
//! characterization in Figure 4 (see `DESIGN.md` for the substitution
//! rationale): each Rodinia benchmark is described by its issue pacing,
//! L2 reuse, row locality, stream count (bank-level parallelism), and
//! footprint; each PIM kernel by its block phase pattern and block size.
//!
//! Working-set *footprints* are scaled down so a full 180-combination
//! sweep runs in minutes rather than the paper's two weeks of GPGPU-Sim
//! time; the `scale` parameter restores larger runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fft;
pub mod llm;
pub mod pim_suite;
pub mod rodinia;

pub use fft::{fft_scenario, FftScenario};
pub use llm::{llm_scenario, LlmScenario};
pub use pim_suite::{pim_kernel, pim_suite, stream_triad_spec, PimBenchmark};
pub use rodinia::{gpu_kernel, rodinia_suite, GpuBenchmark};
