//! Microbenchmarks for the crossbar: arbitration throughput under uniform
//! load with one and two virtual channels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimsim_noc::Crossbar;
use pimsim_types::{
    AppId, PhysAddr, PimCommand, PimOpKind, Request, RequestId, RequestKind, VcMode,
};

fn mem_req(id: u64, src: u16) -> Request {
    Request::new(
        RequestId(id),
        AppId::GPU,
        RequestKind::MemRead,
        PhysAddr(id * 32),
        src,
        0,
    )
}

fn pim_req(id: u64, src: u16) -> Request {
    let cmd = PimCommand {
        op: PimOpKind::RfLoad,
        channel: (id % 32) as u16,
        row: 0,
        col: 0,
        rf_entry: 0,
        block_start: false,
        block_id: id,
    };
    Request::new(
        RequestId(id),
        AppId::PIM,
        RequestKind::Pim(cmd),
        PhysAddr(0),
        src,
        0,
    )
}

fn drive(vc: VcMode, cycles: u64) -> u64 {
    let mut x = Crossbar::new(80, 32, 512, vc);
    let mut id = 0u64;
    let mut delivered = 0u64;
    for now in 0..cycles {
        for sm in 0..80u16 {
            let req = if sm < 8 {
                pim_req(id, sm)
            } else {
                mem_req(id, sm)
            };
            let dest = (id % 32) as usize;
            if x.can_inject(sm as usize, req.kind.is_pim()) {
                x.try_inject(now, sm as usize, req, dest).unwrap();
                id += 1;
            }
        }
        x.step(now, |_, _, _| {
            delivered += 1;
            true
        });
    }
    delivered
}

fn bench_crossbar(c: &mut Criterion) {
    let mut g = c.benchmark_group("crossbar");
    g.bench_function("80x32_vc1_1k_cycles", |b| {
        b.iter(|| black_box(drive(VcMode::Shared, 1000)))
    });
    g.bench_function("80x32_vc2_1k_cycles", |b| {
        b.iter(|| black_box(drive(VcMode::SplitPim, 1000)))
    });
    g.finish();
}

criterion_group!(benches, bench_crossbar);
criterion_main!(benches);
