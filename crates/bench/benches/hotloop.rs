//! Hot-loop throughput benchmark: simulated GPU cycles per wall-clock
//! second with fast-forward on vs off, for the three workload shapes the
//! event-driven main loop targets — standalone MEM (bursty, long idle
//! tails between SM issue windows), standalone PIM (credit-throttled,
//! mostly busy), and F3FS competitive co-execution (both domains active).
//!
//! The `hotloop` bin (`cargo run --release --bin hotloop`) runs the same
//! scenarios and writes `BENCH_hotloop.json` with cycles/sec and speedup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimsim_core::policy::PolicyKind;
use pimsim_sim::Runner;
use pimsim_types::SystemConfig;
use pimsim_workloads::{gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark};

const SCALE: f64 = 1.0;
/// Co-execution is slower per simulated cycle; a smaller size keeps the
/// measurement wall-time reasonable.
const COEXEC_SCALE: f64 = 0.2;

fn runner(policy: PolicyKind, fast_forward: bool) -> Runner {
    let mut r = Runner::new(SystemConfig::default(), policy);
    r.max_gpu_cycles = 60_000_000;
    r.fast_forward = fast_forward;
    r
}

fn standalone_mem(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(Box::new(gpu_kernel(GpuBenchmark(10), 8, SCALE)), 0, false)
        .expect("finishes")
        .cycles
}

fn standalone_pim(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            0,
            true,
        )
        .expect("finishes")
        .cycles
}

fn coexec_f3fs(ff: bool) -> u64 {
    runner(PolicyKind::f3fs_competitive(), ff)
        .coexec(
            Box::new(gpu_kernel(GpuBenchmark(8), 72, COEXEC_SCALE)),
            Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, COEXEC_SCALE)),
            true,
        )
        .total_cycles
}

fn bench_hotloop(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotloop");
    g.sample_size(10);
    for (name, f) in [
        ("standalone_mem", standalone_mem as fn(bool) -> u64),
        ("standalone_pim", standalone_pim),
        ("coexec_f3fs", coexec_f3fs),
    ] {
        g.bench_function(&format!("{name}/ff_on"), |b| b.iter(|| black_box(f(true))));
        g.bench_function(&format!("{name}/ff_off"), |b| {
            b.iter(|| black_box(f(false)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hotloop);
criterion_main!(benches);
