//! Microbenchmarks for the DRAM substrate: address decoding and command
//! issue throughput (row-hit streaming vs. conflict-heavy vs. PIM
//! lock-step).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimsim_dram::{AddressMapper, Channel, DramCommand};
use pimsim_types::{AddressMapConfig, DramConfig, DramTiming, PhysAddr, SystemConfig};

fn bench_mapper(c: &mut Criterion) {
    let cfg = SystemConfig::default();
    let table1 = AddressMapper::new(&cfg.addr_map, &cfg.dram, 32);
    let ipoly = AddressMapper::new(&AddressMapConfig::IPolyHash, &cfg.dram, 32);
    let mut g = c.benchmark_group("address_mapper");
    g.bench_function("decode_table1", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x9e37_79b9_7f4a_7c15) & ((1 << 40) - 1);
            black_box(table1.decode(PhysAddr(a)))
        })
    });
    g.bench_function("decode_ipoly", |b| {
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(0x9e37_79b9_7f4a_7c15) & ((1 << 40) - 1);
            black_box(ipoly.decode(PhysAddr(a)))
        })
    });
    g.finish();
}

/// Issues `cmd` at the first legal cycle at or after `*now`.
fn issue_when_ready(ch: &mut Channel, cmd: DramCommand, now: &mut u64) {
    while !ch.can_issue(cmd, *now) {
        *now += 1;
    }
    ch.issue(cmd, *now);
}

fn run_stream(ch: &mut Channel, reads: u64, same_row: bool) -> u64 {
    let mut now = 0u64;
    let mut row = 0u32;
    ch.issue(DramCommand::Act { bank: 0, row }, now);
    for i in 0..reads {
        if !same_row && i > 0 && i % 4 == 0 {
            // Force a conflict every fourth access.
            now += 1;
            issue_when_ready(ch, DramCommand::Pre { bank: 0 }, &mut now);
            row += 1;
            now += 1;
            issue_when_ready(ch, DramCommand::Act { bank: 0, row }, &mut now);
        }
        now += 1;
        issue_when_ready(ch, DramCommand::Read { bank: 0 }, &mut now);
    }
    now
}

fn bench_channel(c: &mut Criterion) {
    let dram = DramConfig::default();
    let timing = DramTiming::default();
    let mut g = c.benchmark_group("dram_channel");
    g.bench_function("row_hit_stream_64", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&dram, &timing);
            black_box(run_stream(&mut ch, 64, true))
        })
    });
    g.bench_function("conflict_stream_64", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&dram, &timing);
            black_box(run_stream(&mut ch, 64, false))
        })
    });
    g.bench_function("pim_block_64", |b| {
        b.iter(|| {
            let mut ch = Channel::new(&dram, &timing);
            let mut now = 0u64;
            ch.issue(DramCommand::PimActAll { row: 0 }, now);
            let mut done = 0;
            while done < 64 {
                now += 1;
                if ch.can_issue(DramCommand::PimOp { writes_row: false }, now) {
                    ch.issue(DramCommand::PimOp { writes_row: false }, now);
                    done += 1;
                }
            }
            black_box(now)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mapper, bench_channel);
criterion_main!(benches);
