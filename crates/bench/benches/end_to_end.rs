//! End-to-end benchmark: a small competitive co-execution through the full
//! system (SMs → crossbar → L2 → MC → HBM), per policy. This measures
//! simulator throughput, not architecture performance — useful for keeping
//! the figure sweeps fast.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimsim_core::policy::PolicyKind;
use pimsim_sim::Runner;
use pimsim_types::SystemConfig;
use pimsim_workloads::{gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark};

fn coexec(policy: PolicyKind) -> u64 {
    let mut runner = Runner::new(SystemConfig::default(), policy);
    runner.max_gpu_cycles = 4_000_000;
    let out = runner.coexec(
        Box::new(gpu_kernel(GpuBenchmark(8), 72, 0.02)),
        Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, 0.02)),
        true,
    );
    out.total_cycles
}

fn bench_coexec(c: &mut Criterion) {
    let mut g = c.benchmark_group("coexec_small");
    g.sample_size(10);
    for policy in [
        PolicyKind::FrFcfs,
        PolicyKind::FrRrFcfs,
        PolicyKind::f3fs_competitive(),
    ] {
        g.bench_function(policy.label(), |b| b.iter(|| black_box(coexec(policy))));
    }
    g.finish();
}

criterion_group!(benches, bench_coexec);
criterion_main!(benches);
