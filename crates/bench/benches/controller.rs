//! Microbenchmarks for the memory controller: steady-state scheduling
//! throughput of each policy under mixed MEM+PIM pressure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimsim_core::{policy::PolicyKind, MemoryController};
use pimsim_dram::AddressMapper;
use pimsim_types::{
    AppId, PhysAddr, PimCommand, PimOpKind, Request, RequestId, RequestKind, SystemConfig,
};

/// Feeds the controller a steady mix of MEM (row-friendly) and PIM
/// (block-structured) requests for `cycles` DRAM cycles.
fn drive(policy: PolicyKind, cycles: u64) -> u64 {
    let cfg = SystemConfig::default();
    let mapper = AddressMapper::new(&cfg.addr_map, &cfg.dram, cfg.dram_word_bytes());
    let mut mc = MemoryController::new(&cfg, policy.build());
    let mut id = 0u64;
    let mut mem_addr = 0u64;
    let mut pim_op = 0u64;
    let mut served = 0u64;
    let mut drained = Vec::new();
    for now in 0..cycles {
        // Two MEM arrivals and two PIM arrivals per cycle, queue permitting.
        for _ in 0..2 {
            if mc.can_accept(false) {
                let req = Request::new(
                    RequestId(id),
                    AppId::GPU,
                    RequestKind::MemRead,
                    PhysAddr(mem_addr),
                    0,
                    now,
                );
                // Walk words within a channel-0-mapped stream.
                mem_addr += 0x2000;
                mc.enqueue(req, mapper.decode(req.addr), now);
                id += 1;
            }
            if mc.can_accept(true) {
                let block = pim_op / 16;
                let cmd = PimCommand {
                    op: PimOpKind::RfLoad,
                    channel: 0,
                    row: (block % 512) as u32,
                    col: (pim_op % 16) as u16,
                    rf_entry: (pim_op % 8) as u8,
                    block_start: pim_op.is_multiple_of(16),
                    block_id: block,
                };
                let req = Request::new(
                    RequestId(id),
                    AppId::PIM,
                    RequestKind::Pim(cmd),
                    PhysAddr(pim_op << 5),
                    0,
                    now,
                );
                mc.enqueue(req, Default::default(), now);
                id += 1;
                pim_op += 1;
            }
        }
        mc.step(now);
        drained.clear();
        mc.pop_completions_into(now, &mut drained);
        served += drained.len() as u64;
    }
    served
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("mc_policies_4k_cycles");
    for policy in PolicyKind::all() {
        g.bench_function(policy.label(), |b| {
            b.iter(|| black_box(drive(policy, 4_000)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
