//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--scale <f64>` — workload scale (default 0.2; 1.0 = the largest
//!   footprints the fast sweep was tuned for).
//! * `--budget <u64>` — per-simulation GPU-cycle budget (default 6M).
//! * `--quick` — restrict sweeps to a representative kernel subset.
//! * `--dram <spec>` — DRAM backend spec resolved through
//!   `pimsim_dram::backend` (default `hbm`; e.g. `lp5x:ranks=4`).
//!
//! Output is aligned text (the paper's artifact plots the same series with
//! matplotlib; we print the rows so they can be diffed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pimsim_types::{DramBackendKind, SystemConfig};

/// Common command-line options for figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Workload scale factor.
    pub scale: f64,
    /// Per-simulation GPU-cycle budget.
    pub budget: u64,
    /// Use a reduced kernel subset.
    pub quick: bool,
    /// DRAM backend the sweep runs on (registry-resolved; default HBM).
    pub dram: DramBackendKind,
    /// Optional path to also dump raw sweep points as CSV.
    pub csv: Option<std::path::PathBuf>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: 0.2,
            budget: 6_000_000,
            quick: false,
            dram: DramBackendKind::default(),
            csv: None,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with usage on error.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a positive number"));
                }
                "--budget" => {
                    args.budget = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--budget needs an integer"));
                }
                "--quick" => args.quick = true,
                "--dram" => {
                    let spec = it.next().unwrap_or_else(|| usage("--dram needs a spec"));
                    args.dram = pimsim_dram::backend::parse_spec(&spec)
                        .unwrap_or_else(|e| usage(&format!("--dram: {e}")));
                }
                "--csv" => {
                    args.csv = Some(std::path::PathBuf::from(
                        it.next().unwrap_or_else(|| usage("--csv needs a path")),
                    ));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag: {other}")),
            }
        }
        if args.scale <= 0.0 {
            usage("--scale must be positive");
        }
        args
    }

    /// The system configuration for the selected backend (Table I GPU
    /// side; memory side installed by the backend registry).
    pub fn system(&self) -> SystemConfig {
        pimsim_dram::backend::system_config(self.dram)
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--scale F] [--budget N] [--quick] [--dram SPEC] [--csv FILE]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Writes the raw points of a competitive sweep as CSV (one row per
/// simulation), for external plotting.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_competitive_csv(
    path: &std::path::Path,
    points: &[pimsim_sim::experiments::competitive::CompetitivePoint],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "gpu,pim,policy,vc,mem_speedup,pim_speedup,fairness,throughput,\
mem_arrival_ratio,switches,conflicts_per_switch,drain_per_switch"
    )?;
    for p in points {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            p.gpu.label(),
            p.pim.label(),
            p.policy.label(),
            p.vc.label(),
            p.mem_speedup,
            p.pim_speedup,
            p.fairness,
            p.throughput,
            p.mem_arrival_ratio,
            p.switches,
            p.conflicts_per_switch,
            p.drain_per_switch
        )?;
    }
    Ok(())
}

/// Formats a five-number summary as `min/q1/med/q3/max`.
pub fn fmt_box(f: pimsim_stats::FiveNumber) -> String {
    format!(
        "{:8.2} {:8.2} {:8.2} {:8.2} {:8.2}",
        f.min, f.q1, f.median, f.q3, f.max
    )
}

/// Prints a section header in the style of the figure captions.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = BenchArgs::default();
        assert!(a.scale > 0.0);
        assert!(a.budget > 0);
        assert!(!a.quick);
        a.system().validate().unwrap();
    }

    #[test]
    fn fmt_box_renders_five_numbers() {
        let s = fmt_box(pimsim_stats::FiveNumber {
            min: 1.0,
            q1: 2.0,
            median: 3.0,
            q3: 4.0,
            max: 5.0,
        });
        assert!(s.contains("3.00"));
    }
}
