//! Figure 11: LLM (QKV generation + multi-head attention) speedup under
//! each policy with both VC configurations, normalized to sequential
//! execution, against the ideal perfect-overlap bound.

use pimsim_bench::{header, BenchArgs};
use pimsim_sim::experiments::collaborative::run_collaborative;
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;

fn main() {
    let args = BenchArgs::parse();
    eprintln!(
        "running the collaborative LLM scenario (scale {})...",
        args.scale
    );
    let report = run_collaborative(&args.system(), args.scale, args.budget);

    header("Figure 11: LLM speedup over sequential execution");
    println!(
        "QKV alone: {} cycles, MHA alone: {} cycles, ideal speedup: {:.3}\n",
        report.qkv_alone, report.mha_alone, report.ideal
    );
    let mut t = Table::new(vec!["policy".into(), "VC1".into(), "VC2".into()]);
    let labels: Vec<&str> = {
        let mut seen = Vec::new();
        for p in &report.points {
            if !seen.contains(&p.policy.label()) {
                seen.push(p.policy.label());
            }
        }
        seen
    };
    for label in labels {
        let pick = |vc: VcMode| {
            report
                .points
                .iter()
                .find(|p| p.policy.label() == label && p.vc == vc)
                .map_or("-".to_owned(), |p| f3(p.speedup))
        };
        t.row(vec![
            label.into(),
            pick(VcMode::Shared),
            pick(VcMode::SplitPim),
        ]);
    }
    t.row(vec!["Ideal".into(), f3(report.ideal), f3(report.ideal)]);
    println!("{}", t.render());
    println!(
        "(paper: VC1 policies struggle, G&I works best; VC2 lets FR-FCFS and tuned F3FS\n\
         approach the ideal; F3FS beats FR-RR-FCFS by 11.23% / 7.37% in VC1 / VC2)"
    );
}
