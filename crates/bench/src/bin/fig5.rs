//! Figure 5: average speedup of the Rodinia suite on 72 SMs when
//! co-executing with four memory-intensive GPU kernels vs. PIM kernel P1,
//! normalized to standalone execution on 80 SMs.
//!
//! The paper's result: the suite slows by ~60% with P1 vs. a worst case of
//! ~30% with any Rodinia co-runner.

use pimsim_bench::{header, BenchArgs};
use pimsim_sim::experiments::interference::run_interference;
use pimsim_stats::table::{f3, Table};

fn main() {
    let args = BenchArgs::parse();
    eprintln!(
        "running Figure 5 interference sweep (20 victims x 6 co-runners, scale {})...",
        args.scale
    );
    let bars = run_interference(&args.system(), args.scale, args.budget);
    header("Figure 5: average Rodinia speedup on 72 SMs vs. co-runner (normalized to 80-SM standalone)");
    let mut t = Table::new(vec!["co-runner (on 8 SMs)".into(), "avg speedup".into()]);
    for b in &bars {
        t.row(vec![b.corunner.clone(), f3(b.avg_speedup)]);
    }
    println!("{}", t.render());
    let none = bars.first().expect("bars").avg_speedup;
    let pim = bars.last().expect("bars").avg_speedup;
    println!(
        "slowdown vs 72-SM no-contention: PIM co-runner {:.0}%, worst GPU co-runner {:.0}%",
        (1.0 - pim / none) * 100.0,
        (1.0 - bars[1..bars.len() - 1]
            .iter()
            .map(|b| b.avg_speedup)
            .fold(f64::INFINITY, f64::min)
            / none)
            * 100.0
    );
}
