//! Figure 8: fairness index (a) and system throughput (b) for each PIM
//! kernel under every scheduling policy and VC configuration, averaged
//! across all GPU kernels.

use pimsim_bench::{header, BenchArgs};
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    let mut cfg = CompetitiveConfig::full(args.system(), args.scale, args.budget);
    if args.quick {
        cfg.gpus = vec![4, 8, 11, 15, 17, 19]
            .into_iter()
            .map(GpuBenchmark)
            .collect();
    }
    eprintln!(
        "running competitive sweep: {} GPU x {} PIM x {} policies x {} VCs (scale {})...",
        cfg.gpus.len(),
        cfg.pims.len(),
        cfg.policies.len(),
        cfg.vcs.len(),
        args.scale
    );
    let report = run_competitive(&cfg);
    if let Some(path) = &args.csv {
        pimsim_bench::write_competitive_csv(path, &report.points)
            .unwrap_or_else(|e| eprintln!("csv write failed: {e}"));
        eprintln!("raw points written to {}", path.display());
    }

    use pimsim_sim::experiments::competitive::CompetitivePoint;
    type Metric = fn(&CompetitivePoint) -> f64;
    let figures: [(&str, &str, Metric); 2] = [
        ("Figure 8a", "fairness index", |p| p.fairness),
        ("Figure 8b", "system throughput", |p| p.throughput),
    ];
    for (fig, metric, f) in figures {
        for vc in [VcMode::Shared, VcMode::SplitPim] {
            header(&format!("{fig}: {metric}, {vc} (avg across GPU kernels)"));
            let mut t = Table::new(
                std::iter::once("PIM kernel".to_owned())
                    .chain(cfg.policies.iter().map(|p| p.label().to_owned()))
                    .collect(),
            );
            for &pim in &cfg.pims {
                let mut row = vec![pim.label()];
                for &policy in &cfg.policies {
                    let vals: Vec<f64> = report
                        .points
                        .iter()
                        .filter(|p| p.pim == pim && p.policy == policy && p.vc == vc)
                        .map(f)
                        .collect();
                    row.push(f3(vals.iter().sum::<f64>() / vals.len().max(1) as f64));
                }
                t.row(row);
            }
            let mut mean = vec!["mean".to_owned()];
            for &policy in &cfg.policies {
                let vals: Vec<f64> = report
                    .points
                    .iter()
                    .filter(|p| p.policy == policy && p.vc == vc)
                    .map(f)
                    .collect();
                mean.push(f3(vals.iter().sum::<f64>() / vals.len().max(1) as f64));
            }
            t.row(mean);
            println!("{}", t.render());
        }
    }

    // Throughput composition (the shaded/non-shaded split of Figure 8b).
    header("MEM share of system throughput (paper: FR-FCFS 41% VC1 / 45% VC2)");
    for vc in [VcMode::Shared, VcMode::SplitPim] {
        for &policy in &cfg.policies {
            let pts: Vec<_> = report
                .points
                .iter()
                .filter(|p| p.policy == policy && p.vc == vc)
                .collect();
            let mem: f64 = pts.iter().map(|p| p.mem_speedup).sum();
            let total: f64 = pts.iter().map(|p| p.throughput).sum();
            if total > 0.0 {
                println!("{:12} {}: {:.0}%", policy.label(), vc, mem / total * 100.0);
            }
        }
    }
}
