//! DRAM-fidelity ablation: impact of the timing constraints Table I omits
//! (tFAW, tWTR, refresh) on the headline co-execution metrics, verifying
//! that the paper's simplified timing set does not change the story.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::{DramTiming, VcMode};
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    let variants: Vec<(&str, DramTiming)> = vec![
        ("Table I (paper)", DramTiming::default()),
        (
            "+ tFAW=16",
            DramTiming {
                t_faw: 16,
                ..DramTiming::default()
            },
        ),
        (
            "+ tWTR=4",
            DramTiming {
                t_wtr: 4,
                ..DramTiming::default()
            },
        ),
        (
            "+ refresh (tREFI=3328, tRFC=298)",
            DramTiming {
                t_refi: 3328,
                t_rfc: 298,
                ..DramTiming::default()
            },
        ),
        ("all extensions", DramTiming::with_fidelity_extensions()),
    ];

    header("DRAM fidelity ablation: F3FS + FR-FCFS under VC1");
    let mut t = Table::new(vec![
        "timing".into(),
        "FR-FCFS FI".into(),
        "FR-FCFS ST".into(),
        "F3FS FI".into(),
        "F3FS ST".into(),
    ]);
    for (label, timing) in variants {
        let mut system = args.system();
        system.timing = timing;
        let mut cfg = CompetitiveConfig::full(system, args.scale, args.budget);
        cfg.policies = vec![PolicyKind::FrFcfs, PolicyKind::f3fs_competitive()];
        cfg.vcs = vec![VcMode::Shared];
        cfg.gpus = vec![8, 11, 17].into_iter().map(GpuBenchmark).collect();
        cfg.pims = vec![1, 4].into_iter().map(PimBenchmark).collect();
        eprintln!("{label}...");
        let report = run_competitive(&cfg);
        t.row(vec![
            label.into(),
            f3(report.mean_fairness(PolicyKind::FrFcfs, VcMode::Shared)),
            f3(report.mean_throughput(PolicyKind::FrFcfs, VcMode::Shared)),
            f3(report.mean_fairness(PolicyKind::f3fs_competitive(), VcMode::Shared)),
            f3(report.mean_throughput(PolicyKind::f3fs_competitive(), VcMode::Shared)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(expectation: the omitted constraints shave a few percent of throughput but do\n\
         not reorder the policies — supporting the paper's simplified timing set)"
    );
}
