//! Section VII-A: mode-switch logic complexity of F3FS vs. FR-FCFS.
//!
//! The paper synthesizes both designs with Vitis HLS on an AMD XCZU5EV
//! FPGA (FR-FCFS: 377 LUTs / 88 FFs; F3FS: 275 LUTs / 143 FFs). We cannot
//! run an FPGA flow, so this binary reports the structural-complexity
//! substitute documented in DESIGN.md: element counts exposing the same
//! trade — F3FS removes per-bank conflict tracking (combinational area)
//! and adds CAP counters (state).

use pimsim_bench::header;
use pimsim_core::complexity::{f3fs_complexity, fr_fcfs_complexity};
use pimsim_stats::table::Table;

fn main() {
    let banks = 16;
    let cap_bits = 10; // CAP values up to 1024
    let fr = fr_fcfs_complexity(banks);
    let f3 = f3fs_complexity(cap_bits);
    header("Mode-switch logic structural complexity (16 banks, 10-bit CAPs)");
    let mut t = Table::new(vec![
        "design".into(),
        "state bits (~FF)".into(),
        "comparators".into(),
        "reductions".into(),
        "counters".into(),
        "combinational score (~LUT)".into(),
    ]);
    for c in [fr, f3] {
        t.row(vec![
            c.name.into(),
            c.state_bits.to_string(),
            c.comparators.to_string(),
            c.reductions.to_string(),
            c.counters.to_string(),
            c.combinational_score(banks).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "paper (Vitis HLS on XCZU5EV): FR-FCFS 377 LUTs / 88 FFs; F3FS 275 LUTs / 143 FFs.\n\
         Direction reproduced: F3FS needs less combinational logic and more state."
    );
}
