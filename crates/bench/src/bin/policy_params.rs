//! Parameter sweeps for the baseline policies, mirroring the paper's
//! tuning notes:
//!
//! * BLISS blacklist threshold ("BLISS performs best with a lower
//!   threshold, indicating its tendency to converge toward FR-FCFS");
//! * G&I high/low watermarks (paper: 56/32);
//! * FR-FCFS-Cap row-hit cap (paper: 32).

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn sweep(args: &BenchArgs, title: &str, policies: Vec<(String, PolicyKind)>) {
    let mut cfg = CompetitiveConfig::full(args.system(), args.scale, args.budget);
    cfg.policies = policies.iter().map(|&(_, p)| p).collect();
    cfg.gpus = vec![4, 8, 11, 17].into_iter().map(GpuBenchmark).collect();
    cfg.pims = vec![1, 2, 4, 7].into_iter().map(PimBenchmark).collect();
    cfg.vcs = vec![VcMode::Shared];
    eprintln!("{title}: {} settings x 16 kernel pairs...", policies.len());
    let report = run_competitive(&cfg);
    header(title);
    let mut t = Table::new(vec![
        "setting".into(),
        "fairness".into(),
        "throughput".into(),
    ]);
    for (label, policy) in policies {
        t.row(vec![
            label,
            f3(report.mean_fairness(policy, VcMode::Shared)),
            f3(report.mean_throughput(policy, VcMode::Shared)),
        ]);
    }
    println!("{}", t.render());
}

/// Builds a sweep point from a registry spec string, so this binary never
/// names `PolicyKind` variants directly.
fn spec(label: impl Into<String>, spec: String) -> (String, PolicyKind) {
    let kind = PolicyKind::parse_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
    (label.into(), kind)
}

fn main() {
    let args = BenchArgs::parse();

    sweep(
        &args,
        "BLISS blacklist-threshold sweep (VC1)",
        [1u32, 2, 4, 8, 16]
            .into_iter()
            .map(|th| spec(format!("threshold {th}"), format!("bliss:threshold={th}")))
            .collect(),
    );

    sweep(
        &args,
        "G&I watermark sweep (VC1)",
        [(24usize, 8usize), (40, 16), (56, 32), (60, 48)]
            .into_iter()
            .map(|(high, low)| {
                spec(
                    format!("high {high} / low {low}"),
                    format!("gi:high={high},low={low}"),
                )
            })
            .collect(),
    );

    sweep(
        &args,
        "FR-FCFS-Cap row-hit-cap sweep (VC1)",
        [4u32, 8, 16, 32, 64, 128]
            .into_iter()
            .map(|cap| spec(format!("cap {cap}"), format!("fr-fcfs-cap:cap={cap}")))
            .collect(),
    );
}
