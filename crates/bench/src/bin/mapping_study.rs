//! Address-mapping study: the Table I bit-sliced mapping vs. I-poly-style
//! pseudo-random channel hashing.
//!
//! The paper turns I-poly *off* to make PIM programmable (each warp must
//! own one channel). This study quantifies what that choice costs the
//! regular GPU kernels: I-poly spreads pathological strides across
//! channels, so some kernels lose performance under the regular mapping.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::sweep::parallel_map;
use pimsim_sim::Runner;
use pimsim_stats::table::{f2, Table};
use pimsim_types::AddressMapConfig;
use pimsim_workloads::{gpu_kernel, rodinia::GpuBenchmark};

fn main() {
    let args = BenchArgs::parse();
    let gpus: Vec<GpuBenchmark> = if args.quick {
        vec![3, 6, 11, 15, 17]
            .into_iter()
            .map(GpuBenchmark)
            .collect()
    } else {
        GpuBenchmark::all()
    };
    eprintln!(
        "running {} kernels x 2 mappings (scale {})...",
        gpus.len(),
        args.scale
    );

    let jobs: Vec<(GpuBenchmark, bool)> =
        gpus.iter().flat_map(|&g| [(g, false), (g, true)]).collect();
    let scale = args.scale;
    let budget = args.budget;
    let system = args.system();
    let results = parallel_map(jobs, move |(g, ipoly)| {
        let mut sys = system.clone();
        if ipoly {
            sys.addr_map = AddressMapConfig::IPolyHash;
        }
        let mut runner = Runner::new(sys, PolicyKind::FrFcfs);
        runner.max_gpu_cycles = budget * 4;
        let out = runner
            .standalone(Box::new(gpu_kernel(g, 80, scale)), 0, false)
            .unwrap_or_else(|e| panic!("{g}: {e}"));
        (g, ipoly, out.cycles, out.mc.avg_blp().unwrap_or(0.0))
    });

    header("GPU-80 standalone: Table I bit-sliced mapping vs. I-poly hashing");
    let mut t = Table::new(vec![
        "kernel".into(),
        "TableI cycles".into(),
        "I-poly cycles".into(),
        "I-poly speedup".into(),
        "TableI BLP".into(),
        "I-poly BLP".into(),
    ]);
    for &g in &gpus {
        let pick = |ip: bool| {
            results
                .iter()
                .find(|&&(rg, ri, _, _)| rg == g && ri == ip)
                .expect("all jobs ran")
        };
        let (_, _, c0, b0) = *pick(false);
        let (_, _, c1, b1) = *pick(true);
        t.row(vec![
            g.to_string(),
            c0.to_string(),
            c1.to_string(),
            f2(c0 as f64 / c1 as f64),
            f2(b0),
            f2(b1),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(the paper accepts the regular mapping's cost because PIM's warp-to-channel\n\
         mapping requires it; a speedup above 1.00 means I-poly would have helped)"
    );
}
