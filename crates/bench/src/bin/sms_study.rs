//! SMS suitability study (related-work claim): the paper argues SMS's
//! batch-granularity scheduling is unsuitable for host/PIM co-scheduling
//! because CPU/GPU batches can run on different banks in parallel, but
//! host/PIM batches are mutually exclusive. With SMS-lite implemented,
//! the claim becomes measurable: SMS must trail F3FS (and FR-FCFS) on
//! throughput because every batch boundary is a full mode switch.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    let policies: Vec<(String, PolicyKind)> = vec![
        (
            "SMS (batch 8)".into(),
            PolicyKind::Sms {
                batch_cap: 8,
                sjf_percent: 90,
            },
        ),
        (
            "SMS (batch 16)".into(),
            PolicyKind::Sms {
                batch_cap: 16,
                sjf_percent: 90,
            },
        ),
        (
            "SMS (batch 32)".into(),
            PolicyKind::Sms {
                batch_cap: 32,
                sjf_percent: 90,
            },
        ),
        (
            "SMS (batch 32, RR)".into(),
            PolicyKind::Sms {
                batch_cap: 32,
                sjf_percent: 0,
            },
        ),
        ("FR-FCFS".into(), PolicyKind::FrFcfs),
        ("FR-RR-FCFS".into(), PolicyKind::FrRrFcfs),
        ("F3FS".into(), PolicyKind::f3fs_competitive()),
    ];
    let mut cfg = CompetitiveConfig::full(args.system(), args.scale, args.budget);
    cfg.policies = policies.iter().map(|&(_, p)| p).collect();
    cfg.gpus = vec![4, 8, 11, 17].into_iter().map(GpuBenchmark).collect();
    cfg.pims = vec![1, 2, 4, 7].into_iter().map(PimBenchmark).collect();
    eprintln!(
        "SMS study: {} policies x 16 kernel pairs x 2 VCs (scale {})...",
        policies.len(),
        args.scale
    );
    let report = run_competitive(&cfg);

    header("SMS-lite vs. the PIM-aware policies");
    let mut t = Table::new(vec![
        "policy".into(),
        "VC1 fairness".into(),
        "VC1 throughput".into(),
        "VC2 fairness".into(),
        "VC2 throughput".into(),
        "switches vs FCFS-less F3FS".into(),
    ]);
    let f3fs_switches: f64 = report
        .slice(PolicyKind::f3fs_competitive(), VcMode::Shared)
        .iter()
        .map(|p| p.switches as f64)
        .sum::<f64>()
        .max(1.0);
    for (label, policy) in policies {
        let sw: f64 = report
            .slice(policy, VcMode::Shared)
            .iter()
            .map(|p| p.switches as f64)
            .sum();
        t.row(vec![
            label,
            f3(report.mean_fairness(policy, VcMode::Shared)),
            f3(report.mean_throughput(policy, VcMode::Shared)),
            f3(report.mean_fairness(policy, VcMode::SplitPim)),
            f3(report.mean_throughput(policy, VcMode::SplitPim)),
            f3(sw / f3fs_switches),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(claim check: every batch boundary is a mode switch for SMS, so it switches\n\
         several times more often than F3FS and pays the drain + locality cost each\n\
         time — trailing every PIM-aware policy on throughput)"
    );
}
