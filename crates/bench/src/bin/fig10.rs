//! Figure 10: mode-switch behavior across all kernel combinations —
//! (a) number of mode switches normalized to FCFS (geometric mean),
//! (b) additional MEM conflicts per MEM→PIM switch (arithmetic mean),
//! (c) MEM drain latency per switch in DRAM cycles (arithmetic mean).

use pimsim_bench::{header, BenchArgs};
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f2, f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    let mut cfg = CompetitiveConfig::full(args.system(), args.scale, args.budget);
    if args.quick {
        cfg.gpus = vec![4, 8, 11, 15, 17, 19]
            .into_iter()
            .map(GpuBenchmark)
            .collect();
        cfg.pims = vec![1, 2, 4].into_iter().map(PimBenchmark).collect();
    }
    eprintln!(
        "running competitive sweep: {} GPU x {} PIM x {} policies x {} VCs (scale {})...",
        cfg.gpus.len(),
        cfg.pims.len(),
        cfg.policies.len(),
        cfg.vcs.len(),
        args.scale
    );
    let report = run_competitive(&cfg);

    header("Figure 10a: mode switches normalized to FCFS (geomean across combinations)");
    let mut t = Table::new(vec!["policy".into(), "VC1".into(), "VC2".into()]);
    for &policy in &cfg.policies {
        t.row(vec![
            policy.label().into(),
            report
                .switches_vs_fcfs(policy, VcMode::Shared)
                .map_or("-".into(), f3),
            report
                .switches_vs_fcfs(policy, VcMode::SplitPim)
                .map_or("-".into(), f3),
        ]);
    }
    println!("{}", t.render());

    let mean =
        |f: &dyn Fn(&pimsim_sim::experiments::competitive::CompetitivePoint) -> f64, policy, vc| {
            let v: Vec<f64> = report
                .points
                .iter()
                .filter(|p| p.policy == policy && p.vc == vc)
                .map(f)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };

    header("Figure 10b: additional MEM conflicts per MEM->PIM switch (mean)");
    let mut t = Table::new(vec!["policy".into(), "VC1".into(), "VC2".into()]);
    for &policy in &cfg.policies {
        t.row(vec![
            policy.label().into(),
            f2(mean(&|p| p.conflicts_per_switch, policy, VcMode::Shared)),
            f2(mean(&|p| p.conflicts_per_switch, policy, VcMode::SplitPim)),
        ]);
    }
    println!("{}", t.render());

    header("Figure 10c: MEM drain latency per switch, DRAM cycles (mean)");
    let mut t = Table::new(vec!["policy".into(), "VC1".into(), "VC2".into()]);
    for &policy in &cfg.policies {
        t.row(vec![
            policy.label().into(),
            f2(mean(&|p| p.drain_per_switch, policy, VcMode::Shared)),
            f2(mean(&|p| p.drain_per_switch, policy, VcMode::SplitPim)),
        ]);
    }
    println!("{}", t.render());
}
