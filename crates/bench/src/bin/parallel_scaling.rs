//! Parallel-scaling measurement for the sharded memory stage: simulated
//! GPU cycles per wall-clock second at 1/2/4/8 memory-stage threads,
//! written to `BENCH_parallel.json`. Scenarios mirror the `hotloop`
//! bench: standalone MEM, standalone PIM, and F3FS competitive
//! co-execution.
//!
//! Run with `cargo run --release --bin parallel_scaling`. Every width
//! first asserts it simulated the same number of cycles as the serial
//! run — throughput is only comparable because the runs are
//! bit-identical. The host's CPU count is recorded alongside the rates:
//! on a machine with fewer cores than threads, the extra widths measure
//! dispatch overhead, not speedup.

use std::time::Instant;

use pimsim_bench::header;
use pimsim_core::policy::PolicyKind;
use pimsim_sim::Runner;
use pimsim_types::SystemConfig;
use pimsim_workloads::{gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark};

const SCALE: f64 = 1.0;
/// Co-execution is slower per simulated cycle; a smaller size keeps the
/// measurement wall-time reasonable.
const COEXEC_SCALE: f64 = 0.2;
/// Criterion-style minimum: repeat each measurement and keep the best, so
/// one scheduler hiccup does not masquerade as a regression.
const REPS: usize = 3;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn runner(policy: PolicyKind, threads: usize) -> Runner {
    let mut r = Runner::new(SystemConfig::default(), policy);
    r.max_gpu_cycles = 60_000_000;
    r.memory_threads = Some(threads);
    r
}

fn standalone_mem(threads: usize) -> u64 {
    runner(PolicyKind::FrFcfs, threads)
        .standalone(Box::new(gpu_kernel(GpuBenchmark(10), 8, SCALE)), 0, false)
        .expect("finishes")
        .cycles
}

fn standalone_pim(threads: usize) -> u64 {
    runner(PolicyKind::FrFcfs, threads)
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            0,
            true,
        )
        .expect("finishes")
        .cycles
}

fn coexec_f3fs(threads: usize) -> u64 {
    runner(PolicyKind::f3fs_competitive(), threads)
        .coexec(
            Box::new(gpu_kernel(GpuBenchmark(8), 72, COEXEC_SCALE)),
            Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, COEXEC_SCALE)),
            true,
        )
        .total_cycles
}

/// Best-of-`REPS` throughput in simulated cycles per wall second.
fn measure(f: fn(usize) -> u64, threads: usize) -> (u64, f64) {
    let mut best = 0.0_f64;
    let mut cycles = 0;
    for _ in 0..REPS {
        let t = Instant::now();
        cycles = f(threads);
        let rate = cycles as f64 / t.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    (cycles, best)
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    header("Memory-stage parallel scaling (simulated cycles/sec per thread count)");
    println!("  host CPUs: {host_cpus}\n");
    type Scenario = fn(usize) -> u64;
    let scenarios: [(&str, Scenario); 3] = [
        ("standalone_mem", standalone_mem),
        ("standalone_pim", standalone_pim),
        ("coexec_f3fs", coexec_f3fs),
    ];
    let mut entries = Vec::new();
    for (name, f) in scenarios {
        let mut rates = Vec::new();
        let mut serial_cycles = 0;
        for &threads in &THREADS {
            let (cycles, rate) = measure(f, threads);
            if threads == 1 {
                serial_cycles = cycles;
            } else {
                assert_eq!(
                    cycles, serial_cycles,
                    "{name}: {threads} threads changed the simulated cycle count"
                );
            }
            rates.push(rate);
        }
        let speedup4 = rates[2] / rates[0];
        println!(
            "  {name:16} {serial_cycles:>10} cycles   t1 {:>10.0}/s   t2 {:>10.0}/s   t4 {:>10.0}/s   t8 {:>10.0}/s   t4/t1 {speedup4:.2}x",
            rates[0], rates[1], rates[2], rates[3]
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"simulated_cycles\": {},\n",
                "      \"cycles_per_sec_t1\": {:.1},\n",
                "      \"cycles_per_sec_t2\": {:.1},\n",
                "      \"cycles_per_sec_t4\": {:.1},\n",
                "      \"cycles_per_sec_t8\": {:.1},\n",
                "      \"speedup_t4_vs_t1\": {:.3}\n",
                "    }}"
            ),
            name, serial_cycles, rates[0], rates[1], rates[2], rates[3], speedup4
        ));
    }
    // serde is vendored as a no-op shim in this workspace, so the JSON is
    // formatted by hand.
    let json = format!(
        "{{\n  \"benchmark\": \"parallel_scaling\",\n  \"unit\": \"simulated_gpu_cycles_per_wall_second\",\n  \"reps\": {REPS},\n  \"host_cpus\": {host_cpus},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
}
