//! F3FS CAP sensitivity study (the paper's Section VII-B methodology:
//! "empirically set ... strategically a multiple of the PIM RF size").
//!
//! Sweeps symmetric competitive CAPs and asymmetric splits over a
//! representative kernel subset, reporting fairness and throughput — the
//! study that selected this reproduction's default CAP of 32.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    let caps: Vec<(u32, u32)> = vec![
        (8, 8),
        (16, 16),
        (32, 32),
        (64, 64),
        (128, 128),
        (256, 256),
        (32, 16),
        (64, 32),
        (16, 32),
        (32, 64),
    ];
    let f3fs = |m: u32, p: u32| {
        PolicyKind::parse_spec(&format!("f3fs:mem-cap={m},pim-cap={p}")).expect("registered")
    };
    let mut cfg = CompetitiveConfig::full(args.system(), args.scale, args.budget);
    cfg.policies = caps.iter().map(|&(m, p)| f3fs(m, p)).collect();
    cfg.gpus = vec![4, 8, 11, 15, 17, 19]
        .into_iter()
        .map(GpuBenchmark)
        .collect();
    if args.quick {
        cfg.pims = vec![1, 2, 4].into_iter().map(PimBenchmark).collect();
    }
    eprintln!(
        "sweeping {} CAP settings over {} GPU x {} PIM x 2 VCs (scale {})...",
        caps.len(),
        cfg.gpus.len(),
        cfg.pims.len(),
        args.scale
    );
    let report = run_competitive(&cfg);

    header("F3FS CAP sensitivity (competitive)");
    let mut t = Table::new(vec![
        "MEM/PIM cap".into(),
        "VC1 fairness".into(),
        "VC1 throughput".into(),
        "VC2 fairness".into(),
        "VC2 throughput".into(),
    ]);
    for &(m, p) in &caps {
        let policy = f3fs(m, p);
        t.row(vec![
            format!("{m}/{p}"),
            f3(report.mean_fairness(policy, VcMode::Shared)),
            f3(report.mean_throughput(policy, VcMode::Shared)),
            f3(report.mean_fairness(policy, VcMode::SplitPim)),
            f3(report.mean_throughput(policy, VcMode::SplitPim)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(paper: competitive fairness favors symmetric CAPs; throughput favors higher\n\
         ones; asymmetry trades competitive fairness for collaborative speedup)"
    );
}
