//! Figure 4: memory access characteristics of the Rodinia suite (80 and 8
//! SMs) and the PIM kernels — box plots of interconnect arrival rate, DRAM
//! arrival rate, bank-level parallelism, and row-buffer hit rate.

use pimsim_bench::{fmt_box, header, BenchArgs};
use pimsim_sim::experiments::characterization::characterize;
use pimsim_stats::table::Table;

fn main() {
    let args = BenchArgs::parse();
    eprintln!(
        "running 49 standalone characterization simulations (scale {})...",
        args.scale
    );
    let report = characterize(&args.system(), args.scale, args.budget);

    for (title, boxes) in [
        (
            "Figure 4a: interconnect request arrival rate (req/kilo-GPU-cycle)",
            report.icnt_boxes(),
        ),
        (
            "Figure 4b: DRAM request arrival rate (req/kilo-GPU-cycle)",
            report.dram_boxes(),
        ),
        ("Figure 4c: DRAM bank-level parallelism", report.blp_boxes()),
        ("Figure 4d: DRAM row buffer hit rate", report.rbhr_boxes()),
    ] {
        header(title);
        println!("population       min       q1      med       q3      max");
        println!("GPU-80    {}", fmt_box(boxes.gpu80));
        println!("GPU-8     {}", fmt_box(boxes.gpu8));
        println!("PIM       {}", fmt_box(boxes.pim));
    }

    // The paper's headline ratios (Section IV).
    let icnt = report.icnt_boxes();
    let dram = report.dram_boxes();
    header("headline ratios (paper: PIM icnt = 3.95x GPU-8, 17.8% below GPU-80; PIM DRAM = 8.33x GPU-8, 2.07x GPU-80)");
    println!(
        "PIM/GPU-8 icnt (median):  {:.2}x",
        icnt.pim.median / icnt.gpu8.median
    );
    println!(
        "PIM/GPU-80 icnt (median): {:.2}x",
        icnt.pim.median / icnt.gpu80.median
    );
    println!(
        "PIM/GPU-8 DRAM (median):  {:.2}x",
        dram.pim.median / dram.gpu8.median
    );
    println!(
        "PIM/GPU-80 DRAM (median): {:.2}x",
        dram.pim.median / dram.gpu80.median
    );

    header("per-kernel profiles (GPU-80)");
    let mut t = Table::new(vec![
        "kernel".into(),
        "icnt/kcyc".into(),
        "dram/kcyc".into(),
        "BLP".into(),
        "RBHR".into(),
        "cycles".into(),
    ]);
    for p in report.gpu80.iter().chain(report.pim.iter()) {
        t.row(vec![
            p.label.clone(),
            format!("{:.1}", p.icnt_rate),
            format!("{:.1}", p.dram_rate),
            format!("{:.1}", p.blp),
            format!("{:.3}", p.rbhr),
            p.cycles.to_string(),
        ]);
    }
    println!("{}", t.render());
}
