//! Figure 6: MEM request arrival rate into the memory controller under
//! co-execution, normalized to standalone execution, per GPU kernel and
//! scheduling policy, without (a) and with (b) separate MEM/PIM virtual
//! channels.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f2, Table};
use pimsim_types::VcMode;
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    let mut cfg = CompetitiveConfig::full(args.system(), args.scale, args.budget);
    if args.quick {
        cfg.gpus = vec![4, 8, 11, 15, 17, 19]
            .into_iter()
            .map(GpuBenchmark)
            .collect();
        cfg.pims = vec![1, 2, 4].into_iter().map(PimBenchmark).collect();
    }
    eprintln!(
        "running competitive sweep: {} GPU x {} PIM x {} policies x {} VCs (scale {})...",
        cfg.gpus.len(),
        cfg.pims.len(),
        cfg.policies.len(),
        cfg.vcs.len(),
        args.scale
    );
    let report = run_competitive(&cfg);

    for vc in [VcMode::Shared, VcMode::SplitPim] {
        header(&format!(
            "Figure 6{}: normalized MEM arrival rate at the MC, {} (avg across PIM kernels)",
            if vc == VcMode::Shared { 'a' } else { 'b' },
            vc
        ));
        let mut t = Table::new(
            std::iter::once("GPU kernel".to_owned())
                .chain(cfg.policies.iter().map(|p| p.label().to_owned()))
                .collect(),
        );
        for &g in &cfg.gpus {
            let mut row = vec![g.label()];
            for &policy in &cfg.policies {
                let pts: Vec<f64> = report
                    .points
                    .iter()
                    .filter(|p| p.gpu == g && p.policy == policy && p.vc == vc)
                    .map(|p| p.mem_arrival_ratio)
                    .collect();
                row.push(f2(pts.iter().sum::<f64>() / pts.len().max(1) as f64));
            }
            t.row(row);
        }
        // Column means (the paper quotes per-policy averages).
        let mut mean_row = vec!["mean".to_owned()];
        for &policy in &cfg.policies {
            let pts: Vec<f64> = report
                .points
                .iter()
                .filter(|p| p.policy == policy && p.vc == vc)
                .map(|p| p.mem_arrival_ratio)
                .collect();
            mean_row.push(f2(pts.iter().sum::<f64>() / pts.len().max(1) as f64));
        }
        t.row(mean_row);
        println!("{}", t.render());
    }

    // The headline: MEM-First's improvement from VC1 to VC2 (paper: 2.87x).
    let mean = |policy: PolicyKind, vc: VcMode| -> f64 {
        let pts: Vec<f64> = report
            .points
            .iter()
            .filter(|p| p.policy == policy && p.vc == vc)
            .map(|p| p.mem_arrival_ratio)
            .collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    let v1 = mean(PolicyKind::MemFirst, VcMode::Shared);
    let v2 = mean(PolicyKind::MemFirst, VcMode::SplitPim);
    header("headline (paper: MEM-First improves 2.87x, degradation 68% -> 9%)");
    println!(
        "MEM-First mean normalized arrival rate: VC1 {v1:.2}, VC2 {v2:.2} ({:.2}x)",
        v2 / v1
    );
}
