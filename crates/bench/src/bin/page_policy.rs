//! Row-buffer management ablation: open-page (the paper's implicit
//! policy, which FR-FCFS and F3FS exploit for locality) vs. closed-page
//! (auto-precharge after every MEM access).
//!
//! Expectation: closed-page removes the row hits the first-ready policies
//! feed on, hurting high-RBHR kernels most, and flattens the difference
//! between FR-FCFS and FCFS-like behavior.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::{PagePolicy, VcMode};
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    header("Row-buffer policy ablation: open-page vs closed-page (VC1)");
    let mut t = Table::new(vec![
        "page policy".into(),
        "FR-FCFS FI".into(),
        "FR-FCFS ST".into(),
        "F3FS FI".into(),
        "F3FS ST".into(),
    ]);
    for (label, policy) in [
        ("open-page", PagePolicy::Open),
        ("closed-page", PagePolicy::Closed),
    ] {
        let mut system = args.system();
        system.mc.page_policy = policy;
        let mut cfg = CompetitiveConfig::full(system, args.scale, args.budget);
        cfg.policies = vec![PolicyKind::FrFcfs, PolicyKind::f3fs_competitive()];
        cfg.vcs = vec![VcMode::Shared];
        cfg.gpus = vec![8, 17, 19].into_iter().map(GpuBenchmark).collect();
        cfg.pims = vec![1, 4].into_iter().map(PimBenchmark).collect();
        eprintln!("{label}...");
        let report = run_competitive(&cfg);
        t.row(vec![
            label.into(),
            f3(report.mean_fairness(PolicyKind::FrFcfs, VcMode::Shared)),
            f3(report.mean_throughput(PolicyKind::FrFcfs, VcMode::Shared)),
            f3(report.mean_fairness(PolicyKind::f3fs_competitive(), VcMode::Shared)),
            f3(report.mean_throughput(PolicyKind::f3fs_competitive(), VcMode::Shared)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(closed-page auto-precharges after every MEM access: the high-RBHR kernels lose\n\
         their open-row stream and MEM throughput drops — the paper's open-page choice)"
    );
}
