//! Figure 14b: F3FS's sensitivity to the interconnect queue size under
//! the VC2 configuration — fairness index and system throughput with the
//! input buffers at half (256), baseline (512), and double (1024) size.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    header("Figure 14b: F3FS sensitivity to interconnect queue size (VC2)");
    let mut t = Table::new(vec![
        "queue size".into(),
        "fairness index".into(),
        "system throughput".into(),
    ]);
    for queue in [256usize, 512, 1024] {
        let mut system = args.system();
        system.noc.input_queue_entries = queue;
        let mut cfg = CompetitiveConfig::full(system, args.scale, args.budget);
        cfg.policies = vec![PolicyKind::f3fs_competitive()];
        cfg.vcs = vec![VcMode::SplitPim];
        if args.quick {
            cfg.gpus = vec![4, 8, 11, 15, 17, 19]
                .into_iter()
                .map(GpuBenchmark)
                .collect();
            cfg.pims = vec![1, 2, 4].into_iter().map(PimBenchmark).collect();
        }
        eprintln!(
            "queue {queue}: {} GPU x {} PIM combinations...",
            cfg.gpus.len(),
            cfg.pims.len()
        );
        let report = run_competitive(&cfg);
        t.row(vec![
            queue.to_string(),
            f3(report.mean_fairness(PolicyKind::f3fs_competitive(), VcMode::SplitPim)),
            f3(report.mean_throughput(PolicyKind::f3fs_competitive(), VcMode::SplitPim)),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: F3FS is largely agnostic to the interconnect queue size)");
}
