//! Hot-loop speedup measurement: simulated GPU cycles per wall-clock
//! second with the event-driven fast-forward on vs off, written to
//! `BENCH_hotloop.json`. Scenarios mirror the `hotloop` criterion bench:
//! standalone MEM, standalone PIM, and F3FS competitive co-execution.
//!
//! Run with `cargo run --release --bin hotloop`. Every pair first asserts
//! the two modes simulated the same number of cycles — throughput is only
//! comparable because the runs are bit-identical. Per-rep raw rates and
//! the median are reported next to the best, so a reader can tell a tight
//! measurement from a lucky one.

use std::time::Instant;

use pimsim_bench::header;
use pimsim_core::policy::PolicyKind;
use pimsim_core::StepMix;
use pimsim_sim::{KernelModel, Runner, Simulator, StageProfile};
use pimsim_types::SystemConfig;
use pimsim_workloads::{gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark};

const SCALE: f64 = 1.0;
/// Co-execution is slower per simulated cycle; a smaller size keeps the
/// measurement wall-time reasonable.
const COEXEC_SCALE: f64 = 0.2;
/// Criterion-style minimum: repeat each measurement and keep the best, so
/// one scheduler hiccup does not masquerade as a regression. Overridable
/// via `HOTLOOP_REPS` (the tier-1 smoke runs a single rep).
const DEFAULT_REPS: usize = 3;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The scenario's system configuration, resolved through the DRAM
/// backend registry exactly like `--dram` on the CLI: `_lp5x`-suffixed
/// scenarios run the LPDDR5X-PIM substrate at 4 ranks, everything else
/// the default HBM tables.
fn config_for(name: &str) -> SystemConfig {
    if name.ends_with("_lp5x") {
        let kind = pimsim_dram::backend::parse_spec("lp5x:ranks=4").expect("registered backend");
        pimsim_dram::backend::system_config(kind)
    } else {
        SystemConfig::default()
    }
}

fn runner_on(cfg: SystemConfig, policy: PolicyKind, fast_forward: bool) -> Runner {
    let mut r = Runner::new(cfg, policy);
    r.max_gpu_cycles = 60_000_000;
    r.fast_forward = fast_forward;
    r
}

fn runner(policy: PolicyKind, fast_forward: bool) -> Runner {
    runner_on(SystemConfig::default(), policy, fast_forward)
}

fn standalone_mem(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(Box::new(gpu_kernel(GpuBenchmark(10), 8, SCALE)), 0, false)
        .expect("finishes")
        .cycles
}

fn standalone_pim(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            0,
            true,
        )
        .expect("finishes")
        .cycles
}

fn standalone_pim_lp5x(ff: bool) -> u64 {
    runner_on(config_for("standalone_pim_lp5x"), PolicyKind::FrFcfs, ff)
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            0,
            true,
        )
        .expect("finishes")
        .cycles
}

/// Sparse-eject variant: a tight per-warp credit cap throttles issue, so
/// the request crossbar alternates between empty and lightly loaded —
/// the regime where eject batching's deferral windows are longest and
/// the staged-ingress probe accounting (occupancy while a batch is
/// pending) actually gates fast-forward skips.
fn sparse_pim_kernel() -> impl KernelModel {
    pim_kernel(PimBenchmark(1), 32, 4, 4, 0.5)
}

fn sparse_pim(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(Box::new(sparse_pim_kernel()), 0, true)
        .expect("finishes")
        .cycles
}

fn sparse_pim_lp5x(ff: bool) -> u64 {
    runner_on(config_for("sparse_pim_lp5x"), PolicyKind::FrFcfs, ff)
        .standalone(Box::new(sparse_pim_kernel()), 0, true)
        .expect("finishes")
        .cycles
}

fn coexec_f3fs(ff: bool) -> u64 {
    runner(PolicyKind::f3fs_competitive(), ff)
        .coexec(
            Box::new(gpu_kernel(GpuBenchmark(8), 72, COEXEC_SCALE)),
            Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, COEXEC_SCALE)),
            true,
        )
        .total_cycles
}

/// One profiled pass of a scenario: the same workload as the timed
/// measurement, run once with per-stage wall timers on. Kept separate
/// from the throughput reps because the timer reads themselves cost
/// real time on the fastest scenarios. The pass runs the production
/// configuration (fast-forward, stall memo, and burst retirement all
/// on), so its merged step mix and fast-forward skip counters are also
/// harvested here.
fn profile_scenario(name: &str) -> (StageProfile, StepMix, u64, u64, u64) {
    let mut sim = Simulator::new(
        config_for(name),
        match name {
            "coexec_f3fs" => PolicyKind::f3fs_competitive(),
            _ => PolicyKind::FrFcfs,
        },
    );
    sim.set_stage_profiling(true);
    match name {
        "standalone_mem" => {
            let k = gpu_kernel(GpuBenchmark(10), 8, SCALE);
            let slots = k.num_slots();
            sim.mount(Box::new(k), (0..slots).collect(), false, false);
            sim.run_until_all_first_done(60_000_000).expect("finishes");
        }
        "standalone_pim" | "standalone_pim_lp5x" => {
            let k = pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE);
            let slots = k.num_slots();
            sim.mount(Box::new(k), (0..slots).collect(), true, false);
            sim.run_until_all_first_done(60_000_000).expect("finishes");
        }
        "sparse_pim" | "sparse_pim_lp5x" => {
            let k = sparse_pim_kernel();
            let slots = k.num_slots();
            sim.mount(Box::new(k), (0..slots).collect(), true, false);
            sim.run_until_all_first_done(60_000_000).expect("finishes");
        }
        "coexec_f3fs" => {
            let pim = pim_kernel(PimBenchmark(2), 32, 4, 256, COEXEC_SCALE);
            let gpu = gpu_kernel(GpuBenchmark(8), 72, COEXEC_SCALE);
            let (ps, gs) = (pim.num_slots(), gpu.num_slots());
            sim.mount(Box::new(pim), (0..ps).collect(), true, true);
            sim.mount(Box::new(gpu), (ps..ps + gs).collect(), false, true);
            // Starvation cutoff is a legitimate end, as in Runner::coexec.
            let _ = sim.run_with_starvation_cutoff(60_000_000, Some(25));
        }
        other => unreachable!("unknown scenario {other}"),
    }
    let prof = *sim.stage_profile().expect("profiling was enabled");
    let (skips, skipped) = sim.fast_forward_stats();
    (
        prof,
        sim.merged_step_mix(),
        skips,
        skipped,
        sim.gpu_cycles(),
    )
}

/// `reps` timed passes: returns the (identical) simulated cycle count and
/// every raw rate in simulated cycles per wall second.
fn measure(f: fn(bool) -> u64, ff: bool, reps: usize) -> (u64, Vec<f64>) {
    let mut rates = Vec::with_capacity(reps);
    let mut cycles = 0;
    for _ in 0..reps {
        let t = Instant::now();
        cycles = f(ff);
        rates.push(cycles as f64 / t.elapsed().as_secs_f64());
    }
    (cycles, rates)
}

fn best(rates: &[f64]) -> f64 {
    rates.iter().copied().fold(0.0, f64::max)
}

fn median(rates: &[f64]) -> f64 {
    let mut s = rates.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2.0
    }
}

fn fmt_rates(rates: &[f64]) -> String {
    let list: Vec<String> = rates.iter().map(|r| format!("{r:.1}")).collect();
    format!("[{}]", list.join(", "))
}

fn main() {
    header("Hot-loop throughput: fast-forward on vs off (simulated cycles/sec)");
    let reps = env_u64("HOTLOOP_REPS", DEFAULT_REPS as u64).max(1) as usize;
    // Optional throughput floor (cycles/s, fast-forward on) applied to
    // every scenario: the tier-1 smoke sets this far below any recorded
    // rate so only asymptotic regressions — not machine noise — trip it.
    let floor = env_u64("HOTLOOP_FLOOR", 0) as f64;
    type Scenario = fn(bool) -> u64;
    let scenarios: [(&str, Scenario); 6] = [
        ("standalone_mem", standalone_mem),
        ("standalone_pim", standalone_pim),
        ("standalone_pim_lp5x", standalone_pim_lp5x),
        ("sparse_pim", sparse_pim),
        ("sparse_pim_lp5x", sparse_pim_lp5x),
        ("coexec_f3fs", coexec_f3fs),
    ];
    let mut entries = Vec::new();
    let mut slowest: Option<(&str, f64)> = None;
    for (name, f) in scenarios {
        // Interleave the on/off reps pairwise instead of measuring one
        // block then the other: background load on this host drifts on
        // the timescale of a block, and interleaving exposes both modes
        // to the same noise.
        let mut rates_on = Vec::new();
        let mut rates_off = Vec::new();
        let (mut cycles_on, mut cycles_off) = (0, 0);
        for _ in 0..reps {
            let (c, r) = measure(f, true, 1);
            cycles_on = c;
            rates_on.extend(r);
            let (c, r) = measure(f, false, 1);
            cycles_off = c;
            rates_off.extend(r);
        }
        assert_eq!(
            cycles_on, cycles_off,
            "{name}: fast-forward changed the simulated cycle count"
        );
        let mut rate_on = best(&rates_on);
        let mut rate_off = best(&rates_off);
        // Where fast-forward actually skips cycles it must win; where it
        // is structurally inert (its gate is one integer compare per
        // cycle) on/off are the same work and only host noise separates
        // them. Re-measure a few more pairs before judging either way.
        let mut extra = 0;
        while rate_on < rate_off && extra < 3 {
            let (c, r) = measure(f, true, 1);
            assert_eq!(c, cycles_on, "{name}: cycle count changed across reps");
            rates_on.extend(r);
            let (c, r) = measure(f, false, 1);
            assert_eq!(c, cycles_off, "{name}: cycle count changed across reps");
            rates_off.extend(r);
            rate_on = best(&rates_on);
            rate_off = best(&rates_off);
            extra += 1;
        }
        let speedup = rate_on / rate_off;
        if slowest.is_none_or(|(_, r)| rate_on < r) {
            slowest = Some((name, rate_on));
        }
        println!(
            "  {name:16} {cycles_on:>10} cycles   ff_on {rate_on:>12.0}/s   ff_off {rate_off:>12.0}/s   speedup {speedup:.2}x"
        );
        println!(
            "  {:16} reps: ff_on {} (median {:.0}/s)   ff_off {} (median {:.0}/s)",
            "",
            fmt_rates(&rates_on),
            median(&rates_on),
            fmt_rates(&rates_off),
            median(&rates_off)
        );
        let (prof, mix, ff_skips, ff_skipped, total_cycles) = profile_scenario(name);
        // Fast-forward regression gate. When the scenario gives the skip
        // path real work (>5% of GPU cycles jumped over), on must beat
        // off. When it does not — PIM-heavy scenarios keep the inflight
        // table populated, so the skip gate rejects in O(1) every cycle —
        // on and off do identical work and we only require parity within
        // this host's run-to-run noise (KNOWN_FAILURES.md documents the
        // ±40% single-CPU variance; 0.85 is well inside it).
        let engaged = ff_skipped.saturating_mul(20) > total_cycles;
        let floor_x = if engaged { 1.0 } else { 0.85 };
        // HOTLOOP_FF_GATE=0 turns the on-vs-off assertion into a report.
        // scripts/bench_compare.sh sets it: interleaved A/B runs load the
        // host back-to-back, and a scheduler hiccup inside one rep would
        // otherwise abort the whole measurement. Tier-1 leaves it on.
        if env_u64("HOTLOOP_FF_GATE", 1) != 0 {
            assert!(
                speedup >= floor_x,
                "{name}: fast-forward on is slower than off ({speedup:.3}x < {floor_x}x, \
                 ff_on {rate_on:.0}/s vs ff_off {rate_off:.0}/s after {extra} retry pairs; \
                 {ff_skipped} of {total_cycles} cycles skipped)"
            );
        } else if speedup < floor_x {
            println!("  {:16} ff gate waived ({speedup:.3}x < {floor_x}x)", "");
        }
        let hit_rate = mix.burst_hit_rate().unwrap_or(0.0);
        if name.starts_with("standalone_pim") {
            // The homogeneous all-PIM scenario is exactly what burst
            // retirement exists for; a zero hit rate means the mechanism
            // silently disengaged.
            assert!(
                mix.burst_retired > 0,
                "{name} retired no cycles through burst plans"
            );
            // Structural gate for event-driven completion delivery: the
            // eager per-tick reply path ran the reply-net and completion
            // stages every stepped cycle (2 ticks/cycle). Deferred,
            // observability-gated delivery must cut the combined tick
            // count at least 5x below that baseline. Tick counts are
            // deterministic, so unlike the wall-clock rates this gate is
            // immune to host noise. HBM only: LP5X's geometry keeps the
            // PIM kernel at its credit cap most cycles, so delivery is
            // legitimately observable almost every cycle there.
            if name == "standalone_pim" {
                let stage_ticks = mix.ticks_reply_net + mix.ticks_completion;
                assert!(
                    stage_ticks * 5 <= 2 * prof.stepped_cycles,
                    "{name}: reply/completion stages ran {stage_ticks} ticks over \
                     {} stepped cycles; event-driven delivery should cut the eager \
                     2-ticks-per-cycle baseline at least 5x",
                    prof.stepped_cycles
                );
            }
            // Structural gates for retire-time batching (DESIGN.md §4k).
            // Production-side deferral must cut the memory stage's tick
            // count at least 3x below one-tick-per-cycle; all-PIM traffic
            // must route its acks through the retire-time batch (a zero
            // counter means batching silently disengaged and the oracle
            // equality is comparing eager against eager).
            assert!(
                mix.ticks_memory * 3 <= prof.stepped_cycles,
                "{name}: memory stage ran {} ticks over {} stepped cycles; \
                 retire-time batching should defer production at least 3x \
                 below the per-cycle baseline",
                mix.ticks_memory,
                prof.stepped_cycles
            );
            assert!(
                mix.acks_batched > 0,
                "{name}: no acks went through the retire-time batch"
            );
        }
        if name.starts_with("standalone_pim") || name.starts_with("sparse_pim") {
            // All-PIM traffic must route its ejections through the
            // timestamped batch path (DESIGN.md §4l); a zero counter
            // means eject batching silently disengaged.
            assert!(
                mix.requests_batched > 0,
                "{name}: no requests went through the eject batch"
            );
        }
        if name == "standalone_pim" {
            // Structural gate for eject batching: the eager path ran the
            // request-net stage every stepped cycle; deferring whole
            // arbitration cycles must cut that at least 3x. Tick counts
            // are deterministic, so this gate is immune to host noise.
            assert!(
                mix.ticks_request_net * 3 <= prof.stepped_cycles,
                "{name}: request-net stage ran {} ticks over {} stepped cycles; \
                 eject batching should defer arbitration at least 3x below \
                 the per-cycle baseline",
                mix.ticks_request_net,
                prof.stepped_cycles
            );
            // The §4k regression this PR exists to fix: per-eject
            // catch-up replay collapsed deferral windows to ~4.3 visits
            // on saturated PIM. Timestamped eject batches must keep the
            // mean per-partition replay batch at 4x that or better.
            let window = mix.mean_deferral_window().unwrap_or(0.0);
            assert!(
                window >= 16.0,
                "{name}: mean deferral window {window:.1} visits/batch < 16; \
                 eject batching failed to lift the per-eject catch-up collapse"
            );
        }
        let total = prof.total_ns().max(1);
        print!("  {:16} stages:", "");
        let mut stage_fields = Vec::new();
        for (stage, ns) in prof.stages() {
            let pct = ns as f64 * 100.0 / total as f64;
            print!(" {stage} {pct:.0}%");
            stage_fields.push(format!(
                "        \"{stage}_ns\": {ns},\n        \"{stage}_pct\": {pct:.1}"
            ));
        }
        println!("  ({} stepped cycles)", prof.stepped_cycles);
        println!(
            "  {:16} step mix: full {} / memo {} / burst {} (hit rate {:.3}, {} plans, {} ops)   ff: {} skips, {} cycles",
            "",
            mix.full_steps,
            mix.memo_replayed,
            mix.burst_retired,
            hit_rate,
            mix.bursts_planned,
            mix.burst_ops,
            ff_skips,
            ff_skipped
        );
        println!(
            "  {:16} stage ticks: issue {} / req_net {} / memory {} / reply_net {} / completion {}   ({} completions delivered)",
            "",
            mix.ticks_issue,
            mix.ticks_request_net,
            mix.ticks_memory,
            mix.ticks_reply_net,
            mix.ticks_completion,
            mix.completions_delivered
        );
        println!(
            "  {:16} batching: {} retire batches / {} acks batched / {} plan spans replayed",
            "", mix.ack_batches, mix.acks_batched, mix.plan_spans_replayed
        );
        let window = mix.mean_deferral_window().unwrap_or(0.0);
        println!(
            "  {:16} ejects: {} batches / {} requests batched / mean deferral window {:.1} ({} visits over {} replays)",
            "",
            mix.eject_batches,
            mix.requests_batched,
            window,
            mix.replayed_visits,
            mix.replay_batches
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"simulated_cycles\": {},\n",
                "      \"cycles_per_sec_ff_on\": {:.1},\n",
                "      \"cycles_per_sec_ff_off\": {:.1},\n",
                "      \"rates_ff_on\": {},\n",
                "      \"rates_ff_off\": {},\n",
                "      \"median_ff_on\": {:.1},\n",
                "      \"median_ff_off\": {:.1},\n",
                "      \"speedup\": {:.3},\n",
                "      \"speedup_median\": {:.3},\n",
                "      \"step_mix\": {{\n",
                "        \"full_steps\": {},\n",
                "        \"memo_replayed\": {},\n",
                "        \"burst_retired\": {},\n",
                "        \"memo_invalidations\": {},\n",
                "        \"bursts_planned\": {},\n",
                "        \"burst_ops\": {},\n",
                "        \"burst_hit_rate\": {:.4},\n",
                "        \"ack_batches\": {},\n",
                "        \"acks_batched\": {},\n",
                "        \"plan_spans_replayed\": {},\n",
                "        \"eject_batches\": {},\n",
                "        \"requests_batched\": {},\n",
                "        \"replay_batches\": {},\n",
                "        \"replayed_visits\": {},\n",
                "        \"mean_deferral_window\": {:.2},\n",
                "        \"ticks_issue\": {},\n",
                "        \"ticks_request_net\": {},\n",
                "        \"ticks_memory\": {},\n",
                "        \"ticks_reply_net\": {},\n",
                "        \"ticks_completion\": {},\n",
                "        \"completions_delivered\": {}\n",
                "      }},\n",
                "      \"fast_forward\": {{\n",
                "        \"skips\": {},\n",
                "        \"skipped_gpu_cycles\": {}\n",
                "      }},\n",
                "      \"stage_breakdown\": {{\n",
                "        \"stepped_cycles\": {},\n",
                "{}\n",
                "      }}\n",
                "    }}"
            ),
            name,
            cycles_on,
            rate_on,
            rate_off,
            fmt_rates(&rates_on),
            fmt_rates(&rates_off),
            median(&rates_on),
            median(&rates_off),
            speedup,
            median(&rates_on) / median(&rates_off),
            mix.full_steps,
            mix.memo_replayed,
            mix.burst_retired,
            mix.memo_invalidations,
            mix.bursts_planned,
            mix.burst_ops,
            hit_rate,
            mix.ack_batches,
            mix.acks_batched,
            mix.plan_spans_replayed,
            mix.eject_batches,
            mix.requests_batched,
            mix.replay_batches,
            mix.replayed_visits,
            window,
            mix.ticks_issue,
            mix.ticks_request_net,
            mix.ticks_memory,
            mix.ticks_reply_net,
            mix.ticks_completion,
            mix.completions_delivered,
            ff_skips,
            ff_skipped,
            prof.stepped_cycles,
            stage_fields.join(",\n")
        ));
    }
    // serde is vendored as a no-op shim in this workspace, so the JSON is
    // formatted by hand. `HOTLOOP_OUT` overrides the path; empty skips the
    // write (the tier-1 smoke must not clobber the committed best-of-3).
    let out = std::env::var("HOTLOOP_OUT").unwrap_or_else(|_| "BENCH_hotloop.json".into());
    if !out.is_empty() {
        let json = format!(
            "{{\n  \"benchmark\": \"hotloop\",\n  \"unit\": \"simulated_gpu_cycles_per_wall_second\",\n  \"reps\": {reps},\n  \"results\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        println!("\nwrote {out}");
    }
    if floor > 0.0 {
        let (name, rate) = slowest.expect("at least one scenario ran");
        if rate < floor {
            eprintln!(
                "FAIL: {name} ran at {rate:.0} simulated cycles/s, below the floor of {floor:.0}"
            );
            std::process::exit(1);
        }
        println!("floor check passed: slowest scenario {name} at {rate:.0}/s >= {floor:.0}/s");
    }
}
