//! Hot-loop speedup measurement: simulated GPU cycles per wall-clock
//! second with the event-driven fast-forward on vs off, written to
//! `BENCH_hotloop.json`. Scenarios mirror the `hotloop` criterion bench:
//! standalone MEM, standalone PIM, and F3FS competitive co-execution.
//!
//! Run with `cargo run --release --bin hotloop`. Every pair first asserts
//! the two modes simulated the same number of cycles — throughput is only
//! comparable because the runs are bit-identical.

use std::time::Instant;

use pimsim_bench::header;
use pimsim_core::policy::PolicyKind;
use pimsim_sim::Runner;
use pimsim_types::SystemConfig;
use pimsim_workloads::{gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark};

const SCALE: f64 = 1.0;
/// Co-execution is slower per simulated cycle; a smaller size keeps the
/// measurement wall-time reasonable.
const COEXEC_SCALE: f64 = 0.2;
/// Criterion-style minimum: repeat each measurement and keep the best, so
/// one scheduler hiccup does not masquerade as a regression.
const REPS: usize = 3;

fn runner(policy: PolicyKind, fast_forward: bool) -> Runner {
    let mut r = Runner::new(SystemConfig::default(), policy);
    r.max_gpu_cycles = 60_000_000;
    r.fast_forward = fast_forward;
    r
}

fn standalone_mem(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(Box::new(gpu_kernel(GpuBenchmark(10), 8, SCALE)), 0, false)
        .expect("finishes")
        .cycles
}

fn standalone_pim(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            0,
            true,
        )
        .expect("finishes")
        .cycles
}

fn coexec_f3fs(ff: bool) -> u64 {
    runner(PolicyKind::f3fs_competitive(), ff)
        .coexec(
            Box::new(gpu_kernel(GpuBenchmark(8), 72, COEXEC_SCALE)),
            Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, COEXEC_SCALE)),
            true,
        )
        .total_cycles
}

/// Best-of-`REPS` throughput in simulated cycles per wall second.
fn measure(f: fn(bool) -> u64, ff: bool) -> (u64, f64) {
    let mut best = 0.0_f64;
    let mut cycles = 0;
    for _ in 0..REPS {
        let t = Instant::now();
        cycles = f(ff);
        let rate = cycles as f64 / t.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    (cycles, best)
}

fn main() {
    header("Hot-loop throughput: fast-forward on vs off (simulated cycles/sec)");
    type Scenario = fn(bool) -> u64;
    let scenarios: [(&str, Scenario); 3] = [
        ("standalone_mem", standalone_mem),
        ("standalone_pim", standalone_pim),
        ("coexec_f3fs", coexec_f3fs),
    ];
    let mut entries = Vec::new();
    for (name, f) in scenarios {
        let (cycles_on, rate_on) = measure(f, true);
        let (cycles_off, rate_off) = measure(f, false);
        assert_eq!(
            cycles_on, cycles_off,
            "{name}: fast-forward changed the simulated cycle count"
        );
        let speedup = rate_on / rate_off;
        println!(
            "  {name:16} {cycles_on:>10} cycles   ff_on {rate_on:>12.0}/s   ff_off {rate_off:>12.0}/s   speedup {speedup:.2}x"
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"simulated_cycles\": {},\n",
                "      \"cycles_per_sec_ff_on\": {:.1},\n",
                "      \"cycles_per_sec_ff_off\": {:.1},\n",
                "      \"speedup\": {:.3}\n",
                "    }}"
            ),
            name, cycles_on, rate_on, rate_off, speedup
        ));
    }
    // serde is vendored as a no-op shim in this workspace, so the JSON is
    // formatted by hand.
    let json = format!(
        "{{\n  \"benchmark\": \"hotloop\",\n  \"unit\": \"simulated_gpu_cycles_per_wall_second\",\n  \"reps\": {REPS},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_hotloop.json", &json).expect("write BENCH_hotloop.json");
    println!("\nwrote BENCH_hotloop.json");
}
