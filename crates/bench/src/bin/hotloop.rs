//! Hot-loop speedup measurement: simulated GPU cycles per wall-clock
//! second with the event-driven fast-forward on vs off, written to
//! `BENCH_hotloop.json`. Scenarios mirror the `hotloop` criterion bench:
//! standalone MEM, standalone PIM, and F3FS competitive co-execution.
//!
//! Run with `cargo run --release --bin hotloop`. Every pair first asserts
//! the two modes simulated the same number of cycles — throughput is only
//! comparable because the runs are bit-identical.

use std::time::Instant;

use pimsim_bench::header;
use pimsim_core::policy::PolicyKind;
use pimsim_sim::{KernelModel, Runner, Simulator, StageProfile};
use pimsim_types::SystemConfig;
use pimsim_workloads::{gpu_kernel, pim_kernel, pim_suite::PimBenchmark, rodinia::GpuBenchmark};

const SCALE: f64 = 1.0;
/// Co-execution is slower per simulated cycle; a smaller size keeps the
/// measurement wall-time reasonable.
const COEXEC_SCALE: f64 = 0.2;
/// Criterion-style minimum: repeat each measurement and keep the best, so
/// one scheduler hiccup does not masquerade as a regression. Overridable
/// via `HOTLOOP_REPS` (the tier-1 smoke runs a single rep).
const DEFAULT_REPS: usize = 3;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn runner(policy: PolicyKind, fast_forward: bool) -> Runner {
    let mut r = Runner::new(SystemConfig::default(), policy);
    r.max_gpu_cycles = 60_000_000;
    r.fast_forward = fast_forward;
    r
}

fn standalone_mem(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(Box::new(gpu_kernel(GpuBenchmark(10), 8, SCALE)), 0, false)
        .expect("finishes")
        .cycles
}

fn standalone_pim(ff: bool) -> u64 {
    runner(PolicyKind::FrFcfs, ff)
        .standalone(
            Box::new(pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE)),
            0,
            true,
        )
        .expect("finishes")
        .cycles
}

fn coexec_f3fs(ff: bool) -> u64 {
    runner(PolicyKind::f3fs_competitive(), ff)
        .coexec(
            Box::new(gpu_kernel(GpuBenchmark(8), 72, COEXEC_SCALE)),
            Box::new(pim_kernel(PimBenchmark(2), 32, 4, 256, COEXEC_SCALE)),
            true,
        )
        .total_cycles
}

/// One profiled pass of a scenario: the same workload as the timed
/// measurement, run once with per-stage wall timers on. Kept separate
/// from the throughput reps because the timer reads themselves cost
/// real time on the fastest scenarios.
fn profile_scenario(name: &str) -> StageProfile {
    let mut sim = Simulator::new(
        SystemConfig::default(),
        match name {
            "coexec_f3fs" => PolicyKind::f3fs_competitive(),
            _ => PolicyKind::FrFcfs,
        },
    );
    sim.set_stage_profiling(true);
    match name {
        "standalone_mem" => {
            let k = gpu_kernel(GpuBenchmark(10), 8, SCALE);
            let slots = k.num_slots();
            sim.mount(Box::new(k), (0..slots).collect(), false, false);
            sim.run_until_all_first_done(60_000_000).expect("finishes");
        }
        "standalone_pim" => {
            let k = pim_kernel(PimBenchmark(1), 32, 4, 256, SCALE);
            let slots = k.num_slots();
            sim.mount(Box::new(k), (0..slots).collect(), true, false);
            sim.run_until_all_first_done(60_000_000).expect("finishes");
        }
        "coexec_f3fs" => {
            let pim = pim_kernel(PimBenchmark(2), 32, 4, 256, COEXEC_SCALE);
            let gpu = gpu_kernel(GpuBenchmark(8), 72, COEXEC_SCALE);
            let (ps, gs) = (pim.num_slots(), gpu.num_slots());
            sim.mount(Box::new(pim), (0..ps).collect(), true, true);
            sim.mount(Box::new(gpu), (ps..ps + gs).collect(), false, true);
            // Starvation cutoff is a legitimate end, as in Runner::coexec.
            let _ = sim.run_with_starvation_cutoff(60_000_000, Some(25));
        }
        other => unreachable!("unknown scenario {other}"),
    }
    *sim.stage_profile().expect("profiling was enabled")
}

/// Best-of-`reps` throughput in simulated cycles per wall second.
fn measure(f: fn(bool) -> u64, ff: bool, reps: usize) -> (u64, f64) {
    let mut best = 0.0_f64;
    let mut cycles = 0;
    for _ in 0..reps {
        let t = Instant::now();
        cycles = f(ff);
        let rate = cycles as f64 / t.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    (cycles, best)
}

fn main() {
    header("Hot-loop throughput: fast-forward on vs off (simulated cycles/sec)");
    let reps = env_u64("HOTLOOP_REPS", DEFAULT_REPS as u64).max(1) as usize;
    // Optional throughput floor (cycles/s, fast-forward on) applied to
    // every scenario: the tier-1 smoke sets this far below any recorded
    // rate so only asymptotic regressions — not machine noise — trip it.
    let floor = env_u64("HOTLOOP_FLOOR", 0) as f64;
    type Scenario = fn(bool) -> u64;
    let scenarios: [(&str, Scenario); 3] = [
        ("standalone_mem", standalone_mem),
        ("standalone_pim", standalone_pim),
        ("coexec_f3fs", coexec_f3fs),
    ];
    let mut entries = Vec::new();
    let mut slowest: Option<(&str, f64)> = None;
    for (name, f) in scenarios {
        let (cycles_on, rate_on) = measure(f, true, reps);
        let (cycles_off, rate_off) = measure(f, false, reps);
        if slowest.is_none_or(|(_, r)| rate_on < r) {
            slowest = Some((name, rate_on));
        }
        assert_eq!(
            cycles_on, cycles_off,
            "{name}: fast-forward changed the simulated cycle count"
        );
        let speedup = rate_on / rate_off;
        println!(
            "  {name:16} {cycles_on:>10} cycles   ff_on {rate_on:>12.0}/s   ff_off {rate_off:>12.0}/s   speedup {speedup:.2}x"
        );
        let prof = profile_scenario(name);
        let total = prof.total_ns().max(1);
        print!("  {:16} stages:", "");
        let mut stage_fields = Vec::new();
        for (stage, ns) in prof.stages() {
            let pct = ns as f64 * 100.0 / total as f64;
            print!(" {stage} {pct:.0}%");
            stage_fields.push(format!(
                "        \"{stage}_ns\": {ns},\n        \"{stage}_pct\": {pct:.1}"
            ));
        }
        println!("  ({} stepped cycles)", prof.stepped_cycles);
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"scenario\": \"{}\",\n",
                "      \"simulated_cycles\": {},\n",
                "      \"cycles_per_sec_ff_on\": {:.1},\n",
                "      \"cycles_per_sec_ff_off\": {:.1},\n",
                "      \"speedup\": {:.3},\n",
                "      \"stage_breakdown\": {{\n",
                "        \"stepped_cycles\": {},\n",
                "{}\n",
                "      }}\n",
                "    }}"
            ),
            name,
            cycles_on,
            rate_on,
            rate_off,
            speedup,
            prof.stepped_cycles,
            stage_fields.join(",\n")
        ));
    }
    // serde is vendored as a no-op shim in this workspace, so the JSON is
    // formatted by hand. `HOTLOOP_OUT` overrides the path; empty skips the
    // write (the tier-1 smoke must not clobber the committed best-of-3).
    let out = std::env::var("HOTLOOP_OUT").unwrap_or_else(|_| "BENCH_hotloop.json".into());
    if !out.is_empty() {
        let json = format!(
            "{{\n  \"benchmark\": \"hotloop\",\n  \"unit\": \"simulated_gpu_cycles_per_wall_second\",\n  \"reps\": {reps},\n  \"results\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
        println!("\nwrote {out}");
    }
    if floor > 0.0 {
        let (name, rate) = slowest.expect("at least one scenario ran");
        if rate < floor {
            eprintln!(
                "FAIL: {name} ran at {rate:.0} simulated cycles/s, below the floor of {floor:.0}"
            );
            std::process::exit(1);
        }
        println!("floor check passed: slowest scenario {name} at {rate:.0}/s >= {floor:.0}/s");
    }
}
