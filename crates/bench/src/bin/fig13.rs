//! Figure 13: fairness and throughput of a compute-intensive kernel (G10)
//! and four memory-intensive kernels (G6, G11, G17, G19), averaged across
//! all PIM kernels — the orthogonal slice of Figure 8.

use pimsim_bench::{header, BenchArgs};
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::figure13_picks;

fn main() {
    let args = BenchArgs::parse();
    let mut cfg = CompetitiveConfig::full(args.system(), args.scale, args.budget);
    cfg.gpus = figure13_picks().to_vec();
    if args.quick {
        cfg.pims = vec![1, 2, 4].into_iter().map(PimBenchmark).collect();
    }
    eprintln!(
        "running Figure 13 slice: {} GPU x {} PIM x {} policies x 2 VCs (scale {})...",
        cfg.gpus.len(),
        cfg.pims.len(),
        cfg.policies.len(),
        args.scale
    );
    let report = run_competitive(&cfg);

    use pimsim_sim::experiments::competitive::CompetitivePoint;
    type Metric = fn(&CompetitivePoint) -> f64;
    let figures: [(&str, Metric); 2] = [
        ("Figure 13a: fairness index", |p| p.fairness),
        ("Figure 13b: system throughput", |p| p.throughput),
    ];
    for (title, f) in figures {
        for vc in [VcMode::Shared, VcMode::SplitPim] {
            header(&format!("{title}, {vc} (avg across PIM kernels)"));
            let mut t = Table::new(
                std::iter::once("GPU kernel".to_owned())
                    .chain(cfg.policies.iter().map(|p| p.label().to_owned()))
                    .collect(),
            );
            for &g in &cfg.gpus {
                let mut row = vec![format!("{g}")];
                for &policy in &cfg.policies {
                    let vals: Vec<f64> = report
                        .points
                        .iter()
                        .filter(|p| p.gpu == g && p.policy == policy && p.vc == vc)
                        .map(f)
                        .collect();
                    row.push(f3(vals.iter().sum::<f64>() / vals.len().max(1) as f64));
                }
                t.row(row);
            }
            println!("{}", t.render());
        }
    }
    println!(
        "(paper: G10 shows little variation across policies — compute-intensive kernels\n\
         tolerate memory delays; F3FS equalizes well on G19 but favors the GPU on G6/G11\n\
         and PIM on G17)"
    );
}
