//! Table I: the simulation parameters, echoed from the default
//! configuration so the reproduction's settings are auditable.

use pimsim_bench::header;
use pimsim_types::SystemConfig;

fn main() {
    let c = SystemConfig::default();
    header("Table I: simulation parameters (SystemConfig::default())");
    println!("GPU Parameters");
    println!("  Number of SMs: {}", c.gpu.num_sms);
    println!("  Core frequency: {} MHz", c.gpu.core_clock_mhz);
    println!(
        "  Max outstanding MEM/SM: {}",
        c.gpu.max_outstanding_mem_per_sm
    );
    println!(
        "  Max outstanding PIM/warp: {}",
        c.gpu.max_outstanding_pim_per_warp
    );
    println!("Memory Parameters");
    println!("  Channels/Banks: {}/{}", c.dram.channels, c.dram.banks);
    println!("  DRAM frequency: {} MHz", c.dram.clock_mhz);
    println!("  Bank groups: {}", c.dram.bank_groups);
    println!(
        "  L2 cache: {} KB total, {}-way, {} B lines",
        c.cache.total_bytes / 1024,
        c.cache.ways,
        c.cache.line_bytes
    );
    println!(
        "  MEM-Q/PIM-Q size: {}/{} entries",
        c.mc.mem_q_entries, c.mc.pim_q_entries
    );
    println!("  NoC buffer size: {} entries", c.noc.input_queue_entries);
    println!("  PIM FUs: {}/channel", c.dram.pim_fus_per_channel);
    println!("  PIM RF size: {} entries", c.dram.pim_rf_entries);
    let t = &c.timing;
    println!("Timing parameters (cycles)");
    println!(
        "  tCCDs={} tCCDl={} tRRD={} tRCD={} tRP={}",
        t.t_ccds, t.t_ccdl, t.t_rrd, t.t_rcd, t.t_rp
    );
    println!(
        "  tRAS={} tCL={} tWL={} tWR={} tRTPL={}",
        t.t_ras, t.t_cl, t.t_wl, t.t_wr, t.t_rtpl
    );
    println!("Address map");
    println!("  {:?}", c.addr_map);
}
