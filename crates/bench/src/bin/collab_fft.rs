//! The FFT collaborative scenario (extension): transpose/twiddle on the
//! GPU overlapped with row-wise butterfly passes on PIM. Here the *PIM*
//! stage is the longer kernel — the mirror image of the LLM — so the
//! policy ranking flips: MEM-favoring behavior wastes the critical path
//! and PIM-favoring behavior approaches the ideal.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::{CollabOutcome, Runner};
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::fft::fft_scenario;

fn main() {
    let args = BenchArgs::parse();
    let system = args.system();
    let outstanding = system.gpu.max_outstanding_pim_per_warp as u32;
    let mk = || fft_scenario(72, 32, 4, outstanding, args.scale);

    let solo = Runner::new(system.clone(), PolicyKind::FrFcfs);
    let s = mk();
    let gpu_alone = solo
        .standalone(Box::new(s.transpose), 8, false)
        .expect("transpose standalone")
        .cycles;
    let s = mk();
    let pim_alone = solo
        .standalone(Box::new(s.butterflies), 0, true)
        .expect("butterfly standalone")
        .cycles;
    let ideal = CollabOutcome::ideal_speedup(gpu_alone, pim_alone);

    header("FFT collaborative scenario (PIM is the longer stage)");
    println!(
        "transpose alone: {gpu_alone} cycles, butterflies alone: {pim_alone} cycles, ideal {ideal:.3}\n"
    );
    let mut t = Table::new(vec!["policy".into(), "VC1".into(), "VC2".into()]);
    let mut policies = PolicyKind::baselines();
    policies.push(PolicyKind::f3fs_competitive());
    // F3FS favoring the slower (PIM) kernel this time: asymmetric 16/32.
    policies.push(PolicyKind::F3fs {
        mem_cap: 16,
        pim_cap: 32,
    });
    for policy in policies {
        let mut row = vec![match policy {
            PolicyKind::F3fs {
                mem_cap: 16,
                pim_cap: 32,
            } => "F3FS (16/32, favor PIM)".to_owned(),
            PolicyKind::F3fs { .. } => "F3FS (32/32)".to_owned(),
            other => other.label().to_owned(),
        }];
        for vc in [VcMode::Shared, VcMode::SplitPim] {
            let mut sys = system.clone();
            sys.noc.vc_mode = vc;
            let mut runner = Runner::new(sys, policy);
            runner.max_gpu_cycles = args.budget;
            let s = mk();
            let speedup = runner
                .collaborative(Box::new(s.transpose), Box::new(s.butterflies))
                .map(|o| o.speedup(gpu_alone, pim_alone))
                .unwrap_or(0.0);
            row.push(f3(speedup));
        }
        t.row(row);
    }
    t.row(vec!["Ideal".into(), f3(ideal), f3(ideal)]);
    println!("{}", t.render());
    println!(
        "(mirror of Figure 11: with PIM on the critical path, PIM-favoring policies win\n\
         and the F3FS asymmetry points the other way)"
    );
}
