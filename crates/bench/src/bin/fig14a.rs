//! Figure 14a: ablation of F3FS's three components beyond FR-FCFS-Cap —
//! (1) CAP counts requests in the current mode instead of row hits,
//! (2) current-mode-first arbitration,
//! (3) asymmetric per-mode CAPs —
//! evaluated on P2 (Stream Copy) across all GPU kernels plus the LLM,
//! under the VC2 configuration.

use pimsim_bench::{header, BenchArgs};
use pimsim_core::PolicyKind;
use pimsim_sim::experiments::collaborative::run_collaborative;
use pimsim_sim::experiments::competitive::{run_competitive, CompetitiveConfig};
use pimsim_stats::table::{f3, Table};
use pimsim_types::VcMode;
use pimsim_workloads::pim_suite::PimBenchmark;
use pimsim_workloads::rodinia::GpuBenchmark;

fn main() {
    let args = BenchArgs::parse();
    // Stage 0: FR-FCFS-Cap (cap on row hits).
    // Stage 1: + cap counts current-mode requests (F3FS without mode-first).
    // Stage 2: + current mode first (full symmetric F3FS).
    // Stage 3: + asymmetric caps (favoring the slower MEM kernel).
    let stages: Vec<(&str, PolicyKind)> = vec![
        (
            "FR-FCFS-Cap (cap=32 hits)",
            PolicyKind::FrFcfsCap { cap: 32 },
        ),
        (
            "+ cap on mode requests",
            PolicyKind::F3fsNoModeFirst {
                mem_cap: 32,
                pim_cap: 32,
            },
        ),
        (
            "+ current mode first",
            PolicyKind::F3fs {
                mem_cap: 32,
                pim_cap: 32,
            },
        ),
        (
            "+ asymmetric caps (32/16)",
            PolicyKind::F3fs {
                mem_cap: 32,
                pim_cap: 16,
            },
        ),
    ];

    // Competitive half: P2 across all GPU kernels, VC2.
    let mut cfg = CompetitiveConfig::full(args.system(), args.scale, args.budget);
    cfg.pims = vec![PimBenchmark(2)];
    cfg.vcs = vec![VcMode::SplitPim];
    cfg.policies = stages.iter().map(|&(_, p)| p).collect();
    if args.quick {
        cfg.gpus = vec![4, 8, 11, 15, 17, 19]
            .into_iter()
            .map(GpuBenchmark)
            .collect();
    }
    eprintln!(
        "running Figure 14a ablation (P2 x {} GPU kernels + LLM)...",
        cfg.gpus.len()
    );
    let competitive = run_competitive(&cfg);

    // LLM half: rerun the collaborative scenario per stage.
    let llm = run_collaborative(&args.system(), args.scale, args.budget);
    let llm_for = |policy: PolicyKind| -> Option<f64> {
        // The collaborative driver includes the baselines and the tuned
        // F3FS; compute missing stages directly.
        let mut sys = args.system();
        sys.noc.vc_mode = VcMode::SplitPim;
        let mut runner = pimsim_sim::Runner::new(sys, policy);
        runner.max_gpu_cycles = args.budget;
        let s = pimsim_workloads::llm_scenario(
            72,
            32,
            4,
            args.system().gpu.max_outstanding_pim_per_warp as u32,
            args.scale,
        );
        runner
            .collaborative(Box::new(s.qkv), Box::new(s.mha))
            .ok()
            .map(|o| o.speedup(llm.qkv_alone, llm.mha_alone))
    };

    header("Figure 14a: F3FS component ablation (VC2)");
    let mut t = Table::new(vec![
        "stage".into(),
        "P2 fairness".into(),
        "P2 throughput".into(),
        "LLM speedup".into(),
    ]);
    for &(label, policy) in &stages {
        let fi = competitive.mean_fairness(policy, VcMode::SplitPim);
        let st = competitive.mean_throughput(policy, VcMode::SplitPim);
        let llm_speedup = llm_for(policy).map_or("-".to_owned(), f3);
        t.row(vec![label.into(), f3(fi), f3(st), llm_speedup]);
    }
    println!("{}", t.render());
    println!(
        "(paper: moving the CAP to mode requests raises P2 fairness 0.73 -> 0.80 and costs\n\
         the LLM 4%; mode-first adds throughput at the same fairness; asymmetry trades\n\
         competitive fairness for +10% LLM speedup)"
    );
}
