//! Minimal criterion-compatible benchmark harness.
//!
//! Implements the subset of the `criterion` 0.5 API the workspace's benches
//! use — `Criterion`, `benchmark_group`/`sample_size`/`bench_function`/
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock sampler, so
//! `cargo bench` works in offline environments. Timing methodology is
//! deliberately plain: per sample it runs the closure in a timed batch and
//! reports the median, mean, and min per-iteration time.
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! `Cargo.toml`; bench sources need no edits.

use std::time::{Duration, Instant};

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Begins a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark function.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples taken per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    /// Ends the group (report is printed incrementally; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    /// Accumulated measured time for this sample.
    elapsed: Duration,
    /// Iterations executed for this sample.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, excluding harness overhead as far as possible.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn run_bench<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass (untimed) so first-touch effects don't skew sample 0.
    let mut warm = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut warm);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    if per_iter.is_empty() {
        println!("  {id}: no iterations recorded");
        return;
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {id}: median {} | mean {} | min {} ({} samples)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(per_iter[0]),
        per_iter.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: emits `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter(|| 1 + 1);
        b.iter(|| 2 + 2);
        assert_eq!(b.iters, 2);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("count", |b| {
                b.iter(|| {
                    ran += 1;
                });
            });
            g.finish();
        }
        // warm-up + 3 samples, one iteration each
        assert_eq!(ran, 4);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" us"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
