//! Minimal fixed-width text tables for the figure-regeneration binaries.
//!
//! The paper's artifact renders matplotlib figures; our harness prints the
//! same rows/series as aligned text so results can be diffed and inspected
//! without a plotting stack.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use pimsim_stats::table::Table;
///
/// let mut t = Table::new(vec!["policy".into(), "FI".into()]);
/// t.row(vec!["F3FS".into(), "0.81".into()]);
/// let s = t.render();
/// assert!(s.contains("policy"));
/// assert!(s.contains("F3FS"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows extend the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                for _ in cell.chars().count()..*width {
                    line.push(' ');
                }
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats an `f64` with three decimal places, the convention used by the
/// figure binaries.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats an `f64` with two decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "long-header".into()]);
        t.row(vec!["wide-cell".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Both data columns start at the same offset in header and row.
        let h_off = lines[0].find("long-header").unwrap();
        let r_off = lines[2].find('x').unwrap();
        assert_eq!(h_off, r_off);
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = Table::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec![]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(s.contains('3'));
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.234), "1.23");
    }
}
