//! System-level multiprogram metrics (Section III-C of the paper).
//!
//! Both metrics are defined over per-application *speedups*: the ratio of an
//! application's standalone execution time to its execution time under
//! contention.

use serde::{Deserialize, Serialize};

/// Fairness Index (Eyerman & Eeckhout):
/// `min(s_a / s_b, s_b / s_a)`.
///
/// 1.0 means both applications slow down equally; 0.0 means one of them is
/// fully starved. By convention, if both speedups are zero the index is 1.0
/// (equal — if degenerate — treatment), and if exactly one is zero it is 0.0.
pub fn fairness_index(speedup_a: f64, speedup_b: f64) -> f64 {
    assert!(
        speedup_a >= 0.0 && speedup_b >= 0.0,
        "speedups must be nonnegative"
    );
    match (speedup_a == 0.0, speedup_b == 0.0) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        (false, false) => (speedup_a / speedup_b).min(speedup_b / speedup_a),
    }
}

/// System Throughput: the sum of per-application speedups, a direct measure
/// of the rate at which the system services kernels.
pub fn system_throughput(speedup_a: f64, speedup_b: f64) -> f64 {
    speedup_a + speedup_b
}

/// Per-application speedups of one co-execution run, plus the derived
/// metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoexecMetrics {
    /// Speedup of the regular GPU (MEM) kernel.
    pub mem_speedup: f64,
    /// Speedup of the PIM kernel.
    pub pim_speedup: f64,
}

impl CoexecMetrics {
    /// Builds metrics from standalone and contended execution times.
    ///
    /// # Panics
    ///
    /// Panics if any execution time is zero.
    pub fn from_times(
        mem_alone: u64,
        mem_contended: u64,
        pim_alone: u64,
        pim_contended: u64,
    ) -> Self {
        assert!(
            mem_alone > 0 && mem_contended > 0 && pim_alone > 0 && pim_contended > 0,
            "execution times must be nonzero"
        );
        CoexecMetrics {
            mem_speedup: mem_alone as f64 / mem_contended as f64,
            pim_speedup: pim_alone as f64 / pim_contended as f64,
        }
    }

    /// Fairness index of this run.
    pub fn fairness_index(&self) -> f64 {
        fairness_index(self.mem_speedup, self.pim_speedup)
    }

    /// System throughput of this run.
    pub fn system_throughput(&self) -> f64 {
        system_throughput(self.mem_speedup, self.pim_speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_is_symmetric_and_bounded() {
        let f = fairness_index(0.25, 0.75);
        assert_eq!(f, fairness_index(0.75, 0.25));
        assert!((f - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(fairness_index(0.5, 0.5), 1.0);
    }

    #[test]
    fn fairness_starvation_is_zero() {
        assert_eq!(fairness_index(0.0, 0.9), 0.0);
        assert_eq!(fairness_index(0.9, 0.0), 0.0);
        assert_eq!(fairness_index(0.0, 0.0), 1.0);
    }

    #[test]
    fn throughput_is_sum() {
        assert_eq!(system_throughput(0.4, 0.7), 1.1);
    }

    #[test]
    fn coexec_metrics_from_times() {
        // MEM: alone 100, contended 200 -> 0.5; PIM: alone 80, contended 100 -> 0.8.
        let m = CoexecMetrics::from_times(100, 200, 80, 100);
        assert!((m.mem_speedup - 0.5).abs() < 1e-12);
        assert!((m.pim_speedup - 0.8).abs() < 1e-12);
        assert!((m.fairness_index() - 0.625).abs() < 1e-12);
        assert!((m.system_throughput() - 1.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "execution times must be nonzero")]
    fn coexec_metrics_rejects_zero_time() {
        let _ = CoexecMetrics::from_times(0, 1, 1, 1);
    }
}
