//! Statistics and system-level metrics for the `pim-coscheduling` simulator.
//!
//! Provides small, dependency-light building blocks:
//!
//! * [`Samples`] — a collected sample set with quartile summaries (used for
//!   the box-plot style characterization in Figure 4 of the paper).
//! * [`Running`] — online count/mean/min/max accumulator.
//! * [`metrics`] — the paper's system-level metrics: *fairness index* and
//!   *system throughput* (Eyerman & Eeckhout, IEEE Micro 2008).
//! * [`table`] — fixed-width text tables for the figure-regeneration
//!   binaries.
//!
//! # Example
//!
//! ```
//! use pimsim_stats::metrics::{fairness_index, system_throughput};
//!
//! let fi = fairness_index(0.5, 1.0);
//! assert!((fi - 0.5).abs() < 1e-12);
//! assert!((system_throughput(0.5, 1.0) - 1.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod metrics;
pub mod table;

pub use histogram::Histogram;

use serde::{Deserialize, Serialize};

/// A stats bundle that can absorb another instance of itself.
///
/// Implemented by per-channel counter structs (`McStats`, `ChannelStats`)
/// so cross-channel aggregation is one generic fold instead of a bespoke
/// merge loop per stats type.
///
/// # Example
///
/// ```
/// use pimsim_stats::Mergeable;
///
/// #[derive(Default)]
/// struct Hits(u64);
/// impl Mergeable for Hits {
///     fn merge_from(&mut self, other: &Self) {
///         self.0 += other.0;
///     }
/// }
/// let mut agg = Hits::default();
/// for h in [Hits(1), Hits(2)] {
///     agg.merge_from(&h);
/// }
/// assert_eq!(agg.0, 3);
/// ```
pub trait Mergeable: Default {
    /// Adds `other`'s counters into `self`.
    fn merge_from(&mut self, other: &Self);
}

/// Online count/sum/min/max accumulator for a stream of observations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Running) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A collected set of samples with quartile summaries.
///
/// Used for the inter-kernel distributions in the characterization figures,
/// where the population is small (tens of kernels) and storing every sample
/// is appropriate.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
}

/// Five-number summary of a sample set (box-plot statistics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Minimum (lower whisker).
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum (upper whisker).
    pub max: f64,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples { values: Vec::new() }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.values.push(x);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the raw samples in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// The p-th quantile (0.0..=1.0) by linear interpolation, or `None` if
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0` or any sample is NaN.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = p * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
    }

    /// Box-plot five-number summary, or `None` if empty.
    pub fn five_number(&self) -> Option<FiveNumber> {
        Some(FiveNumber {
            min: self.quantile(0.0)?,
            q1: self.quantile(0.25)?,
            median: self.quantile(0.5)?,
            q3: self.quantile(0.75)?,
            max: self.quantile(1.0)?,
        })
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Samples {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

/// Arithmetic mean of a slice, or `None` if empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Geometric mean of a slice of positive values, or `None` if empty.
///
/// # Panics
///
/// Panics if any value is not strictly positive (a geometric mean over
/// nonpositive values is undefined).
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.ln()
        })
        .sum();
    Some((log_sum / xs.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_tracks_count_mean_min_max() {
        let mut r = Running::new();
        assert_eq!(r.mean(), None);
        for x in [2.0, 4.0, 6.0] {
            r.record(x);
        }
        assert_eq!(r.count(), 3);
        assert_eq!(r.mean(), Some(4.0));
        assert_eq!(r.min(), Some(2.0));
        assert_eq!(r.max(), Some(6.0));
    }

    #[test]
    fn running_merge_equals_combined_stream() {
        let mut a = Running::new();
        let mut b = Running::new();
        let mut c = Running::new();
        for x in [1.0, 5.0] {
            a.record(x);
            c.record(x);
        }
        for x in [3.0, -2.0] {
            b.record(x);
            c.record(x);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn samples_quartiles_on_known_set() {
        let s: Samples = (1..=5).map(|x| x as f64).collect();
        let f = s.five_number().unwrap();
        assert_eq!(f.min, 1.0);
        assert_eq!(f.q1, 2.0);
        assert_eq!(f.median, 3.0);
        assert_eq!(f.q3, 4.0);
        assert_eq!(f.max, 5.0);
    }

    #[test]
    fn samples_quantile_interpolates() {
        let s: Samples = [0.0, 10.0].iter().copied().collect();
        assert_eq!(s.quantile(0.5), Some(5.0));
        assert_eq!(s.quantile(0.25), Some(2.5));
    }

    #[test]
    fn samples_empty_yields_none() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.five_number(), None);
    }

    #[test]
    #[should_panic(expected = "quantile p out of range")]
    fn samples_quantile_rejects_bad_p() {
        let s: Samples = [1.0].iter().copied().collect();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn geomean_of_powers() {
        let g = geomean(&[1.0, 4.0, 16.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    #[should_panic(expected = "geomean requires positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }
}
