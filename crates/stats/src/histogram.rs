//! A small log-scale histogram for latency distributions.
//!
//! Values are bucketed by their binary magnitude (bucket `k` holds values
//! in `[2^k, 2^(k+1))`, bucket 0 holds 0 and 1), which gives quantiles
//! with at most 2x relative error at constant memory — plenty for
//! comparing queueing-delay distributions across scheduling policies.

use serde::{Deserialize, Serialize};

/// Number of buckets: covers values up to `2^63`.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` observations.
///
/// # Example
///
/// ```
/// use pimsim_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 40, 80, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.quantile(0.5).unwrap() >= 20);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        (64 - v.max(1).leading_zeros() - 1) as usize
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The p-quantile (0.0..=1.0) as the upper bound of the bucket holding
    /// that rank (within 2x of the true value), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        if self.total == 0 {
            return None;
        }
        let rank = ((p * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket k, capped at the observed max.
                let hi = if k >= 63 { u64::MAX } else { (2u64 << k) - 1 };
                return Some(hi.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 99);
        assert!((h.mean().unwrap() - 49.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((500..=1023).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((990..=1023).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(1000));
    }

    #[test]
    fn zero_values_are_representable() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), Some(1));
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [3u64, 17, 220] {
            a.record(v);
            c.record(v);
        }
        for v in [9u64, 4000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "quantile p out of range")]
    fn bad_quantile_panics() {
        let h = Histogram::new();
        let _ = h.quantile(2.0);
    }
}
