//! Sliced L2 cache model.
//!
//! The GPU's 6 MB L2 is distributed across memory partitions, one slice per
//! channel (Figure 1). Each slice is a set-associative, write-back,
//! write-allocate tag store with MSHRs for outstanding misses.
//!
//! Two properties matter for the paper's analysis and are modeled exactly:
//!
//! * **MEM requests are filtered** — hits never reach the memory
//!   controller, so a GPU kernel's DRAM arrival rate is lower than its
//!   interconnect arrival rate (Figure 4a vs. 4b).
//! * **PIM requests bypass the cache entirely** — they are cache-streaming
//!   stores. The bypass itself happens in the memory-partition wiring
//!   (`pimsim-sim`); this crate only ever sees MEM requests.
//!
//! The model is tag-only (no data payloads are simulated).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pimsim_types::{CacheConfig, Cycle, PhysAddr, Request, RequestKind};

/// Outcome of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line present: the request completes after the slice latency.
    Hit,
    /// Line absent and a new MSHR was allocated: the caller must send a
    /// fill read for [`CacheSlice::line_addr`] of the request to DRAM.
    MissAllocated,
    /// Line absent but an MSHR for the same line already exists: the
    /// request was merged and will complete when the fill returns.
    MissMerged,
    /// No MSHR available: the caller must retry the request later.
    Blocked,
}

/// A line installed in the tag store.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    last_used: u64,
}

/// An outstanding miss.
#[derive(Debug, Clone)]
struct Mshr {
    line: u64,
    /// Requests waiting on this fill (the original miss plus merges).
    waiters: Vec<Request>,
    /// Whether any waiting request is a write (line installs dirty).
    any_write: bool,
}

/// Counters for one slice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that allocated a new MSHR.
    pub misses: u64,
    /// Lookups merged into an existing MSHR.
    pub merges: u64,
    /// Lookups rejected because MSHRs were exhausted.
    pub blocked: u64,
    /// Dirty evictions (writebacks sent to DRAM).
    pub writebacks: u64,
}

/// One L2 cache slice.
///
/// # Example
///
/// ```
/// use pimsim_cache::{AccessOutcome, CacheSlice};
/// use pimsim_types::{CacheConfig, Request, RequestId, RequestKind, AppId, PhysAddr};
///
/// let mut slice = CacheSlice::new(&CacheConfig::default(), 32);
/// let req = Request::new(RequestId(0), AppId::GPU, RequestKind::MemRead, PhysAddr(0x80), 0, 0);
/// assert_eq!(slice.access(req, 0), AccessOutcome::MissAllocated);
/// let (waiters, writeback) = slice.fill(slice.line_addr(PhysAddr(0x80)), 100);
/// assert_eq!(waiters.len(), 1);
/// assert!(writeback.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct CacheSlice {
    sets: Vec<Vec<Option<Line>>>,
    line_bytes: u64,
    num_sets: u64,
    mshrs: Vec<Mshr>,
    mshr_capacity: usize,
    latency: Cycle,
    use_clock: u64,
    stats: CacheStats,
}

impl CacheSlice {
    /// Creates one slice of a cache distributed over `num_slices` channels.
    ///
    /// # Panics
    ///
    /// Panics if the geometry leaves this slice without at least one set.
    pub fn new(cfg: &CacheConfig, num_slices: usize) -> Self {
        let slice_bytes = cfg.total_bytes / num_slices;
        let num_sets = slice_bytes / (cfg.line_bytes * cfg.ways);
        assert!(num_sets > 0, "cache slice too small for one set");
        CacheSlice {
            sets: (0..num_sets).map(|_| vec![None; cfg.ways]).collect(),
            line_bytes: cfg.line_bytes as u64,
            num_sets: num_sets as u64,
            mshrs: Vec::new(),
            mshr_capacity: cfg.mshr_entries,
            latency: cfg.latency,
            use_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Tag/data pipeline latency in GPU cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// The line-aligned address containing `addr`.
    pub fn line_addr(&self, addr: PhysAddr) -> PhysAddr {
        PhysAddr(addr.0 & !(self.line_bytes - 1))
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / self.line_bytes) % self.num_sets) as usize
    }

    fn tag(&self, line: u64) -> u64 {
        line / self.line_bytes / self.num_sets
    }

    /// Number of MSHRs currently in use.
    pub fn mshrs_in_use(&self) -> usize {
        self.mshrs.len()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `req` (a MEM read or write).
    ///
    /// # Panics
    ///
    /// Panics if called with a PIM request — those bypass the cache and
    /// must be routed around it by the memory partition.
    pub fn access(&mut self, req: Request, _now: Cycle) -> AccessOutcome {
        assert!(
            req.kind.is_mem(),
            "PIM requests bypass the L2 and must not be looked up"
        );
        let line = self.line_addr(req.addr).0;
        let set = self.set_index(line);
        let tag = self.tag(line);
        self.use_clock += 1;
        let clock = self.use_clock;
        if let Some(way) = self.sets[set]
            .iter()
            .position(|l| l.is_some_and(|l| l.tag == tag))
        {
            let l = self.sets[set][way].as_mut().expect("just matched");
            l.last_used = clock;
            if req.kind == RequestKind::MemWrite {
                l.dirty = true;
            }
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }
        if let Some(m) = self.mshrs.iter_mut().find(|m| m.line == line) {
            m.waiters.push(req);
            m.any_write |= req.kind == RequestKind::MemWrite;
            self.stats.merges += 1;
            return AccessOutcome::MissMerged;
        }
        if self.mshrs.len() >= self.mshr_capacity {
            self.stats.blocked += 1;
            return AccessOutcome::Blocked;
        }
        self.mshrs.push(Mshr {
            line,
            waiters: vec![req],
            any_write: req.kind == RequestKind::MemWrite,
        });
        self.stats.misses += 1;
        AccessOutcome::MissAllocated
    }

    /// Completes the fill for `line` (line-aligned address): installs the
    /// line, retires its MSHR, and returns the waiting requests plus the
    /// writeback address of a dirty victim, if one was evicted.
    ///
    /// # Panics
    ///
    /// Panics if no MSHR is outstanding for `line`.
    pub fn fill(&mut self, line: PhysAddr, _now: Cycle) -> (Vec<Request>, Option<PhysAddr>) {
        let idx = self
            .mshrs
            .iter()
            .position(|m| m.line == line.0)
            .unwrap_or_else(|| panic!("fill for {line} without an MSHR"));
        let mshr = self.mshrs.swap_remove(idx);
        let set = self.set_index(line.0);
        let tag = self.tag(line.0);
        self.use_clock += 1;
        let clock = self.use_clock;
        // Choose a victim: an invalid way, else LRU.
        let way = self.sets[set]
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.sets[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.expect("no invalid ways left").last_used)
                    .map(|(i, _)| i)
                    .expect("ways > 0")
            });
        let victim = self.sets[set][way];
        let writeback = victim.and_then(|v| {
            v.dirty.then(|| {
                self.stats.writebacks += 1;
                // Reconstruct the victim's line address from its tag.
                PhysAddr((v.tag * self.num_sets + set as u64) * self.line_bytes)
            })
        });
        self.sets[set][way] = Some(Line {
            tag,
            dirty: mshr.any_write,
            last_used: clock,
        });
        (mshr.waiters, writeback)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_types::{AppId, RequestId};

    fn slice() -> CacheSlice {
        // Small slice: 4 sets x 2 ways x 32 B lines = 256 B per slice.
        let cfg = CacheConfig {
            total_bytes: 256 * 2,
            ways: 2,
            line_bytes: 32,
            latency: 10,
            mshr_entries: 2,
        };
        CacheSlice::new(&cfg, 2)
    }

    fn read(id: u64, addr: u64) -> Request {
        Request::new(
            RequestId(id),
            AppId::GPU,
            RequestKind::MemRead,
            PhysAddr(addr),
            0,
            0,
        )
    }

    fn write(id: u64, addr: u64) -> Request {
        Request::new(
            RequestId(id),
            AppId::GPU,
            RequestKind::MemWrite,
            PhysAddr(addr),
            0,
            0,
        )
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = slice();
        assert_eq!(c.access(read(0, 0x40), 0), AccessOutcome::MissAllocated);
        let (waiters, wb) = c.fill(PhysAddr(0x40), 5);
        assert_eq!(waiters.len(), 1);
        assert!(wb.is_none());
        assert_eq!(c.access(read(1, 0x40), 10), AccessOutcome::Hit);
        assert_eq!(c.access(read(2, 0x5c), 10), AccessOutcome::Hit, "same line");
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn concurrent_misses_to_same_line_merge() {
        let mut c = slice();
        assert_eq!(c.access(read(0, 0x40), 0), AccessOutcome::MissAllocated);
        assert_eq!(c.access(read(1, 0x44), 1), AccessOutcome::MissMerged);
        assert_eq!(c.mshrs_in_use(), 1);
        let (waiters, _) = c.fill(PhysAddr(0x40), 5);
        assert_eq!(waiters.len(), 2);
        assert_eq!(c.stats().merges, 1);
    }

    #[test]
    fn mshr_exhaustion_blocks() {
        let mut c = slice();
        assert_eq!(c.access(read(0, 0x000), 0), AccessOutcome::MissAllocated);
        assert_eq!(c.access(read(1, 0x100), 0), AccessOutcome::MissAllocated);
        assert_eq!(c.access(read(2, 0x200), 0), AccessOutcome::Blocked);
        assert_eq!(c.stats().blocked, 1);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = slice();
        // 4 sets, 32 B lines: addresses 0x00, 0x80, 0x100 all map to set 0.
        assert_eq!(c.access(write(0, 0x00), 0), AccessOutcome::MissAllocated);
        c.fill(PhysAddr(0x00), 1);
        assert_eq!(c.access(read(1, 0x80), 2), AccessOutcome::MissAllocated);
        c.fill(PhysAddr(0x80), 3);
        // Set 0 is now full (2 ways); next fill evicts LRU = dirty 0x00.
        assert_eq!(c.access(read(2, 0x100), 4), AccessOutcome::MissAllocated);
        let (_, wb) = c.fill(PhysAddr(0x100), 5);
        assert_eq!(wb, Some(PhysAddr(0x00)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = slice();
        for (i, a) in [0x00u64, 0x80].into_iter().enumerate() {
            c.access(read(i as u64, a), 0);
            c.fill(PhysAddr(a), 1);
        }
        c.access(read(9, 0x100), 2);
        let (_, wb) = c.fill(PhysAddr(0x100), 3);
        assert!(wb.is_none());
    }

    #[test]
    fn lru_replacement_prefers_stale_line() {
        let mut c = slice();
        for (i, a) in [0x00u64, 0x80].into_iter().enumerate() {
            c.access(read(i as u64, a), 0);
            c.fill(PhysAddr(a), 1);
        }
        // Touch 0x00 so 0x80 becomes LRU.
        assert_eq!(c.access(read(5, 0x00), 2), AccessOutcome::Hit);
        c.access(read(6, 0x100), 3);
        c.fill(PhysAddr(0x100), 4);
        // 0x00 must still be resident; 0x80 was evicted.
        assert_eq!(c.access(read(7, 0x00), 5), AccessOutcome::Hit);
        assert_eq!(c.access(read(8, 0x80), 6), AccessOutcome::MissAllocated);
    }

    #[test]
    fn write_hit_marks_dirty_for_later_writeback() {
        let mut c = slice();
        c.access(read(0, 0x00), 0);
        c.fill(PhysAddr(0x00), 1);
        assert_eq!(c.access(write(1, 0x00), 2), AccessOutcome::Hit);
        c.access(read(2, 0x80), 3);
        c.fill(PhysAddr(0x80), 4);
        c.access(read(3, 0x100), 5);
        let (_, wb) = c.fill(PhysAddr(0x100), 6);
        assert_eq!(wb, Some(PhysAddr(0x00)), "write hit must dirty the line");
    }

    #[test]
    #[should_panic(expected = "PIM requests bypass the L2")]
    fn pim_lookup_panics() {
        use pimsim_types::{PimCommand, PimOpKind};
        let mut c = slice();
        let cmd = PimCommand {
            op: PimOpKind::RfLoad,
            channel: 0,
            row: 0,
            col: 0,
            rf_entry: 0,
            block_start: false,
            block_id: 0,
        };
        let req = Request::new(
            RequestId(0),
            AppId::PIM,
            RequestKind::Pim(cmd),
            PhysAddr(0),
            0,
            0,
        );
        let _ = c.access(req, 0);
    }

    #[test]
    #[should_panic(expected = "without an MSHR")]
    fn fill_without_mshr_panics() {
        let mut c = slice();
        let _ = c.fill(PhysAddr(0x40), 0);
    }

    #[test]
    fn victim_address_reconstruction_roundtrips() {
        // The writeback address rebuilt from (tag, set) must equal the
        // original line address for many distinct lines.
        let cfg = CacheConfig {
            total_bytes: 8 * 1024,
            ways: 2,
            line_bytes: 32,
            latency: 1,
            mshr_entries: 4,
        };
        let mut c = CacheSlice::new(&cfg, 2);
        // Fill a set with dirty lines, then force evictions and check the
        // writeback addresses come back line-aligned and distinct.
        let set_stride = 4 * 1024 / 2; // sets * line_bytes
        let mut seen = std::collections::HashSet::new();
        for i in 0..6u64 {
            let addr = i * set_stride as u64; // all map to set 0
            assert_eq!(c.access(write(i, addr), 0), AccessOutcome::MissAllocated);
            let (_, wb) = c.fill(PhysAddr(addr), 1);
            if let Some(w) = wb {
                assert_eq!(w.0 % 32, 0, "writeback must be line-aligned");
                assert!(seen.insert(w.0), "duplicate writeback {w}");
                assert_eq!(w.0 % set_stride as u64, 0, "victim must map to set 0");
            }
        }
        assert_eq!(c.stats().writebacks, 4, "6 fills into 2 ways evict 4");
    }

    #[test]
    fn merged_write_installs_dirty() {
        let mut c = slice();
        assert_eq!(c.access(read(0, 0x00), 0), AccessOutcome::MissAllocated);
        assert_eq!(c.access(write(1, 0x08), 0), AccessOutcome::MissMerged);
        let (waiters, _) = c.fill(PhysAddr(0x00), 1);
        assert_eq!(waiters.len(), 2);
        // Evict it: the line must come back dirty (write-allocate).
        c.access(read(2, 0x80), 2);
        c.fill(PhysAddr(0x80), 3);
        c.access(read(3, 0x100), 4);
        let (_, wb) = c.fill(PhysAddr(0x100), 5);
        assert_eq!(wb, Some(PhysAddr(0x00)), "merged write must dirty the fill");
    }
}
