//! PIM functional-unit state: the per-bank register file that holds
//! operands across blocks (and across MEM/PIM mode switches).
//!
//! Because PIM mode executes in lock-step — every bank of a channel runs
//! the same op on the same RF entry — a single RF image per channel
//! faithfully tracks the *validity* of entries for every bank. We do not
//! simulate data values; the engine checks the dataflow discipline of
//! Figure 3: computes and stores may only read entries that a load or
//! compute previously wrote.
//!
//! The engine is purely functional in time: executing an op depends only
//! on the *sequence* of ops, never on the cycle they issue at. The
//! controller's burst-retirement path relies on this — when a homogeneous
//! PIM run is retired analytically each engine op executes at its
//! *analytic* issue cycle rather than through a per-cycle decision, and
//! the RF image lands in the same state per-cycle issue would have
//! produced (DESIGN.md §4h).

use pimsim_types::{Cycle, PimCommand, PimOpKind};

/// Error returned when a PIM op violates the register-file discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RfDisciplineError {
    /// The offending op.
    pub op: PimOpKind,
    /// The RF entry it touched.
    pub entry: u8,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for RfDisciplineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PIM register-file discipline violation: {} on entry {}: {}",
            self.op, self.entry, self.reason
        )
    }
}

impl std::error::Error for RfDisciplineError {}

/// Lock-step register-file tracker for one channel's PIM FUs.
#[derive(Debug, Clone)]
pub struct PimEngine {
    /// Valid bit per per-bank RF entry.
    valid: Vec<bool>,
    /// Last block id observed, for monotonicity checks.
    last_block: Option<u64>,
    ops_executed: u64,
    blocks_started: u64,
}

impl PimEngine {
    /// Creates an engine with `rf_entries_per_bank` invalid entries.
    pub fn new(rf_entries_per_bank: usize) -> Self {
        PimEngine {
            valid: vec![false; rf_entries_per_bank],
            last_block: None,
            ops_executed: 0,
            blocks_started: 0,
        }
    }

    /// Number of RF entries per bank.
    pub fn rf_entries(&self) -> usize {
        self.valid.len()
    }

    /// Total PIM ops executed.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Total blocks started.
    pub fn blocks_started(&self) -> u64 {
        self.blocks_started
    }

    /// The earliest cycle at or after `now` at which the engine will act
    /// on its own: always `None`. The PIM datapath is purely reactive — it
    /// executes only when the controller feeds it a command — so it never
    /// constrains the simulator's idle-span skipping.
    pub fn next_activity_cycle(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    /// Records execution of `cmd`, validating RF discipline and block
    /// ordering.
    ///
    /// # Errors
    ///
    /// Returns [`RfDisciplineError`] if the entry index is out of range, a
    /// compute/store reads an invalid entry, or blocks arrive out of order.
    pub fn execute(&mut self, cmd: &PimCommand) -> Result<(), RfDisciplineError> {
        let entry = cmd.rf_entry as usize;
        if entry >= self.valid.len() {
            return Err(RfDisciplineError {
                op: cmd.op,
                entry: cmd.rf_entry,
                reason: format!("entry out of range (rf has {} entries)", self.valid.len()),
            });
        }
        if cmd.block_start {
            if let Some(last) = self.last_block {
                if cmd.block_id <= last {
                    return Err(RfDisciplineError {
                        op: cmd.op,
                        entry: cmd.rf_entry,
                        reason: format!(
                            "block {} started after block {} (blocks must execute in order)",
                            cmd.block_id, last
                        ),
                    });
                }
            }
            self.last_block = Some(cmd.block_id);
            self.blocks_started += 1;
        }
        match cmd.op {
            PimOpKind::RfLoad => {
                self.valid[entry] = true;
            }
            PimOpKind::RfCompute => {
                if !self.valid[entry] {
                    return Err(RfDisciplineError {
                        op: cmd.op,
                        entry: cmd.rf_entry,
                        reason: "compute reads an entry never loaded".into(),
                    });
                }
                // Result stays in the RF; entry remains valid.
            }
            PimOpKind::RfStore => {
                if !self.valid[entry] {
                    return Err(RfDisciplineError {
                        op: cmd.op,
                        entry: cmd.rf_entry,
                        reason: "store reads an entry never loaded".into(),
                    });
                }
            }
        }
        self.ops_executed += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(op: PimOpKind, entry: u8, block_start: bool, block_id: u64) -> PimCommand {
        PimCommand {
            op,
            channel: 0,
            row: 0,
            col: 0,
            rf_entry: entry,
            block_start,
            block_id,
        }
    }

    #[test]
    fn load_compute_store_sequence_is_legal() {
        let mut e = PimEngine::new(8);
        e.execute(&cmd(PimOpKind::RfLoad, 0, true, 0)).unwrap();
        e.execute(&cmd(PimOpKind::RfCompute, 0, true, 1)).unwrap();
        e.execute(&cmd(PimOpKind::RfStore, 0, true, 2)).unwrap();
        assert_eq!(e.ops_executed(), 3);
        assert_eq!(e.blocks_started(), 3);
    }

    #[test]
    fn compute_before_load_is_rejected() {
        let mut e = PimEngine::new(8);
        let err = e
            .execute(&cmd(PimOpKind::RfCompute, 3, true, 0))
            .unwrap_err();
        assert!(err.reason.contains("never loaded"));
    }

    #[test]
    fn store_before_load_is_rejected() {
        let mut e = PimEngine::new(8);
        assert!(e.execute(&cmd(PimOpKind::RfStore, 1, true, 0)).is_err());
    }

    #[test]
    fn out_of_range_entry_is_rejected() {
        let mut e = PimEngine::new(8);
        let err = e.execute(&cmd(PimOpKind::RfLoad, 8, true, 0)).unwrap_err();
        assert!(err.reason.contains("out of range"));
    }

    #[test]
    fn blocks_must_arrive_in_order() {
        let mut e = PimEngine::new(8);
        e.execute(&cmd(PimOpKind::RfLoad, 0, true, 5)).unwrap();
        let err = e.execute(&cmd(PimOpKind::RfLoad, 0, true, 4)).unwrap_err();
        assert!(err.reason.contains("in order"));
    }

    #[test]
    fn rf_state_persists_across_blocks() {
        // The register file holds state across block (and mode-switch)
        // boundaries — Section II-A of the paper.
        let mut e = PimEngine::new(8);
        e.execute(&cmd(PimOpKind::RfLoad, 2, true, 0)).unwrap();
        for i in 1..4 {
            e.execute(&cmd(PimOpKind::RfCompute, 2, true, i)).unwrap();
        }
        e.execute(&cmd(PimOpKind::RfStore, 2, true, 4)).unwrap();
    }
}
