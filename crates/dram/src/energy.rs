//! DRAM energy accounting.
//!
//! An extension beyond the paper (its evaluation is performance-only, but
//! PIM's headline motivation is data-movement energy): per-command energy
//! plus background power, computed from a channel's command counters.
//!
//! Default coefficients are HBM2-class ballpark figures (per 32 B access
//! at the device level), good for *relative* comparisons — e.g. PIM ops
//! avoid the I/O energy of moving data across the bus.

use pimsim_types::Cycle;
use serde::{Deserialize, Serialize};

use crate::channel::ChannelStats;

/// Per-command energies (picojoules) and background power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Activate + implicit restore energy per bank, pJ.
    pub e_act: f64,
    /// Precharge energy per bank, pJ.
    pub e_pre: f64,
    /// Column read energy (array access), pJ.
    pub e_rd_array: f64,
    /// Column write energy (array access), pJ.
    pub e_wr_array: f64,
    /// I/O energy of moving one 32 B word across the bus, pJ. MEM reads
    /// and writes pay it; PIM ops do not (data stays at the bank).
    pub e_io: f64,
    /// PIM functional-unit compute energy per op, pJ.
    pub e_pim_fu: f64,
    /// All-bank refresh energy, pJ.
    pub e_ref: f64,
    /// Background power per channel, pJ per DRAM cycle.
    pub p_background: f64,
}

impl Default for EnergyConfig {
    fn default() -> Self {
        EnergyConfig {
            e_act: 900.0,
            e_pre: 600.0,
            e_rd_array: 150.0,
            e_wr_array: 160.0,
            e_io: 250.0,
            e_pim_fu: 60.0,
            e_ref: 25_000.0,
            p_background: 45.0,
        }
    }
}

/// Energy breakdown for one channel over a run, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Row activates + precharges.
    pub row: f64,
    /// MEM column array accesses.
    pub mem_array: f64,
    /// MEM bus I/O.
    pub io: f64,
    /// PIM column array accesses + FU compute.
    pub pim: f64,
    /// Refresh.
    pub refresh: f64,
    /// Background.
    pub background: f64,
}

impl EnergyBreakdown {
    /// Total energy, pJ.
    pub fn total(&self) -> f64 {
        self.row + self.mem_array + self.io + self.pim + self.refresh + self.background
    }

    /// Merges another breakdown (cross-channel aggregation).
    pub fn merge(&mut self, o: &EnergyBreakdown) {
        self.row += o.row;
        self.mem_array += o.mem_array;
        self.io += o.io;
        self.pim += o.pim;
        self.refresh += o.refresh;
        self.background += o.background;
    }
}

/// Computes the energy of `stats` over `cycles` DRAM cycles for a channel
/// with `banks` banks.
///
/// A lock-step PIM op performs an array access and an FU operation on
/// *every* bank (16 DRAM words of useful work per op), so its energy
/// scales with the bank count; activates and precharges are already
/// counted per bank in [`ChannelStats`].
pub fn channel_energy(
    cfg: &EnergyConfig,
    stats: &ChannelStats,
    cycles: Cycle,
    banks: u32,
) -> EnergyBreakdown {
    EnergyBreakdown {
        row: stats.acts as f64 * cfg.e_act + stats.pres as f64 * cfg.e_pre,
        mem_array: stats.reads as f64 * cfg.e_rd_array + stats.writes as f64 * cfg.e_wr_array,
        io: (stats.reads + stats.writes) as f64 * cfg.e_io,
        // Every bank's array + FU participate; nothing crosses the bus.
        pim: stats.pim_ops as f64 * f64::from(banks) * (cfg.e_rd_array + cfg.e_pim_fu),
        refresh: stats.refreshes as f64 * cfg.e_ref,
        background: cycles as f64 * cfg.p_background,
    }
}

/// Energy of servicing `n` 32 B elements via MEM (read + write back)
/// versus via a PIM op in place, ignoring row energy — the classic PIM
/// data-movement argument, usable as a quick estimator.
pub fn movement_savings_per_element(cfg: &EnergyConfig) -> f64 {
    let mem = cfg.e_rd_array + cfg.e_wr_array + 2.0 * cfg.e_io;
    let pim = cfg.e_rd_array + cfg.e_pim_fu;
    mem - pim
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ChannelStats {
        ChannelStats {
            refreshes: 2,
            acts: 10,
            pres: 8,
            reads: 100,
            writes: 50,
            pim_ops: 200,
            pim_blocks: 5,
        }
    }

    #[test]
    fn totals_add_up() {
        let cfg = EnergyConfig::default();
        let e = channel_energy(&cfg, &stats(), 1000, 16);
        let manual = e.row + e.mem_array + e.io + e.pim + e.refresh + e.background;
        assert!((e.total() - manual).abs() < 1e-9);
        assert!(e.total() > 0.0);
    }

    #[test]
    fn pim_ops_skip_io_energy() {
        let cfg = EnergyConfig::default();
        let mem_only = ChannelStats {
            reads: 100,
            ..Default::default()
        };
        let pim_only = ChannelStats {
            pim_ops: 100,
            ..Default::default()
        };
        let em = channel_energy(&cfg, &mem_only, 0, 16);
        let ep = channel_energy(&cfg, &pim_only, 0, 16);
        assert_eq!(ep.io, 0.0);
        assert!(em.io > 0.0);
        // 100 PIM ops process 16x the data of 100 reads; per DRAM word
        // touched they must cost less than bus-crossing reads.
        assert!(ep.total() / 16.0 < em.total());
    }

    #[test]
    fn background_scales_with_cycles() {
        let cfg = EnergyConfig::default();
        let e1 = channel_energy(&cfg, &ChannelStats::default(), 100, 16);
        let e2 = channel_energy(&cfg, &ChannelStats::default(), 200, 16);
        assert!((e2.background - 2.0 * e1.background).abs() < 1e-9);
    }

    #[test]
    fn movement_savings_positive_by_default() {
        assert!(movement_savings_per_element(&EnergyConfig::default()) > 0.0);
    }

    #[test]
    fn merge_is_additive() {
        let cfg = EnergyConfig::default();
        let mut a = channel_energy(&cfg, &stats(), 500, 16);
        let b = channel_energy(&cfg, &stats(), 300, 16);
        let total_before = a.total();
        a.merge(&b);
        assert!((a.total() - total_before - b.total()).abs() < 1e-6);
    }
}
