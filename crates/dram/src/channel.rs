//! Cycle-level model of one HBM channel: banks, row buffers, command
//! timing, and the all-bank lock-step PIM mode.
//!
//! The channel is a *mechanism*: it enforces DRAM timing legality and row
//! state, while the memory controller (in `pimsim-core`) decides which
//! command to issue. At most one command can be issued per channel per DRAM
//! cycle (command-bus serialization).

use pimsim_types::{Cycle, DramConfig, DramTiming};

/// A DRAM command, as issued by the memory controller to one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramCommand {
    /// Activate `row` on `bank` (bank must be precharged).
    Act {
        /// Target bank.
        bank: usize,
        /// Row to open.
        row: u32,
    },
    /// Precharge `bank` (bank must have an open row).
    Pre {
        /// Target bank.
        bank: usize,
    },
    /// Column read from `bank`'s open row.
    Read {
        /// Target bank.
        bank: usize,
    },
    /// Column write to `bank`'s open row.
    Write {
        /// Target bank.
        bank: usize,
    },
    /// All-bank lock-step activate of `row` (PIM mode block start). All
    /// banks must be precharged.
    PimActAll {
        /// Row to open on every bank.
        row: u32,
    },
    /// Precharge-all: closes every open bank (PIM block end / mode
    /// switch). Legal when at least one bank is open and every open bank
    /// has satisfied its precharge timing; already-closed banks are
    /// unaffected.
    PreAll,
    /// All-bank lock-step PIM column operation on the open row.
    /// `writes_row` is `true` for `RfStore` (the row buffer is written and
    /// write-recovery timing applies); loads and computes only read the row.
    PimOp {
        /// Whether the op writes the row buffer.
        writes_row: bool,
    },
    /// Column read with auto-precharge (closed-page policy): the bank
    /// closes its row as soon as the read's precharge timing allows.
    ReadAuto {
        /// Target bank.
        bank: usize,
    },
    /// Column write with auto-precharge.
    WriteAuto {
        /// Target bank.
        bank: usize,
    },
}

/// Per-bank timing and row-buffer state.
#[derive(Debug, Clone)]
struct Bank {
    row: Option<u32>,
    next_act: Cycle,
    next_pre: Cycle,
    next_col: Cycle,
    /// Completion time of the most recent column access on this bank
    /// (data available / written), or `None` if the bank has never moved
    /// data. Used for drain detection.
    busy_until: Option<Cycle>,
}

impl Bank {
    fn new() -> Self {
        Bank {
            row: None,
            next_act: 0,
            next_pre: 0,
            next_col: 0,
            busy_until: None,
        }
    }

    fn raise_busy(&mut self, completion: Cycle) {
        self.busy_until = Some(self.busy_until.map_or(completion, |c| c.max(completion)));
    }
}

/// Cross-bank aggregates, recomputed after every state-mutating command
/// (command issue, refresh). Commands are the only events that change bank
/// state, so refreshing the cache once per command keeps every all-bank
/// legality check — and [`Channel::earliest_issue`] — O(1) instead of a
/// 16-bank walk per DRAM tick.
#[derive(Debug, Clone, Copy, Default)]
struct BankAgg {
    /// Number of banks with an open row.
    open: usize,
    /// `Some(row)` iff *every* bank is open to the same `row`.
    uniform_row: Option<u32>,
    /// `max(next_act)` over all banks.
    next_act: Cycle,
    /// `max(next_col)` over all banks.
    next_col: Cycle,
    /// `max(next_pre)` over open banks (0 when none are open).
    next_pre_open: Cycle,
}

/// Aggregate command counters for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// All-bank refreshes performed (0 unless `t_refi` is enabled).
    pub refreshes: u64,
    /// Activates issued (including each bank of an all-bank activate).
    pub acts: u64,
    /// Precharges issued (including each bank of an all-bank precharge).
    pub pres: u64,
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// PIM lock-step column operations issued.
    pub pim_ops: u64,
    /// PIM all-bank activates issued (block starts).
    pub pim_blocks: u64,
}

impl pimsim_stats::Mergeable for ChannelStats {
    fn merge_from(&mut self, o: &Self) {
        self.refreshes += o.refreshes;
        self.acts += o.acts;
        self.pres += o.pres;
        self.reads += o.reads;
        self.writes += o.writes;
        self.pim_ops += o.pim_ops;
        self.pim_blocks += o.pim_blocks;
    }
}

/// One HBM channel.
#[derive(Debug, Clone)]
pub struct Channel {
    timing: DramTiming,
    banks: Vec<Bank>,
    banks_per_group: usize,
    /// Earliest cycle the next activate may issue (tRRD).
    next_act_any: Cycle,
    /// Most recent column command: (issue cycle, bank group), where the
    /// group is `usize::MAX` for all-bank PIM ops.
    last_col: Option<(Cycle, usize)>,
    /// Cycle at which the shared data bus becomes free.
    data_bus_free: Cycle,
    /// Command-bus serialization: cycle of the last issued command.
    last_cmd_cycle: Option<Cycle>,
    /// Issue times of the last four activates (tFAW rolling window).
    act_times: [Cycle; 4],
    act_ptr: usize,
    /// End of the most recent write burst (tWTR).
    last_write_end: Cycle,
    /// Cached `max(bank.busy_until)` over all banks, `None` while no bank
    /// has ever moved data. Per-bank `busy_until` is only ever raised, so
    /// maintaining the running max on the three raising command paths
    /// keeps this exact — and the quiescence check O(1) instead of a bank
    /// scan.
    max_busy_until: Option<Cycle>,
    /// Cross-bank aggregate cache (see [`BankAgg`]).
    agg: BankAgg,
    /// Bumped whenever any bank's row state changes (activate, precharge,
    /// refresh). Lets callers cache derived row views (the controller's
    /// `open_rows` scratch) and rebuild them only when this moves.
    row_epoch: u64,
    /// When the next refresh becomes due (`u64::MAX` when disabled).
    next_refresh: Cycle,
    /// A due refresh blocks new activates until it executes.
    refresh_pending: bool,
    stats: ChannelStats,
}

impl Channel {
    /// Creates a channel with all banks precharged and idle.
    pub fn new(dram: &DramConfig, timing: &DramTiming) -> Self {
        let mut ch = Channel {
            timing: timing.clone(),
            banks: (0..dram.banks).map(|_| Bank::new()).collect(),
            banks_per_group: dram.banks / dram.bank_groups,
            next_act_any: 0,
            last_col: None,
            data_bus_free: 0,
            last_cmd_cycle: None,
            act_times: [0; 4],
            act_ptr: 0,
            last_write_end: 0,
            max_busy_until: None,
            agg: BankAgg::default(),
            row_epoch: 0,
            next_refresh: if timing.t_refi > 0 {
                timing.t_refi
            } else {
                Cycle::MAX
            },
            refresh_pending: false,
            stats: ChannelStats::default(),
        };
        ch.recompute_agg();
        ch
    }

    /// Rebuilds the cross-bank aggregate cache. Called once per
    /// state-mutating event (command issue, refresh execution) — never per
    /// tick — so steady-state legality checks stay O(1).
    fn recompute_agg(&mut self) {
        let mut agg = BankAgg::default();
        let mut uniform = true;
        let first_row = self.banks.first().and_then(|b| b.row);
        for b in &self.banks {
            if b.row.is_some() {
                agg.open += 1;
                agg.next_pre_open = agg.next_pre_open.max(b.next_pre);
            }
            uniform &= b.row == first_row;
            agg.next_act = agg.next_act.max(b.next_act);
            agg.next_col = agg.next_col.max(b.next_col);
        }
        agg.uniform_row = if uniform && agg.open == self.banks.len() {
            first_row
        } else {
            None
        };
        self.agg = agg;
    }

    /// Advances refresh housekeeping; call once per DRAM cycle before
    /// issuing commands. When a refresh is due, new commands (activates
    /// and column accesses) are blocked so the channel drains; once every
    /// bank is precharge-able and quiescent, the channel closes the open
    /// rows and performs the all-bank refresh, making the banks
    /// unavailable for `t_rfc` cycles (the auto-precharge a real
    /// controller's REF implies).
    pub fn tick(&mut self, now: Cycle) {
        if now >= self.next_refresh {
            self.refresh_pending = true;
        }
        if !self.refresh_pending {
            return;
        }
        let quiesced = self.quiescent(now)
            && self
                .banks
                .iter()
                .all(|b| b.row.is_none() || now >= b.next_pre);
        if !quiesced {
            return;
        }
        for bank in 0..self.banks.len() {
            if self.banks[bank].row.is_some() {
                self.pre_one(bank, now);
                self.stats.pres += 1;
            }
            let b = &mut self.banks[bank];
            b.next_act = b.next_act.max(now + self.timing.t_rfc);
        }
        self.stats.refreshes += 1;
        self.refresh_pending = false;
        self.next_refresh = (self.next_refresh + self.timing.t_refi).max(now);
        self.recompute_agg();
    }

    /// Whether a due refresh is blocking new activates and column accesses.
    pub fn refresh_pending(&self) -> bool {
        self.refresh_pending
    }

    /// The cycle at which the next refresh becomes due (`Cycle::MAX` when
    /// refresh is disabled). The controller must take a full step at this
    /// cycle so [`Channel::tick`] can raise `refresh_pending`.
    pub fn next_refresh(&self) -> Cycle {
        self.next_refresh
    }

    /// Monotone counter of row-state changes (activates, precharges,
    /// refreshes). Derived row views (the controller's open-row scratch)
    /// stay valid while this is unchanged.
    pub fn row_epoch(&self) -> u64 {
        self.row_epoch
    }

    fn faw_ok(&self, now: Cycle) -> bool {
        // act_times[act_ptr] is the oldest of the last four activates.
        self.timing.t_faw == 0 || now >= self.act_times[self.act_ptr] + self.timing.t_faw
    }

    fn record_act(&mut self, now: Cycle) {
        if self.timing.t_faw > 0 {
            self.act_times[self.act_ptr] = now;
            self.act_ptr = (self.act_ptr + 1) % 4;
        }
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// The open row of `bank`, if any.
    pub fn open_row(&self, bank: usize) -> Option<u32> {
        self.banks[bank].row
    }

    /// `true` once all column data movement has completed (used by the
    /// memory controller to detect the end of a mode-switch drain).
    pub fn quiescent(&self, now: Cycle) -> bool {
        debug_assert_eq!(
            self.max_busy_until,
            self.banks.iter().filter_map(|b| b.busy_until).max()
        );
        self.max_busy_until.is_none_or(|m| m <= now)
    }

    /// Completion time of the latest in-flight column access across banks,
    /// or `None` if the channel has never moved data: an all-idle channel
    /// reports idle, not "busy until cycle 0".
    pub fn busy_until(&self) -> Option<Cycle> {
        self.max_busy_until
    }

    /// Completion time of `bank`'s most recent column access, or `None` if
    /// the bank has never moved data.
    pub fn bank_busy_until(&self, bank: usize) -> Option<Cycle> {
        self.banks[bank].busy_until
    }

    /// The earliest cycle at or after `now` at which this channel has data
    /// movement in flight, or `None` once it is quiescent. Refresh is
    /// deliberately excluded: the refresh clock only advances while the
    /// channel is being ticked, and the owning controller stops ticking a
    /// quiescent channel with empty queues, so a quiescent channel
    /// generates no activity on its own.
    pub fn next_activity_cycle(&self, now: Cycle) -> Option<Cycle> {
        (!self.quiescent(now)).then_some(now)
    }

    /// Whether `bank` has column data in flight at `now` (used for
    /// bank-level-parallelism accounting).
    pub fn bank_busy(&self, bank: usize, now: Cycle) -> bool {
        self.banks[bank].busy_until.is_some_and(|c| c > now)
    }

    /// Whether every bank is open to `row` (the PIM lock-step execution
    /// precondition). O(1) from the aggregate cache.
    pub fn all_banks_open_to(&self, row: u32) -> bool {
        self.agg.uniform_row == Some(row)
    }

    /// Whether any bank has an open row. O(1) from the aggregate cache.
    pub fn any_bank_open(&self) -> bool {
        self.agg.open > 0
    }

    /// Snapshot of the command counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    fn group_of(&self, bank: usize) -> usize {
        bank / self.banks_per_group
    }

    fn ccd_ok(&self, now: Cycle, group: usize) -> bool {
        match self.last_col {
            None => true,
            Some((t, g)) => {
                let gap = if g == group || g == usize::MAX || group == usize::MAX {
                    self.timing.t_ccdl
                } else {
                    self.timing.t_ccds
                };
                now >= t + gap
            }
        }
    }

    fn cmd_bus_ok(&self, now: Cycle) -> bool {
        self.last_cmd_cycle.is_none_or(|t| now > t)
    }

    /// Whether `cmd` may legally issue at `now`.
    pub fn can_issue(&self, cmd: DramCommand, now: Cycle) -> bool {
        if !self.cmd_bus_ok(now) {
            return false;
        }
        let t = &self.timing;
        match cmd {
            DramCommand::Act { bank, .. } => {
                let b = &self.banks[bank];
                !self.refresh_pending
                    && self.faw_ok(now)
                    && b.row.is_none()
                    && now >= b.next_act
                    && now >= self.next_act_any
            }
            DramCommand::Pre { bank } => {
                let b = &self.banks[bank];
                b.row.is_some() && now >= b.next_pre
            }
            DramCommand::Read { bank } => {
                let b = &self.banks[bank];
                !self.refresh_pending
                    && b.row.is_some()
                    && now >= b.next_col
                    && now >= self.last_write_end + t.t_wtr
                    && self.ccd_ok(now, self.group_of(bank))
                    && self.data_bus_free <= now + t.t_cl
            }
            DramCommand::Write { bank } => {
                let b = &self.banks[bank];
                !self.refresh_pending
                    && b.row.is_some()
                    && now >= b.next_col
                    && self.ccd_ok(now, self.group_of(bank))
                    && self.data_bus_free <= now + t.t_wl
            }
            // All-bank activate is a single dedicated PIM-mode command and
            // is exempt from tFAW (which governs per-bank ACT streams).
            DramCommand::PimActAll { .. } => {
                !self.refresh_pending && self.agg.open == 0 && now >= self.agg.next_act
            }
            DramCommand::PreAll => self.agg.open > 0 && now >= self.agg.next_pre_open,
            DramCommand::PimOp { .. } => {
                !self.refresh_pending
                    && self.agg.open == self.banks.len()
                    && now >= self.agg.next_col
                    && self.ccd_ok(now, usize::MAX)
            }
            DramCommand::ReadAuto { bank } => self.can_issue(DramCommand::Read { bank }, now),
            DramCommand::WriteAuto { bank } => self.can_issue(DramCommand::Write { bank }, now),
        }
    }

    /// Earliest cycle the last column command's CCD constraint clears for
    /// a command targeting `group` (`usize::MAX` = all-bank).
    fn ccd_clear(&self, group: usize) -> Cycle {
        match self.last_col {
            None => 0,
            Some((t, g)) => {
                let gap = if g == group || g == usize::MAX || group == usize::MAX {
                    self.timing.t_ccdl
                } else {
                    self.timing.t_ccds
                };
                t + gap
            }
        }
    }

    /// The exact first cycle `t >= now` at which `cmd` becomes legal given
    /// the channel's *current* state, or `None` if no such cycle exists
    /// without an intervening state change (wrong row open/closed state,
    /// or a pending refresh blocking the command class).
    ///
    /// Every timing constraint is of the form `t >= constant`, so the
    /// answer is the max of the per-constraint release times — this is the
    /// event the controller's stall memo jumps to. Soundness contract
    /// (checked by a property test): with no intervening command or
    /// refresh, `can_issue(cmd, t)` is false for all `t` before the
    /// returned cycle and true at it.
    pub fn earliest_issue(&self, cmd: DramCommand, now: Cycle) -> Option<Cycle> {
        let t = &self.timing;
        let cmd_bus = self.last_cmd_cycle.map_or(0, |c| c + 1);
        let earliest = match cmd {
            DramCommand::Act { bank, .. } => {
                let b = &self.banks[bank];
                if self.refresh_pending || b.row.is_some() {
                    return None;
                }
                let faw = if t.t_faw > 0 {
                    self.act_times[self.act_ptr] + t.t_faw
                } else {
                    0
                };
                b.next_act.max(self.next_act_any).max(faw)
            }
            DramCommand::Pre { bank } => {
                let b = &self.banks[bank];
                b.row?;
                b.next_pre
            }
            DramCommand::Read { bank } => {
                let b = &self.banks[bank];
                if self.refresh_pending || b.row.is_none() {
                    return None;
                }
                // `data_bus_free <= t + t_cl` releases at data_bus_free - t_cl.
                b.next_col
                    .max(self.last_write_end + t.t_wtr)
                    .max(self.ccd_clear(self.group_of(bank)))
                    .max(self.data_bus_free.saturating_sub(t.t_cl))
            }
            DramCommand::Write { bank } => {
                let b = &self.banks[bank];
                if self.refresh_pending || b.row.is_none() {
                    return None;
                }
                b.next_col
                    .max(self.ccd_clear(self.group_of(bank)))
                    .max(self.data_bus_free.saturating_sub(t.t_wl))
            }
            DramCommand::PimActAll { .. } => {
                if self.refresh_pending || self.agg.open != 0 {
                    return None;
                }
                self.agg.next_act
            }
            DramCommand::PreAll => {
                if self.agg.open == 0 {
                    return None;
                }
                self.agg.next_pre_open
            }
            DramCommand::PimOp { .. } => {
                if self.refresh_pending || self.agg.open != self.banks.len() {
                    return None;
                }
                self.agg.next_col.max(self.ccd_clear(usize::MAX))
            }
            DramCommand::ReadAuto { bank } => {
                return self.earliest_issue(DramCommand::Read { bank }, now)
            }
            DramCommand::WriteAuto { bank } => {
                return self.earliest_issue(DramCommand::Write { bank }, now)
            }
        };
        Some(earliest.max(cmd_bus).max(now))
    }

    /// Issues `cmd` at `now`.
    ///
    /// Returns the data completion cycle for column commands (`Read`,
    /// `Write`, `PimOp`) and `None` for row commands.
    ///
    /// # Panics
    ///
    /// Panics if the command is not legal at `now` (check with
    /// [`Channel::can_issue`] first).
    pub fn issue(&mut self, cmd: DramCommand, now: Cycle) -> Option<Cycle> {
        assert!(
            self.can_issue(cmd, now),
            "illegal DRAM command {cmd:?} at cycle {now}"
        );
        // Auto-precharge variants delegate to the plain column command
        // (before the command-bus slot is consumed) and then close the row.
        if let DramCommand::ReadAuto { bank } = cmd {
            let completion = self.issue(DramCommand::Read { bank }, now);
            self.auto_precharge(bank);
            return completion;
        }
        if let DramCommand::WriteAuto { bank } = cmd {
            let completion = self.issue(DramCommand::Write { bank }, now);
            self.auto_precharge(bank);
            return completion;
        }
        self.last_cmd_cycle = Some(now);
        let t = self.timing.clone();
        let completion = match cmd {
            DramCommand::Act { bank, row } => {
                self.act_one(bank, row, now);
                self.record_act(now);
                self.next_act_any = now + t.t_rrd;
                self.stats.acts += 1;
                None
            }
            DramCommand::Pre { bank } => {
                self.pre_one(bank, now);
                self.stats.pres += 1;
                None
            }
            DramCommand::Read { bank } => {
                let completion = now + t.t_cl + t.burst_cycles;
                let group = self.group_of(bank);
                let b = &mut self.banks[bank];
                b.raise_busy(completion);
                b.next_pre = b.next_pre.max(now + t.t_rtpl);
                b.next_col = b.next_col.max(now + t.t_ccdl);
                self.raise_max_busy(completion);
                self.data_bus_free = completion;
                self.last_col = Some((now, group));
                self.stats.reads += 1;
                Some(completion)
            }
            DramCommand::Write { bank } => {
                let completion = now + t.t_wl + t.burst_cycles;
                let group = self.group_of(bank);
                let b = &mut self.banks[bank];
                b.raise_busy(completion);
                b.next_pre = b.next_pre.max(completion + t.t_wr);
                b.next_col = b.next_col.max(now + t.t_ccdl);
                self.raise_max_busy(completion);
                self.data_bus_free = completion;
                self.last_write_end = self.last_write_end.max(completion);
                self.last_col = Some((now, group));
                self.stats.writes += 1;
                Some(completion)
            }
            DramCommand::PimActAll { row } => {
                for bank in 0..self.banks.len() {
                    self.act_one(bank, row, now);
                }
                self.stats.acts += self.banks.len() as u64;
                self.stats.pim_blocks += 1;
                None
            }
            DramCommand::PreAll => {
                let mut closed = 0u64;
                for bank in 0..self.banks.len() {
                    if self.banks[bank].row.is_some() {
                        self.pre_one(bank, now);
                        closed += 1;
                    }
                }
                self.stats.pres += closed;
                None
            }
            DramCommand::ReadAuto { .. } | DramCommand::WriteAuto { .. } => {
                unreachable!("auto-precharge variants are handled above")
            }
            DramCommand::PimOp { writes_row } => {
                // PIM data stays inside the memory (row buffer <-> FU
                // register file); the shared data bus is not used.
                let completion = if writes_row {
                    now + t.t_wl + t.burst_cycles
                } else {
                    now + t.t_cl
                };
                for b in &mut self.banks {
                    b.raise_busy(completion);
                    b.next_col = b.next_col.max(now + t.t_ccdl);
                    if writes_row {
                        b.next_pre = b.next_pre.max(completion + t.t_wr);
                    } else {
                        b.next_pre = b.next_pre.max(now + t.t_rtpl);
                    }
                }
                self.raise_max_busy(completion);
                self.last_col = Some((now, usize::MAX));
                self.stats.pim_ops += 1;
                Some(completion)
            }
        };
        self.recompute_agg();
        completion
    }

    /// Issue timing of a back-to-back [`DramCommand::PimOp`] run:
    /// `(stride, read_latency, write_latency)`. After a PIM op at `s` the
    /// only constraints on the next are `next_col`/CCD (`s + tCCDl`) and
    /// the command bus (`s + 1`), so successive ops issue every
    /// `max(tCCDl, 1)` cycles; data completes `read_latency` (`tCL`) or
    /// `write_latency` (`tWL + burst`) cycles after issue.
    pub fn pim_burst_timing(&self) -> (Cycle, Cycle, Cycle) {
        let t = &self.timing;
        (t.t_ccdl.max(1), t.t_cl, t.t_wl + t.burst_cycles)
    }

    /// Bulk equivalent of issuing `writes.len()` back-to-back
    /// [`DramCommand::PimOp`]s at `first`, `first + stride`, … (stride
    /// from [`Channel::pim_burst_timing`]): applies the run's final
    /// channel state in one pass and pushes each op's data-completion
    /// cycle onto `completions`, bit-identical to the per-op loop except
    /// for the command statistics — the caller tallies those one op at a
    /// time via [`Channel::tally_pim_op`] as the analytic issue cycles
    /// pass. Ops after the first are legal by construction, so only the
    /// first is asserted. The caller must ensure no refresh becomes due
    /// at or before the last issue cycle (debug-asserted). `row_epoch` is
    /// untouched: PIM column ops never change row state.
    ///
    /// # Panics
    ///
    /// Panics if `writes` is empty or the first op is not legal at
    /// `first`.
    pub fn issue_pim_burst(&mut self, first: Cycle, writes: &[bool], completions: &mut Vec<Cycle>) {
        assert!(!writes.is_empty(), "empty PIM burst");
        assert!(
            self.can_issue(
                DramCommand::PimOp {
                    writes_row: writes[0]
                },
                first
            ),
            "illegal PIM burst start at cycle {first}"
        );
        let (stride, read_lat, write_lat) = self.pim_burst_timing();
        let last_issue = first + (writes.len() as Cycle - 1) * stride;
        debug_assert!(
            last_issue < self.next_refresh && !self.refresh_pending,
            "PIM burst overlaps a refresh"
        );
        let t = self.timing.clone();
        // The per-op contributions to bank state are monotone in issue
        // order within each class, so the run folds to: the last issue's
        // column/CCD release, the last read's precharge release, the last
        // write's recovery, and the maximum data completion.
        let mut last_read_issue: Option<Cycle> = None;
        let mut last_write_done: Option<Cycle> = None;
        let mut max_completion = 0;
        for (k, &w) in writes.iter().enumerate() {
            let s = first + k as Cycle * stride;
            let completion = s + if w { write_lat } else { read_lat };
            if w {
                last_write_done = Some(completion);
            } else {
                last_read_issue = Some(s);
            }
            max_completion = max_completion.max(completion);
            completions.push(completion);
        }
        let next_col = last_issue + t.t_ccdl;
        let next_pre = last_read_issue
            .map(|s| s + t.t_rtpl)
            .into_iter()
            .chain(last_write_done.map(|c| c + t.t_wr))
            .max()
            .expect("nonempty burst has a precharge release");
        for b in &mut self.banks {
            b.raise_busy(max_completion);
            b.next_col = b.next_col.max(next_col);
            b.next_pre = b.next_pre.max(next_pre);
        }
        self.raise_max_busy(max_completion);
        self.last_col = Some((last_issue, usize::MAX));
        self.last_cmd_cycle = Some(last_issue);
        self.recompute_agg();
    }

    /// Counts one PIM op in the channel's command statistics. The bulk
    /// [`Channel::issue_pim_burst`] deliberately does not touch the stats
    /// so the controller can attribute each op at its analytic issue
    /// cycle — keeping a stats snapshot taken mid-burst bit-identical to
    /// per-cycle issuing.
    pub fn tally_pim_op(&mut self) {
        self.stats.pim_ops += 1;
    }

    fn raise_max_busy(&mut self, completion: Cycle) {
        self.max_busy_until = Some(
            self.max_busy_until
                .map_or(completion, |m| m.max(completion)),
        );
    }

    fn act_one(&mut self, bank: usize, row: u32, now: Cycle) {
        let t = &self.timing;
        let b = &mut self.banks[bank];
        b.row = Some(row);
        b.next_col = now + t.t_rcd;
        b.next_pre = now + t.t_ras;
        self.row_epoch += 1;
    }

    /// Closes `bank` at the earliest legal precharge point following the
    /// column access just issued (the auto-precharge the closed-page
    /// policy's `RDA`/`WRA` commands imply).
    fn auto_precharge(&mut self, bank: usize) {
        let t_rp = self.timing.t_rp;
        let b = &mut self.banks[bank];
        let pre_at = b.next_pre;
        b.row = None;
        b.next_act = b.next_act.max(pre_at + t_rp);
        self.row_epoch += 1;
        self.stats.pres += 1;
        self.recompute_agg();
    }

    fn pre_one(&mut self, bank: usize, now: Cycle) {
        let t = &self.timing;
        let b = &mut self.banks[bank];
        b.row = None;
        b.next_act = now + t.t_rp;
        self.row_epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> Channel {
        let dram = DramConfig::default();
        let timing = DramTiming::default();
        Channel::new(&dram, &timing)
    }

    /// Issues `cmd` at the first legal cycle at or after `from`.
    fn issue_when_ready(ch: &mut Channel, cmd: DramCommand, from: Cycle) -> (Cycle, Option<Cycle>) {
        for now in from..from + 10_000 {
            if ch.can_issue(cmd, now) {
                return (now, ch.issue(cmd, now));
            }
        }
        panic!("command {cmd:?} never became legal");
    }

    #[test]
    fn read_requires_open_row() {
        let mut ch = channel();
        assert!(!ch.can_issue(DramCommand::Read { bank: 0 }, 0));
        ch.issue(DramCommand::Act { bank: 0, row: 5 }, 0);
        assert_eq!(ch.open_row(0), Some(5));
        // tRCD must elapse before the column access.
        assert!(!ch.can_issue(DramCommand::Read { bank: 0 }, 11));
        assert!(ch.can_issue(DramCommand::Read { bank: 0 }, 12));
        let done = ch.issue(DramCommand::Read { bank: 0 }, 12).unwrap();
        assert_eq!(done, 12 + 12 + 1); // tCL + burst
    }

    #[test]
    fn act_to_pre_respects_tras() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        assert!(!ch.can_issue(DramCommand::Pre { bank: 0 }, 27));
        assert!(ch.can_issue(DramCommand::Pre { bank: 0 }, 28));
        ch.issue(DramCommand::Pre { bank: 0 }, 28);
        // tRP before re-activate.
        assert!(!ch.can_issue(DramCommand::Act { bank: 0, row: 2 }, 39));
        assert!(ch.can_issue(DramCommand::Act { bank: 0, row: 2 }, 40));
    }

    #[test]
    fn trrd_separates_activates_across_banks() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        assert!(!ch.can_issue(DramCommand::Act { bank: 1, row: 1 }, 2));
        assert!(ch.can_issue(DramCommand::Act { bank: 1, row: 1 }, 3));
    }

    #[test]
    fn ccd_long_within_group_short_across() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        // bank 4 is in a different group (16 banks / 4 groups).
        issue_when_ready(&mut ch, DramCommand::Act { bank: 4, row: 1 }, 1);
        // Wait until both banks' tRCD has elapsed before the first read.
        let (t0, _) = issue_when_ready(&mut ch, DramCommand::Read { bank: 0 }, 15);
        // Same-bank (and hence same-group) column spaced by tCCDl = 2.
        assert!(!ch.can_issue(DramCommand::Read { bank: 0 }, t0 + 1));
        // Cross-group column only needs tCCDs = 1.
        assert!(ch.can_issue(DramCommand::Read { bank: 4 }, t0 + 1));
    }

    #[test]
    fn pim_burst_matches_per_op_issue() {
        for writes in [
            vec![false; 6],
            vec![true, false, true, false],
            vec![true; 3],
            vec![false],
        ] {
            let mut a = channel();
            let mut b = channel();
            a.issue(DramCommand::PimActAll { row: 3 }, 0);
            b.issue(DramCommand::PimActAll { row: 3 }, 0);
            let head = DramCommand::PimOp {
                writes_row: writes[0],
            };
            let first = a.earliest_issue(head, 1).expect("run becomes legal");
            let (stride, _, _) = a.pim_burst_timing();
            let mut per_op = Vec::new();
            for (k, &w) in writes.iter().enumerate() {
                let s = first + k as Cycle * stride;
                let cmd = DramCommand::PimOp { writes_row: w };
                assert!(
                    a.can_issue(cmd, s),
                    "op {k} not legal at its analytic cycle {s}"
                );
                per_op.push(a.issue(cmd, s).expect("column completion"));
            }
            let mut bulk = Vec::new();
            b.issue_pim_burst(first, &writes, &mut bulk);
            // Stats are the caller's job: one tally per analytic issue.
            for _ in &writes {
                b.tally_pim_op();
            }
            assert_eq!(per_op, bulk, "completion series diverged");
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "channel state diverged after {writes:?}"
            );
        }
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        // Issue the write late enough that write recovery (not tRAS) is the
        // binding constraint on the subsequent precharge.
        let (tw, done) = issue_when_ready(&mut ch, DramCommand::Write { bank: 0 }, 20);
        let done = done.unwrap();
        assert_eq!(done, tw + 2 + 1); // tWL + burst
        let earliest_pre = done + 10; // + tWR
        assert!(earliest_pre > 28, "test setup: tWR must dominate tRAS here");
        assert!(!ch.can_issue(DramCommand::Pre { bank: 0 }, earliest_pre - 1));
        assert!(ch.can_issue(DramCommand::Pre { bank: 0 }, earliest_pre));
    }

    #[test]
    fn data_bus_serializes_bursts() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        issue_when_ready(&mut ch, DramCommand::Act { bank: 4, row: 1 }, 1);
        let (t0, d0) = issue_when_ready(&mut ch, DramCommand::Read { bank: 0 }, 12);
        let (t1, d1) = issue_when_ready(&mut ch, DramCommand::Read { bank: 4 }, t0 + 1);
        assert!(d1.unwrap() > d0.unwrap(), "bursts must not overlap");
        assert!(t1 > t0);
    }

    #[test]
    fn pim_lockstep_act_and_ops() {
        let mut ch = channel();
        assert!(ch.can_issue(DramCommand::PimActAll { row: 9 }, 0));
        ch.issue(DramCommand::PimActAll { row: 9 }, 0);
        for b in 0..ch.num_banks() {
            assert_eq!(ch.open_row(b), Some(9));
        }
        // tRCD before the first op.
        assert!(!ch.can_issue(DramCommand::PimOp { writes_row: false }, 11));
        let (t0, _) = issue_when_ready(&mut ch, DramCommand::PimOp { writes_row: false }, 12);
        // Ops stream at tCCDl.
        assert!(!ch.can_issue(DramCommand::PimOp { writes_row: false }, t0 + 1));
        assert!(ch.can_issue(DramCommand::PimOp { writes_row: false }, t0 + 2));
        let s = ch.stats();
        assert_eq!(s.pim_blocks, 1);
        assert_eq!(s.pim_ops, 1);
        assert_eq!(s.acts, 16);
    }

    #[test]
    fn pim_act_all_requires_all_banks_closed() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 3, row: 7 }, 0);
        assert!(!ch.can_issue(DramCommand::PimActAll { row: 9 }, 50));
        issue_when_ready(&mut ch, DramCommand::Pre { bank: 3 }, 28);
        let (_, _) = issue_when_ready(&mut ch, DramCommand::PimActAll { row: 9 }, 29);
    }

    #[test]
    fn quiescent_tracks_inflight_data() {
        let mut ch = channel();
        assert!(ch.quiescent(0));
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        assert!(ch.quiescent(0), "row commands carry no data");
        let (t0, d0) = issue_when_ready(&mut ch, DramCommand::Read { bank: 0 }, 12);
        let d0 = d0.unwrap();
        assert!(!ch.quiescent(t0));
        assert!(!ch.quiescent(d0 - 1));
        assert!(ch.quiescent(d0));
    }

    #[test]
    fn pre_all_closes_only_open_banks() {
        let mut ch = channel();
        assert!(
            !ch.can_issue(DramCommand::PreAll, 0),
            "PreAll needs at least one open bank"
        );
        ch.issue(DramCommand::Act { bank: 2, row: 4 }, 0);
        issue_when_ready(&mut ch, DramCommand::Act { bank: 9, row: 6 }, 1);
        // tRAS gates the earliest PreAll.
        let (t, _) = issue_when_ready(&mut ch, DramCommand::PreAll, 4);
        assert!(t >= 28 + 3, "both banks must satisfy tRAS");
        assert_eq!(ch.open_row(2), None);
        assert_eq!(ch.open_row(9), None);
        assert_eq!(ch.stats().pres, 2, "only open banks precharged");
    }

    #[test]
    fn command_bus_allows_one_command_per_cycle() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        assert!(!ch.can_issue(DramCommand::Act { bank: 8, row: 1 }, 0));
        assert!(ch.can_issue(DramCommand::Act { bank: 8, row: 1 }, 3));
    }

    #[test]
    fn tfaw_limits_activate_bursts() {
        let dram = DramConfig::default();
        let timing = DramTiming {
            t_faw: 20,
            ..DramTiming::default()
        };
        let mut ch = Channel::new(&dram, &timing);
        // Four activates at the tRRD pace...
        let mut now = 0;
        for bank in 0..4 {
            let (t, _) = issue_when_ready(&mut ch, DramCommand::Act { bank, row: 1 }, now);
            now = t + 1;
        }
        // ...then the fifth must wait for the window to roll past the
        // first activate (t=0) + tFAW.
        let (t5, _) = issue_when_ready(&mut ch, DramCommand::Act { bank: 4, row: 1 }, now);
        assert!(t5 >= 20, "fifth ACT at {t5} violates tFAW");
        // Disabled (default) timing has no such stall.
        let mut ch0 = channel();
        let mut now = 0;
        for bank in 0..5 {
            let (t, _) = issue_when_ready(&mut ch0, DramCommand::Act { bank, row: 1 }, now);
            now = t + 1;
        }
        assert!(
            now <= 14,
            "tFAW=0 must allow ACTs at the tRRD pace (got {now})"
        );
    }

    #[test]
    fn twtr_separates_write_then_read() {
        let dram = DramConfig::default();
        let timing = DramTiming {
            t_wtr: 8,
            ..DramTiming::default()
        };
        let mut ch = Channel::new(&dram, &timing);
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        issue_when_ready(&mut ch, DramCommand::Act { bank: 4, row: 1 }, 1);
        let (tw, done) = issue_when_ready(&mut ch, DramCommand::Write { bank: 0 }, 15);
        let done = done.unwrap();
        let _ = tw;
        // A read on another bank must wait for write-end + tWTR.
        assert!(!ch.can_issue(DramCommand::Read { bank: 4 }, done + 7));
        assert!(ch.can_issue(DramCommand::Read { bank: 4 }, done + 8));
    }

    #[test]
    fn refresh_closes_banks_and_blocks_activates() {
        let dram = DramConfig::default();
        let timing = DramTiming {
            t_refi: 100,
            t_rfc: 50,
            ..DramTiming::default()
        };
        let mut ch = Channel::new(&dram, &timing);
        ch.issue(DramCommand::Act { bank: 0, row: 3 }, 0);
        // Run ticks past the refresh deadline; tRAS must elapse before the
        // channel can close the row.
        for now in 1..=130 {
            ch.tick(now);
        }
        assert_eq!(ch.open_row(0), None, "refresh must close the open row");
        assert_eq!(ch.stats().refreshes, 1);
        // Banks are unavailable for tRFC after the refresh executes.
        assert!(!ch.can_issue(DramCommand::Act { bank: 0, row: 4 }, 130));
        let (t, _) = issue_when_ready(&mut ch, DramCommand::Act { bank: 0, row: 4 }, 130);
        assert!(t >= 150, "ACT at {t} inside tRFC");
        // And the next refresh is scheduled.
        for now in t..(t + 400) {
            ch.tick(now);
        }
        assert!(ch.stats().refreshes >= 2);
    }

    #[test]
    fn no_refresh_by_default() {
        let mut ch = channel();
        for now in 0..100_000 {
            ch.tick(now);
        }
        assert_eq!(ch.stats().refreshes, 0);
    }

    #[test]
    fn auto_precharge_closes_the_row() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 0, row: 5 }, 0);
        let (t, done) = issue_when_ready(&mut ch, DramCommand::ReadAuto { bank: 0 }, 12);
        assert!(done.is_some());
        assert_eq!(ch.open_row(0), None, "RDA must close the row");
        // Re-activation waits for the implied precharge (tRAS then tRP).
        assert!(!ch.can_issue(DramCommand::Act { bank: 0, row: 6 }, t + 1));
        let (t2, _) = issue_when_ready(&mut ch, DramCommand::Act { bank: 0, row: 6 }, t);
        assert!(
            t2 >= 28 + 12,
            "ACT at {t2} ignores the auto-precharge timing"
        );
        assert_eq!(ch.stats().pres, 1, "auto-precharge counts as a precharge");
    }

    #[test]
    fn write_auto_respects_write_recovery() {
        let mut ch = channel();
        ch.issue(DramCommand::Act { bank: 0, row: 5 }, 0);
        let (tw, done) = issue_when_ready(&mut ch, DramCommand::WriteAuto { bank: 0 }, 30);
        let done = done.unwrap();
        assert_eq!(done, tw + 3);
        assert_eq!(ch.open_row(0), None);
        // next ACT >= write end + tWR + tRP.
        let earliest = done + 10 + 12;
        assert!(!ch.can_issue(DramCommand::Act { bank: 0, row: 1 }, earliest - 1));
        assert!(ch.can_issue(DramCommand::Act { bank: 0, row: 1 }, earliest));
    }

    #[test]
    #[should_panic(expected = "illegal DRAM command")]
    fn illegal_issue_panics() {
        let mut ch = channel();
        let _ = ch.issue(DramCommand::Read { bank: 0 }, 0);
    }

    /// Regression: an all-idle channel must aggregate its busy time to
    /// `None`, not "busy until cycle 0" — the drain detector treated a
    /// never-used channel as having a burst ending at 0, which is
    /// indistinguishable from real work completing at cycle 0.
    #[test]
    fn busy_aggregation_reports_idle_as_none() {
        let mut ch = channel();
        assert_eq!(ch.busy_until(), None, "fresh channel has no busy time");
        for b in 0..ch.num_banks() {
            assert_eq!(ch.bank_busy_until(b), None);
        }
        // Row commands carry no data: still nothing to aggregate.
        ch.issue(DramCommand::Act { bank: 0, row: 1 }, 0);
        assert_eq!(ch.busy_until(), None, "ACT must not fabricate busy time");
        // A column access raises exactly the accessed bank.
        let (_, done) = issue_when_ready(&mut ch, DramCommand::Read { bank: 0 }, 12);
        let done = done.unwrap();
        assert_eq!(ch.busy_until(), Some(done));
        assert_eq!(ch.bank_busy_until(0), Some(done));
        assert_eq!(ch.bank_busy_until(1), None, "untouched bank stays None");
        // The aggregate is a high-water mark: it reports the completion
        // time even after it passes (quiescent() is the time-aware check).
        assert_eq!(ch.busy_until(), Some(done));
        assert!(ch.quiescent(done));
    }
}
