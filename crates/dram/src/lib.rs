//! Cycle-level DRAM model with bank-level processing-in-memory.
//!
//! This crate models the memory devices of the paper's PIM-enabled GPU
//! (Figure 1): per-channel banks with row buffers and full command timing
//! (Table I), plus the all-bank lock-step PIM execution mode and the PIM
//! functional units' register files. Substrates are selected through the
//! [`backend`] registry — HBM (the paper's Table I machine) and
//! LPDDR5X-PIM (per-rank PIM units, tFAW/tWTR enabled) ship in-tree, and
//! all of the timing-legality machinery is parameterized rather than
//! substrate-specific.
//!
//! The model is a *mechanism* layer: it enforces DRAM legality, while
//! scheduling decisions (which request, which mode) live in `pimsim-core`.
//!
//! Deliberate simplifications (documented in `DESIGN.md`): no refresh, no
//! read/write bus-turnaround penalty beyond data-bus occupancy, and no
//! power model.
//!
//! # Example
//!
//! ```
//! use pimsim_dram::{Channel, DramCommand};
//! use pimsim_types::{DramConfig, DramTiming};
//!
//! let mut ch = Channel::new(&DramConfig::default(), &DramTiming::default());
//! ch.issue(DramCommand::Act { bank: 0, row: 42 }, 0);
//! assert_eq!(ch.open_row(0), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod channel;
pub mod energy;
pub mod mapping;
pub mod pim;

pub use backend::{BackendDescriptor, BackendParseError, DramBackend};
pub use channel::{Channel, ChannelStats, DramCommand};
pub use energy::{channel_energy, EnergyBreakdown, EnergyConfig};
pub use mapping::AddressMapper;
pub use pim::{PimEngine, RfDisciplineError};
