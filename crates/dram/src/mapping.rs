//! Physical-address to DRAM-coordinate mapping.
//!
//! Table I of the paper specifies a bit-sliced layout
//! (`RRRR.RRRRRRRR.RBBBCCCB.DDDDDCCC`, MSB first, over the address bits
//! above the 32 B DRAM-word offset). The paper chooses this *regular*
//! scheme — turning off pseudo-random I-poly channel hashing — so that PIM
//! kernels can map each warp to a single channel and each thread to a
//! single bank. Both schemes are implemented here; both are bijections.

use pimsim_types::{AddressMapConfig, DecodedAddr, DramConfig, PhysAddr};

/// One field of the bit-sliced layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Row,
    Bank,
    Col,
    Channel,
}

/// Maps physical addresses to DRAM coordinates and back.
///
/// # Example
///
/// ```
/// use pimsim_dram::mapping::AddressMapper;
/// use pimsim_types::{AddressMapConfig, DramConfig, PhysAddr};
///
/// let mapper = AddressMapper::new(&AddressMapConfig::default(), &DramConfig::default(), 32);
/// let d = mapper.decode(PhysAddr(0x1234_5678));
/// let a = mapper.encode(d.channel, d.bank, d.row, d.col);
/// // Encoding loses only the within-word offset bits.
/// assert_eq!(a.0, 0x1234_5678 & !0x1f);
/// ```
#[derive(Debug, Clone)]
pub struct AddressMapper {
    /// Field of each address bit, LSB-first, starting at `offset_bits`.
    fields_lsb: Vec<Field>,
    offset_bits: u32,
    channel_mask: u64,
    ipoly: bool,
}

impl AddressMapper {
    /// Builds a mapper for the given scheme and geometry. `word_bytes` is
    /// the DRAM atom size (power of two).
    ///
    /// # Panics
    ///
    /// Panics if the pattern's field widths do not match the geometry (use
    /// [`pimsim_types::SystemConfig::validate`] to get an error instead) or
    /// if `word_bytes` is not a power of two.
    pub fn new(map: &AddressMapConfig, dram: &DramConfig, word_bytes: usize) -> Self {
        assert!(
            word_bytes.is_power_of_two(),
            "word_bytes must be a power of two"
        );
        let offset_bits = word_bytes.trailing_zeros();
        let (pattern, ipoly) = match map {
            AddressMapConfig::BitPattern(p) => (p.clone(), false),
            // I-poly reuses the Table I layout, then hashes the channel bits.
            AddressMapConfig::IPolyHash => {
                let AddressMapConfig::BitPattern(p) = AddressMapConfig::table1() else {
                    unreachable!()
                };
                (p, true)
            }
        };
        let mut fields_lsb: Vec<Field> = pattern
            .chars()
            .rev()
            .map(|c| match c {
                'R' => Field::Row,
                'B' => Field::Bank,
                'C' => Field::Col,
                'D' => Field::Channel,
                other => panic!("invalid address-map pattern char: {other}"),
            })
            .collect();
        let count = |f: Field| fields_lsb.iter().filter(|&&x| x == f).count();
        assert_eq!(
            1usize << count(Field::Channel),
            dram.channels,
            "channel bits do not match geometry"
        );
        assert_eq!(
            1usize << count(Field::Bank),
            dram.banks,
            "bank bits do not match geometry"
        );
        assert_eq!(
            1u64 << count(Field::Col),
            u64::from(dram.cols_per_row),
            "column bits do not match geometry"
        );
        // Widen the row field so addresses above the pattern stay a
        // bijection: bits above the pattern are treated as row MSBs, up to
        // the 32-bit row index limit. Address bits beyond that are ignored
        // (decode) / unrepresentable (encode).
        let row_bits = count(Field::Row) as u32;
        let extra = 32u32.saturating_sub(row_bits);
        let used: u32 = fields_lsb.len() as u32 + offset_bits;
        for _ in used..(used + extra).min(64) {
            fields_lsb.push(Field::Row);
        }
        AddressMapper {
            fields_lsb,
            offset_bits,
            channel_mask: dram.channels as u64 - 1,
            ipoly,
        }
    }

    /// Decodes a physical address into DRAM coordinates. The within-word
    /// offset bits are ignored.
    pub fn decode(&self, addr: PhysAddr) -> DecodedAddr {
        let a = addr.0 >> self.offset_bits;
        let mut row = 0u64;
        let mut bank = 0u64;
        let mut col = 0u64;
        let mut channel = 0u64;
        let mut shifts = [0u32; 4];
        for (i, f) in self.fields_lsb.iter().enumerate() {
            let bit = (a >> i) & 1;
            let (target, s) = match f {
                Field::Row => (&mut row, &mut shifts[0]),
                Field::Bank => (&mut bank, &mut shifts[1]),
                Field::Col => (&mut col, &mut shifts[2]),
                Field::Channel => (&mut channel, &mut shifts[3]),
            };
            *target |= bit << *s;
            *s += 1;
        }
        if self.ipoly {
            channel = self.hash_channel(channel, row);
        }
        DecodedAddr {
            channel: channel as u16,
            bank: bank as u16,
            row: row as u32,
            col: col as u32,
        }
    }

    /// Encodes DRAM coordinates back into a physical address (word-aligned).
    pub fn encode(&self, channel: u16, bank: u16, row: u32, col: u32) -> PhysAddr {
        let mut channel = u64::from(channel);
        if self.ipoly {
            // The hash is an XOR fold, hence self-inverse given the row.
            channel = self.hash_channel(channel, u64::from(row));
        }
        let mut parts = [u64::from(row), u64::from(bank), u64::from(col), channel];
        let mut a = 0u64;
        for (i, f) in self.fields_lsb.iter().enumerate() {
            let part = match f {
                Field::Row => &mut parts[0],
                Field::Bank => &mut parts[1],
                Field::Col => &mut parts[2],
                Field::Channel => &mut parts[3],
            };
            a |= (*part & 1) << i;
            *part >>= 1;
        }
        PhysAddr(a << self.offset_bits)
    }

    /// XOR-folds row bits into the channel bits (I-poly-style hashing).
    fn hash_channel(&self, channel: u64, row: u64) -> u64 {
        let bits = self.channel_mask.count_ones();
        let mut fold = 0u64;
        let mut r = row;
        while r != 0 {
            fold ^= r & self.channel_mask;
            r >>= bits;
        }
        (channel ^ fold) & self.channel_mask
    }

    /// Number of low address bits covered by the within-word offset.
    pub fn offset_bits(&self) -> u32 {
        self.offset_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsim_types::SystemConfig;

    fn mapper(ipoly: bool) -> AddressMapper {
        let cfg = SystemConfig::default();
        let map = if ipoly {
            AddressMapConfig::IPolyHash
        } else {
            cfg.addr_map.clone()
        };
        AddressMapper::new(&map, &cfg.dram, cfg.dram_word_bytes())
    }

    #[test]
    fn table1_low_bits_are_col_then_channel() {
        // Pattern LSB side: ...CCCB DDDDD CCC -> bits 0-2 column, 3-7 channel.
        let m = mapper(false);
        let d0 = m.decode(PhysAddr(0));
        assert_eq!(
            d0,
            DecodedAddr {
                channel: 0,
                bank: 0,
                row: 0,
                col: 0
            }
        );
        // Bit 5 (first above the 5 offset bits) is a column bit.
        let d = m.decode(PhysAddr(1 << 5));
        assert_eq!((d.channel, d.bank, d.row, d.col), (0, 0, 0, 1));
        // Bits 8..12 are channel bits.
        let d = m.decode(PhysAddr(1 << 8));
        assert_eq!((d.channel, d.bank, d.row, d.col), (1, 0, 0, 0));
        let d = m.decode(PhysAddr(0b11111 << 8));
        assert_eq!(d.channel, 31);
    }

    #[test]
    fn consecutive_words_sweep_columns_first() {
        let m = mapper(false);
        // Consecutive 32 B words in one channel: addresses step by 32 with
        // the same channel bits. Columns 0..8 come from the 3 low C bits.
        let base = 0u64;
        for i in 0..8 {
            let d = m.decode(PhysAddr(base + i * 32));
            assert_eq!(d.col, i as u32);
            assert_eq!(d.channel, 0);
            assert_eq!(d.bank, 0);
            assert_eq!(d.row, 0);
        }
    }

    #[test]
    fn encode_decode_roundtrip_table1() {
        let m = mapper(false);
        // Addresses up to 2^52 (13 pattern row bits widened to 32).
        for &a in &[0u64, 32, 0x1000, 0xdead_bee0, 0xf_1234_5678_9ac0] {
            let aligned = a & !0x1f;
            let d = m.decode(PhysAddr(aligned));
            assert_eq!(m.encode(d.channel, d.bank, d.row, d.col).0, aligned);
        }
    }

    #[test]
    fn encode_decode_roundtrip_ipoly() {
        let m = mapper(true);
        for &a in &[0u64, 32, 0x777_7780, 0xdead_bee0, 0xffff_ffe0] {
            let d = m.decode(PhysAddr(a));
            assert_eq!(m.encode(d.channel, d.bank, d.row, d.col).0, a & !0x1f);
        }
    }

    #[test]
    fn ipoly_spreads_rows_across_channels() {
        let m = mapper(true);
        // Same channel/bank/col coordinates, consecutive rows: under I-poly
        // the *encoded* addresses of (channel=0, row=r) differ in channel
        // bits, i.e. a row-major sweep at fixed decoded channel 0 maps to
        // addresses whose plain Table I channel varies.
        let plain = mapper(false);
        let mut seen = std::collections::HashSet::new();
        for row in 0..32 {
            let a = m.encode(0, 0, row, 0);
            seen.insert(plain.decode(a).channel);
        }
        assert!(seen.len() > 1, "ipoly should scatter rows across channels");
    }

    #[test]
    fn high_address_bits_extend_row() {
        let m = mapper(false);
        // A bit far above the 28-bit pattern must land in the row field.
        let d = m.decode(PhysAddr(1 << 40));
        assert_eq!(d.channel, 0);
        assert_eq!(d.bank, 0);
        assert_eq!(d.col, 0);
        assert!(d.row > 0);
    }

    #[test]
    #[should_panic(expected = "channel bits do not match")]
    fn mismatched_geometry_panics() {
        let mut cfg = SystemConfig::default();
        cfg.dram.channels = 8;
        let _ = AddressMapper::new(&cfg.addr_map, &cfg.dram, 32);
    }
}
